//! A tiny, dependency-free deterministic random source.
//!
//! The build environment is fully offline, so external crates (`rand`,
//! `proptest`) cannot be fetched. This crate supplies the small slice of
//! their APIs the workspace actually uses: a seedable 64-bit generator
//! (SplitMix64), uniform range sampling, Bernoulli draws, and the string
//! generators the property-style tests sample inputs from. Everything is
//! deterministic per seed, so test failures reproduce exactly.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A seedable SplitMix64 generator. Same seed ⇒ same stream, on every
/// platform — the property the derivation samplers and tests rely on.
#[derive(Debug, Clone)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    /// A generator seeded from `seed` (mirrors `SeedableRng::seed_from_u64`).
    pub fn seed_from_u64(seed: u64) -> Self {
        Rng64 { state: seed }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform sample from a range (mirrors `Rng::gen_range`).
    ///
    /// # Panics
    /// Panics if the range is empty.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// True with probability `p` (mirrors `Rng::gen_bool`).
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        // 53 uniform mantissa bits, the classic double-from-u64 recipe.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// A uniformly random Unicode scalar value (surrogates excluded).
    pub fn gen_char(&mut self) -> char {
        loop {
            let v = (self.next_u64() % 0x11_0000) as u32;
            if let Some(c) = char::from_u32(v) {
                return c;
            }
        }
    }

    /// A random `char` vector of length `0..=max_len` over all scalar
    /// values — the stand-in for proptest's `any::<Vec<char>>()`.
    pub fn gen_chars(&mut self, max_len: usize) -> Vec<char> {
        let len = self.gen_range(0..=max_len);
        (0..len).map(|_| self.gen_char()).collect()
    }

    /// A random string of length `0..=max_len` drawn from `alphabet` —
    /// the stand-in for proptest's `"[abc]{0,8}"`-style regex strategies.
    ///
    /// # Panics
    /// Panics if `alphabet` is empty and `max_len > 0` forces a draw.
    pub fn gen_string_from(&mut self, alphabet: &str, max_len: usize) -> String {
        let chars: Vec<char> = alphabet.chars().collect();
        let len = self.gen_range(0..=max_len);
        (0..len).map(|_| chars[self.gen_range(0..chars.len())]).collect()
    }

    /// A random string of length `0..=max_len` over arbitrary scalar
    /// values, biased towards ASCII so parsers see realistic text — the
    /// stand-in for proptest's `".{0,200}"`.
    pub fn gen_string(&mut self, max_len: usize) -> String {
        let len = self.gen_range(0..=max_len);
        (0..len)
            .map(|_| {
                if self.gen_bool(0.85) {
                    // Printable ASCII.
                    char::from_u32(self.gen_range(0x20u32..0x7f)).expect("printable ascii")
                } else {
                    self.gen_char()
                }
            })
            .collect()
    }

    /// Picks one element of `items` uniformly.
    ///
    /// # Panics
    /// Panics if `items` is empty.
    pub fn pick<'a, T: ?Sized>(&mut self, items: &'a [&'a T]) -> &'a T {
        items[self.gen_range(0..items.len())]
    }
}

/// Ranges [`Rng64::gen_range`] can sample from.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform sample.
    fn sample(self, rng: &mut Rng64) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($ty:ty),*) => {$(
        impl SampleRange for Range<$ty> {
            type Output = $ty;
            fn sample(self, rng: &mut Rng64) -> $ty {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $ty
            }
        }
        impl SampleRange for RangeInclusive<$ty> {
            type Output = $ty;
            fn sample(self, rng: &mut Rng64) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                // Wrapping: for the full u64 domain (end - start ==
                // u64::MAX) the +1 wraps to 0, which the branch below
                // handles; a checked add would panic in debug builds
                // before it could.
                let span = ((end - start) as u64).wrapping_add(1);
                // span == 0 ⇒ the full u64 domain; the modulo is a no-op.
                if span == 0 {
                    return start + rng.next_u64() as $ty;
                }
                start + (rng.next_u64() % span) as $ty
            }
        }
    )*};
}

impl_sample_range!(usize, u64, u32, u16, u8);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_domain_inclusive_range_does_not_overflow() {
        let mut rng = Rng64::seed_from_u64(7);
        // Would panic with an arithmetic overflow in debug builds if the
        // span were computed with a checked `+ 1`.
        let _: u64 = rng.gen_range(0..=u64::MAX);
        let v: u8 = rng.gen_range(0..=u8::MAX);
        let _ = v;
        assert_eq!(rng.gen_range(5u32..=5), 5);
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng64::seed_from_u64(42);
        let mut b = Rng64::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng64::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Rng64::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0u32..=4);
            assert!(w <= 4);
        }
    }

    #[test]
    fn bernoulli_extremes() {
        let mut rng = Rng64::seed_from_u64(1);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn bernoulli_is_roughly_fair() {
        let mut rng = Rng64::seed_from_u64(5);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4000..6000).contains(&heads), "{heads}");
    }

    #[test]
    fn chars_are_valid_scalars() {
        let mut rng = Rng64::seed_from_u64(9);
        for _ in 0..1000 {
            let c = rng.gen_char();
            assert!(char::from_u32(c as u32).is_some());
        }
    }

    #[test]
    fn alphabet_strings_use_only_the_alphabet() {
        let mut rng = Rng64::seed_from_u64(11);
        for _ in 0..200 {
            let s = rng.gen_string_from("abc", 8);
            assert!(s.len() <= 8);
            assert!(s.chars().all(|c| "abc".contains(c)), "{s:?}");
        }
    }
}
