//! The evaluation grammar suite: six substantial grammars standing in for
//! the paper's benchmark grammars (Figure 12), plus deterministic input
//! generators standing in for its sample inputs (Figure 13).
//!
//! | Paper grammar | Suite analog | Mode |
//! |---|---|---|
//! | Java1.5 | [`java`] | PEG mode |
//! | RatsC | [`c`] | PEG mode |
//! | RatsJava | [`ratsjava`] | PEG mode |
//! | VB.NET | [`vb`] | manual predicates |
//! | TSQL | [`sql`] | manual predicates |
//! | C# | [`csharp`] | manual predicates |

#![warn(missing_docs)]

pub mod c;
pub mod common;
pub mod csharp;
pub mod derivation;
pub mod gauntlet;
pub mod java;
pub mod ratsjava;
pub mod sql;
pub mod vb;

use llstar_grammar::{apply_peg_mode, parse_grammar, Grammar};

pub use derivation::sample_sentence;

/// One benchmark grammar with its generator.
#[derive(Clone, Copy)]
pub struct SuiteEntry {
    /// Short name used in tables (matches the paper's Figure 12 role).
    pub name: &'static str,
    /// The grammar source text.
    pub source: &'static str,
    /// The rule parsing starts from.
    pub start_rule: &'static str,
    /// Generates an input program of roughly this many lines.
    pub generate: fn(usize, u64) -> String,
}

impl SuiteEntry {
    /// Parses and prepares the grammar (PEG mode applied when the grammar
    /// requests it).
    ///
    /// # Panics
    /// Panics if the bundled grammar fails to parse (a bug in this crate).
    pub fn load(&self) -> Grammar {
        let g = parse_grammar(self.source)
            .unwrap_or_else(|e| panic!("bundled grammar {} is invalid: {e}", self.name));
        apply_peg_mode(g)
    }

    /// Number of non-empty lines in the grammar source (the paper's
    /// Table 1 "Lines" column).
    pub fn grammar_lines(&self) -> usize {
        self.source.lines().filter(|l| !l.trim().is_empty()).count()
    }
}

impl std::fmt::Debug for SuiteEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SuiteEntry").field("name", &self.name).finish()
    }
}

/// All six benchmark grammars, in the paper's Table 1 order.
pub fn all() -> Vec<SuiteEntry> {
    vec![
        SuiteEntry {
            name: "Java",
            source: java::GRAMMAR,
            start_rule: java::START_RULE,
            generate: java::generate,
        },
        SuiteEntry {
            name: "RatsC",
            source: c::GRAMMAR,
            start_rule: c::START_RULE,
            generate: c::generate,
        },
        SuiteEntry {
            name: "RatsJava",
            source: ratsjava::GRAMMAR,
            start_rule: ratsjava::START_RULE,
            generate: ratsjava::generate,
        },
        SuiteEntry {
            name: "VB",
            source: vb::GRAMMAR,
            start_rule: vb::START_RULE,
            generate: vb::generate,
        },
        SuiteEntry {
            name: "SQL",
            source: sql::GRAMMAR,
            start_rule: sql::START_RULE,
            generate: sql::generate,
        },
        SuiteEntry {
            name: "CSharp",
            source: csharp::GRAMMAR,
            start_rule: csharp::START_RULE,
            generate: csharp::generate,
        },
    ]
}

/// Looks a suite grammar up by name.
pub fn by_name(name: &str) -> Option<SuiteEntry> {
    all().into_iter().find(|e| e.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_six_load_and_validate() {
        let entries = all();
        assert_eq!(entries.len(), 6);
        for e in entries {
            let g = e.load();
            assert!(g.rule_by_name(e.start_rule).is_some(), "{}: start rule", e.name);
            let errors: Vec<_> = llstar_grammar::validate(&g)
                .into_iter()
                .filter(llstar_grammar::GrammarIssue::is_error)
                .collect();
            assert!(errors.is_empty(), "{}: {errors:?}", e.name);
            assert!(e.grammar_lines() > 20, "{}: suspiciously small", e.name);
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("Java").is_some());
        assert!(by_name("SQL").is_some());
        assert!(by_name("Cobol").is_none());
    }

    #[test]
    fn generators_emit_requested_size() {
        for e in all() {
            let src = (e.generate)(60, 3);
            assert!(src.lines().count() >= 50, "{}: only {} lines", e.name, src.lines().count());
        }
    }
}
