//! The C#-like benchmark grammar (the paper's `C#` analog: a commercial
//! grammar with manual syntactic predicates on the few genuinely
//! ambiguous-prefix decisions) and its program generator.
//!
//! The characteristic decision: class members share the prefix
//! `modifier* type ID`, and only the *next* token distinguishes fields
//! (`= ;`), methods (`(`), and properties (`{`) — across arbitrarily long
//! qualified types, which is exactly the shape that needs cyclic lookahead
//! or a predicate.

use crate::common::CodeGen;

/// The grammar source (manual predicates, no PEG mode).
pub const GRAMMAR: &str = r#"
grammar CSharp;

compilationUnit : usingDirective* namespaceDecl* EOF ;
usingDirective : 'using' qualifiedName ';' ;
namespaceDecl : 'namespace' qualifiedName '{' typeDecl* '}' ;
typeDecl : classDecl | structDecl | enumDecl ;
classDecl : modifier* 'class' ID (':' qualifiedName (',' qualifiedName)*)? '{' member* '}' ;
structDecl : modifier* 'struct' ID '{' member* '}' ;
enumDecl : modifier* 'enum' ID '{' ID (',' ID)* '}' ;
modifier
    : 'public' | 'private' | 'protected' | 'internal' | 'static'
    | 'sealed' | 'override' | 'virtual' | 'readonly'
    ;
member
    : (modifier* typ ID '{')=> propertyDecl
    | (modifier* ('void' | typ) ID '(')=> methodDecl
    | fieldDecl
    | classDecl
    ;
propertyDecl : modifier* typ ID '{' accessor+ '}' ;
accessor : ('get' | 'set') (block | ';') ;
methodDecl : modifier* ('void' | typ) ID '(' params? ')' (block | ';') ;
fieldDecl : modifier* typ ID ('=' expression)? ';' ;
params : param (',' param)* ;
param : ('ref' | 'out')? typ ID ;
qualifiedName : ID ('.' ID)* ;
typ : (qualifiedName | builtinType) ('[' ']')* ('?')? ;
builtinType : 'int' | 'bool' | 'string' | 'double' | 'char' | 'long' | 'object' ;

block : '{' statement* '}' ;
statement
    : block
    | 'if' '(' expression ')' statement ('else' statement)?
    | 'while' '(' expression ')' statement
    | 'for' '(' forInit? ';' expression? ';' expression? ')' statement
    | 'foreach' '(' typ ID 'in' expression ')' statement
    | 'return' expression? ';'
    | 'throw' expression ';'
    | 'break' ';'
    | 'continue' ';'
    | (typ ID)=> localVarDecl ';'
    | expression ';'
    | ';'
    ;
forInit : (typ ID)=> localVarDecl | expressionList ;
localVarDecl : typ ID ('=' expression)? (',' ID ('=' expression)?)* ;
expressionList : expression (',' expression)* ;

expression : conditional (assignOp expression)? ;
assignOp : '=' | '+=' | '-=' | '*=' ;
conditional : nullCoalesce ('?' expression ':' conditional)? ;
nullCoalesce : logicalOr ('??' logicalOr)* ;
logicalOr : logicalAnd ('||' logicalAnd)* ;
logicalAnd : equality ('&&' equality)* ;
equality : relational (('==' | '!=') relational)* ;
relational : additive (('<' | '>' | '<=' | '>=' | 'is' | 'as') additive)* ;
additive : multiplicative (('+' | '-') multiplicative)* ;
multiplicative : unary (('*' | '/' | '%') unary)* ;
unary : ('!' | '-' | '++' | '--') unary | postfix ;
postfix : primary postfixOp* ;
postfixOp : '.' ID arguments? | '[' expression ']' | arguments | '++' | '--' ;
arguments : '(' argument (',' argument)* ')' | '(' ')' ;
argument : ('ref' | 'out')? expression ;
primary
    : '(' expression ')'
    | literal
    | 'new' creator
    | 'typeof' '(' typ ')'
    | ID
    ;
creator : qualifiedName arguments | qualifiedName '[' expression ']' ;
literal : INT | FLOAT | STRING | CHARLIT | 'true' | 'false' | 'null' | 'this' | 'base' ;

ID : [a-zA-Z_] [a-zA-Z0-9_]* ;
FLOAT : [0-9]+ '.' [0-9]+ ;
INT : [0-9]+ ;
STRING : '"' (~["\\\n] | '\\' .)* '"' ;
CHARLIT : '\'' (~['\\\n] | '\\' .) '\'' ;
WS : [ \t\r\n]+ -> skip ;
LINE_COMMENT : '//' (~[\n])* -> skip ;
COMMENT : '/*' ((~[*])* '*'+ ~[*/])* (~[*])* '*'+ '/' -> skip ;
"#;

/// The start rule.
pub const START_RULE: &str = "compilationUnit";

/// Generates a C#-like program of roughly `target_lines` lines.
pub fn generate(target_lines: usize, seed: u64) -> String {
    let mut g = CodeGen::new(seed);
    g.line("using System;");
    g.line("using System.Collections.Generic;");
    g.line("");
    g.line("namespace Generated.Bench {");
    let mut class_no = 0;
    g.indented(|g| {
        while g.lines_emitted() < target_lines.saturating_sub(1) {
            class_no += 1;
            emit_class(g, class_no);
            g.line("");
        }
    });
    g.line("}");
    g.finish()
}

fn cs_type(g: &mut CodeGen) -> String {
    g.pick(&["int", "bool", "string", "double", "System.Object", "Widget1", "long"]).to_string()
}

fn emit_class(g: &mut CodeGen, n: usize) {
    g.line(&format!("public sealed class Widget{n} {{"));
    g.indented(|g| {
        for _ in 0..1 + g.below(3) {
            let ty = cs_type(g);
            let name = g.ident();
            let e = expression(g, 1);
            g.line(&format!("private {ty} {name} = {e};"));
        }
        // Properties — the construct that motivates the member synpreds.
        for _ in 0..1 + g.below(2) {
            let ty = cs_type(g);
            let name = g.fresh("Prop");
            g.line(&format!("public {ty} {name} {{ get; set; }}"));
        }
        for i in 0..2 + g.below(3) {
            emit_method(g, i);
        }
    });
    g.line("}");
}

fn emit_method(g: &mut CodeGen, i: usize) {
    let ret = if g.chance(0.4) { "void".to_string() } else { cs_type(g) };
    let nparams = g.below(3);
    let params: Vec<String> =
        (0..nparams).map(|_| format!("{} {}", cs_type(g), g.ident())).collect();
    g.line(&format!("public {ret} Method{i}({}) {{", params.join(", ")));
    g.indented(|g| {
        for _ in 0..2 + g.below(5) {
            emit_statement(g, 2);
        }
        if ret != "void" {
            let e = expression(g, 1);
            g.line(&format!("return {e};"));
        }
    });
    g.line("}");
}

fn emit_statement(g: &mut CodeGen, depth: usize) {
    if depth == 0 {
        let e = expression(g, 1);
        g.line(&format!("{e};"));
        return;
    }
    match g.below(8) {
        0 => {
            let ty = cs_type(g);
            let name = g.fresh("local");
            let e = expression(g, depth - 1);
            g.line(&format!("{ty} {name} = {e};"));
        }
        1 => {
            let c = expression(g, 1);
            g.line(&format!("if ({c}) {{"));
            g.indented(|g| emit_statement(g, depth - 1));
            if g.chance(0.4) {
                g.line("} else {");
                g.indented(|g| emit_statement(g, depth - 1));
            }
            g.line("}");
        }
        2 => {
            let c = expression(g, 1);
            g.line(&format!("while ({c}) {{"));
            g.indented(|g| {
                emit_statement(g, depth - 1);
                g.line("break;");
            });
            g.line("}");
        }
        3 => {
            let item = g.fresh("item");
            let coll = g.ident();
            g.line(&format!("foreach (int {item} in {coll}) {{"));
            g.indented(|g| emit_statement(g, depth - 1));
            g.line("}");
        }
        4 => {
            let lhs = g.ident();
            let rhs = expression(g, depth - 1);
            g.line(&format!("{lhs} = {rhs};"));
        }
        5 => {
            let recv = g.ident();
            let arg = expression(g, depth - 1);
            g.line(&format!("{recv}.Update({arg});"));
        }
        6 => {
            let e = expression(g, depth - 1);
            g.line(&format!("throw {e};"));
        }
        _ => {
            let e = expression(g, depth - 1);
            g.line(&format!("{e};"));
        }
    }
}

fn expression(g: &mut CodeGen, depth: usize) -> String {
    if depth == 0 {
        return primary(g);
    }
    match g.below(9) {
        0 => format!("{} + {}", expression(g, depth - 1), primary(g)),
        1 => format!("{} * {}", primary(g), expression(g, depth - 1)),
        2 => format!("{} == {}", primary(g), primary(g)),
        3 => format!("{} && {}", expression(g, depth - 1), expression(g, depth - 1)),
        4 => format!("({})", expression(g, depth - 1)),
        5 => format!("{} ?? {}", primary(g), primary(g)),
        6 => format!("{} is Widget1", primary(g)),
        7 => "typeof(System.Object)".to_string(),
        _ => format!("{}.Compute({})", g.ident(), primary(g)),
    }
}

fn primary(g: &mut CodeGen) -> String {
    match g.below(6) {
        0 => g.int_lit(),
        1 => g.ident(),
        2 => g.str_lit(),
        3 => "true".to_string(),
        4 => format!("new Widget1({})", g.int_lit()),
        _ => format!("{}.{}", g.ident(), g.ident()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grammar_loads_and_validates() {
        let g = llstar_grammar::parse_grammar(GRAMMAR).unwrap();
        assert!(!g.options.backtrack);
        assert!(g.synpreds.len() >= 3, "manual member/decl predicates present");
        let errors: Vec<_> = llstar_grammar::validate(&g)
            .into_iter()
            .filter(llstar_grammar::GrammarIssue::is_error)
            .collect();
        assert!(errors.is_empty(), "{errors:?}");
    }

    #[test]
    fn generated_program_lexes() {
        let g = llstar_grammar::parse_grammar(GRAMMAR).unwrap();
        let scanner = g.lexer.build().unwrap();
        let src = generate(60, 17);
        assert!(scanner.tokenize(&src).is_ok());
    }
}
