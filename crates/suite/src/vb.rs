//! The VB-like benchmark grammar (the paper's `VB.NET` analog: a
//! commercial grammar whose decisions are almost entirely keyword-driven
//! LL(1), with a couple of manual predicates) and its program generator.

use crate::common::CodeGen;

/// The grammar source.
pub const GRAMMAR: &str = r#"
grammar Vb;

program : moduleDecl* EOF ;
moduleDecl : 'module' ID memberDecl* 'end' 'module' ;
memberDecl
    : fieldDecl
    | subDecl
    | functionDecl
    ;
fieldDecl : visibility? 'dim' ID 'as' typeName ('=' expr)? ;
visibility : 'public' | 'private' | 'friend' ;
subDecl : visibility? 'sub' ID '(' paramList? ')' statement* 'end' 'sub' ;
functionDecl
    : visibility? 'function' ID '(' paramList? ')' 'as' typeName
      statement* 'end' 'function' ;
paramList : param (',' param)* ;
param : ('byval' | 'byref')? ID 'as' typeName ;
typeName : 'integer' | 'long' | 'double' | 'string' | 'boolean' | 'object' | ID ;

statement
    : 'dim' ID 'as' typeName ('=' expr)?
    | 'if' expr 'then' statement* elseIfClause* elseClause? 'end' 'if'
    | 'while' expr statement* 'end' 'while'
    | 'for' ID '=' expr 'to' expr ('step' expr)? statement* 'next'
    | 'do' statement* 'loop' ('while' | 'until') expr
    | 'select' 'case' expr caseClause* 'end' 'select'
    | 'call' ID '(' argList? ')'
    | 'return' expr?
    | 'exit' ('sub' | 'function' | 'while' | 'for')
    | assignment
    ;
elseIfClause : 'elseif' expr 'then' statement* ;
elseClause : 'else' statement* ;
caseClause : 'case' ('else' | expr (',' expr)*) statement* ;
assignment : lvalue '=' expr ;
lvalue : ID ('.' ID | '(' argList? ')')* ;
argList : expr (',' expr)* ;

expr : orExpr ;
orExpr : andExpr (('or' | 'orelse') andExpr)* ;
andExpr : notExpr (('and' | 'andalso') notExpr)* ;
notExpr : 'not' notExpr | relExpr ;
relExpr : concatExpr (('=' | '<>' | '<' | '>' | '<=' | '>=') concatExpr)? ;
concatExpr : addExpr ('&' addExpr)* ;
addExpr : mulExpr (('+' | '-') mulExpr)* ;
mulExpr : unaryExpr (('*' | '/' | '\\' | 'mod') unaryExpr)* ;
unaryExpr : '-' unaryExpr | postfixExpr ;
postfixExpr : primary ('.' ID ('(' argList? ')')? | '(' argList? ')')* ;
primary
    : INT | FLOAT | STRING
    | 'true' | 'false' | 'nothing' | 'me'
    | 'new' ID '(' argList? ')'
    | ID
    | '(' expr ')'
    ;

ID : [a-zA-Z_] [a-zA-Z0-9_]* ;
FLOAT : [0-9]+ '.' [0-9]+ ;
INT : [0-9]+ ;
STRING : '"' (~["\n])* '"' ;
WS : [ \t\r\n]+ -> skip ;
COMMENT : '\u{27}' (~[\n])* -> skip ;
"#;

/// The start rule.
pub const START_RULE: &str = "program";

/// Generates a VB-like program of roughly `target_lines` lines.
pub fn generate(target_lines: usize, seed: u64) -> String {
    let mut g = CodeGen::new(seed);
    let mut module_no = 0;
    while g.lines_emitted() < target_lines {
        module_no += 1;
        g.line(&format!("module Mod{module_no}"));
        g.indented(|g| {
            let fields = 1 + g.below(3);
            for _ in 0..fields {
                let name = g.ident();
                let ty = vb_type(g);
                let e = expr(g, 1);
                g.line(&format!("private dim {name} as {ty} = {e}"));
            }
            let subs = 2 + g.below(3);
            for i in 0..subs {
                emit_sub(g, i);
            }
        });
        g.line("end module");
        g.line("");
    }
    g.finish()
}

fn vb_type(g: &mut CodeGen) -> String {
    g.pick(&["integer", "long", "double", "string", "boolean"]).to_string()
}

fn emit_sub(g: &mut CodeGen, i: usize) {
    let is_function = g.chance(0.5);
    let name = format!("proc{i}");
    let nparams = g.below(3);
    let params: Vec<String> =
        (0..nparams).map(|_| format!("byval {} as {}", g.ident(), vb_type(g))).collect();
    if is_function {
        let ret = vb_type(g);
        g.line(&format!("public function {name}({}) as {ret}", params.join(", ")));
    } else {
        g.line(&format!("public sub {name}({})", params.join(", ")));
    }
    g.indented(|g| {
        let stmts = 2 + g.below(6);
        for _ in 0..stmts {
            emit_statement(g, 2);
        }
        if is_function {
            let e = expr(g, 1);
            g.line(&format!("return {e}"));
        }
    });
    g.line(if is_function { "end function" } else { "end sub" });
}

fn emit_statement(g: &mut CodeGen, depth: usize) {
    if depth == 0 {
        let lhs = g.ident();
        let rhs = expr(g, 1);
        g.line(&format!("{lhs} = {rhs}"));
        return;
    }
    match g.below(8) {
        0 => {
            let name = g.fresh("v");
            let ty = vb_type(g);
            let e = expr(g, depth - 1);
            g.line(&format!("dim {name} as {ty} = {e}"));
        }
        1 => {
            let c = expr(g, 1);
            g.line(&format!("if {c} then"));
            g.indented(|g| emit_statement(g, depth - 1));
            if g.chance(0.5) {
                g.line("else");
                g.indented(|g| emit_statement(g, depth - 1));
            }
            g.line("end if");
        }
        2 => {
            let c = expr(g, 1);
            g.line(&format!("while {c}"));
            g.indented(|g| {
                emit_statement(g, depth - 1);
                g.line("exit while");
            });
            g.line("end while");
        }
        3 => {
            let i = g.fresh("i");
            let bound = g.int_lit();
            g.line(&format!("for {i} = 1 to {bound}"));
            g.indented(|g| emit_statement(g, depth - 1));
            g.line("next");
        }
        4 => {
            let f = g.ident();
            let a = expr(g, depth - 1);
            g.line(&format!("call {f}({a})"));
        }
        6 => {
            let c = expr(g, 1);
            g.line("do");
            g.indented(|g| emit_statement(g, depth - 1));
            g.line(&format!("loop until {c}"));
        }
        5 => {
            let e = expr(g, 1);
            g.line(&format!("select case {e}"));
            g.indented(|g| {
                let label = g.int_lit();
                g.line(&format!("case {label}"));
                g.indented(|g| emit_statement(g, depth - 1));
                g.line("case else");
                g.indented(|g| emit_statement(g, depth - 1));
            });
            g.line("end select");
        }
        _ => {
            let lhs = g.ident();
            let rhs = expr(g, depth - 1);
            g.line(&format!("{lhs} = {rhs}"));
        }
    }
}

fn expr(g: &mut CodeGen, depth: usize) -> String {
    if depth == 0 {
        return atom(g);
    }
    match g.below(6) {
        0 => format!("{} + {}", expr(g, depth - 1), atom(g)),
        1 => format!("{} * {}", atom(g), expr(g, depth - 1)),
        2 => format!("{} < {}", atom(g), atom(g)),
        3 => format!("{} andalso {}", expr(g, depth - 1), expr(g, depth - 1)),
        4 => format!("({})", expr(g, depth - 1)),
        _ => format!("{} & {}", atom(g), atom(g)),
    }
}

fn atom(g: &mut CodeGen) -> String {
    match g.below(5) {
        0 => g.int_lit(),
        1 => g.ident(),
        2 => g.str_lit(),
        3 => "true".to_string(),
        _ => format!("{}.{}", g.ident(), g.ident()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grammar_loads_and_validates() {
        let g = llstar_grammar::parse_grammar(GRAMMAR).unwrap();
        let errors: Vec<_> = llstar_grammar::validate(&g)
            .into_iter()
            .filter(llstar_grammar::GrammarIssue::is_error)
            .collect();
        assert!(errors.is_empty(), "{errors:?}");
    }

    #[test]
    fn generated_program_lexes() {
        let g = llstar_grammar::parse_grammar(GRAMMAR).unwrap();
        let scanner = g.lexer.build().unwrap();
        let src = generate(60, 11);
        assert!(scanner.tokenize(&src).is_ok());
    }
}
