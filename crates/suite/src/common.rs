//! Shared machinery for the synthetic input generators.
//!
//! Each suite grammar has a deterministic, seeded program generator.
//! Generators substitute for the paper's sample inputs (JDK sources,
//! Microsoft sample code): they produce syntactically valid programs with
//! the same kinds of constructs those inputs exercise.

use llstar_rng::Rng64;

/// A seeded source-code emitter with indentation tracking.
pub struct CodeGen {
    rng: Rng64,
    out: String,
    indent: usize,
    ident_counter: u64,
}

impl CodeGen {
    /// A generator with the given seed (same seed ⇒ same program).
    pub fn new(seed: u64) -> Self {
        CodeGen { rng: Rng64::seed_from_u64(seed), out: String::new(), indent: 0, ident_counter: 0 }
    }

    /// The random source.
    pub fn rng(&mut self) -> &mut Rng64 {
        &mut self.rng
    }

    /// Random integer in `[0, bound)`.
    pub fn below(&mut self, bound: usize) -> usize {
        self.rng.gen_range(0..bound)
    }

    /// True with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.rng.gen_bool(p)
    }

    /// Picks one of `items` uniformly.
    pub fn pick<'a, T: ?Sized>(&mut self, items: &'a [&'a T]) -> &'a T {
        items[self.rng.gen_range(0..items.len())]
    }

    /// A fresh unique identifier with the given prefix.
    pub fn fresh(&mut self, prefix: &str) -> String {
        self.ident_counter += 1;
        format!("{prefix}{}", self.ident_counter)
    }

    /// A plausible identifier (sometimes fresh, sometimes from a pool).
    pub fn ident(&mut self) -> String {
        const POOL: &[&str] = &[
            "value", "count", "item", "result", "index", "name", "total", "node", "size", "left",
            "right", "data", "key", "flag", "tmp",
        ];
        if self.chance(0.3) {
            self.fresh("v")
        } else {
            POOL[self.rng.gen_range(0..POOL.len())].to_string()
        }
    }

    /// A small integer literal.
    pub fn int_lit(&mut self) -> String {
        self.rng.gen_range(0..1000u32).to_string()
    }

    /// A short string literal (no escapes).
    pub fn str_lit(&mut self) -> String {
        const WORDS: &[&str] = &["alpha", "beta", "gamma", "delta", "omega"];
        format!("\"{}\"", WORDS[self.rng.gen_range(0..WORDS.len())])
    }

    /// Writes a full line at the current indentation.
    pub fn line(&mut self, text: &str) {
        for _ in 0..self.indent {
            self.out.push_str("    ");
        }
        self.out.push_str(text);
        self.out.push('\n');
    }

    /// Runs `body` one indentation level deeper.
    pub fn indented(&mut self, body: impl FnOnce(&mut Self)) {
        self.indent += 1;
        body(self);
        self.indent -= 1;
    }

    /// Number of lines emitted so far.
    pub fn lines_emitted(&self) -> usize {
        self.out.lines().count()
    }

    /// Number of bytes emitted so far (the gauntlet generators target
    /// corpus sizes in bytes, not lines).
    pub fn bytes_emitted(&self) -> usize {
        self.out.len()
    }

    /// Finishes generation, returning the program text.
    pub fn finish(self) -> String {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mk = |seed| {
            let mut g = CodeGen::new(seed);
            for _ in 0..20 {
                let id = g.ident();
                let n = g.int_lit();
                g.line(&format!("{id} = {n};"));
            }
            g.finish()
        };
        assert_eq!(mk(7), mk(7));
        assert_ne!(mk(7), mk(8));
    }

    #[test]
    fn indentation_nests() {
        let mut g = CodeGen::new(0);
        g.line("a");
        g.indented(|g| {
            g.line("b");
            g.indented(|g| g.line("c"));
        });
        g.line("d");
        assert_eq!(g.finish(), "a\n    b\n        c\nd\n");
    }

    #[test]
    fn fresh_identifiers_are_unique() {
        let mut g = CodeGen::new(0);
        let a = g.fresh("x");
        let b = g.fresh("x");
        assert_ne!(a, b);
    }

    #[test]
    fn lines_emitted_counts() {
        let mut g = CodeGen::new(0);
        assert_eq!(g.lines_emitted(), 0);
        g.line("one");
        g.line("two");
        assert_eq!(g.lines_emitted(), 2);
    }
}
