//! The Java-like benchmark grammar (the paper's `Java1.5` analog: a
//! native grammar run in PEG mode) and its program generator.

use crate::common::CodeGen;

/// The grammar source. PEG mode (`backtrack = true; memoize = true;`),
/// matching how the paper's Java 1.5 grammar is configured (Figure 12).
pub const GRAMMAR: &str = r#"
grammar Java;
options { backtrack = true; memoize = true; }

compilationUnit : packageDecl? importDecl* typeDecl* EOF ;
packageDecl : 'package' qualifiedName ';' ;
importDecl : 'import' qualifiedName ('.' '*')? ';' ;
typeDecl : classDecl | interfaceDecl ;
classDecl
    : modifier* 'class' ID ('extends' qualifiedName)?
      ('implements' qualifiedName (',' qualifiedName)*)? classBody ;
interfaceDecl : modifier* 'interface' ID classBody ;
classBody : '{' member* '}' ;
member : fieldDecl | methodDecl | classDecl ;
fieldDecl : modifier* typ varDeclarator (',' varDeclarator)* ';' ;
varDeclarator : ID ('=' expression)? ;
methodDecl
    : modifier* ('void' | typ) ID '(' params? ')' (block | ';') ;
params : param (',' param)* ;
param : typ ID ;
modifier : 'public' | 'private' | 'protected' | 'static' | 'final' | 'abstract' ;
qualifiedName : ID ('.' ID)* ;
typ : (qualifiedName | primitiveType) ('[' ']')* ;
primitiveType : 'int' | 'boolean' | 'char' | 'long' | 'double' ;

block : '{' statement* '}' ;
statement
    : block
    | 'if' parExpression statement ('else' statement)?
    | 'while' parExpression statement
    | 'for' '(' forInit? ';' expression? ';' expression? ')' statement
    | 'do' statement 'while' parExpression ';'
    | 'switch' parExpression '{' switchCase* '}'
    | 'return' expression? ';'
    | 'throw' expression ';'
    | 'break' ';'
    | 'continue' ';'
    | localVarDecl ';'
    | expression ';'
    | ';'
    ;
switchCase : ('case' expression | 'default') ':' statement* ;
forInit : localVarDecl | expressionList ;
localVarDecl : 'final'? typ varDeclarator (',' varDeclarator)* ;
parExpression : '(' expression ')' ;
expressionList : expression (',' expression)* ;

expression : conditional (assignOp expression)? ;
assignOp : '=' | '+=' | '-=' | '*=' ;
conditional : logicalOr ('?' expression ':' conditional)? ;
logicalOr : logicalAnd ('||' logicalAnd)* ;
logicalAnd : equality ('&&' equality)* ;
equality : relational (('==' | '!=') relational)* ;
relational : additive (('<' | '>' | '<=' | '>=') additive | 'instanceof' typ)* ;
additive : multiplicative (('+' | '-') multiplicative)* ;
multiplicative : unary (('*' | '/' | '%') unary)* ;
unary : ('!' | '-' | '++' | '--') unary | ('(' primitiveType ')')=> '(' primitiveType ')' unary | postfix ;
postfix : primary postfixOp* ;
postfixOp : '.' ID arguments? | '[' expression ']' | arguments | '++' | '--' ;
arguments : '(' expressionList? ')' ;
primary
    : parExpression
    | literal
    | 'new' creator
    | ID
    ;
creator : qualifiedName arguments | qualifiedName '[' expression ']' ;
literal : INT | FLOAT | STRING | CHARLIT | 'true' | 'false' | 'null' | 'this' ;

ID : [a-zA-Z_$] [a-zA-Z0-9_$]* ;
FLOAT : [0-9]+ '.' [0-9]+ ;
INT : [0-9]+ ;
STRING : '"' (~["\\\n] | '\\' .)* '"' ;
CHARLIT : '\'' (~['\\\n] | '\\' .) '\'' ;
WS : [ \t\r\n]+ -> skip ;
LINE_COMMENT : '//' (~[\n])* -> skip ;
COMMENT : '/*' ((~[*])* '*'+ ~[*/])* (~[*])* '*'+ '/' -> skip ;
"#;

/// The start rule.
pub const START_RULE: &str = "compilationUnit";

/// Generates a Java-like program of roughly `target_lines` lines.
pub fn generate(target_lines: usize, seed: u64) -> String {
    let mut g = CodeGen::new(seed);
    g.line("package com.example.generated;");
    g.line("import java.util.List;");
    g.line("import java.io.*;");
    g.line("");
    let mut class_no = 0;
    while g.lines_emitted() < target_lines {
        class_no += 1;
        emit_class(&mut g, class_no);
        g.line("");
    }
    g.finish()
}

fn emit_class(g: &mut CodeGen, n: usize) {
    let name = format!("Widget{n}");
    let extends = if g.chance(0.3) { " extends base.Object" } else { "" };
    g.line(&format!("public class {name}{extends} {{"));
    g.indented(|g| {
        let fields = 2 + g.below(3);
        for _ in 0..fields {
            emit_field(g);
        }
        let methods = 2 + g.below(4);
        for i in 0..methods {
            emit_method(g, i);
        }
    });
    g.line("}");
}

fn type_name(g: &mut CodeGen) -> String {
    let base = g
        .pick(&["int", "boolean", "double", "String", "java.util.List", "Widget1", "char"])
        .to_string();
    if g.chance(0.15) {
        format!("{base}[]")
    } else {
        base
    }
}

fn emit_field(g: &mut CodeGen) {
    let modifier = g.pick(&["private", "public", "protected", "private static", "public final"]);
    let ty = type_name(g);
    let name = g.ident();
    if g.chance(0.6) {
        let init = expression(g, 2);
        g.line(&format!("{modifier} {ty} {name} = {init};"));
    } else {
        g.line(&format!("{modifier} {ty} {name};"));
    }
}

fn emit_method(g: &mut CodeGen, i: usize) {
    let modifier = g.pick(&["public", "private", "public static", "protected final"]);
    let ret = if g.chance(0.4) { "void".to_string() } else { type_name(g) };
    let name = format!("method{i}");
    let nparams = g.below(3);
    let params: Vec<String> =
        (0..nparams).map(|_| format!("{} {}", type_name(g), g.ident())).collect();
    g.line(&format!("{modifier} {ret} {name}({}) {{", params.join(", ")));
    g.indented(|g| {
        let stmts = 2 + g.below(6);
        for _ in 0..stmts {
            emit_statement(g, 2);
        }
        if ret != "void" {
            let e = expression(g, 2);
            g.line(&format!("return {e};"));
        }
    });
    g.line("}");
}

fn emit_statement(g: &mut CodeGen, depth: usize) {
    if depth == 0 {
        let e = expression(g, 1);
        g.line(&format!("{e};"));
        return;
    }
    match g.below(10) {
        0 => {
            // Local declaration — the construct that stresses the
            // decl-vs-expression decision.
            let ty = type_name(g);
            let name = g.fresh("local");
            let init = expression(g, depth - 1);
            g.line(&format!("{ty} {name} = {init};"));
        }
        1 => {
            let c = expression(g, 1);
            g.line(&format!("if ({c}) {{"));
            g.indented(|g| emit_statement(g, depth - 1));
            if g.chance(0.4) {
                g.line("} else {");
                g.indented(|g| emit_statement(g, depth - 1));
            }
            g.line("}");
        }
        2 => {
            let c = expression(g, 1);
            g.line(&format!("while ({c}) {{"));
            g.indented(|g| {
                emit_statement(g, depth - 1);
                if g.chance(0.5) {
                    g.line("break;");
                }
            });
            g.line("}");
        }
        3 => {
            let i = g.fresh("i");
            let bound = g.int_lit();
            g.line(&format!("for (int {i} = 0; {i} < {bound}; {i}++) {{"));
            g.indented(|g| emit_statement(g, depth - 1));
            g.line("}");
        }
        4 => {
            let lhs = g.ident();
            let rhs = expression(g, depth - 1);
            g.line(&format!("{lhs} = {rhs};"));
        }
        5 => {
            let recv = g.ident();
            let arg = expression(g, depth - 1);
            g.line(&format!("{recv}.update({arg});"));
        }
        7 => {
            let scrutinee = g.ident();
            g.line(&format!("switch ({scrutinee}) {{"));
            g.indented(|g| {
                let a = g.int_lit();
                g.line(&format!("case {a}:"));
                g.indented(|g| {
                    emit_statement(g, depth - 1);
                    g.line("break;");
                });
                g.line("default:");
                g.indented(|g| emit_statement(g, depth - 1));
            });
            g.line("}");
        }
        8 => {
            let c = expression(g, 1);
            g.line("do {");
            g.indented(|g| emit_statement(g, depth - 1));
            g.line(&format!("}} while ({c});"));
        }
        6 => {
            let ty = type_name(g);
            let a = g.fresh("a");
            let b = g.fresh("b");
            let (x, y) = (g.int_lit(), g.int_lit());
            g.line(&format!("{ty} {a} = {x}, {b} = {y};"));
        }
        _ => {
            let e = expression(g, depth - 1);
            g.line(&format!("{e};"));
        }
    }
}

fn expression(g: &mut CodeGen, depth: usize) -> String {
    if depth == 0 {
        return primary(g);
    }
    match g.below(9) {
        0 => format!("{} + {}", expression(g, depth - 1), expression(g, depth - 1)),
        7 => format!("({} instanceof Widget1)", primary(g)),
        8 => format!("(int) {}", primary(g)),
        1 => format!("{} * {}", primary(g), expression(g, depth - 1)),
        2 => format!("{} == {}", expression(g, depth - 1), primary(g)),
        3 => format!("{} && {}", expression(g, depth - 1), expression(g, depth - 1)),
        4 => format!("({})", expression(g, depth - 1)),
        5 => {
            let callee = g.ident();
            let arg = expression(g, depth - 1);
            format!("{callee}.compute({arg})")
        }
        _ => primary(g),
    }
}

fn primary(g: &mut CodeGen) -> String {
    match g.below(6) {
        0 => g.int_lit(),
        1 => g.ident(),
        2 => g.str_lit(),
        3 => "true".to_string(),
        4 => format!("new Widget1({})", g.int_lit()),
        _ => format!("{}.{}", g.ident(), g.ident()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic_and_sized() {
        let a = generate(120, 42);
        let b = generate(120, 42);
        assert_eq!(a, b);
        assert!(a.lines().count() >= 120, "{} lines", a.lines().count());
    }

    #[test]
    fn grammar_parses() {
        let g = llstar_grammar::parse_grammar(GRAMMAR).unwrap();
        assert_eq!(g.name, "Java");
        assert!(g.options.backtrack);
        assert!(g.rule_by_name(START_RULE).is_some());
        let issues: Vec<_> = llstar_grammar::validate(&g)
            .into_iter()
            .filter(llstar_grammar::GrammarIssue::is_error)
            .collect();
        assert!(issues.is_empty(), "{issues:?}");
    }

    #[test]
    fn generated_program_lexes() {
        let g = llstar_grammar::parse_grammar(GRAMMAR).unwrap();
        let scanner = g.lexer.build().unwrap();
        let src = generate(80, 1);
        let toks = scanner.tokenize(&src).unwrap();
        assert!(toks.len() > 200, "{} tokens", toks.len());
    }
}
