//! Random-derivation sentence sampling: generates strings *guaranteed*
//! to be in a grammar's language by walking random leftmost derivations,
//! used by the cross-engine property tests.

use llstar_grammar::{Alt, Ebnf, Element, Grammar, RuleId};
use llstar_lexer::{Scanner, TokenType};
use llstar_rng::Rng64;
use std::collections::HashMap;

/// Samples a sentence of `grammar` starting from `start_rule` by random
/// derivation, rendering each terminal as text that re-lexes to the same
/// token type. Returns `None` when a token's text cannot be realized
/// (e.g. a terminal with no lexer rule) or nesting exceeds the budget.
pub fn sample_sentence(
    grammar: &Grammar,
    start_rule: &str,
    seed: u64,
    max_depth: usize,
) -> Option<String> {
    let scanner = grammar.lexer.build().ok()?;
    let start = grammar.rule_id(start_rule)?;
    let min_depth = min_depths(grammar);
    let mut sampler = Sampler {
        grammar,
        scanner,
        rng: Rng64::seed_from_u64(seed),
        min_depth,
        token_texts: HashMap::new(),
        lex_seed: seed ^ 0x9e37_79b9_7f4a_7c15,
    };
    let mut parts = Vec::new();
    sampler.rule(start, max_depth, &mut parts)?;
    Some(parts.join(" "))
}

/// Minimum derivation depth per rule (∞ ⇒ the rule cannot terminate,
/// which validation should have prevented).
fn min_depths(grammar: &Grammar) -> Vec<usize> {
    const INF: usize = usize::MAX / 4;
    let n = grammar.rules.len();
    let mut depth = vec![INF; n];
    let mut changed = true;
    while changed {
        changed = false;
        for (i, rule) in grammar.rules.iter().enumerate() {
            let best =
                rule.alts.iter().map(|a| alt_depth(&a.elements, &depth)).min().unwrap_or(INF);
            let best = best.saturating_add(1);
            if best < depth[i] {
                depth[i] = best;
                changed = true;
            }
        }
    }
    depth
}

fn alt_depth(elements: &[Element], depth: &[usize]) -> usize {
    let mut worst = 0usize;
    for e in elements {
        let d = match e {
            Element::Token(_) => 0,
            Element::Rule(r) => depth[r.index()],
            Element::Block(b) => match b.ebnf {
                Ebnf::Star | Ebnf::Optional => 0,
                _ => b
                    .alts
                    .iter()
                    .map(|a| alt_depth(&a.elements, depth))
                    .min()
                    .unwrap_or(usize::MAX / 4),
            },
            _ => 0,
        };
        worst = worst.max(d);
    }
    worst
}

struct Sampler<'g> {
    grammar: &'g Grammar,
    scanner: Scanner,
    rng: Rng64,
    min_depth: Vec<usize>,
    /// Verified sample texts per token type.
    token_texts: HashMap<TokenType, Vec<String>>,
    lex_seed: u64,
}

impl<'g> Sampler<'g> {
    fn rule(&mut self, rule: RuleId, budget: usize, out: &mut Vec<String>) -> Option<()> {
        let alts: Vec<Alt> = self.grammar.rule(rule).alts.clone();
        // Under a tight budget, restrict to the shallowest alternatives.
        let viable: Vec<&Alt> = if budget <= self.min_depth[rule.index()] + 1 {
            let best = alts.iter().map(|a| alt_depth(&a.elements, &self.min_depth)).min()?;
            alts.iter().filter(|a| alt_depth(&a.elements, &self.min_depth) == best).collect()
        } else {
            alts.iter().collect()
        };
        let pick = self.rng.gen_range(0..viable.len());
        let alt = viable[pick].clone();
        self.sequence(&alt.elements, budget.saturating_sub(1), out)
    }

    fn sequence(
        &mut self,
        elements: &[Element],
        budget: usize,
        out: &mut Vec<String>,
    ) -> Option<()> {
        for e in elements {
            self.element(e, budget, out)?;
        }
        Some(())
    }

    fn element(&mut self, e: &Element, budget: usize, out: &mut Vec<String>) -> Option<()> {
        match e {
            Element::Token(t) => {
                if t.is_eof() {
                    return Some(()); // EOF is implicit at the end
                }
                let text = self.token_text(*t)?;
                out.push(text);
                Some(())
            }
            Element::Rule(r) => self.rule(*r, budget, out),
            Element::Block(b) => {
                let reps = match b.ebnf {
                    Ebnf::None => 1,
                    Ebnf::Optional => {
                        if budget == 0 {
                            0
                        } else {
                            self.rng.gen_range(0..=1usize)
                        }
                    }
                    Ebnf::Star => {
                        if budget == 0 {
                            0
                        } else {
                            self.rng.gen_range(0..=2usize)
                        }
                    }
                    Ebnf::Plus => {
                        if budget == 0 {
                            1
                        } else {
                            self.rng.gen_range(1..=2usize)
                        }
                    }
                };
                for _ in 0..reps {
                    let shallow: Vec<&Alt> = if budget <= 1 {
                        let best =
                            b.alts.iter().map(|a| alt_depth(&a.elements, &self.min_depth)).min()?;
                        b.alts
                            .iter()
                            .filter(|a| alt_depth(&a.elements, &self.min_depth) == best)
                            .collect()
                    } else {
                        b.alts.iter().collect()
                    };
                    let pick = self.rng.gen_range(0..shallow.len());
                    let alt = shallow[pick].clone();
                    self.sequence(&alt.elements, budget.saturating_sub(1), out)?;
                }
                Some(())
            }
            // Predicates and actions contribute no terminals; hooks at
            // parse time default to true. (Negated syntactic predicates
            // are not honored by the sampler; grammars using them are not
            // sampled in the test suite.)
            Element::SemPred(_)
            | Element::SynPred(_)
            | Element::NotSynPred(_)
            | Element::Action { .. } => Some(()),
        }
    }

    /// A text for token `t` that re-lexes to exactly `t` (retries a few
    /// samples to dodge keyword capture, e.g. ID sampling "if").
    fn token_text(&mut self, t: TokenType) -> Option<String> {
        if let Some(cached) = self.token_texts.get(&t) {
            if !cached.is_empty() {
                let pick = self.rng.gen_range(0..cached.len());
                return Some(cached[pick].clone());
            }
        }
        // Literals first: their text is exact.
        if let Some((_, lit)) = self.grammar.vocab.literals().find(|&(tt, _)| tt == t) {
            let text = lit.to_string();
            self.token_texts.entry(t).or_default().push(text.clone());
            return Some(text);
        }
        // Named tokens: sample from the lexer rule, verify via the
        // scanner (priority/maximal-munch can reclassify).
        let rule = self.scanner.rules().iter().find(|r| r.ttype == t)?.clone();
        for _ in 0..32 {
            if let Some(text) = rule.rx.sample(&mut self.lex_seed) {
                if text.is_empty() || text.contains(char::is_whitespace) {
                    continue;
                }
                if let Ok(tokens) = self.scanner.tokenize(&text) {
                    if tokens.len() == 2 && tokens[0].ttype == t {
                        self.token_texts.entry(t).or_default().push(text.clone());
                        return Some(text);
                    }
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llstar_grammar::parse_grammar;

    #[test]
    fn samples_relex_and_have_tokens() {
        let g = parse_grammar(
            r#"
            grammar S;
            s : 'if' '(' ID ')' s | ID '=' INT ';' ;
            ID : [a-z]+ ;
            INT : [0-9]+ ;
            WS : [ ]+ -> skip ;
            "#,
        )
        .unwrap();
        for seed in 0..30 {
            let sentence = sample_sentence(&g, "s", seed, 8).expect("sampling succeeds");
            let scanner = g.lexer.build().unwrap();
            assert!(scanner.tokenize(&sentence).is_ok(), "{sentence}");
        }
    }

    #[test]
    fn budget_forces_termination_on_recursive_rules() {
        let g = parse_grammar("grammar R; e : '(' e ')' | INT ; INT : [0-9]+ ;").unwrap();
        for seed in 0..20 {
            let s = sample_sentence(&g, "e", seed, 4).expect("terminates");
            assert!(s.contains(|c: char| c.is_ascii_digit()), "{s}");
        }
    }

    #[test]
    fn keyword_collisions_are_avoided() {
        // ID could sample "if", which lexes as the keyword; the sampler
        // must avoid emitting it as an ID.
        let g = parse_grammar("grammar K; s : 'if' ID ; ID : [fi]+ ; WS : [ ]+ -> skip ;").unwrap();
        let scanner = g.lexer.build().unwrap();
        let mut found = 0;
        for seed in 0..40 {
            if let Some(s) = sample_sentence(&g, "s", seed, 4) {
                let toks = scanner.tokenize(&s).unwrap();
                assert_eq!(toks.len(), 3, "{s}");
                assert_eq!(toks[0].ttype, g.vocab.by_literal("if").unwrap(), "{s}");
                assert_eq!(toks[1].ttype, g.vocab.by_name("ID").unwrap(), "{s}");
                found += 1;
            }
        }
        assert!(found > 0, "at least some seeds must produce sentences");
    }

    #[test]
    fn suite_grammars_sample() {
        for entry in crate::all() {
            let g = entry.load();
            let mut produced = 0;
            for seed in 0..10 {
                if sample_sentence(&g, entry.start_rule, seed, 10).is_some() {
                    produced += 1;
                }
            }
            assert!(produced >= 5, "{}: only {produced}/10 seeds sampled", entry.name);
        }
    }
}
