//! The real-world grammar gauntlet: three realistic grammars (a
//! Java-8-scale statement/expression subset, a SQL SELECT/DDL subset,
//! and production-shaped JSON) with deterministic, byte-targeted corpus
//! generators. Corpora are *built at test time*, never checked in: each
//! generator is seeded ([`llstar_rng::Rng64`]), partly
//! grammar-derivation-driven (a pool of [`sample_sentence`] fragments is
//! spliced into the structured output), and sized by [`Tier`] knobs from
//! 10 KB to 10 MB.
//!
//! [`sample_sentence`]: crate::derivation::sample_sentence

use crate::common::CodeGen;
use crate::derivation::sample_sentence;
use llstar_grammar::{apply_peg_mode, parse_grammar, Grammar};

/// The Java-8 statement/expression subset (PEG mode).
pub const JAVA8_GRAMMAR: &str = include_str!("../../../grammars/gauntlet/java8.g");
/// The SQL SELECT/DDL subset (manual predicates, no PEG mode).
pub const SQL_GRAMMAR: &str = include_str!("../../../grammars/gauntlet/sql.g");
/// Production-shaped JSON (LL(1)).
pub const JSON_GRAMMAR: &str = include_str!("../../../grammars/gauntlet/json.g");

/// One gauntlet grammar with its byte-targeted corpus generator.
#[derive(Clone, Copy)]
pub struct GauntletEntry {
    /// Short name used in oracle labels and bench rows.
    pub name: &'static str,
    /// The grammar source text (also shipped under `grammars/gauntlet/`).
    pub source: &'static str,
    /// The rule parsing starts from.
    pub start_rule: &'static str,
    /// Generates an input of at least this many bytes from a seed.
    pub generate: fn(usize, u64) -> String,
}

impl GauntletEntry {
    /// Parses and prepares the grammar (PEG mode applied when requested).
    ///
    /// # Panics
    /// Panics if the bundled grammar fails to parse (a bug in this crate).
    pub fn load(&self) -> Grammar {
        let g = parse_grammar(self.source)
            .unwrap_or_else(|e| panic!("gauntlet grammar {} is invalid: {e}", self.name));
        apply_peg_mode(g)
    }
}

impl std::fmt::Debug for GauntletEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GauntletEntry").field("name", &self.name).finish()
    }
}

/// All three gauntlet grammars.
pub fn all() -> Vec<GauntletEntry> {
    vec![
        GauntletEntry {
            name: "java8",
            source: JAVA8_GRAMMAR,
            start_rule: "compilationUnit",
            generate: generate_java8,
        },
        GauntletEntry {
            name: "sql",
            source: SQL_GRAMMAR,
            start_rule: "script",
            generate: generate_sql,
        },
        GauntletEntry {
            name: "json",
            source: JSON_GRAMMAR,
            start_rule: "document",
            generate: generate_json,
        },
    ]
}

/// Looks a gauntlet grammar up by name.
pub fn by_name(name: &str) -> Option<GauntletEntry> {
    all().into_iter().find(|e| e.name == name)
}

// ---------------------------------------------------------------------
// Corpus tiers
// ---------------------------------------------------------------------

/// Corpus size knob: total bytes generated per (grammar, tier) cell.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Tier {
    /// ~10 KB across a few files — the per-PR CI smoke tier.
    Smoke,
    /// ~1 MB — the acceptance tier the oracle runs by default.
    Mega,
    /// ~10 MB — the nightly stress tier.
    Deca,
}

impl Tier {
    /// Total corpus bytes for this tier.
    pub fn bytes(self) -> usize {
        match self {
            Tier::Smoke => 10 << 10,
            Tier::Mega => 1 << 20,
            Tier::Deca => 10 << 20,
        }
    }

    /// How many files the corpus is split into (multi-file corpora
    /// exercise the coverage-merge path).
    pub fn files(self) -> usize {
        match self {
            Tier::Smoke => 3,
            Tier::Mega => 4,
            Tier::Deca => 8,
        }
    }

    /// Human-readable size label.
    pub fn label(self) -> &'static str {
        match self {
            Tier::Smoke => "10KB",
            Tier::Mega => "1MB",
            Tier::Deca => "10MB",
        }
    }

    /// The tier selected by `LLSTAR_GAUNTLET_TIER` (`smoke`/`10kb`,
    /// `1mb`/`mega`, `10mb`/`deca`), defaulting to [`Tier::Mega`] — the
    /// acceptance tier.
    pub fn from_env() -> Tier {
        match std::env::var("LLSTAR_GAUNTLET_TIER").ok().as_deref() {
            Some("smoke") | Some("10kb") => Tier::Smoke,
            Some("10mb") | Some("deca") => Tier::Deca,
            Some("1mb") | Some("mega") | None => Tier::Mega,
            Some(other) => panic!("unknown LLSTAR_GAUNTLET_TIER {other:?}"),
        }
    }
}

/// Builds the deterministic corpus for `(entry, tier, seed)`: the tier's
/// byte budget split across [`Tier::files`] labeled inputs. Same
/// arguments ⇒ byte-identical corpus.
pub fn corpus(entry: &GauntletEntry, tier: Tier, seed: u64) -> Vec<(String, String)> {
    let files = tier.files();
    let per_file = tier.bytes() / files;
    (0..files)
        .map(|i| {
            let file_seed = seed.wrapping_add((i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let text = (entry.generate)(per_file, file_seed);
            (format!("{}/{}-{i:02}.txt", entry.name, tier.label()), text)
        })
        .collect()
}

/// Samples up to `count` derivation fragments from `rule`, skipping
/// seeds the sampler cannot realize. The pool keeps generators
/// grammar-derivation-driven without re-sampling per splice site.
fn derivation_pool(
    grammar: &Grammar,
    rule: &str,
    count: usize,
    seed: u64,
    depth: usize,
) -> Vec<String> {
    (0..count as u64)
        .filter_map(|i| sample_sentence(grammar, rule, seed.wrapping_add(i), depth))
        .collect()
}

// ---------------------------------------------------------------------
// Java 8 generator
// ---------------------------------------------------------------------

/// Generates a Java-8-flavored compilation unit of at least
/// `target_bytes` bytes.
pub fn generate_java8(target_bytes: usize, seed: u64) -> String {
    let grammar = by_name("java8").expect("java8 entry").load();
    let mut g = CodeGen::new(seed);
    let pool = derivation_pool(&grammar, "statement", 24, seed ^ 0xA5A5_5A5A, 9);
    g.line("package com.example.gauntlet;");
    g.line("import java.util.List;");
    g.line("import static java.lang.Math.*;");
    g.line("");
    let mut class_no = 0;
    while g.bytes_emitted() < target_bytes {
        class_no += 1;
        emit_java_type(&mut g, class_no, &pool);
        g.line("");
    }
    g.finish()
}

fn emit_java_type(g: &mut CodeGen, no: usize, pool: &[String]) {
    match g.below(8) {
        0 => {
            g.line(&format!("interface Api{no} {{"));
            g.indented(|g| {
                for _ in 0..g.below(3) + 1 {
                    let name = g.fresh("op");
                    g.line(&format!("int {name}(int value, long mask);"));
                }
            });
            g.line("}");
        }
        1 => {
            g.line(&format!("enum State{no} {{"));
            g.indented(|g| g.line("IDLE, RUNNING, DONE;"));
            g.line("}");
        }
        _ => emit_java_class(g, no, pool),
    }
}

fn emit_java_class(g: &mut CodeGen, no: usize, pool: &[String]) {
    let extends =
        if g.chance(0.3) { format!(" extends Base{}", g.below(4)) } else { String::new() };
    g.line(&format!("public class Widget{no}{extends} {{"));
    g.indented(|g| {
        // Fields.
        for _ in 0..g.below(4) + 1 {
            let name = g.ident();
            match g.below(5) {
                0 => {
                    let v = g.int_lit();
                    g.line(&format!("private int {name} = {v};"));
                }
                1 => {
                    let bits = g.below(1 << 16);
                    g.line(&format!("static final long {name} = 0x{bits:x}L;"));
                }
                2 => {
                    let n = g.below(64) + 1;
                    g.line(&format!("protected int[] {name} = new int[{n}];"));
                }
                3 => {
                    let (a, b, c) = (g.int_lit(), g.int_lit(), g.int_lit());
                    g.line(&format!("int[] {name} = {{ {a}, {b}, {c} }};"));
                }
                _ => {
                    let s = g.str_lit();
                    g.line(&format!("private String {name} = {s};"));
                }
            }
        }
        if g.chance(0.25) {
            g.line("static {");
            g.indented(|g| emit_java_stmt(g, 2, pool));
            g.line("}");
        }
        if g.chance(0.4) {
            g.line(&format!("Widget{no}(int seedValue) {{"));
            g.indented(|g| g.line("this.count = seedValue;"));
            g.line("}");
        }
        // Methods.
        for _ in 0..g.below(4) + 2 {
            emit_java_method(g, pool);
        }
    });
    g.line("}");
}

fn emit_java_method(g: &mut CodeGen, pool: &[String]) {
    let name = g.fresh("run");
    let ret = g.pick(&["void", "int", "boolean", "long", "String", "int[]"]);
    let throws = if g.chance(0.2) { " throws RuntimeException" } else { "" };
    g.line(&format!("public {ret} {name}(int depth, long flags){throws} {{"));
    g.indented(|g| {
        let stmts = g.below(6) + 3;
        for _ in 0..stmts {
            emit_java_stmt(g, 2, pool);
        }
        match ret {
            "void" => {}
            "boolean" => g.line("return depth > 0 && flags != 0;"),
            "String" => {
                let s = g.str_lit();
                g.line(&format!("return {s} + depth;"));
            }
            "int[]" => g.line("return new int[] { depth, 0 };"),
            _ => {
                let e = java_expr(g, 2);
                g.line(&format!("return {e};"));
            }
        }
    });
    g.line("}");
}

fn emit_java_stmt(g: &mut CodeGen, depth: usize, pool: &[String]) {
    if depth == 0 {
        let id = g.ident();
        let e = java_expr(g, 1);
        g.line(&format!("{id} = {e};"));
        return;
    }
    match g.below(16) {
        0 => {
            let id = g.fresh("v");
            let e = java_expr(g, depth);
            let ty = g.pick(&["int", "long", "boolean", "double"]);
            g.line(&format!("{ty} {id} = {e};"));
        }
        1 => {
            let c = java_cond(g);
            g.line(&format!("if ({c}) {{"));
            g.indented(|g| emit_java_stmt(g, depth - 1, pool));
            if g.chance(0.5) {
                g.line("} else {");
                g.indented(|g| emit_java_stmt(g, depth - 1, pool));
            }
            g.line("}");
        }
        2 => {
            let i = g.fresh("i");
            let n = g.int_lit();
            g.line(&format!("for (int {i} = 0; {i} < {n}; {i}++) {{"));
            g.indented(|g| emit_java_stmt(g, depth - 1, pool));
            g.line("}");
        }
        3 => {
            let v = g.fresh("item");
            let src = g.ident();
            g.line(&format!("for (int {v} : {src}) {{"));
            g.indented(|g| emit_java_stmt(g, depth - 1, pool));
            g.line("}");
        }
        4 => {
            let c = java_cond(g);
            g.line(&format!("while ({c}) {{"));
            g.indented(|g| emit_java_stmt(g, depth - 1, pool));
            g.line("}");
        }
        5 => {
            g.line("try {");
            g.indented(|g| emit_java_stmt(g, depth - 1, pool));
            if g.chance(0.7) {
                g.line("} catch (IllegalStateException | RuntimeException failure) {");
                g.indented(|g| {
                    let id = g.ident();
                    g.line(&format!("{id} = 0;"));
                });
            }
            g.line("} finally {");
            g.indented(|g| {
                let id = g.ident();
                g.line(&format!("{id}--;"));
            });
            g.line("}");
        }
        6 => {
            let scrut = g.ident();
            g.line(&format!("switch ({scrut}) {{"));
            g.indented(|g| {
                for case in 0..g.below(3) + 1 {
                    g.line(&format!("case {case}:"));
                    g.indented(|g| {
                        emit_java_stmt(g, 0, pool);
                        g.line("break;");
                    });
                }
                g.line("default:");
                g.indented(|g| emit_java_stmt(g, 0, pool));
            });
            g.line("}");
        }
        7 => {
            // Lambdas: expression- and block-bodied, plus a method ref.
            let id = g.fresh("fn");
            match g.below(3) {
                0 => {
                    let e = java_expr(g, 1);
                    g.line(&format!("Runnable {id} = () -> {e};"));
                }
                1 => {
                    g.line(&format!("Combiner {id} = (left, right) -> {{"));
                    g.indented(|g| g.line("return left + right;"));
                    g.line("};");
                }
                _ => g.line(&format!("Factory {id} = java.util.ArrayList::new;")),
            }
        }
        8 => {
            let id = g.ident();
            let op = g.pick(&["+=", "-=", "*=", "&=", "|=", "^=", "<<=", ">>="]);
            let e = java_expr(g, 1);
            g.line(&format!("{id} {op} {e};"));
        }
        9 => {
            let e = java_expr(g, 1);
            g.line(&format!("assert depth >= 0 : {e};"));
        }
        10 => {
            g.line("synchronized (this) {");
            g.indented(|g| emit_java_stmt(g, depth - 1, pool));
            g.line("}");
        }
        11 => {
            let msg = g.str_lit();
            let c = java_cond(g);
            g.line(&format!("if ({c}) throw new IllegalStateException({msg});"));
        }
        12 if !pool.is_empty() => {
            // Grammar-derivation-driven splice: a statement sampled by
            // random derivation, guaranteed to be in the language.
            let pick = g.below(pool.len());
            let stmt = pool[pick].clone();
            g.line(&stmt);
        }
        13 => {
            g.line("do {");
            g.indented(|g| emit_java_stmt(g, 0, pool));
            let c = java_cond(g);
            g.line(&format!("}} while ({c});"));
        }
        _ => {
            let id = g.ident();
            let call = java_call(g);
            g.line(&format!("{id} = {call};"));
        }
    }
}

fn java_cond(g: &mut CodeGen) -> String {
    let a = g.ident();
    let b = g.int_lit();
    match g.below(4) {
        0 => format!("{a} < {b}"),
        1 => format!("{a} != {b} && {a} >= 0"),
        2 => format!("({a} & {b}) == 0"),
        _ => format!("{a} instanceof String || {a} == null"),
    }
}

fn java_call(g: &mut CodeGen) -> String {
    let recv = g.ident();
    let m = g.pick(&["compute", "reduce", "apply", "merge", "resolve"]);
    let a = java_expr(g, 1);
    format!("{recv}.{m}({a}, flags)")
}

fn java_expr(g: &mut CodeGen, depth: usize) -> String {
    if depth == 0 {
        return java_atom(g);
    }
    match g.below(12) {
        0 => format!("{} + {}", java_expr(g, depth - 1), java_atom(g)),
        1 => format!("{} * ({} - {})", java_atom(g), java_atom(g), java_atom(g)),
        2 => format!("{} << {}", java_atom(g), g.below(16)),
        3 => format!("{} >>> {}", java_atom(g), g.below(8)),
        4 => format!("{} & ~{}", java_atom(g), java_atom(g)),
        5 => format!("{} ^ {} | {}", java_atom(g), java_atom(g), java_atom(g)),
        6 => {
            let c = java_cond(g);
            format!("{c} ? {} : {}", java_atom(g), java_atom(g))
        }
        7 => format!("(int) {}", java_atom(g)),
        8 => java_call(g),
        9 => format!("new Widget{}({})", g.below(8) + 1, java_atom(g)),
        10 => format!("{}[{}]", g.ident(), g.below(16)),
        _ => java_atom(g),
    }
}

fn java_atom(g: &mut CodeGen) -> String {
    match g.below(6) {
        0 => g.int_lit(),
        1 => g.ident(),
        2 => g.str_lit(),
        3 => "0x7fL".to_string(),
        4 => format!("{}.{}", g.ident(), g.ident()),
        _ => format!("{}.5", g.below(100)),
    }
}

// ---------------------------------------------------------------------
// SQL generator
// ---------------------------------------------------------------------

const SQL_TABLES: &[&str] = &["users", "orders", "events", "items", "payments"];
const SQL_COLS: &[&str] =
    &["id", "user_id", "total", "qty", "price", "created_ts", "status", "region", "score"];

/// Generates a SQL SELECT/DDL script of at least `target_bytes` bytes.
pub fn generate_sql(target_bytes: usize, seed: u64) -> String {
    let grammar = by_name("sql").expect("sql entry").load();
    let mut g = CodeGen::new(seed);
    let pool = derivation_pool(&grammar, "selectStmt", 24, seed ^ 0x5A5A_A5A5, 9);
    for t in SQL_TABLES {
        g.line(&format!(
            "create table if not exists {t} ( id int primary key, user_id int references users ( id ), \
             total float not null, qty int default 0, price decimal ( 10 , 2 ), created_ts timestamp, \
             status varchar ( 16 ), region text, score float, check ( qty >= 0 ) );"
        ));
    }
    g.line("create unique index idx_users_id on users ( id asc );");
    while g.bytes_emitted() < target_bytes {
        match g.below(12) {
            0 => emit_create_table(&mut g),
            1 => {
                let v = g.fresh("view_");
                let sel = sql_select(&mut g, 2);
                g.line(&format!("create view {v} as {sel};"));
            }
            2 => {
                let i = g.fresh("idx_");
                let t = g.pick(SQL_TABLES);
                let c = g.pick(SQL_COLS);
                let o = g.pick(&["asc", "desc"]);
                g.line(&format!("create index if not exists {i} on {t} ( {c} {o}, id );"));
            }
            3 => {
                let t = g.pick(SQL_TABLES);
                let c = g.fresh("extra_");
                g.line(&format!("alter table {t} add column {c} bigint default 0;"));
            }
            4 => {
                let t = g.fresh("tmp_");
                g.line(&format!("drop table if exists {t};"));
            }
            5 if !pool.is_empty() => {
                // Derivation splice: a whole SELECT sampled from the
                // grammar itself.
                let pick = g.below(pool.len());
                let sel = pool[pick].clone();
                g.line(&format!("{sel};"));
            }
            6 => {
                // CTE chain feeding a final select.
                let c1 = g.fresh("cte_");
                let c2 = g.fresh("cte_");
                let inner1 = sql_select(&mut g, 1);
                let inner2 = sql_select(&mut g, 1);
                g.line(&format!(
                    "with {c1} as ( {inner1} ), {c2} ( k, v ) as ( {inner2} ) \
                     select * from {c1} join {c2} on {c1}.id = {c2}.k where {c2}.v > 0;"
                ));
            }
            7 => {
                // UNION chain with ordering and limit.
                let a = sql_select(&mut g, 1);
                let b = sql_select(&mut g, 1);
                let lim = g.below(100) + 1;
                let off = g.below(10);
                g.line(&format!(
                    "{a} union all {b} order by 1 desc nulls last limit {lim} offset {off};"
                ));
            }
            _ => {
                let sel = sql_select(&mut g, 2);
                g.line(&format!("{sel};"));
            }
        }
    }
    g.finish()
}

fn emit_create_table(g: &mut CodeGen) {
    let t = g.fresh("t");
    let c1 = g.fresh("c");
    let c2 = g.fresh("c");
    g.line(&format!(
        "create table {t} ( {c1} int not null, {c2} varchar ( 32 ) unique, amount numeric ( 8 , 3 ), \
         primary key ( {c1} ), foreign key ( {c2} ) references users ( id ), check ( {c1} > 0 ) );"
    ));
}

fn sql_select(g: &mut CodeGen, depth: usize) -> String {
    let t = g.pick(SQL_TABLES);
    let mut sel = match g.below(4) {
        0 => format!("select * from {t}"),
        1 => {
            let c = g.pick(SQL_COLS);
            format!("select distinct {c}, count ( * ) as n from {t}")
        }
        2 => {
            let c = g.pick(SQL_COLS);
            let agg = g.pick(&["sum", "avg", "min", "max"]);
            format!("select {t}.*, {agg} ( distinct {c} ) from {t}")
        }
        _ => {
            let c = g.pick(SQL_COLS);
            let hi = g.below(1000);
            let mid = g.below(100);
            let cse = format!(
                "case when {c} > {hi} then 'high' when {c} > {mid} then 'mid' else 'low' end"
            );
            format!("select {cse} as bucket, cast ( {c} as bigint ) from {t}")
        }
    };
    if g.chance(0.5) {
        let t2 = g.pick(SQL_TABLES);
        let j = g.pick(&["inner join", "left join", "left outer join", "cross join"]);
        if j == "cross join" {
            sel.push_str(&format!(" {j} {t2}"));
        } else {
            sel.push_str(&format!(" {j} {t2} on {t}.id = {t2}.user_id"));
        }
    }
    if g.chance(0.7) {
        sel.push_str(&format!(" where {}", sql_pred(g, depth)));
    }
    if g.chance(0.3) {
        let c = g.pick(SQL_COLS);
        sel.push_str(&format!(" group by {c} having count ( * ) > {}", g.below(10)));
    }
    sel
}

fn sql_pred(g: &mut CodeGen, depth: usize) -> String {
    let c = g.pick(SQL_COLS);
    if depth == 0 {
        return format!("{c} = {}", g.below(1000));
    }
    match g.below(8) {
        0 => format!("{c} between {} and {}", g.below(100), g.below(1000) + 100),
        1 => format!("{c} is not null and {}", sql_pred(g, depth - 1)),
        2 => format!("not {c} like 'pre%'"),
        3 => {
            let t = g.pick(SQL_TABLES);
            format!("exists ( select 1 from {t} where {t}.user_id = {c} )")
        }
        4 => {
            let t = g.pick(SQL_TABLES);
            format!("{c} in ( select id from {t} where score > 0.5 )")
        }
        5 => format!("{c} in ( {}, {}, {} )", g.below(10), g.below(10) + 10, g.below(10) + 20),
        6 => format!("( {} ) or {c} <> {}", sql_pred(g, depth - 1), g.below(50)),
        _ => format!("coalesce ( {c}, 0 ) >= {} - abs ( -{} )", g.below(100), g.below(9) + 1),
    }
}

// ---------------------------------------------------------------------
// JSON generator
// ---------------------------------------------------------------------

const JSON_KEYS: &[&str] = &[
    "id", "name", "kind", "tags", "meta", "payload", "children", "enabled", "weight", "source",
    "version", "extra",
];

/// Generates a production-shaped JSON document of at least
/// `target_bytes` bytes: one top-level object holding record batches,
/// deep nests, and derivation-sampled fragments.
pub fn generate_json(target_bytes: usize, seed: u64) -> String {
    let grammar = by_name("json").expect("json entry").load();
    let mut g = CodeGen::new(seed);
    let pool = derivation_pool(&grammar, "value", 24, seed ^ 0x0F0F_F0F0, 7);
    g.line("{");
    g.indented(|g| {
        g.line("\"schema\": \"gauntlet-v1\",");
        g.line(&format!("\"seed\": {},", seed % 100_000));
        let mut batch = 0;
        while g.bytes_emitted() < target_bytes {
            batch += 1;
            let records = g.below(6) + 2;
            let mut rows = Vec::new();
            for _ in 0..records {
                rows.push(json_value(g, 3, &pool));
            }
            g.line(&format!("\"batch{batch}\": [ {} ],", rows.join(", ")));
        }
        g.line("\"complete\": true");
    });
    g.line("}");
    g.finish()
}

fn json_value(g: &mut CodeGen, depth: usize, pool: &[String]) -> String {
    if depth == 0 {
        return json_scalar(g);
    }
    match g.below(10) {
        0..=2 => json_scalar(g),
        3 if !pool.is_empty() => {
            let pick = g.below(pool.len());
            pool[pick].clone()
        }
        4..=6 => {
            let n = g.below(4) + 1;
            let mut pairs = Vec::new();
            for k in 0..n {
                let key = g.pick(JSON_KEYS).to_string();
                let val = json_value(g, depth - 1, pool);
                // Keys must be unique-ish for realism but the grammar
                // doesn't care; suffix to avoid exact repeats.
                pairs.push(format!("\"{key}{k}\": {val}"));
            }
            format!("{{ {} }}", pairs.join(", "))
        }
        _ => {
            let n = g.below(5) + 1;
            let items: Vec<String> = (0..n).map(|_| json_value(g, depth - 1, pool)).collect();
            format!("[ {} ]", items.join(", "))
        }
    }
}

fn json_scalar(g: &mut CodeGen) -> String {
    match g.below(10) {
        0 => "true".to_string(),
        1 => "false".to_string(),
        2 => "null".to_string(),
        3 => format!("-{}", g.below(10_000)),
        4 => format!("{}.{:03}", g.below(1000), g.below(1000)),
        5 => format!("{}e-{}", g.below(100), g.below(10) + 1),
        6 => format!("{}.{}E+{}", g.below(10), g.below(100), g.below(5) + 1),
        7 => {
            let w = g.pick(&["alpha", "beta", "gamma", "delta"]);
            format!("\"{w} \\\"quoted\\\" \\\\ {w}\"")
        }
        8 => format!("\"line\\nbreak{}\"", g.below(100)),
        _ => {
            let w = g.pick(&["service", "worker", "cache", "frontend", "ingest"]);
            format!("\"{w}-{}\"", g.below(1000))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_three_load_and_validate() {
        let entries = all();
        assert_eq!(entries.len(), 3);
        for e in entries {
            let g = e.load();
            assert!(g.rule_by_name(e.start_rule).is_some(), "{}: start rule", e.name);
            let errors: Vec<_> = llstar_grammar::validate(&g)
                .into_iter()
                .filter(llstar_grammar::GrammarIssue::is_error)
                .collect();
            assert!(errors.is_empty(), "{}: {errors:?}", e.name);
        }
    }

    #[test]
    fn generators_hit_byte_targets_deterministically() {
        for e in all() {
            let a = (e.generate)(10_000, 7);
            let b = (e.generate)(10_000, 7);
            let c = (e.generate)(10_000, 8);
            assert_eq!(a, b, "{}: generator is nondeterministic", e.name);
            assert_ne!(a, c, "{}: seed is ignored", e.name);
            assert!(a.len() >= 10_000, "{}: only {} bytes", e.name, a.len());
            assert!(a.len() < 40_000, "{}: overshoot to {} bytes", e.name, a.len());
        }
    }

    #[test]
    fn corpus_tiers_split_budget_across_files() {
        for e in all() {
            let files = corpus(&e, Tier::Smoke, 42);
            assert_eq!(files.len(), Tier::Smoke.files());
            let total: usize = files.iter().map(|(_, text)| text.len()).sum();
            assert!(total >= Tier::Smoke.bytes(), "{}: thin corpus ({total} bytes)", e.name);
            assert_eq!(files, corpus(&e, Tier::Smoke, 42), "{}: corpus not deterministic", e.name);
        }
    }

    #[test]
    fn smoke_corpora_lex_and_parse() {
        for e in all() {
            let g = e.load();
            let a = llstar_core::analyze(&g);
            let scanner = g.lexer.build().expect("lexer builds");
            for (label, text) in corpus(&e, Tier::Smoke, 1) {
                let tokens = scanner
                    .tokenize(&text)
                    .unwrap_or_else(|err| panic!("{label}: lex error {err}"));
                let stream = llstar_runtime::TokenStream::new(tokens);
                let mut parser =
                    llstar_runtime::Parser::new(&g, &a, stream, llstar_runtime::NopHooks);
                parser
                    .parse_to_eof(e.start_rule)
                    .unwrap_or_else(|err| panic!("{label}: parse error {err}"));
            }
        }
    }
}
