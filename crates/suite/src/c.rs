//! The C-like benchmark grammar (the paper's `RatsC` analog: a PEG-style
//! grammar run in PEG mode) and its program generator.
//!
//! Deliberately mirrors the properties the paper attributes to RatsC:
//! * the `externalDecl` decision distinguishes declarations from function
//!   *definitions* only at the body's `{`, so its syntactic predicate
//!   speculates across entire declarators (the paper's "backtracks across
//!   an entire function" pathology);
//! * `{isTypeName}? ID` gates typedef'd names (the paper's single C
//!   predicate, Section 4.2);
//! * nested backtracking makes memoization load-bearing (Section 6.2
//!   notes RatsC "appears not to terminate" without it).

use crate::common::CodeGen;

/// The grammar source (PEG mode).
pub const GRAMMAR: &str = r#"
grammar C;
options { backtrack = true; memoize = true; }

translationUnit : externalDecl* EOF ;
externalDecl : functionDef | declaration ;
functionDef : declSpecifier+ declarator compoundStatement ;
declaration
    : 'typedef' declSpecifier+ declarator ';'
    | declSpecifier+ initDeclarator (',' initDeclarator)* ';'
    ;
initDeclarator : declarator ('=' initializer)? ;
initializer : assignExpr | '{' initializer (',' initializer)* '}' ;
declSpecifier : storageClass | typeQualifier | typeSpecifier ;
storageClass : 'static' | 'extern' | 'auto' | 'register' ;
typeQualifier : 'const' | 'volatile' ;
typeSpecifier
    : 'void' | 'char' | 'short' | 'int' | 'long' | 'float' | 'double'
    | 'signed' | 'unsigned'
    | structSpecifier
    | {isTypeName}? ID
    ;
structSpecifier
    : ('struct' | 'union') (ID ('{' structDeclaration+ '}')? | '{' structDeclaration+ '}') ;
structDeclaration : declSpecifier+ declarator (',' declarator)* ';' ;
declarator : ('*' typeQualifier*)* directDeclarator ;
directDeclarator : (ID | '(' declarator ')') declaratorSuffix* ;
declaratorSuffix : '[' condExpr? ']' | '(' paramList? ')' ;
paramList : paramDecl (',' paramDecl)* ;
paramDecl : declSpecifier+ declarator? ;

compoundStatement : '{' blockItem* '}' ;
blockItem : declaration | statement ;
statement
    : compoundStatement
    | 'if' '(' expr ')' statement ('else' statement)?
    | 'while' '(' expr ')' statement
    | 'do' statement 'while' '(' expr ')' ';'
    | 'for' '(' expr? ';' expr? ';' expr? ')' statement
    | 'return' expr? ';'
    | 'break' ';'
    | 'continue' ';'
    | expr ';'
    | ';'
    ;

expr : assignExpr (',' assignExpr)* ;
assignExpr : unaryExpr assignOp assignExpr | condExpr ;
assignOp : '=' | '+=' | '-=' | '*=' | '/=' ;
condExpr : logicalOr ('?' expr ':' condExpr)? ;
logicalOr : logicalAnd ('||' logicalAnd)* ;
logicalAnd : bitOr ('&&' bitOr)* ;
bitOr : bitAnd ('|' bitAnd)* ;
bitAnd : equality ('&' equality)* ;
equality : relational (('==' | '!=') relational)* ;
relational : shift (('<' | '>' | '<=' | '>=') shift)* ;
shift : additive (('<<' | '>>') additive)* ;
additive : multiplicative (('+' | '-') multiplicative)* ;
multiplicative : castExpr (('*' | '/' | '%') castExpr)* ;
castExpr : '(' typeName ')' castExpr | unaryExpr ;
typeName : declSpecifier+ ('*' typeQualifier*)* ;
unaryExpr
    : ('++' | '--' | '&' | '*' | '+' | '-' | '!' | '~') castExpr
    | 'sizeof' unaryExpr
    | postfixExpr
    ;
postfixExpr : primaryExpr postfixOp* ;
postfixOp
    : '[' expr ']'
    | '(' argList? ')'
    | '.' ID
    | '->' ID
    | '++'
    | '--'
    ;
argList : assignExpr (',' assignExpr)* ;
primaryExpr : ID | INT | FLOAT | STRING | CHARLIT | '(' expr ')' ;

ID : [a-zA-Z_] [a-zA-Z0-9_]* ;
FLOAT : [0-9]+ '.' [0-9]+ ;
INT : [0-9]+ ;
STRING : '"' (~["\\\n] | '\\' .)* '"' ;
CHARLIT : '\'' (~['\\\n] | '\\' .) '\'' ;
WS : [ \t\r\n]+ -> skip ;
LINE_COMMENT : '//' (~[\n])* -> skip ;
COMMENT : '/*' ((~[*])* '*'+ ~[*/])* (~[*])* '*'+ '/' -> skip ;
"#;

/// The start rule.
pub const START_RULE: &str = "translationUnit";

/// The identifier prefix the generator uses for typedef names; the
/// benchmark's `isTypeName` hook recognizes exactly these.
pub const TYPEDEF_PREFIX: &str = "t_";

/// Generates a C-like program of roughly `target_lines` lines.
pub fn generate(target_lines: usize, seed: u64) -> String {
    let mut g = CodeGen::new(seed);
    g.line("/* generated C-like benchmark input */");
    g.line("typedef unsigned long t_size;");
    g.line("typedef struct Node { int value; struct Node * next; } t_node;");
    g.line("extern int printf();");
    g.line("static t_size global_counter = 0;");
    g.line("");
    let mut fn_no = 0;
    while g.lines_emitted() < target_lines {
        fn_no += 1;
        // Mix prototypes (declarations) with definitions so the
        // externalDecl decision keeps having to look past declarators.
        if g.chance(0.25) {
            emit_prototype(&mut g, fn_no);
        } else {
            emit_function(&mut g, fn_no);
        }
        g.line("");
    }
    g.finish()
}

fn c_type(g: &mut CodeGen) -> String {
    g.pick(&[
        "int",
        "unsigned int",
        "long",
        "double",
        "char",
        "t_size",
        "t_node",
        "int *",
        "const char *",
    ])
    .to_string()
}

fn emit_prototype(g: &mut CodeGen, n: usize) {
    let ret = c_type(g);
    let nparams = g.below(3);
    let params: Vec<String> =
        (0..nparams).map(|_| format!("{} {}", c_type(g), g.ident())).collect();
    g.line(&format!("static {ret} helper{n}({});", params.join(", ")));
}

fn emit_function(g: &mut CodeGen, n: usize) {
    let ret = c_type(g);
    let nparams = g.below(3);
    let params: Vec<String> =
        (0..nparams).map(|_| format!("{} {}", c_type(g), g.ident())).collect();
    g.line(&format!("{ret} func{n}({}) {{", params.join(", ")));
    g.indented(|g| {
        let decls = 1 + g.below(3);
        for _ in 0..decls {
            let ty = c_type(g);
            let name = g.fresh("local");
            let init = expression(g, 2);
            g.line(&format!("{ty} {name} = {init};"));
        }
        let stmts = 2 + g.below(6);
        for _ in 0..stmts {
            emit_statement(g, 2);
        }
        let e = expression(g, 1);
        g.line(&format!("return {e};"));
    });
    g.line("}");
}

fn emit_statement(g: &mut CodeGen, depth: usize) {
    if depth == 0 {
        let e = expression(g, 1);
        g.line(&format!("{e};"));
        return;
    }
    match g.below(7) {
        0 => {
            let c = expression(g, 1);
            g.line(&format!("if ({c}) {{"));
            g.indented(|g| emit_statement(g, depth - 1));
            if g.chance(0.4) {
                g.line("} else {");
                g.indented(|g| emit_statement(g, depth - 1));
            }
            g.line("}");
        }
        1 => {
            let c = expression(g, 1);
            g.line(&format!("while ({c}) {{"));
            g.indented(|g| {
                emit_statement(g, depth - 1);
                g.line("break;");
            });
            g.line("}");
        }
        2 => {
            let i = g.fresh("i");
            let bound = g.int_lit();
            g.line(&format!("for ({i} = 0; {i} < {bound}; {i}++) {{"));
            g.indented(|g| emit_statement(g, depth - 1));
            g.line("}");
        }
        3 => {
            let lhs = g.ident();
            let rhs = expression(g, depth - 1);
            g.line(&format!("{lhs} = {rhs};"));
        }
        4 => {
            let ty = c_type(g);
            let name = g.fresh("d");
            let e = expression(g, depth - 1);
            g.line(&format!("{ty} {name} = {e};"));
        }
        5 => {
            let f = g.ident();
            let e = expression(g, depth - 1);
            g.line(&format!("{f}({e});"));
        }
        _ => {
            let p = g.ident();
            let e = expression(g, depth - 1);
            g.line(&format!("{p}->next = {e};"));
        }
    }
}

fn expression(g: &mut CodeGen, depth: usize) -> String {
    if depth == 0 {
        return primary(g);
    }
    match g.below(7) {
        0 => format!("{} + {}", expression(g, depth - 1), primary(g)),
        1 => format!("{} * {}", primary(g), expression(g, depth - 1)),
        2 => format!("{} < {}", primary(g), primary(g)),
        3 => format!("({})", expression(g, depth - 1)),
        4 => format!("{}({})", g.ident(), expression(g, depth - 1)),
        5 => format!("& {}", primary(g)),
        _ => format!("sizeof {}", primary(g)),
    }
}

fn primary(g: &mut CodeGen) -> String {
    match g.below(5) {
        0 => g.int_lit(),
        1 => g.ident(),
        2 => g.str_lit(),
        3 => format!("{}.value", g.ident()),
        _ => "global_counter".to_string(),
    }
}

/// Whether `name` is one of the generator's typedef names (the benchmark
/// `isTypeName` oracle).
pub fn is_typedef_name(name: &str) -> bool {
    name.starts_with(TYPEDEF_PREFIX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grammar_loads_and_validates() {
        let g = llstar_grammar::parse_grammar(GRAMMAR).unwrap();
        assert!(g.options.backtrack);
        assert_eq!(g.sempreds.len(), 1, "exactly one predicate, like the paper's C grammar");
        let errors: Vec<_> = llstar_grammar::validate(&g)
            .into_iter()
            .filter(llstar_grammar::GrammarIssue::is_error)
            .collect();
        assert!(errors.is_empty(), "{errors:?}");
    }

    #[test]
    fn generated_program_lexes() {
        let g = llstar_grammar::parse_grammar(GRAMMAR).unwrap();
        let scanner = g.lexer.build().unwrap();
        let src = generate(80, 2);
        assert!(scanner.tokenize(&src).is_ok());
    }

    #[test]
    fn typedef_oracle() {
        assert!(is_typedef_name("t_size"));
        assert!(!is_typedef_name("size"));
    }
}
