//! The second Java benchmark grammar (the paper's `RatsJava` analog): the
//! same language as [`crate::java`], but formulated PEG-style — flat
//! ordered choices with shared prefixes that *rely* on backtracking
//! rather than left-factoring, the way grammars written for Rats! look
//! after mechanical conversion (Figure 12).
//!
//! Uses the same program generator as the Java grammar, since both accept
//! the same language.

/// The grammar source (PEG mode, deliberately backtracking-heavy).
pub const GRAMMAR: &str = r#"
grammar RatsJava;
options { backtrack = true; memoize = true; }

compilationUnit : packageDecl? importDecl* typeDecl* EOF ;
packageDecl : 'package' qualifiedName ';' ;
importDecl : 'import' qualifiedName '.' '*' ';' | 'import' qualifiedName ';' ;
typeDecl : classDecl | interfaceDecl ;
classDecl
    : modifier* 'class' ID 'extends' qualifiedName implementsClause? classBody
    | modifier* 'class' ID implementsClause? classBody
    ;
implementsClause : 'implements' qualifiedName (',' qualifiedName)* ;
interfaceDecl : modifier* 'interface' ID classBody ;
classBody : '{' member* '}' ;

member
    : methodDecl
    | fieldDecl
    | classDecl
    ;
fieldDecl : modifier* typ varDeclarator (',' varDeclarator)* ';' ;
varDeclarator : ID '=' expression | ID ;
methodDecl
    : modifier* 'void' ID '(' params? ')' methodRest
    | modifier* typ ID '(' params? ')' methodRest
    ;
methodRest : block | ';' ;
params : param (',' param)* ;
param : typ ID ;
modifier : 'public' | 'private' | 'protected' | 'static' | 'final' | 'abstract' ;
qualifiedName : ID ('.' ID)* ;
typ : qualifiedName ('[' ']')* | primitiveType ('[' ']')* ;
primitiveType : 'int' | 'boolean' | 'char' | 'long' | 'double' ;

block : '{' statement* '}' ;
statement
    : block
    | 'if' parExpression statement 'else' statement
    | 'if' parExpression statement
    | 'while' parExpression statement
    | 'for' '(' forInit? ';' expression? ';' expression? ')' statement
    | 'do' statement 'while' parExpression ';'
    | 'switch' parExpression '{' switchCase* '}'
    | 'return' expression ';'
    | 'return' ';'
    | 'throw' expression ';'
    | 'break' ';'
    | 'continue' ';'
    | localVarDecl ';'
    | expression ';'
    | ';'
    ;
switchCase : 'case' expression ':' statement* | 'default' ':' statement* ;
forInit : localVarDecl | expressionList ;
localVarDecl : 'final'? typ varDeclarator (',' varDeclarator)* ;
parExpression : '(' expression ')' ;
expressionList : expression (',' expression)* ;

expression : assignment | conditional ;
assignment : postfix assignOp expression ;
assignOp : '=' | '+=' | '-=' | '*=' ;
conditional : logicalOr '?' expression ':' conditional | logicalOr ;
logicalOr : logicalAnd ('||' logicalAnd)* ;
logicalAnd : equality ('&&' equality)* ;
equality : relational (('==' | '!=') relational)* ;
relational : additive (('<' | '>' | '<=' | '>=') additive | 'instanceof' typ)* ;
additive : multiplicative (('+' | '-') multiplicative)* ;
multiplicative : unary (('*' | '/' | '%') unary)* ;
unary : ('!' | '-' | '++' | '--') unary | '(' primitiveType ')' unary | postfix ;
postfix : primary postfixOp* ;
postfixOp : '.' ID arguments | '.' ID | '[' expression ']' | arguments | '++' | '--' ;
arguments : '(' expressionList? ')' ;
primary
    : parExpression
    | 'new' creator
    | literal
    | ID
    ;
creator : qualifiedName arguments | qualifiedName '[' expression ']' ;
literal : INT | FLOAT | STRING | CHARLIT | 'true' | 'false' | 'null' | 'this' ;

ID : [a-zA-Z_$] [a-zA-Z0-9_$]* ;
FLOAT : [0-9]+ '.' [0-9]+ ;
INT : [0-9]+ ;
STRING : '"' (~["\\\n] | '\\' .)* '"' ;
CHARLIT : '\'' (~['\\\n] | '\\' .) '\'' ;
WS : [ \t\r\n]+ -> skip ;
LINE_COMMENT : '//' (~[\n])* -> skip ;
COMMENT : '/*' ((~[*])* '*'+ ~[*/])* (~[*])* '*'+ '/' -> skip ;
"#;

/// The start rule.
pub const START_RULE: &str = "compilationUnit";

/// Generates input (shared with the Java grammar — same language).
pub fn generate(target_lines: usize, seed: u64) -> String {
    crate::java::generate(target_lines, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grammar_loads_and_validates() {
        let g = llstar_grammar::parse_grammar(GRAMMAR).unwrap();
        assert!(g.options.backtrack);
        let errors: Vec<_> = llstar_grammar::validate(&g)
            .into_iter()
            .filter(llstar_grammar::GrammarIssue::is_error)
            .collect();
        assert!(errors.is_empty(), "{errors:?}");
    }

    #[test]
    fn generated_program_lexes() {
        let g = llstar_grammar::parse_grammar(GRAMMAR).unwrap();
        let scanner = g.lexer.build().unwrap();
        let src = generate(60, 5);
        assert!(scanner.tokenize(&src).is_ok());
    }
}
