//! The SQL benchmark grammar (the paper's `TSQL` analog: a commercial
//! keyword-heavy grammar with occasional manual syntactic predicates) and
//! its script generator.
//!
//! Like TSQL in Table 1, the overwhelming majority of decisions here are
//! keyword-dispatched LL(1); a manual syntactic predicate distinguishes
//! parenthesized subqueries from parenthesized expressions.

use crate::common::CodeGen;

/// The grammar source (no PEG mode; manual predicates only).
pub const GRAMMAR: &str = r#"
grammar Sql;

batch : statement* EOF ;
statement
    : selectStmt ';'
    | insertStmt ';'
    | updateStmt ';'
    | deleteStmt ';'
    | createTable ';'
    | createIndex ';'
    | dropStmt ';'
    | declareStmt ';'
    | setStmt ';'
    ;

selectStmt
    : 'select' ('distinct' | 'all')? selectList
      'from' tableSource joinClause*
      whereClause? groupByClause? havingClause? orderByClause?
    ;
selectList : '*' | selectItem (',' selectItem)* ;
selectItem : expr ('as'? ID)? ;
tableSource : tableName ('as'? ID)? | '(' selectStmt ')' ('as'? ID)? ;
tableName : ID ('.' ID)* ;
joinClause
    : ('inner' | 'left' 'outer'? | 'right' 'outer'? | 'full')? 'join'
      tableSource 'on' expr
    ;
whereClause : 'where' expr ;
groupByClause : 'group' 'by' expr (',' expr)* ;
havingClause : 'having' expr ;
orderByClause : 'order' 'by' orderItem (',' orderItem)* ;
orderItem : expr ('asc' | 'desc')? ;

insertStmt
    : 'insert' 'into' tableName ('(' columnList ')')?
      ('values' '(' exprList ')' | selectStmt)
    ;
columnList : ID (',' ID)* ;
updateStmt : 'update' tableName 'set' setItem (',' setItem)* whereClause? ;
setItem : ID '=' expr ;
deleteStmt : 'delete' 'from' tableName whereClause? ;

createTable : 'create' 'table' tableName '(' columnDef (',' columnDef)* ')' ;
columnDef : ID typeName columnOption* ;
typeName
    : ('int' | 'bigint' | 'float' | 'bit' | 'date' | 'text')
    | ('varchar' | 'char' | 'decimal') ('(' INT (',' INT)? ')')?
    ;
columnOption
    : 'not' 'null'
    | 'null'
    | 'primary' 'key'
    | 'unique'
    | 'default' literal
    ;
createIndex : 'create' 'unique'? 'index' ID 'on' tableName '(' columnList ')' ;
dropStmt : 'drop' ('table' | 'index') tableName ;
declareStmt : 'declare' VAR typeName ('=' expr)? ;
setStmt : 'set' VAR '=' expr ;

expr : orExpr ;
orExpr : andExpr ('or' andExpr)* ;
andExpr : notExpr ('and' notExpr)* ;
notExpr : 'not' notExpr | predicate ;
predicate
    : comparison
    ;
comparison
    : addExpr
      ( ('=' | '<>' | '!=' | '<' | '>' | '<=' | '>=') addExpr
      | 'between' addExpr 'and' addExpr
      | 'like' STRING
      | 'in' '(' (('select')=> selectStmt | exprList) ')'
      | 'is' 'not'? 'null'
      )?
    ;
addExpr : mulExpr (('+' | '-') mulExpr)* ;
mulExpr : unaryExpr (('*' | '/' | '%') unaryExpr)* ;
unaryExpr : '-' unaryExpr | primary ;
primary
    : literal
    | caseExpr
    | funcCall
    | columnRef
    | VAR
    | ('(' 'select')=> '(' selectStmt ')'
    | '(' expr ')'
    ;
caseExpr : 'case' ('when' expr 'then' expr)+ ('else' expr)? 'end' ;
funcCall : ('count' | 'sum' | 'avg' | 'min' | 'max') '(' ('*' | expr) ')' ;
columnRef : ID ('.' ID)* ;
exprList : expr (',' expr)* ;
literal : INT | FLOAT | STRING | 'null' | 'true' | 'false' ;

VAR : '@' [a-zA-Z_] [a-zA-Z0-9_]* ;
ID : [a-zA-Z_] [a-zA-Z0-9_]* ;
FLOAT : [0-9]+ '.' [0-9]+ ;
INT : [0-9]+ ;
STRING : '\'' (~['\n])* '\'' ;
WS : [ \t\r\n]+ -> skip ;
LINE_COMMENT : '--' (~[\n])* -> skip ;
"#;

/// The start rule.
pub const START_RULE: &str = "batch";

/// Generates a SQL script of roughly `target_lines` lines.
pub fn generate(target_lines: usize, seed: u64) -> String {
    let mut g = CodeGen::new(seed);
    g.line("create table users ( id int primary key, name varchar ( 64 ) not null, age int );");
    g.line("create table orders ( id int primary key, user_id int, total float, note text );");
    g.line("create index idx_orders on orders ( user_id );");
    while g.lines_emitted() < target_lines {
        match g.below(6) {
            0 => emit_select(&mut g),
            1 => emit_insert(&mut g),
            2 => emit_update(&mut g),
            3 => emit_delete(&mut g),
            4 => {
                let v = g.fresh("v");
                let e = expr(&mut g, 1);
                g.line(&format!("declare @{v} int = {e};"));
            }
            _ => emit_select(&mut g),
        }
    }
    g.finish()
}

fn table(g: &mut CodeGen) -> &'static str {
    if g.chance(0.5) {
        "users"
    } else {
        "orders"
    }
}

fn column(g: &mut CodeGen) -> String {
    g.pick(&["id", "name", "age", "user_id", "total", "note"]).to_string()
}

fn emit_select(g: &mut CodeGen) {
    let t = table(g);
    let cols = if g.chance(0.3) {
        "*".to_string()
    } else {
        let n = 1 + g.below(3);
        (0..n).map(|_| column(g)).collect::<Vec<_>>().join(", ")
    };
    let mut stmt = format!("select {cols} from {t}");
    if g.chance(0.4) {
        let join_t = table(g);
        stmt.push_str(&format!(" inner join {join_t} on users.id = orders.user_id"));
    }
    if g.chance(0.7) {
        stmt.push_str(&format!(" where {}", expr(g, 2)));
    }
    if g.chance(0.3) {
        stmt.push_str(&format!(" group by {}", column(g)));
    }
    if g.chance(0.3) {
        stmt.push_str(&format!(" order by {} desc", column(g)));
    }
    g.line(&format!("{stmt};"));
    if g.chance(0.2) {
        // Aggregates, CASE, and a derived-table subquery.
        let w = expr(g, 1);
        g.line(&format!(
            "select count ( * ), case when {w} then 1 else 0 end from ( select id, total from orders ) as t;"
        ));
    }
}

fn emit_insert(g: &mut CodeGen) {
    if g.chance(0.3) {
        // insert … select — exercises the subquery machinery.
        let w = expr(g, 1);
        g.line(&format!("insert into orders ( id, user_id ) select id, age from users where {w};"));
    } else {
        let (a, b, c) = (g.int_lit(), sql_str(g), g.int_lit());
        g.line(&format!("insert into users ( id, name, age ) values ( {a}, {b}, {c} );"));
    }
}

fn emit_update(g: &mut CodeGen) {
    let w = expr(g, 1);
    let n = g.int_lit();
    g.line(&format!("update users set age = age + {n} where {w};"));
}

fn emit_delete(g: &mut CodeGen) {
    let w = expr(g, 1);
    g.line(&format!("delete from orders where {w};"));
}

fn sql_str(g: &mut CodeGen) -> String {
    format!("'{}'", g.pick(&["alice", "bob", "carol", "dave"]))
}

fn expr(g: &mut CodeGen, depth: usize) -> String {
    if depth == 0 {
        return atom(g);
    }
    match g.below(7) {
        0 => format!("{} = {}", column(g), atom(g)),
        1 => format!("{} > {}", column(g), g.int_lit()),
        2 => format!("{} and {}", expr(g, depth - 1), expr(g, depth - 1)),
        3 => format!("{} or not {}", expr(g, depth - 1), expr(g, depth - 1)),
        4 => format!("{} between {} and {}", column(g), g.int_lit(), g.int_lit()),
        5 => format!("{} in ( select id from users where {} )", column(g), expr(g, depth - 1)),
        _ => format!("{} is not null", column(g)),
    }
}

fn atom(g: &mut CodeGen) -> String {
    match g.below(4) {
        0 => g.int_lit(),
        1 => column(g),
        2 => sql_str(g),
        _ => "count ( * )".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grammar_loads_and_validates() {
        let g = llstar_grammar::parse_grammar(GRAMMAR).unwrap();
        assert!(!g.options.backtrack, "SQL uses manual predicates, not PEG mode");
        assert_eq!(g.synpreds.len(), 2, "two manual syntactic predicates");
        let errors: Vec<_> = llstar_grammar::validate(&g)
            .into_iter()
            .filter(llstar_grammar::GrammarIssue::is_error)
            .collect();
        assert!(errors.is_empty(), "{errors:?}");
    }

    #[test]
    fn generated_script_lexes() {
        let g = llstar_grammar::parse_grammar(GRAMMAR).unwrap();
        let scanner = g.lexer.build().unwrap();
        let src = generate(60, 9);
        assert!(scanner.tokenize(&src).is_ok(), "{src}");
    }
}
