//! Section 2's LPG anecdote: `a : b A+ X | c A+ Y` is LL(*) but not
//! LL(k)/LR(k) for any k. Fixed-k analysis grows with k and *still* fails
//! to resolve the decision (dead alternative, like LPG's conflict at
//! k = 10000), while unbounded LL(*) builds a tiny cyclic DFA.

use llstar_bench::figures::CYCLIC_GRAMMAR;
use llstar_bench::BenchGroup;
use llstar_core::{analyze_with, AnalysisOptions};
use llstar_grammar::parse_grammar;
use std::hint::black_box;
use std::time::Duration;

fn main() {
    let grammar = parse_grammar(CYCLIC_GRAMMAR).expect("cyclic grammar");
    let mut group = BenchGroup::new("llk_blowup");
    group.sample_size(10).measurement_time(Duration::from_secs(1));
    for k in [1u32, 2, 4, 8, 16, 32] {
        let options = AnalysisOptions { max_k: Some(k), ..Default::default() };
        group.bench_function(format!("fixed_k_{k}"), || {
            let analysis = analyze_with(black_box(&grammar), &options);
            black_box(analysis.decisions.iter().map(|d| d.dfa.states.len()).sum::<usize>())
        });
    }
    let options = AnalysisOptions::default();
    group.bench_function("llstar_cyclic", || {
        let analysis = analyze_with(black_box(&grammar), &options);
        black_box(analysis.decisions.iter().map(|d| d.dfa.states.len()).sum::<usize>())
    });
    group.finish();
}
