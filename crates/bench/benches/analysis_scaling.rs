//! Analysis scaling across worker threads: per-decision DFA construction
//! is embarrassingly parallel (each decision's subset construction is
//! independent), so wall-clock analysis time over the suite grammars
//! should drop as `AnalysisOptions::threads` grows — while producing
//! byte-identical results (see `tests/analysis_determinism.rs`).

use llstar_bench::BenchGroup;
use llstar_core::{analyze_with, AnalysisOptions};
use std::hint::black_box;
use std::time::Duration;

fn main() {
    let max = std::thread::available_parallelism().map_or(4, |n| n.get());
    let mut thread_counts = vec![1usize, 2, 4, 8];
    thread_counts.retain(|&n| n <= max.max(2));
    if !thread_counts.contains(&max) {
        thread_counts.push(max);
    }

    let mut group = BenchGroup::new("analysis_scaling");
    group.sample_size(10).measurement_time(Duration::from_secs(2));
    for entry in llstar_suite::all() {
        let grammar = entry.load();
        let base = AnalysisOptions::from_grammar(&grammar);
        for &threads in &thread_counts {
            let options = AnalysisOptions { threads, ..base.clone() };
            group.bench_function(format!("{}/threads_{threads}", entry.name), || {
                let analysis = analyze_with(black_box(&grammar), &options);
                black_box(analysis.decisions.len())
            });
        }
    }
    group.finish();
}
