//! Analysis scaling across worker threads: per-decision DFA construction
//! is embarrassingly parallel (each decision's subset construction is
//! independent), so wall-clock analysis time over the suite grammars
//! should drop as `AnalysisOptions::threads` grows — while producing
//! byte-identical results (see `tests/analysis_determinism.rs`).
//!
//! Beyond the per-configuration timings, this bench renders the
//! threads × suite-grammar speedup table and appends the `scaling` rows
//! to `BENCH_analysis.json` (creating the file, schema header included,
//! when `report_tables` has not run yet).

use llstar_bench::{report, BenchGroup};
use llstar_core::{analyze_with, AnalysisOptions};
use std::hint::black_box;
use std::time::Duration;

fn main() {
    let thread_counts = report::scaling_thread_counts();

    let mut group = BenchGroup::new("analysis_scaling");
    group.sample_size(10).measurement_time(Duration::from_secs(2));
    for entry in llstar_suite::all() {
        let grammar = entry.load();
        let base = AnalysisOptions::from_grammar(&grammar);
        for &threads in &thread_counts {
            let options = AnalysisOptions { threads, ..base.clone() };
            group.bench_function(format!("{}/threads_{threads}", entry.name), || {
                let analysis = analyze_with(black_box(&grammar), &options);
                black_box(analysis.decisions.len())
            });
        }
    }
    group.finish();

    let rows = report::scaling_all(3);
    println!("{}", report::format_scaling(&rows));
    if let Err(e) =
        report::append_bench_rows(report::bench_analysis_path(), &report::scaling_jsonl(&rows))
    {
        eprintln!("warning: could not update BENCH_analysis.json: {e}");
    } else {
        eprintln!("appended {} scaling rows to BENCH_analysis.json", rows.len());
    }
}
