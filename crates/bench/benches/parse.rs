//! Table 3's parse-time column: LL(*) parsing speed (lines/second) on the
//! generated inputs, per suite grammar.

use llstar_bench::{hooks_for, BenchGroup};
use llstar_core::analyze;
use llstar_runtime::{Parser, TokenStream};
use std::hint::black_box;
use std::time::Duration;

const LINES: usize = 300;

fn main() {
    let mut group = BenchGroup::new("parse");
    group.sample_size(10).measurement_time(Duration::from_secs(2));
    for entry in llstar_suite::all() {
        let grammar = entry.load();
        let analysis = analyze(&grammar);
        let input = (entry.generate)(LINES, 42);
        let scanner = grammar.lexer.build().expect("suite lexer builds");
        let tokens = scanner.tokenize(&input).expect("suite input lexes");
        group.throughput_elements(input.lines().count() as u64);
        group.bench_function(entry.name, || {
            let hooks = hooks_for(&entry, &input);
            let mut parser =
                Parser::new(&grammar, &analysis, TokenStream::new(tokens.clone()), hooks);
            let tree = parser.parse_to_eof(entry.start_rule).expect("input parses");
            black_box(tree.token_count())
        });
    }
    group.finish();
}
