//! Gauntlet bench mode: tokens/sec, lookahead-depth distribution,
//! backtrack rate, and memo footprint for every `grammar × engine` cell
//! of the real-world grammar gauntlet — the paper's Tables 3–4
//! reproduced over realistic grammars and MB-scale generated corpora.
//!
//! Appends schema-versioned `gauntlet` rows to `BENCH_analysis.json`
//! (creating the file with the stream header when absent).
//!
//! Flags:
//! - `--quick`: measure the 10 KB smoke corpus instead of the tier
//!   selected by `LLSTAR_GAUNTLET_TIER` (default 1 MB) — CI smoke mode.
//! - `--json PATH`: also write a standalone schema-versioned JSONL
//!   stream (header + gauntlet rows) to `PATH`.

use llstar_bench::gauntlet::GAUNTLET_BENCH_SEED;
use llstar_bench::{format_gauntlet, gauntlet_all, gauntlet_jsonl, report};
use llstar_suite::gauntlet::Tier;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .map(|i| args.get(i + 1).expect("--json needs a path").clone());

    let tier = if quick { Tier::Smoke } else { Tier::from_env() };
    eprintln!("gauntlet: measuring {} corpora (seed {GAUNTLET_BENCH_SEED:#x})", tier.label());
    let rows = gauntlet_all(tier, GAUNTLET_BENCH_SEED);
    println!("{}", format_gauntlet(&rows));

    let jsonl = gauntlet_jsonl(&rows);
    if let Err(e) = report::append_bench_rows(report::bench_analysis_path(), &jsonl) {
        eprintln!("warning: could not update BENCH_analysis.json: {e}");
    } else {
        eprintln!("appended {} gauntlet rows to BENCH_analysis.json", rows.len());
    }
    if let Some(path) = json_path {
        let stream = report::bench_stream_header() + &jsonl;
        std::fs::write(&path, stream).unwrap_or_else(|e| panic!("write {path}: {e}"));
        eprintln!("wrote {} gauntlet rows to {path}", rows.len());
    }
}
