//! Prediction dispatch: tokens/sec through representative suite
//! decisions (fixed-k, cyclic, backtracking) under the linear `edges`
//! scan versus the compiled dense and row-displaced tables.
//!
//! Beyond the per-strategy timings this bench renders the dispatch
//! table and appends the `prediction` rows — table bytes per decision
//! included — to `BENCH_analysis.json` (creating the file, schema
//! header included, when `report_tables` has not run yet).
//!
//! Flags:
//! - `--quick`: shorter walks, fewer reps, harness display skipped
//!   (CI smoke mode).
//! - `--gate`: exit non-zero if the auto-chosen compiled representation
//!   is slower than the linear scan (beyond 10% noise tolerance) on any
//!   measured decision.
//! - `--json PATH`: also write a standalone schema-versioned JSONL
//!   stream (header + prediction rows) to `PATH`.

use llstar_bench::{report, BenchGroup};
use std::hint::black_box;
use std::time::Duration;

const SEED: u64 = 0x11a7_ab1e;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let gate = args.iter().any(|a| a == "--gate");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .map(|i| args.get(i + 1).expect("--json needs a path").clone());

    let (tokens, reps) = if quick { (20_000, 5) } else { (200_000, 10) };
    let cases = report::prediction_cases(tokens, SEED);

    // Per-strategy throughput via the shared harness display (skipped in
    // quick mode: the best-of-reps rows below already cover the gate).
    if !quick {
        let mut group = BenchGroup::new("prediction");
        group
            .sample_size(10)
            .measurement_time(Duration::from_secs(2))
            .throughput_elements(tokens as u64);
        for c in &cases {
            let id = format!("{}/d{}", c.name, c.decision);
            group.bench_function(format!("{id}/linear"), || {
                black_box(report::linear_dispatch(&c.dfa, &c.seq))
            });
            group.bench_function(format!("{id}/dense"), || {
                black_box(report::table_dispatch(&c.dense, &c.classes, &c.seq))
            });
            group.bench_function(format!("{id}/displaced"), || {
                black_box(report::table_dispatch(&c.displaced, &c.classes, &c.seq))
            });
        }
        group.finish();
    }

    let rows = report::measure_prediction(&cases, reps);
    println!("{}", report::format_prediction(&rows));

    let jsonl = report::prediction_jsonl(&rows);
    if let Err(e) = report::append_bench_rows(report::bench_analysis_path(), &jsonl) {
        eprintln!("warning: could not update BENCH_analysis.json: {e}");
    } else {
        eprintln!("appended {} prediction rows to BENCH_analysis.json", rows.len());
    }
    if let Some(path) = json_path {
        let stream = report::bench_stream_header() + &jsonl;
        std::fs::write(&path, stream).unwrap_or_else(|e| panic!("write {path}: {e}"));
        eprintln!("wrote {} prediction rows to {path}", rows.len());
    }

    if gate {
        let mut failed = false;
        for r in &rows {
            let chosen = if r.row_displaced { r.displaced_micros } else { r.dense_micros };
            // 10% tolerance: micro-timings jitter, but the compiled path
            // must never be meaningfully slower than the linear scan.
            if chosen as f64 > r.linear_micros as f64 * 1.10 {
                eprintln!(
                    "GATE FAIL: {}/d{} ({}) compiled {}us > linear {}us",
                    r.name, r.decision, r.class, chosen, r.linear_micros
                );
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
        eprintln!("gate passed: compiled dispatch at least matches linear on all decisions");
    }
}
