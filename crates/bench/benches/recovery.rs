//! Error-recovery overhead: parsing the same generated input three ways
//! per suite grammar — strict (recovery off), recovery-enabled on clean
//! input (the overhead of the machinery on the happy path, which should
//! be noise), and recovery-enabled on an input with ~1% of its tokens
//! corrupted (the cost of actually repairing).

use llstar_bench::{hooks_for, BenchGroup};
use llstar_core::analyze;
use llstar_lexer::Token;
use llstar_rng::Rng64;
use llstar_runtime::{Parser, TokenStream};
use std::hint::black_box;
use std::time::Duration;

const LINES: usize = 300;

/// Same mutation kernel as `report::recovery_run` / the recovery fuzzer.
fn corrupt_tokens(tokens: &mut Vec<Token>, pct: f64, seed: u64) {
    let mut rng = Rng64::seed_from_u64(seed);
    let body = tokens.len().saturating_sub(1);
    let sites = ((body as f64 * pct / 100.0).ceil() as usize).max(1);
    for _ in 0..sites {
        let body = tokens.len() - 1;
        if body == 0 {
            break;
        }
        let i = rng.gen_range(0..body);
        match rng.gen_range(0..3u8) {
            0 => {
                tokens.remove(i);
            }
            1 => {
                let t = tokens[i];
                tokens.insert(i, t);
            }
            _ => {
                if i + 1 < body {
                    tokens.swap(i, i + 1);
                } else {
                    let t = tokens[i];
                    tokens.insert(i, t);
                }
            }
        }
    }
}

fn main() {
    let mut group = BenchGroup::new("recovery");
    group.sample_size(10).measurement_time(Duration::from_secs(2));
    for entry in llstar_suite::all() {
        let grammar = entry.load();
        let analysis = analyze(&grammar);
        let input = (entry.generate)(LINES, 42);
        let scanner = grammar.lexer.build().expect("suite lexer builds");
        let tokens = scanner.tokenize(&input).expect("suite input lexes");
        let mut corrupted = tokens.clone();
        corrupt_tokens(&mut corrupted, 1.0, 42);
        group.throughput_elements(input.lines().count() as u64);
        group.bench_function(format!("{}/strict", entry.name), || {
            let mut parser = Parser::new(
                &grammar,
                &analysis,
                TokenStream::new(tokens.clone()),
                hooks_for(&entry, &input),
            );
            let tree = parser.parse_to_eof(entry.start_rule).expect("clean input parses");
            black_box(tree.token_count())
        });
        group.bench_function(format!("{}/recovery-clean", entry.name), || {
            let mut parser = Parser::new(
                &grammar,
                &analysis,
                TokenStream::new(tokens.clone()),
                hooks_for(&entry, &input),
            );
            parser.enable_recovery(usize::MAX);
            let tree = parser.parse_to_eof(entry.start_rule).expect("clean input parses");
            black_box(tree.token_count())
        });
        group.bench_function(format!("{}/recovery-1pct-corrupt", entry.name), || {
            let mut parser = Parser::new(
                &grammar,
                &analysis,
                TokenStream::new(corrupted.clone()),
                hooks_for(&entry, &input),
            );
            parser.enable_recovery(usize::MAX);
            let tree = parser.parse_to_eof(entry.start_rule).expect("recovery reaches EOF");
            black_box((tree.token_count(), parser.take_errors().len()))
        });
    }
    group.finish();
}
