//! Table 1's "Runtime" column: static grammar analysis speed per suite
//! grammar (grammar parse + ATN + all lookahead DFAs).

use criterion::{criterion_group, criterion_main, Criterion};
use llstar_core::analyze;
use std::hint::black_box;
use std::time::Duration;

fn bench_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("analysis");
    group.sample_size(10).measurement_time(Duration::from_secs(2));
    for entry in llstar_suite::all() {
        group.bench_function(entry.name, |b| {
            b.iter(|| {
                let grammar = entry.load();
                let analysis = analyze(black_box(&grammar));
                black_box(analysis.decisions.len())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_analysis);
criterion_main!(benches);
