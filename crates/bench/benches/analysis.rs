//! Table 1's "Runtime" column: static grammar analysis speed per suite
//! grammar (grammar parse + ATN + all lookahead DFAs).

use llstar_bench::BenchGroup;
use llstar_core::analyze;
use std::hint::black_box;
use std::time::Duration;

fn main() {
    let mut group = BenchGroup::new("analysis");
    group.sample_size(10).measurement_time(Duration::from_secs(2));
    for entry in llstar_suite::all() {
        group.bench_function(entry.name, || {
            let grammar = entry.load();
            let analysis = analyze(black_box(&grammar));
            black_box(analysis.decisions.len())
        });
    }
    group.finish();
}
