//! Section 6.2's memoization ablation: "the RatsC grammar appears not to
//! terminate if we turn off ANTLR memoization support. In contrast, the
//! VB.NET and C# parsers are fine without it."

use llstar_bench::{hooks_for, BenchGroup};
use llstar_core::analyze;
use llstar_runtime::{Parser, TokenStream};
use std::hint::black_box;
use std::time::Duration;

/// Small enough that the memo-off RatsC configuration still finishes.
const LINES: usize = 60;

fn main() {
    let mut group = BenchGroup::new("memoization");
    group.sample_size(10).measurement_time(Duration::from_secs(2));
    for name in ["RatsC", "CSharp"] {
        let entry = llstar_suite::by_name(name).expect("suite grammar");
        let grammar = entry.load();
        let analysis = analyze(&grammar);
        let input = (entry.generate)(LINES, 42);
        let scanner = grammar.lexer.build().expect("lexer builds");
        let tokens = scanner.tokenize(&input).expect("input lexes");
        for memo in [true, false] {
            let label = format!("{name}/memo_{}", if memo { "on" } else { "off" });
            group.bench_function(&label, || {
                let hooks = hooks_for(&entry, &input);
                let mut parser =
                    Parser::new(&grammar, &analysis, TokenStream::new(tokens.clone()), hooks);
                parser.set_memoize(memo);
                let tree = parser.parse_to_eof(entry.start_rule).expect("parses");
                black_box(tree.token_count())
            });
        }
    }
    group.finish();
}
