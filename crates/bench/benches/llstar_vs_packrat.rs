//! The Section 6.2 comparison: LL(*) parsing (analysis removes almost all
//! speculation) versus pure packrat/PEG parsing (speculation everywhere).
//! The paper reports ANTLR v3's LL(*) at ~2.5× v2's backtracking parser;
//! here the same grammar is run through both engines.

use llstar_bench::BenchGroup;
use llstar_core::analyze;
use llstar_packrat::PackratParser;
use llstar_runtime::{NopHooks, Parser, TokenStream};
use std::hint::black_box;
use std::time::Duration;

const LINES: usize = 300;

fn main() {
    let mut group = BenchGroup::new("llstar_vs_packrat");
    group.sample_size(10).measurement_time(Duration::from_secs(2));

    // Java (PEG-mode) exercises both engines on identical input; the
    // packrat baseline ignores the auto-inserted predicates' DFAs and
    // speculates at every ordered choice.
    let entry = llstar_suite::by_name("Java").expect("suite grammar");
    let grammar = entry.load();
    let analysis = analyze(&grammar);
    let input = (entry.generate)(LINES, 42);
    let scanner = grammar.lexer.build().expect("lexer builds");
    let tokens = scanner.tokenize(&input).expect("input lexes");

    group.bench_function("llstar", || {
        let mut parser =
            Parser::new(&grammar, &analysis, TokenStream::new(tokens.clone()), NopHooks);
        let tree = parser.parse_to_eof(entry.start_rule).expect("parses");
        black_box(tree.token_count())
    });
    group.bench_function("packrat", || {
        let mut parser = PackratParser::new(&grammar, tokens.clone());
        parser.recognize(entry.start_rule).expect("recognizes");
        black_box(parser.stats().rule_attempts)
    });
    group.finish();
}
