//! Metrics-overhead bench mode: the cost of the always-on counters and
//! the optional trace tiers, measured per gauntlet grammar over the
//! tier corpus (see `llstar_bench::overhead` for the mode matrix).
//!
//! Appends schema-versioned `metrics_overhead` rows to
//! `BENCH_analysis.json` (creating the file with the stream header when
//! absent).
//!
//! Flags:
//! - `--quick`: measure the 10 KB smoke corpus with fewer reps instead
//!   of the tier selected by `LLSTAR_GAUNTLET_TIER` (default 1 MB) —
//!   CI smoke mode.
//! - `--gate`: exit non-zero if `metrics-on` is more than 5% slower
//!   than `metrics-off` on any grammar (the acceptance budget for the
//!   always-on substrate).
//! - `--json PATH`: also write a standalone schema-versioned JSONL
//!   stream (header + metrics_overhead rows) to `PATH`.

use llstar_bench::overhead::{
    format_overhead, gate_violations, overhead_all, overhead_jsonl, GAUNTLET_BENCH_SEED,
};
use llstar_bench::report;
use llstar_suite::gauntlet::Tier;

/// The acceptance budget: metrics-on within 5% of metrics-off.
const GATE_TOLERANCE_PCT: f64 = 5.0;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let gate = args.iter().any(|a| a == "--gate");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .map(|i| args.get(i + 1).expect("--json needs a path").clone());

    let (tier, reps) = if quick { (Tier::Smoke, 3) } else { (Tier::from_env(), 5) };
    eprintln!(
        "metrics_overhead: measuring {} corpora, best of {reps} reps (seed {GAUNTLET_BENCH_SEED:#x})",
        tier.label()
    );
    let rows = overhead_all(tier, GAUNTLET_BENCH_SEED, reps);
    println!("{}", format_overhead(&rows));

    let jsonl = overhead_jsonl(&rows);
    if let Err(e) = report::append_bench_rows(report::bench_analysis_path(), &jsonl) {
        eprintln!("warning: could not update BENCH_analysis.json: {e}");
    } else {
        eprintln!("appended {} metrics_overhead rows to BENCH_analysis.json", rows.len());
    }
    if let Some(path) = json_path {
        let stream = report::bench_stream_header() + &jsonl;
        std::fs::write(&path, stream).unwrap_or_else(|e| panic!("write {path}: {e}"));
        eprintln!("wrote {} metrics_overhead rows to {path}", rows.len());
    }

    if gate {
        let violations = gate_violations(&rows, GATE_TOLERANCE_PCT);
        for (grammar, pct) in &violations {
            eprintln!(
                "GATE: {grammar}: metrics-on is {pct:.2}% slower than metrics-off \
                 (budget {GATE_TOLERANCE_PCT}%)"
            );
        }
        if !violations.is_empty() {
            std::process::exit(1);
        }
        eprintln!("gate passed: metrics-on within {GATE_TOLERANCE_PCT}% of metrics-off");
    }
}
