//! A minimal timing harness for the `benches/` targets.
//!
//! The build environment is fully offline, so Criterion cannot be
//! fetched; this module supplies the thin slice of its surface the
//! benches use (groups, sample counts, measurement budgets, element
//! throughput) over `std::time` only. Results print one line per
//! benchmark: mean, min, max, and optional throughput.

use std::time::{Duration, Instant};

/// A named collection of benchmarks sharing sampling settings.
pub struct BenchGroup {
    name: String,
    sample_size: usize,
    measurement: Duration,
    throughput: Option<u64>,
}

impl BenchGroup {
    /// A group with default settings (10 samples, 2 s budget).
    pub fn new(name: impl Into<String>) -> Self {
        BenchGroup {
            name: name.into(),
            sample_size: 10,
            measurement: Duration::from_secs(2),
            throughput: None,
        }
    }

    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Wall-clock budget per benchmark; sampling stops early once spent.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Report `n` elements processed per iteration (prints elem/s).
    pub fn throughput_elements(&mut self, n: u64) -> &mut Self {
        self.throughput = Some(n);
        self
    }

    /// Times `f`, printing a one-line summary.
    pub fn bench_function<R>(
        &mut self,
        label: impl AsRef<str>,
        mut f: impl FnMut() -> R,
    ) -> &mut Self {
        // One untimed warm-up iteration.
        std::hint::black_box(f());
        let mut samples: Vec<Duration> = Vec::with_capacity(self.sample_size);
        let deadline = Instant::now() + self.measurement;
        for _ in 0..self.sample_size {
            let t = Instant::now();
            std::hint::black_box(f());
            samples.push(t.elapsed());
            if Instant::now() >= deadline && samples.len() >= 3 {
                break;
            }
        }
        let total: Duration = samples.iter().sum();
        let mean = total / samples.len() as u32;
        let min = samples.iter().min().copied().unwrap_or_default();
        let max = samples.iter().max().copied().unwrap_or_default();
        let mut line = format!(
            "{}/{:<28} time: [{} {} {}] ({} samples)",
            self.name,
            label.as_ref(),
            fmt_duration(min),
            fmt_duration(mean),
            fmt_duration(max),
            samples.len()
        );
        if let Some(elems) = self.throughput {
            let secs = mean.as_secs_f64();
            if secs > 0.0 {
                line.push_str(&format!("  thrpt: {:.0} elem/s", elems as f64 / secs));
            }
        }
        println!("{line}");
        self
    }

    /// Ends the group (parity with Criterion's API; prints a separator).
    pub fn finish(&self) {
        println!();
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", ns as f64 / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_and_respects_sample_size() {
        let mut calls = 0u32;
        BenchGroup::new("test")
            .sample_size(3)
            .measurement_time(Duration::from_millis(50))
            .bench_function("counter", || calls += 1);
        // 1 warm-up + up to 3 samples.
        assert!((2..=4).contains(&calls), "{calls}");
    }

    #[test]
    fn durations_format_readably() {
        assert_eq!(fmt_duration(Duration::from_nanos(10)), "10 ns");
        assert!(fmt_duration(Duration::from_micros(15)).contains("µs"));
        assert!(fmt_duration(Duration::from_millis(15)).contains("ms"));
        assert!(fmt_duration(Duration::from_secs(2)).ends_with(" s"));
    }
}
