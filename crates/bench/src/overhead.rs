//! Metrics-overhead bench: what the always-on counters cost. Every
//! gauntlet grammar's tier corpus is parsed by the compiled-dispatch
//! interpreter in four observability modes:
//!
//! - `metrics-off` — counters disabled ([`Parser::set_metrics_enabled`]),
//!   the hypothetical zero-instrumentation baseline;
//! - `metrics-on` — the production default (counters enabled, no sink);
//! - `trace-sampled-64` — counters plus a [`SamplingSink`] keeping 1 in
//!   64 top-level prediction windows, serialized to a null writer;
//! - `trace-full` — counters plus the full JSONL trace stream to a null
//!   writer (the price of `llstar trace`, for scale).
//!
//! The off/on pair is measured best-of-`reps` (the gate compares those
//! two); the trace modes run once — they exist to bound the tiers, not
//! to gate. Timing excludes lexing: token streams are materialized
//! before the clock starts, exactly like the gauntlet bench.

use llstar_core::{analyze, GrammarAnalysis, Json};
use llstar_runtime::{JsonlSink, NopHooks, Parser, SamplingSink, TokenStream, TraceSink};
use llstar_suite::gauntlet::{self, GauntletEntry, Tier};
use std::time::{Duration, Instant};

/// Corpus seed for the overhead rows (shared with the gauntlet bench so
/// the two measure the same inputs).
pub use crate::gauntlet::GAUNTLET_BENCH_SEED;

/// Sampling divisor for the `trace-sampled-64` mode.
pub const SAMPLE_N: u64 = 64;

/// The observability configurations, measured in this order.
pub const MODES: [&str; 4] = ["metrics-off", "metrics-on", "trace-sampled-64", "trace-full"];

/// One `grammar × mode` measurement.
#[derive(Debug, Clone)]
pub struct OverheadRow {
    /// Gauntlet grammar name.
    pub grammar: &'static str,
    /// Corpus tier label.
    pub tier: &'static str,
    /// Observability mode (see [`MODES`]).
    pub mode: &'static str,
    /// Repetitions measured (row keeps the best).
    pub reps: u32,
    /// Corpus tokens (EOF excluded).
    pub input_tokens: usize,
    /// Best whole-corpus parse time, lexing excluded.
    pub parse_time: Duration,
    /// Tokens per second at the best rep.
    pub tokens_per_sec: u64,
    /// Slowdown versus this grammar's `metrics-off` row, in percent
    /// (clamped at 0: a faster-than-baseline rep is measurement noise).
    pub overhead_pct: f64,
}

fn pass(
    g: &llstar_grammar::Grammar,
    a: &GrammarAnalysis,
    start: &str,
    streams: &[Vec<llstar_lexer::Token>],
    metrics: bool,
    sink: Option<&mut dyn TraceSink>,
) -> Duration {
    let mut parser = Parser::new(g, a, TokenStream::new(streams[0].clone()), NopHooks);
    parser.set_metrics_enabled(metrics);
    if let Some(sink) = sink {
        parser.set_trace_sink(sink);
    }
    let mut elapsed = Duration::ZERO;
    for (i, stream) in streams.iter().enumerate() {
        let tokens = TokenStream::new(stream.clone());
        if i > 0 {
            parser.reset(tokens);
        }
        let t0 = Instant::now();
        parser
            .parse_to_eof(start)
            .unwrap_or_else(|e| panic!("overhead bench: corpus input rejected: {e}"));
        elapsed += t0.elapsed();
    }
    elapsed
}

fn best_of(reps: u32, mut one: impl FnMut() -> Duration) -> Duration {
    (0..reps).map(|_| one()).min().expect("at least one rep")
}

/// Measures all four modes for one gauntlet grammar.
pub fn overhead_run(entry: &GauntletEntry, tier: Tier, seed: u64, reps: u32) -> Vec<OverheadRow> {
    let inputs = gauntlet::corpus(entry, tier, seed);
    let g = entry.load();
    let a = analyze(&g);
    let scanner = g.lexer.build().expect("gauntlet lexer builds");
    let streams: Vec<Vec<llstar_lexer::Token>> = inputs
        .iter()
        .map(|(label, text)| {
            scanner.tokenize(text).unwrap_or_else(|e| panic!("{label}: fails to lex: {e}"))
        })
        .collect();
    let input_tokens: usize = streams.iter().map(|s| s.len() - 1).sum();
    let start = entry.start_rule;

    let timings: Vec<(&'static str, u32, Duration)> = MODES
        .iter()
        .map(|&mode| {
            let (r, t) = match mode {
                "metrics-off" => {
                    (reps, best_of(reps, || pass(&g, &a, start, &streams, false, None)))
                }
                "metrics-on" => (reps, best_of(reps, || pass(&g, &a, start, &streams, true, None))),
                "trace-sampled-64" => {
                    let mut out = JsonlSink::new(std::io::sink());
                    let mut sampler = SamplingSink::new(&mut out, SAMPLE_N);
                    (1, pass(&g, &a, start, &streams, true, Some(&mut sampler)))
                }
                "trace-full" => {
                    let mut out = JsonlSink::new(std::io::sink());
                    (1, pass(&g, &a, start, &streams, true, Some(&mut out)))
                }
                _ => unreachable!("unknown mode"),
            };
            (mode, r, t)
        })
        .collect();

    let off = timings[0].2;
    timings
        .into_iter()
        .map(|(mode, r, t)| {
            let overhead = (100.0 * (t.as_secs_f64() / off.as_secs_f64() - 1.0)).max(0.0);
            OverheadRow {
                grammar: entry.name,
                tier: tier.label(),
                mode,
                reps: r,
                input_tokens,
                parse_time: t,
                tokens_per_sec: if t.as_secs_f64() > 0.0 {
                    (input_tokens as f64 / t.as_secs_f64()) as u64
                } else {
                    0
                },
                overhead_pct: overhead,
            }
        })
        .collect()
}

/// Measures every gauntlet grammar at `tier`.
pub fn overhead_all(tier: Tier, seed: u64, reps: u32) -> Vec<OverheadRow> {
    gauntlet::all().iter().flat_map(|e| overhead_run(e, tier, seed, reps)).collect()
}

/// JSONL export — the `metrics_overhead` record type in
/// `BENCH_analysis.json`. Fractional overhead is a scaled integer
/// (`overhead-pct-milli`), matching the stream's u64-only number model.
pub fn overhead_jsonl(rows: &[OverheadRow]) -> String {
    let mut out = String::new();
    for r in rows {
        let line = Json::Object(vec![
            ("type".into(), Json::Str("metrics_overhead".into())),
            ("grammar".into(), Json::Str(r.grammar.to_string())),
            ("tier".into(), Json::Str(r.tier.to_string())),
            ("mode".into(), Json::Str(r.mode.to_string())),
            ("reps".into(), Json::Num(u64::from(r.reps))),
            ("input-tokens".into(), Json::Num(r.input_tokens as u64)),
            ("parse-micros".into(), Json::Num(r.parse_time.as_micros() as u64)),
            ("tokens-per-sec".into(), Json::Num(r.tokens_per_sec)),
            ("overhead-pct-milli".into(), Json::Num((r.overhead_pct * 1000.0) as u64)),
        ]);
        out.push_str(&line.to_string());
        out.push('\n');
    }
    out
}

/// Renders the rows as an aligned text table.
pub fn format_overhead(rows: &[OverheadRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<8} {:<6} {:<18} {:>4} {:>12} {:>12} {:>12} {:>9}\n",
        "grammar", "tier", "mode", "reps", "tokens", "micros", "tok/s", "overhead"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<8} {:<6} {:<18} {:>4} {:>12} {:>12} {:>12} {:>8.2}%\n",
            r.grammar,
            r.tier,
            r.mode,
            r.reps,
            r.input_tokens,
            r.parse_time.as_micros(),
            r.tokens_per_sec,
            r.overhead_pct,
        ));
    }
    out
}

/// The gate the CI bench step enforces: `metrics-on` within
/// `tolerance_pct` of `metrics-off` for every grammar. Returns the
/// violations (grammar, measured overhead).
pub fn gate_violations(rows: &[OverheadRow], tolerance_pct: f64) -> Vec<(&'static str, f64)> {
    rows.iter()
        .filter(|r| r.mode == "metrics-on" && r.overhead_pct > tolerance_pct)
        .map(|r| (r.grammar, r.overhead_pct))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_rows_cover_every_mode_and_jsonl_round_trips() {
        let entry = gauntlet::by_name("json").expect("json gauntlet entry");
        let rows = overhead_run(&entry, Tier::Smoke, GAUNTLET_BENCH_SEED, 2);
        assert_eq!(rows.len(), MODES.len());
        for (row, mode) in rows.iter().zip(MODES) {
            assert_eq!(row.mode, mode);
            assert!(row.input_tokens > 0);
            assert!(row.parse_time > Duration::ZERO, "{mode}: zero parse time");
        }
        assert_eq!(rows[0].overhead_pct, 0.0, "baseline row must have zero overhead");

        let jsonl = overhead_jsonl(&rows);
        let parsed = crate::report::load_bench_rows(&jsonl).expect("rows parse");
        assert_eq!(parsed.len(), rows.len());
        for row in &parsed {
            assert_eq!(row.get("type").and_then(Json::as_str), Some("metrics_overhead"));
            assert!(row.get("overhead-pct-milli").and_then(Json::as_u64).is_some());
        }

        // An obviously-breached gate trips; the real rows at smoke tier
        // are too noisy to assert on here (the 1 MB tier gates in CI).
        assert!(gate_violations(&rows, f64::INFINITY).is_empty());
        let mut slow = rows.clone();
        for r in &mut slow {
            if r.mode == "metrics-on" {
                r.overhead_pct = 50.0;
            }
        }
        assert_eq!(gate_violations(&slow, 5.0), vec![("json", 50.0)]);
    }
}
