//! Regenerates the data behind every table and figure of the paper's
//! evaluation (Section 6) from the suite grammars and generated inputs.

use llstar_core::{
    analyze, analyze_with, AnalysisOptions, AnalysisRecord, CompiledDfa, DecisionClass,
    GrammarAnalysis, Json, LookaheadDfa, TokenClasses, NO_TARGET,
};
use llstar_grammar::Grammar;
use llstar_lexer::TokenType;
use llstar_rng::Rng64;
use llstar_runtime::{CoverageSink, MapHooks, ParseStats, Parser, TokenStream};
use llstar_suite::{self as suite, SuiteEntry};
use std::time::{Duration, Instant};

/// One row of Table 1: grammar decision characteristics.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Grammar name.
    pub name: &'static str,
    /// Non-empty grammar source lines.
    pub lines: usize,
    /// Number of parsing decisions (the paper's *n*).
    pub decisions: usize,
    /// Decisions with acyclic, predicate-free DFAs (fixed LL(k)).
    pub fixed: usize,
    /// Decisions with cyclic, predicate-free DFAs.
    pub cyclic: usize,
    /// Decisions whose DFAs contain syntactic-predicate edges
    /// (potentially backtracking).
    pub backtrack: usize,
    /// Time to analyze the grammar and build all DFAs.
    pub analysis_time: Duration,
}

/// One row of Table 2: fixed-lookahead depth distribution.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Grammar name.
    pub name: &'static str,
    /// Percentage of decisions that are fixed LL(k).
    pub pct_llk: f64,
    /// Percentage of decisions that are LL(1).
    pub pct_ll1: f64,
    /// `counts_by_k[k-1]` = number of fixed decisions with lookahead k
    /// (up to the deepest k observed).
    pub counts_by_k: Vec<usize>,
}

/// One row of Table 3: runtime lookahead behaviour.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Grammar name.
    pub name: &'static str,
    /// Lines in the generated input.
    pub input_lines: usize,
    /// Tokens in the generated input.
    pub input_tokens: usize,
    /// Wall-clock parse time (excluding lexing).
    pub parse_time: Duration,
    /// Distinct decisions exercised (the paper's *n*).
    pub decisions_covered: usize,
    /// Average lookahead depth per decision event (*avg k*).
    pub avg_k: f64,
    /// Average speculation depth over backtracking events (*back. k*).
    pub back_k: f64,
    /// Deepest lookahead observed (*max k*).
    pub max_k: u64,
}

/// One row of Table 4: runtime backtracking behaviour.
#[derive(Debug, Clone)]
pub struct Table4Row {
    /// Grammar name.
    pub name: &'static str,
    /// Decisions that can potentially backtrack (static).
    pub can_backtrack: usize,
    /// Decisions that actually backtracked on this input.
    pub did_backtrack: usize,
    /// Total decision events.
    pub decision_events: u64,
    /// Percentage of events that backtracked.
    pub backtrack_pct: f64,
    /// Likelihood an event at a potentially-backtracking decision
    /// actually backtracks (*Back. rate*).
    pub back_rate_pct: f64,
}

/// Everything measured for one grammar in one run.
#[derive(Debug)]
pub struct GrammarRun {
    /// The suite entry.
    pub entry: SuiteEntry,
    /// The prepared grammar.
    pub grammar: Grammar,
    /// Static analysis results.
    pub analysis: GrammarAnalysis,
    /// Runtime statistics from parsing the generated input.
    pub stats: ParseStats,
    /// Parse wall-clock time.
    pub parse_time: Duration,
    /// Input size in lines.
    pub input_lines: usize,
    /// Input size in tokens (excluding EOF).
    pub input_tokens: usize,
}

/// The hook table a suite grammar needs (the RatsC `isTypeName` oracle).
pub fn hooks_for(entry: &SuiteEntry, source: &str) -> MapHooks {
    let mut hooks = MapHooks::new();
    if entry.name == "RatsC" {
        let src = source.to_string();
        hooks
            .on_pred("isTypeName", move |ctx| suite::c::is_typedef_name(ctx.next_token.text(&src)));
    }
    hooks
}

/// Analyzes `entry`'s grammar and parses a generated input of roughly
/// `input_lines` lines.
///
/// # Panics
/// Panics if the bundled grammar fails to lex/parse its own generated
/// input (a bug in the suite).
pub fn run_grammar(entry: SuiteEntry, input_lines: usize, seed: u64) -> GrammarRun {
    let grammar = entry.load();
    let analysis = analyze(&grammar);
    let input = (entry.generate)(input_lines, seed);
    let scanner = grammar.lexer.build().expect("suite lexer builds");
    let tokens = scanner.tokenize(&input).expect("suite input lexes");
    let input_tokens = tokens.len() - 1;
    let hooks = hooks_for(&entry, &input);
    let mut parser = Parser::new(&grammar, &analysis, TokenStream::new(tokens), hooks);
    let t0 = Instant::now();
    parser
        .parse_to_eof(entry.start_rule)
        .unwrap_or_else(|e| panic!("{}: generated input failed to parse: {e}", entry.name));
    let parse_time = t0.elapsed();
    let stats = parser.stats().clone();
    GrammarRun {
        entry,
        grammar,
        analysis,
        stats,
        parse_time,
        input_lines: input.lines().count(),
        input_tokens,
    }
}

/// Per-decision classes for the grammar decisions (synthetic
/// synpred-fragment decisions excluded, as in the paper's counts).
pub fn decision_classes(analysis: &GrammarAnalysis) -> Vec<DecisionClass> {
    analysis
        .atn
        .decisions
        .iter()
        .filter(|d| d.is_grammar_decision())
        .map(|d| analysis.decision(d.id).dfa.classify())
        .collect()
}

/// `can_backtrack[i]` for **every** decision id (synthetic included,
/// indexed by `DecisionId`), for [`ParseStats::backtrack_trigger_rate`].
pub fn can_backtrack_by_id(analysis: &GrammarAnalysis) -> Vec<bool> {
    analysis.decisions.iter().map(|d| d.dfa.uses_backtrack()).collect()
}

impl GrammarRun {
    /// This run's Table 1 row.
    pub fn table1_row(&self) -> Table1Row {
        let classes = decision_classes(&self.analysis);
        Table1Row {
            name: self.entry.name,
            lines: self.entry.grammar_lines(),
            decisions: classes.len(),
            fixed: classes.iter().filter(|c| matches!(c, DecisionClass::Fixed { .. })).count(),
            cyclic: classes.iter().filter(|c| matches!(c, DecisionClass::Cyclic)).count(),
            backtrack: classes.iter().filter(|c| matches!(c, DecisionClass::Backtrack)).count(),
            analysis_time: self.analysis.elapsed,
        }
    }

    /// This run's Table 2 row.
    pub fn table2_row(&self) -> Table2Row {
        let classes = decision_classes(&self.analysis);
        let total = classes.len().max(1);
        let mut counts_by_k: Vec<usize> = Vec::new();
        let mut ll1 = 0usize;
        for c in &classes {
            if let DecisionClass::Fixed { k } = c {
                let k = *k as usize;
                if counts_by_k.len() < k {
                    counts_by_k.resize(k, 0);
                }
                counts_by_k[k - 1] += 1;
                if k == 1 {
                    ll1 += 1;
                }
            }
        }
        let fixed: usize = counts_by_k.iter().sum();
        Table2Row {
            name: self.entry.name,
            pct_llk: 100.0 * fixed as f64 / total as f64,
            pct_ll1: 100.0 * ll1 as f64 / total as f64,
            counts_by_k,
        }
    }

    /// This run's Table 3 row.
    pub fn table3_row(&self) -> Table3Row {
        Table3Row {
            name: self.entry.name,
            input_lines: self.input_lines,
            input_tokens: self.input_tokens,
            parse_time: self.parse_time,
            decisions_covered: self.stats.decisions_covered(),
            avg_k: self.stats.avg_lookahead(),
            back_k: self.stats.avg_backtrack_depth(),
            max_k: self.stats.max_lookahead(),
        }
    }

    /// This run's Table 4 row.
    pub fn table4_row(&self) -> Table4Row {
        let can = can_backtrack_by_id(&self.analysis);
        // "Can backtrack" counts grammar decisions only, like Table 1.
        let can_grammar = self
            .analysis
            .atn
            .decisions
            .iter()
            .filter(|d| d.is_grammar_decision() && can[d.id.index()])
            .count();
        Table4Row {
            name: self.entry.name,
            can_backtrack: can_grammar,
            did_backtrack: self.stats.decisions_that_backtracked(),
            decision_events: self.stats.total_events(),
            backtrack_pct: self.stats.backtrack_event_rate(),
            back_rate_pct: self.stats.backtrack_trigger_rate(&can),
        }
    }
}

/// Runs every suite grammar, producing all four tables.
pub fn run_all(input_lines: usize, seed: u64) -> Vec<GrammarRun> {
    suite::all().into_iter().map(|e| run_grammar(e, input_lines, seed)).collect()
}

/// JSONL export of the observability layer's per-decision metrics for a
/// set of runs (the content of `BENCH_analysis.json`): one `analysis`
/// line per grammar decision (construction cost counters, tagged with
/// the grammar name) and one `summary` line per grammar folding in the
/// runtime behaviour. Timing appears only in the summary lines — the
/// per-decision records are byte-deterministic.
pub fn analysis_jsonl(runs: &[GrammarRun]) -> String {
    let mut out = String::new();
    for run in runs {
        for d in &run.analysis.atn.decisions {
            if !d.is_grammar_decision() {
                continue;
            }
            let da = run.analysis.decision(d.id);
            let record = AnalysisRecord {
                decision: d.id.0,
                rule: run.grammar.rule(d.rule).name.clone(),
                class: da.dfa.classify().to_string(),
                metrics: da.metrics,
            };
            // Tag the record with its grammar, right after "type".
            let mut fields = match Json::parse(&record.to_json()).expect("records are valid JSON") {
                Json::Object(fields) => fields,
                _ => unreachable!("analysis records are objects"),
            };
            fields.insert(1, ("grammar".to_string(), Json::Str(run.entry.name.to_string())));
            out.push_str(&Json::Object(fields).to_string());
            out.push('\n');
        }
        let total = run.analysis.total_metrics();
        let s = &run.stats;
        let summary = Json::Object(vec![
            ("type".into(), Json::Str("summary".into())),
            ("grammar".into(), Json::Str(run.entry.name.to_string())),
            ("decisions".into(), Json::Num(decision_classes(&run.analysis).len() as u64)),
            ("closures".into(), Json::Num(total.closure_calls)),
            ("configs".into(), Json::Num(total.configs_created)),
            ("dfa-states".into(), Json::Num(total.dfa_states)),
            ("dfa-edges".into(), Json::Num(total.dfa_edges)),
            ("input-tokens".into(), Json::Num(run.input_tokens as u64)),
            ("events".into(), Json::Num(s.total_events())),
            ("max-lookahead".into(), Json::Num(s.max_lookahead())),
            ("backtracks".into(), Json::Num(s.total_backtrack_events())),
            ("memo-hits".into(), Json::Num(s.memo_hits)),
            ("memo-entries".into(), Json::Num(s.memo_entries)),
            ("analysis-micros".into(), Json::Num(run.analysis.elapsed.as_micros() as u64)),
            ("parse-micros".into(), Json::Num(run.parse_time.as_micros() as u64)),
        ]);
        out.push_str(&summary.to_string());
        out.push('\n');
    }
    out
}

// ---------------------------------------------------------------------------
// Error-recovery overhead
// ---------------------------------------------------------------------------

/// Recovery-overhead measurements for one suite grammar: the same
/// generated input parsed strict, parsed with recovery enabled (the
/// clean-input overhead, which should be noise), and parsed with
/// recovery after ~1% of its tokens were corrupted.
#[derive(Debug)]
pub struct RecoveryRow {
    /// Grammar name.
    pub name: &'static str,
    /// Tokens in the clean input (excluding EOF).
    pub input_tokens: usize,
    /// Corruption sites applied (~1% of tokens).
    pub corrupted_sites: usize,
    /// Diagnostics reported on the corrupted input.
    pub diagnostics: usize,
    /// Recovery counters from the corrupted parse.
    pub stats: ParseStats,
    /// Strict parse of the clean input.
    pub clean_strict: Duration,
    /// Recovery-enabled parse of the clean input (overhead vs strict).
    pub clean_recovery: Duration,
    /// Recovery-enabled parse of the corrupted input.
    pub corrupt_recovery: Duration,
}

/// Corrupts roughly `pct`% of `tokens` (the trailing EOF is never
/// touched) with seeded delete/duplicate/swap mutations, mirroring
/// `tests/recovery_fuzz.rs`. Returns the number of sites mutated.
fn corrupt_tokens(tokens: &mut Vec<llstar_lexer::Token>, pct: f64, seed: u64) -> usize {
    let mut rng = llstar_rng::Rng64::seed_from_u64(seed);
    let body = tokens.len().saturating_sub(1); // keep EOF last
    let sites = ((body as f64 * pct / 100.0).ceil() as usize).max(1);
    for _ in 0..sites {
        let body = tokens.len() - 1;
        if body == 0 {
            break;
        }
        let i = rng.gen_range(0..body);
        match rng.gen_range(0..3u8) {
            0 => {
                tokens.remove(i);
            }
            1 => {
                let t = tokens[i];
                tokens.insert(i, t);
            }
            _ => {
                if i + 1 < body {
                    tokens.swap(i, i + 1);
                } else {
                    let t = tokens[i];
                    tokens.insert(i, t);
                }
            }
        }
    }
    sites
}

/// Measures recovery overhead for one suite grammar on a generated
/// input of roughly `input_lines` lines.
///
/// # Panics
/// Panics if the clean input fails to parse or the corrupted input
/// defeats recovery (both would be bugs, and both are fuzzed).
pub fn recovery_run(entry: SuiteEntry, input_lines: usize, seed: u64) -> RecoveryRow {
    let grammar = entry.load();
    let analysis = analyze(&grammar);
    let input = (entry.generate)(input_lines, seed);
    let scanner = grammar.lexer.build().expect("suite lexer builds");
    let tokens = scanner.tokenize(&input).expect("suite input lexes");
    let input_tokens = tokens.len() - 1;

    let t0 = Instant::now();
    let mut strict = Parser::new(
        &grammar,
        &analysis,
        TokenStream::new(tokens.clone()),
        hooks_for(&entry, &input),
    );
    strict
        .parse_to_eof(entry.start_rule)
        .unwrap_or_else(|e| panic!("{}: clean input failed strict parse: {e}", entry.name));
    let clean_strict = t0.elapsed();

    let t0 = Instant::now();
    let mut clean = Parser::new(
        &grammar,
        &analysis,
        TokenStream::new(tokens.clone()),
        hooks_for(&entry, &input),
    );
    clean.enable_recovery(usize::MAX);
    clean
        .parse_to_eof(entry.start_rule)
        .unwrap_or_else(|e| panic!("{}: clean input failed under recovery: {e}", entry.name));
    let clean_recovery = t0.elapsed();
    assert!(clean.take_errors().is_empty(), "{}: clean input produced diagnostics", entry.name);

    let mut corrupted = tokens;
    let corrupted_sites = corrupt_tokens(&mut corrupted, 1.0, seed.wrapping_mul(0x9e37_79b9));
    let t0 = Instant::now();
    let mut parser =
        Parser::new(&grammar, &analysis, TokenStream::new(corrupted), hooks_for(&entry, &input));
    parser.enable_recovery(usize::MAX);
    parser
        .parse_to_eof(entry.start_rule)
        .unwrap_or_else(|e| panic!("{}: recovery gave up on 1% corruption: {e}", entry.name));
    let corrupt_recovery = t0.elapsed();
    let diagnostics = parser.take_errors().len();

    RecoveryRow {
        name: entry.name,
        input_tokens,
        corrupted_sites,
        diagnostics,
        stats: parser.stats().clone(),
        clean_strict,
        clean_recovery,
        corrupt_recovery,
    }
}

/// [`recovery_run`] over the whole suite.
pub fn recovery_all(input_lines: usize, seed: u64) -> Vec<RecoveryRow> {
    suite::all().into_iter().map(|e| recovery_run(e, input_lines, seed)).collect()
}

/// JSONL export of the recovery rows: one `recovery` line per grammar,
/// appended to `BENCH_analysis.json` after the analysis records.
pub fn recovery_jsonl(rows: &[RecoveryRow]) -> String {
    let mut out = String::new();
    for r in rows {
        let line = Json::Object(vec![
            ("type".into(), Json::Str("recovery".into())),
            ("grammar".into(), Json::Str(r.name.to_string())),
            ("input-tokens".into(), Json::Num(r.input_tokens as u64)),
            ("corrupted-sites".into(), Json::Num(r.corrupted_sites as u64)),
            ("diagnostics".into(), Json::Num(r.diagnostics as u64)),
            ("recoveries".into(), Json::Num(r.stats.recoveries)),
            ("tokens-deleted".into(), Json::Num(r.stats.tokens_deleted)),
            ("tokens-inserted".into(), Json::Num(r.stats.tokens_inserted)),
            ("tokens-skipped".into(), Json::Num(r.stats.tokens_skipped)),
            ("clean-strict-micros".into(), Json::Num(r.clean_strict.as_micros() as u64)),
            ("clean-recovery-micros".into(), Json::Num(r.clean_recovery.as_micros() as u64)),
            ("corrupt-recovery-micros".into(), Json::Num(r.corrupt_recovery.as_micros() as u64)),
        ]);
        out.push_str(&line.to_string());
        out.push('\n');
    }
    out
}

/// Formats the recovery-overhead table.
pub fn format_recovery(rows: &[RecoveryRow]) -> String {
    let mut out = String::from(
        "Recovery overhead (clean input, recovery on vs off; 1% corrupted tokens)\n\
         Grammar      Tokens  Strict      +Recovery   Overhead%  Sites  Diags  Corrupt-parse\n",
    );
    for r in rows {
        let overhead = 100.0 * (r.clean_recovery.as_secs_f64() - r.clean_strict.as_secs_f64())
            / r.clean_strict.as_secs_f64().max(f64::EPSILON);
        out.push_str(&format!(
            "{:<10} {:>8} {:>10.1?} {:>11.1?} {:>9.1} {:>6} {:>6} {:>13.1?}\n",
            r.name,
            r.input_tokens,
            r.clean_strict,
            r.clean_recovery,
            overhead,
            r.corrupted_sites,
            r.diagnostics,
            r.corrupt_recovery
        ));
    }
    out
}

// ---------------------------------------------------------------------------
// Analysis scaling across worker threads
// ---------------------------------------------------------------------------

/// One cell of the threads × suite-grammar scaling table: how long the
/// full per-decision DFA analysis took at a given worker-thread count.
#[derive(Debug, Clone)]
pub struct ScalingRow {
    /// Grammar name.
    pub name: &'static str,
    /// `AnalysisOptions::threads` for this measurement.
    pub threads: usize,
    /// Best-of-reps analysis wall-clock, microseconds.
    pub micros: u64,
    /// Speedup versus the same grammar's single-thread run, in
    /// thousandths (1850 = 1.85×) — integer so the JSONL stays exact.
    pub speedup_milli: u64,
}

/// The thread counts the scaling table sweeps: 1, 2, 4, 8 capped to the
/// machine, plus full available parallelism.
pub fn scaling_thread_counts() -> Vec<usize> {
    let max = std::thread::available_parallelism().map_or(4, |n| n.get());
    let mut counts = vec![1usize, 2, 4, 8];
    counts.retain(|&n| n <= max.max(2));
    if !counts.contains(&max) {
        counts.push(max);
    }
    counts
}

/// Measures analysis wall-clock for every suite grammar at every thread
/// count (best of `reps` runs — analysis results are byte-identical
/// across thread counts, so only time varies).
pub fn scaling_all(reps: usize) -> Vec<ScalingRow> {
    let counts = scaling_thread_counts();
    let mut rows = Vec::new();
    for entry in suite::all() {
        let grammar = entry.load();
        let base = AnalysisOptions::from_grammar(&grammar);
        let mut baseline = 0u64;
        for &threads in &counts {
            let options = AnalysisOptions { threads, ..base.clone() };
            let micros = (0..reps.max(1))
                .map(|_| {
                    let t0 = Instant::now();
                    let analysis = analyze_with(&grammar, &options);
                    let elapsed = t0.elapsed().as_micros() as u64;
                    std::hint::black_box(analysis.decisions.len());
                    elapsed
                })
                .min()
                .unwrap_or(0)
                .max(1);
            if threads == 1 {
                baseline = micros;
            }
            let speedup_milli = baseline.saturating_mul(1000) / micros;
            rows.push(ScalingRow { name: entry.name, threads, micros, speedup_milli });
        }
    }
    rows
}

/// Formats the threads × grammar speedup table.
pub fn format_scaling(rows: &[ScalingRow]) -> String {
    let counts = scaling_thread_counts();
    let mut out = String::from("Analysis scaling (speedup vs 1 thread; best-of-N wall clock)\n");
    out.push_str(&format!("{:<10} {:>10}", "Grammar", "1-thread"));
    for &t in &counts[1..] {
        out.push_str(&format!(" {:>9}", format!("x{t} thr")));
    }
    out.push('\n');
    for entry in suite::all() {
        let per_grammar: Vec<&ScalingRow> = rows.iter().filter(|r| r.name == entry.name).collect();
        if per_grammar.is_empty() {
            continue;
        }
        let base = per_grammar.iter().find(|r| r.threads == 1).map_or(0, |r| r.micros);
        out.push_str(&format!("{:<10} {:>8}us", entry.name, base));
        for &t in &counts[1..] {
            match per_grammar.iter().find(|r| r.threads == t) {
                Some(r) => out.push_str(&format!(" {:>8.2}x", r.speedup_milli as f64 / 1000.0)),
                None => out.push_str(&format!(" {:>9}", "-")),
            }
        }
        out.push('\n');
    }
    out
}

/// JSONL export of the scaling rows: one `scaling` line per
/// (grammar, thread count), appended to `BENCH_analysis.json`.
pub fn scaling_jsonl(rows: &[ScalingRow]) -> String {
    let mut out = String::new();
    for r in rows {
        let line = Json::Object(vec![
            ("type".into(), Json::Str("scaling".into())),
            ("grammar".into(), Json::Str(r.name.to_string())),
            ("threads".into(), Json::Num(r.threads as u64)),
            ("micros".into(), Json::Num(r.micros)),
            ("speedup-milli".into(), Json::Num(r.speedup_milli)),
        ]);
        out.push_str(&line.to_string());
        out.push('\n');
    }
    out
}

// ---------------------------------------------------------------------------
// Coverage-collection overhead
// ---------------------------------------------------------------------------

/// Coverage-overhead measurements for one suite grammar: the same
/// generated input parsed bare versus parsed with a `CoverageSink`
/// folding the trace stream into a coverage map.
#[derive(Debug)]
pub struct CoverageOverheadRow {
    /// Grammar name.
    pub name: &'static str,
    /// Tokens in the input (excluding EOF).
    pub input_tokens: usize,
    /// Bare parse (no sink attached), microseconds.
    pub plain_micros: u64,
    /// Parse with coverage folding attached, microseconds.
    pub coverage_micros: u64,
    /// Successful non-speculative predictions the map recorded.
    pub predictions: u64,
    /// Alternatives the single generated input left uncovered.
    pub uncovered_alts: usize,
}

/// Measures coverage-collection overhead for one suite grammar.
///
/// # Panics
/// Panics if the generated input fails to parse (a suite bug).
pub fn coverage_overhead_run(
    entry: SuiteEntry,
    input_lines: usize,
    seed: u64,
) -> CoverageOverheadRow {
    let grammar = entry.load();
    let analysis = analyze(&grammar);
    let input = (entry.generate)(input_lines, seed);
    let scanner = grammar.lexer.build().expect("suite lexer builds");
    let tokens = scanner.tokenize(&input).expect("suite input lexes");
    let input_tokens = tokens.len() - 1;

    let t0 = Instant::now();
    let mut plain = Parser::new(
        &grammar,
        &analysis,
        TokenStream::new(tokens.clone()),
        hooks_for(&entry, &input),
    );
    plain
        .parse_to_eof(entry.start_rule)
        .unwrap_or_else(|e| panic!("{}: bare parse failed: {e}", entry.name));
    let plain_micros = (t0.elapsed().as_micros() as u64).max(1);

    let mut sink = CoverageSink::new(&grammar, &analysis);
    let t0 = Instant::now();
    let mut covered =
        Parser::new(&grammar, &analysis, TokenStream::new(tokens), hooks_for(&entry, &input));
    covered.set_trace_sink(&mut sink);
    covered
        .parse_to_eof(entry.start_rule)
        .unwrap_or_else(|e| panic!("{}: coverage parse failed: {e}", entry.name));
    let coverage_micros = (t0.elapsed().as_micros() as u64).max(1);
    drop(covered);
    sink.finish_file();
    let map = sink.into_map();

    CoverageOverheadRow {
        name: entry.name,
        input_tokens,
        plain_micros,
        coverage_micros,
        predictions: map.decisions.iter().map(|d| d.predictions).sum(),
        uncovered_alts: map.uncovered_alts().len(),
    }
}

/// [`coverage_overhead_run`] over the whole suite.
pub fn coverage_overhead_all(input_lines: usize, seed: u64) -> Vec<CoverageOverheadRow> {
    suite::all().into_iter().map(|e| coverage_overhead_run(e, input_lines, seed)).collect()
}

/// Formats the coverage-overhead table.
pub fn format_coverage_overhead(rows: &[CoverageOverheadRow]) -> String {
    let mut out = String::from(
        "Coverage-collection overhead (bare parse vs trace-folded coverage map)\n\
         Grammar      Tokens     Bare  +Coverage  Overhead%  Predictions  Uncovered\n",
    );
    for r in rows {
        let overhead =
            100.0 * (r.coverage_micros as f64 - r.plain_micros as f64) / r.plain_micros as f64;
        out.push_str(&format!(
            "{:<10} {:>8} {:>7}us {:>9}us {:>9.1} {:>12} {:>10}\n",
            r.name,
            r.input_tokens,
            r.plain_micros,
            r.coverage_micros,
            overhead,
            r.predictions,
            r.uncovered_alts
        ));
    }
    out
}

/// JSONL export of the coverage-overhead rows: one `coverage-overhead`
/// line per grammar, appended to `BENCH_analysis.json`.
pub fn coverage_overhead_jsonl(rows: &[CoverageOverheadRow]) -> String {
    let mut out = String::new();
    for r in rows {
        let line = Json::Object(vec![
            ("type".into(), Json::Str("coverage-overhead".into())),
            ("grammar".into(), Json::Str(r.name.to_string())),
            ("input-tokens".into(), Json::Num(r.input_tokens as u64)),
            ("plain-micros".into(), Json::Num(r.plain_micros)),
            ("coverage-micros".into(), Json::Num(r.coverage_micros)),
            ("predictions".into(), Json::Num(r.predictions)),
            ("uncovered-alts".into(), Json::Num(r.uncovered_alts as u64)),
        ]);
        out.push_str(&line.to_string());
        out.push('\n');
    }
    out
}

// ---------------------------------------------------------------------------
// Prediction dispatch: linear edge scan vs compiled tables
// ---------------------------------------------------------------------------

/// One prediction-dispatch measurement: a single suite decision driven
/// over the same synthetic token sequence by the linear `edges` scan,
/// the dense compiled table, and the row-displaced compiled table.
#[derive(Debug, Clone)]
pub struct PredictionRow {
    /// Grammar name.
    pub name: &'static str,
    /// Decision index within the grammar.
    pub decision: usize,
    /// Decision class (`LL(k)`, `cyclic`, `backtrack`).
    pub class: String,
    /// Tokens dispatched per measurement.
    pub tokens: usize,
    /// Linear edge-scan dispatch, microseconds (best of reps).
    pub linear_micros: u64,
    /// Dense-table dispatch, microseconds (best of reps).
    pub dense_micros: u64,
    /// Row-displaced-table dispatch, microseconds (best of reps).
    pub displaced_micros: u64,
    /// Speedup of the auto-chosen representation over the linear scan,
    /// in thousandths (2000 = 2.0×) — integer so the JSONL stays exact.
    pub speedup_milli: u64,
    /// Bytes of the auto-chosen compiled table (transition cells plus
    /// accept/default/predicate side tables and the class map share).
    pub table_bytes: usize,
    /// Whether the auto choice picked the row-displaced representation.
    pub row_displaced: bool,
}

/// One selected decision plus everything needed to drive it: the cloned
/// DFA, the grammar's class partition, both lowered representations,
/// and the token walk all three dispatch strategies share.
#[derive(Debug, Clone)]
pub struct PredictionCase {
    /// Grammar name.
    pub name: &'static str,
    /// Decision index within the grammar.
    pub decision: usize,
    /// Decision class.
    pub class: DecisionClass,
    /// The source DFA (linear-scan baseline).
    pub dfa: LookaheadDfa,
    /// The grammar-wide token equivalence classes.
    pub classes: TokenClasses,
    /// Dense lowering.
    pub dense: CompiledDfa,
    /// Row-displaced lowering.
    pub displaced: CompiledDfa,
    /// Whether the auto choice picked row displacement.
    pub row_displaced: bool,
    /// Bytes of the auto-chosen table.
    pub table_bytes: usize,
    /// The deterministic token walk to dispatch.
    pub seq: Vec<TokenType>,
}

/// Generates a deterministic token sequence that keeps the DFA busy: a
/// seeded random walk over its edges, restarting at the start state on
/// accept, with a sprinkle of off-edge tokens so the miss path is
/// exercised too.
fn prediction_walk(dfa: &LookaheadDfa, vocab: usize, count: usize, seed: u64) -> Vec<TokenType> {
    let mut rng = Rng64::seed_from_u64(seed);
    let vocab = vocab.max(1) as u32;
    let mut cur = 0usize;
    let mut out = Vec::with_capacity(count);
    while out.len() < count {
        let st = &dfa.states[cur];
        if cur != 0 && (st.accept.is_some() || st.edges.is_empty()) {
            cur = 0;
            continue;
        }
        if st.edges.is_empty() || rng.gen_bool(0.1) {
            out.push(TokenType(rng.gen_range(0u32..vocab)));
            cur = 0;
        } else {
            let (tok, target) = st.edges[rng.gen_range(0usize..st.edges.len())];
            out.push(tok);
            cur = target;
        }
    }
    out
}

/// The linear baseline: what `predict` does without compiled tables —
/// accept check, then an `edges` scan per lookahead token. Returns a
/// checksum of accepts/misses so the loop cannot be optimized away and
/// the dispatch variants can be cross-checked.
pub fn linear_dispatch(dfa: &LookaheadDfa, seq: &[TokenType]) -> u64 {
    let mut cur = 0usize;
    let mut outcome = 0u64;
    for &tok in seq {
        if dfa.states[cur].accept.is_some() {
            outcome += 1;
            cur = 0;
        }
        match dfa.states[cur].target(tok) {
            Some(t) => cur = t,
            None => {
                outcome += 2;
                cur = 0;
            }
        }
    }
    outcome
}

/// The compiled path with identical structure: accept check from the
/// flat side table, then one class-map load and one table lookup.
pub fn table_dispatch(table: &CompiledDfa, classes: &TokenClasses, seq: &[TokenType]) -> u64 {
    let mut cur = 0usize;
    let mut outcome = 0u64;
    for &tok in seq {
        if table.accept_alt(cur).is_some() {
            outcome += 1;
            cur = 0;
        }
        match table.next(cur, classes.class_of(tok)) {
            NO_TARGET => {
                outcome += 2;
                cur = 0;
            }
            t => cur = t as usize,
        }
    }
    outcome
}

fn best_micros(reps: usize, mut f: impl FnMut() -> u64) -> u64 {
    (0..reps.max(1))
        .map(|_| {
            let t0 = Instant::now();
            std::hint::black_box(f());
            (t0.elapsed().as_micros() as u64).max(1)
        })
        .min()
        .unwrap_or(1)
}

/// Selects the representative suite decisions: up to one decision per
/// [`DecisionClass`] variant per grammar (the one with the most DFA
/// states, so table effects are visible), each paired with a
/// `tokens`-long seeded walk.
///
/// # Panics
/// Panics if a compiled table disagrees with the linear scan on the
/// walk — parity is checked once, untimed, at selection time.
pub fn prediction_cases(tokens: usize, seed: u64) -> Vec<PredictionCase> {
    let mut cases = Vec::new();
    for entry in suite::all() {
        let grammar = entry.load();
        let analysis = analyze(&grammar);
        let Some(classes) = analysis.tables.classes() else { continue };
        let mut picks: Vec<(DecisionClass, usize)> = Vec::new();
        for d in &analysis.decisions {
            let class = d.dfa.classify();
            let key = std::mem::discriminant(&class);
            match picks.iter_mut().find(|(c, _)| std::mem::discriminant(c) == key) {
                Some(slot) => {
                    if d.dfa.states.len() > analysis.decisions[slot.1].dfa.states.len() {
                        *slot = (class, d.decision.index());
                    }
                }
                None => picks.push((class, d.decision.index())),
            }
        }
        picks.sort_by_key(|&(_, i)| i);
        for (class, i) in picks {
            let dfa = &analysis.decisions[i].dfa;
            if dfa.states.len() < 2 {
                continue;
            }
            let seq = prediction_walk(dfa, grammar.vocab.len(), tokens, seed ^ i as u64);
            let dense = CompiledDfa::lower_dense(dfa, classes);
            let displaced = CompiledDfa::lower_row_displaced(dfa, classes);
            let auto = CompiledDfa::lower(dfa, classes);
            let expected = linear_dispatch(dfa, &seq);
            assert_eq!(expected, table_dispatch(&dense, classes, &seq), "dense parity");
            assert_eq!(expected, table_dispatch(&displaced, classes, &seq), "displaced parity");
            cases.push(PredictionCase {
                name: entry.name,
                decision: i,
                class,
                dfa: dfa.clone(),
                classes: classes.clone(),
                dense,
                displaced,
                row_displaced: auto.is_row_displaced(),
                table_bytes: auto.table_bytes(),
                seq,
            });
        }
    }
    cases
}

/// Times every case's three dispatch strategies (best of `reps`).
pub fn measure_prediction(cases: &[PredictionCase], reps: usize) -> Vec<PredictionRow> {
    cases
        .iter()
        .map(|c| {
            let linear_micros = best_micros(reps, || linear_dispatch(&c.dfa, &c.seq));
            let dense_micros = best_micros(reps, || table_dispatch(&c.dense, &c.classes, &c.seq));
            let displaced_micros =
                best_micros(reps, || table_dispatch(&c.displaced, &c.classes, &c.seq));
            let chosen = if c.row_displaced { displaced_micros } else { dense_micros }.max(1);
            PredictionRow {
                name: c.name,
                decision: c.decision,
                class: c.class.to_string(),
                tokens: c.seq.len(),
                linear_micros,
                dense_micros,
                displaced_micros,
                speedup_milli: linear_micros.saturating_mul(1000) / chosen,
                table_bytes: c.table_bytes,
                row_displaced: c.row_displaced,
            }
        })
        .collect()
}

/// [`prediction_cases`] + [`measure_prediction`] in one call.
pub fn prediction_all(tokens: usize, reps: usize, seed: u64) -> Vec<PredictionRow> {
    measure_prediction(&prediction_cases(tokens, seed), reps)
}

/// Formats the prediction-dispatch table, with per-decision table bytes
/// so the compression trade-off is visible.
pub fn format_prediction(rows: &[PredictionRow]) -> String {
    let mut out = String::from(
        "Prediction dispatch (same token walk; linear edge scan vs compiled tables)\n\
         Grammar    Dec  Class        Tokens   Linear    Dense  Displaced  Speedup  Table-B  Repr\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<10} {:>3}  {:<10} {:>7} {:>6}us {:>6}us {:>8}us {:>7.2}x {:>8}  {}\n",
            r.name,
            r.decision,
            r.class,
            r.tokens,
            r.linear_micros,
            r.dense_micros,
            r.displaced_micros,
            r.speedup_milli as f64 / 1000.0,
            r.table_bytes,
            if r.row_displaced { "displaced" } else { "dense" }
        ));
    }
    out
}

/// JSONL export of the prediction rows: one `prediction` line per
/// measured decision, appended to `BENCH_analysis.json`.
pub fn prediction_jsonl(rows: &[PredictionRow]) -> String {
    let mut out = String::new();
    for r in rows {
        let line = Json::Object(vec![
            ("type".into(), Json::Str("prediction".into())),
            ("grammar".into(), Json::Str(r.name.to_string())),
            ("decision".into(), Json::Num(r.decision as u64)),
            ("class".into(), Json::Str(r.class.clone())),
            ("tokens".into(), Json::Num(r.tokens as u64)),
            ("linear-micros".into(), Json::Num(r.linear_micros)),
            ("dense-micros".into(), Json::Num(r.dense_micros)),
            ("displaced-micros".into(), Json::Num(r.displaced_micros)),
            ("speedup-milli".into(), Json::Num(r.speedup_milli)),
            ("table-bytes".into(), Json::Num(r.table_bytes as u64)),
            ("row-displaced".into(), Json::Bool(r.row_displaced)),
        ]);
        out.push_str(&line.to_string());
        out.push('\n');
    }
    out
}

/// The schema header line for `BENCH_analysis.json` (with trailing
/// newline), so the mixed bench stream is versioned like every other
/// machine-readable output.
pub fn bench_stream_header() -> String {
    let mut line = llstar_core::schema::StreamKind::BenchAnalysis.header_line();
    line.push('\n');
    line
}

/// Absolute path of the canonical `BENCH_analysis.json` at the
/// workspace root. `cargo bench` runs each harness with the *package*
/// directory as CWD, so a relative path would silently land in
/// `crates/bench/` instead of the committed stream.
pub fn bench_analysis_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_analysis.json")
}

/// Appends pre-rendered JSONL `rows` to the bench-analysis stream at
/// `path`, writing the schema header first when the file does not exist
/// yet — the one append path every bench binary shares (profile,
/// prediction, scaling, gauntlet, metrics-overhead).
///
/// # Errors
/// Propagates I/O errors from opening or writing the file.
pub fn append_bench_rows(path: impl AsRef<std::path::Path>, rows: &str) -> std::io::Result<()> {
    use std::io::Write as _;
    let path = path.as_ref();
    let fresh = !path.exists();
    let mut file = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
    if fresh {
        file.write_all(bench_stream_header().as_bytes())?;
    }
    file.write_all(rows.as_bytes())
}

/// Loads a bench-analysis stream back: validates the leading schema
/// header through the shared [`llstar_core::schema`] checker (headerless
/// pre-versioning files are accepted) and parses each data row.
///
/// # Errors
/// Returns the 1-based line number and a description for the first
/// unparsable line or a mismatched header.
pub fn load_bench_rows(text: &str) -> Result<Vec<Json>, (usize, String)> {
    let mut rows = Vec::new();
    let mut first = true;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let value = Json::parse(line).map_err(|e| (i + 1, e))?;
        if std::mem::take(&mut first) && llstar_core::schema::parse_schema_header(&value).is_some()
        {
            llstar_core::schema::check_header(
                &value,
                llstar_core::schema::StreamKind::BenchAnalysis,
            )
            .map_err(|e| (i + 1, e))?;
            continue;
        }
        rows.push(value);
    }
    Ok(rows)
}

// ---------------------------------------------------------------------------
// Formatting
// ---------------------------------------------------------------------------

/// Formats Table 1 in the paper's layout.
pub fn format_table1(rows: &[Table1Row]) -> String {
    let mut out = String::from(
        "Table 1. Grammar decision characteristics\n\
         Grammar    Lines     n  Fixed  Cyclic  Backtrack      Runtime\n",
    );
    for r in rows {
        let pct = 100.0 * r.backtrack as f64 / r.decisions.max(1) as f64;
        out.push_str(&format!(
            "{:<10} {:>5} {:>5} {:>6} {:>7} {:>6} ({:>4.1}%) {:>9.1?}\n",
            r.name, r.lines, r.decisions, r.fixed, r.cyclic, r.backtrack, pct, r.analysis_time
        ));
    }
    out
}

/// Formats Table 2 in the paper's layout.
pub fn format_table2(rows: &[Table2Row]) -> String {
    let deepest = rows.iter().map(|r| r.counts_by_k.len()).max().unwrap_or(0);
    let mut out = String::from("Table 2. Fixed lookahead decision characteristics\n");
    out.push_str("Grammar     LL(k)%  LL(1)%  ");
    for k in 1..=deepest {
        out.push_str(&format!("k={k:<4}"));
    }
    out.push('\n');
    for r in rows {
        out.push_str(&format!("{:<10} {:>6.2} {:>7.2}  ", r.name, r.pct_llk, r.pct_ll1));
        for k in 0..deepest {
            let c = r.counts_by_k.get(k).copied().unwrap_or(0);
            if c == 0 {
                out.push_str("     ");
            } else {
                out.push_str(&format!("{c:<5}"));
            }
        }
        out.push('\n');
    }
    out
}

/// Formats Table 3 in the paper's layout.
pub fn format_table3(rows: &[Table3Row]) -> String {
    let mut out = String::from(
        "Table 3. Parser decision lookahead depth\n\
         Grammar     Input-lines  Tokens  Parse-time     n  avg k  back k  max k\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<10} {:>12} {:>7} {:>10.1?} {:>5} {:>6.2} {:>7.2} {:>6}\n",
            r.name,
            r.input_lines,
            r.input_tokens,
            r.parse_time,
            r.decisions_covered,
            r.avg_k,
            r.back_k,
            r.max_k
        ));
    }
    out
}

/// Formats Table 4 in the paper's layout.
pub fn format_table4(rows: &[Table4Row]) -> String {
    let mut out = String::from(
        "Table 4. Parser decision backtracking behavior\n\
         Grammar     Can-back  Did-back      Events  Backtrack%  Back-rate%\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<10} {:>9} {:>9} {:>11} {:>10.2} {:>11.2}\n",
            r.name,
            r.can_backtrack,
            r.did_backtrack,
            r.decision_events,
            r.backtrack_pct,
            r.back_rate_pct
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_run(name: &str) -> GrammarRun {
        run_grammar(suite::by_name(name).unwrap(), 60, 7)
    }

    #[test]
    fn java_table1_shape_matches_paper() {
        let run = small_run("Java");
        let row = run.table1_row();
        // Paper Table 1 (Java1.5): the vast majority of decisions are
        // fixed; a small fraction backtracks (11.8% in the paper).
        assert!(row.decisions > 30, "{row:?}");
        assert!(row.fixed > row.backtrack, "{row:?}");
        assert!(row.fixed as f64 / row.decisions as f64 > 0.6, "most decisions fixed: {row:?}");
        let bt_pct = row.backtrack as f64 / row.decisions as f64;
        assert!(bt_pct < 0.4, "backtracking is the minority: {row:?}");
    }

    #[test]
    fn java_table2_mostly_ll1() {
        let run = small_run("Java");
        let row = run.table2_row();
        // Paper Table 2: most decisions are LL(1).
        assert!(row.pct_ll1 > 50.0, "{row:?}");
        assert!(row.pct_llk >= row.pct_ll1);
        assert!(!row.counts_by_k.is_empty());
        assert!(row.counts_by_k[0] > row.counts_by_k.get(1).copied().unwrap_or(0));
    }

    #[test]
    fn java_table3_low_average_lookahead() {
        let run = small_run("Java");
        let row = run.table3_row();
        // Paper Table 3: avg k is roughly one token (1.04–1.88).
        assert!(row.avg_k >= 1.0 && row.avg_k < 3.0, "{row:?}");
        assert!(row.decisions_covered > 10, "{row:?}");
        assert!(row.max_k >= 2);
    }

    #[test]
    fn java_table4_backtracking_is_rare() {
        let run = small_run("Java");
        let row = run.table4_row();
        // Paper Table 4: only a few percent of decision events backtrack
        // (2.36% for Java1.5); allow a loose bound.
        assert!(row.backtrack_pct < 30.0, "{row:?}");
        assert!(row.did_backtrack <= row.can_backtrack, "{row:?}");
        assert!(row.decision_events > 100, "{row:?}");
    }

    #[test]
    fn sql_is_almost_entirely_fixed() {
        let run = small_run("SQL");
        let row = run.table1_row();
        // Paper: TSQL is 94% fixed with very few backtracking decisions.
        assert!(
            row.fixed as f64 / row.decisions as f64 > 0.85,
            "keyword-driven SQL should be overwhelmingly LL(k): {row:?}"
        );
        let t3 = run.table3_row();
        assert!(t3.avg_k < 1.7, "SQL avg k ≈ 1: {t3:?}");
    }

    #[test]
    fn ratsc_backtracks_most() {
        // Paper: RatsC has the highest backtrack ratio (22.4%) and the
        // deepest speculation (max k = 7968 — whole functions).
        let c = small_run("RatsC").table1_row();
        let sql = small_run("SQL").table1_row();
        let pct = |r: &Table1Row| r.backtrack as f64 / r.decisions.max(1) as f64;
        assert!(pct(&c) > pct(&sql), "C backtracks more than SQL: {c:?} vs {sql:?}");
    }

    #[test]
    fn ratsc_speculates_across_declarations() {
        let run = small_run("RatsC");
        let row = run.table3_row();
        // back k (speculation depth) far exceeds avg k, like the paper's
        // RatsC row (avg 1.88 vs max 7968).
        assert!(row.max_k as f64 > row.avg_k * 4.0, "{row:?}");
        let t4 = run.table4_row();
        assert!(t4.did_backtrack > 0, "{t4:?}");
    }

    #[test]
    fn analysis_jsonl_lines_parse_and_cover_every_grammar() {
        let runs: Vec<GrammarRun> = vec![small_run("Java"), small_run("SQL")];
        let text = analysis_jsonl(&runs);
        let mut analysis_lines = 0usize;
        let mut summaries = Vec::new();
        for line in text.lines() {
            let v = Json::parse(line).unwrap_or_else(|e| panic!("{e}: {line}"));
            assert!(v.get("grammar").is_some(), "{line}");
            match v.get("type").and_then(Json::as_str) {
                Some("analysis") => {
                    analysis_lines += 1;
                    // The record minus the grammar tag round-trips.
                    assert!(AnalysisRecord::from_json(&v).is_ok(), "{line}");
                }
                Some("summary") => {
                    summaries.push(v.get("grammar").and_then(Json::as_str).unwrap().to_string())
                }
                other => panic!("unexpected line type {other:?}: {line}"),
            }
        }
        assert!(analysis_lines > 30, "Java alone has dozens of decisions");
        assert_eq!(summaries, ["Java", "SQL"]);
    }

    #[test]
    fn recovery_run_measures_overhead_and_repairs() {
        let row = recovery_run(suite::by_name("SQL").unwrap(), 60, 7);
        assert!(row.input_tokens > 50, "{row:?}");
        assert!(row.corrupted_sites >= 1, "{row:?}");
        // Corruption must surface at least one diagnostic, and cascade
        // suppression keeps the count linear in the sites mutated.
        assert!(row.diagnostics >= 1, "{row:?}");
        assert!(row.diagnostics <= 8 * row.corrupted_sites + 2, "{row:?}");
        assert_eq!(row.stats.recoveries as usize, row.diagnostics, "{row:?}");
        let text = format_recovery(&[row]);
        assert!(text.contains("SQL"), "{text}");
        let jsonl = recovery_jsonl(&recovery_all(40, 3));
        let mut grammars = Vec::new();
        for line in jsonl.lines() {
            let v = Json::parse(line).unwrap_or_else(|e| panic!("{e}: {line}"));
            assert_eq!(v.get("type").and_then(Json::as_str), Some("recovery"), "{line}");
            grammars.push(v.get("grammar").and_then(Json::as_str).unwrap().to_string());
        }
        assert_eq!(grammars.len(), suite::all().len());
    }

    #[test]
    fn scaling_rows_cover_the_thread_sweep() {
        let rows = scaling_all(1);
        let counts = scaling_thread_counts();
        assert_eq!(rows.len(), suite::all().len() * counts.len());
        for r in &rows {
            assert!(r.micros >= 1, "{r:?}");
            if r.threads == 1 {
                assert_eq!(r.speedup_milli, 1000, "1-thread speedup is 1.00x: {r:?}");
            }
        }
        let table = format_scaling(&rows);
        assert!(table.contains("Java"), "{table}");
        for line in scaling_jsonl(&rows).lines() {
            let v = Json::parse(line).unwrap_or_else(|e| panic!("{e}: {line}"));
            assert_eq!(v.get("type").and_then(Json::as_str), Some("scaling"), "{line}");
            assert!(v.get("speedup-milli").and_then(Json::as_u64).is_some(), "{line}");
        }
    }

    #[test]
    fn coverage_overhead_measures_both_sides() {
        let row = coverage_overhead_run(suite::by_name("SQL").unwrap(), 40, 7);
        assert!(row.input_tokens > 50, "{row:?}");
        assert!(row.predictions > 0, "coverage fold saw no predictions: {row:?}");
        let text = format_coverage_overhead(&[row]);
        assert!(text.contains("SQL"), "{text}");
        let jsonl = coverage_overhead_jsonl(&[coverage_overhead_run(
            suite::by_name("Java").unwrap(),
            40,
            7,
        )]);
        let v = Json::parse(jsonl.trim_end()).expect("valid json");
        assert_eq!(v.get("type").and_then(Json::as_str), Some("coverage-overhead"));
        assert!(v.get("coverage-micros").and_then(Json::as_u64).unwrap() >= 1);
    }

    #[test]
    fn bench_stream_is_versioned() {
        let header = bench_stream_header();
        let v = Json::parse(header.trim_end()).expect("valid header");
        llstar_core::schema::check_header(&v, llstar_core::schema::StreamKind::BenchAnalysis)
            .expect("header matches this build");
    }

    #[test]
    fn bench_rows_round_trip_through_append_and_load() {
        let dir = std::env::temp_dir().join(format!("llstar-bench-rows-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("BENCH_analysis.json");
        let path = path.to_str().expect("utf-8 temp path");
        let _ = std::fs::remove_file(path);

        // First append creates the file with a header; the second must
        // not duplicate it.
        append_bench_rows(path, "{\"type\":\"gauntlet\",\"tokens\":10}\n").expect("append");
        append_bench_rows(path, "{\"type\":\"metrics_overhead\",\"on-micros\":5}\n")
            .expect("append again");
        let text = std::fs::read_to_string(path).expect("read back");
        assert!(text.starts_with(&bench_stream_header()), "{text}");
        assert_eq!(text.matches("\"type\":\"schema\"").count(), 1, "{text}");

        let rows = load_bench_rows(&text).expect("load");
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].get("type").and_then(Json::as_str), Some("gauntlet"));
        assert_eq!(rows[1].get("type").and_then(Json::as_str), Some("metrics_overhead"));

        // Headerless (pre-versioning) files still load; a bumped header
        // is rejected through the shared checker.
        let (_, body) = text.split_once('\n').expect("has header line");
        assert_eq!(load_bench_rows(body).expect("headerless load").len(), 2);
        let bumped = llstar_core::schema::schema_line(
            "bench-analysis",
            llstar_core::schema::BENCH_STREAM_VERSION + 1,
        ) + "\n";
        let (line, err) = load_bench_rows(&bumped).expect_err("version bump rejected");
        assert_eq!(line, 1);
        assert!(err.contains("schema version"), "{err}");

        let _ = std::fs::remove_file(path);
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn formatting_renders_all_rows() {
        let runs: Vec<GrammarRun> = vec![small_run("Java"), small_run("SQL")];
        let t1: Vec<_> = runs.iter().map(GrammarRun::table1_row).collect();
        let t2: Vec<_> = runs.iter().map(GrammarRun::table2_row).collect();
        let t3: Vec<_> = runs.iter().map(GrammarRun::table3_row).collect();
        let t4: Vec<_> = runs.iter().map(GrammarRun::table4_row).collect();
        for text in [format_table1(&t1), format_table2(&t2), format_table3(&t3), format_table4(&t4)]
        {
            assert!(text.contains("Java"), "{text}");
            assert!(text.contains("SQL"), "{text}");
        }
    }
}
