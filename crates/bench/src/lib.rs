//! Benchmark harness regenerating the paper's evaluation (Section 6):
//! Tables 1–4 via [`report`], Figures 1/2/6 and the cyclic-DFA example
//! via [`figures`]. The `report_tables` binary prints everything; the
//! benches under `benches/` (driven by the dependency-free [`harness`])
//! measure analysis and parse speed, LL(*) vs packrat, memoization,
//! analysis scaling across threads, the fixed-k ablation, and
//! error-recovery overhead (clean vs 1%-corrupted inputs).

#![warn(missing_docs)]

pub mod figures;
pub mod gauntlet;
pub mod harness;
pub mod overhead;
pub mod report;

pub use figures::{cyclic_figure, figure1, figure2, figure6, Figure};
pub use gauntlet::{format_gauntlet, gauntlet_all, gauntlet_jsonl, gauntlet_run, GauntletRow};
pub use harness::BenchGroup;
pub use report::{
    can_backtrack_by_id, decision_classes, format_recovery, format_table1, format_table2,
    format_table3, format_table4, hooks_for, recovery_all, recovery_run, run_all, run_grammar,
    GrammarRun, RecoveryRow, Table1Row, Table2Row, Table3Row, Table4Row,
};
