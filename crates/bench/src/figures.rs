//! Regenerates the paper's worked figures: the lookahead DFA of Figure 1,
//! the mixed lookahead/backtracking DFA of Figure 2, the cyclic DFA from
//! the end of Section 2, and the ATN of Figure 6.

use llstar_core::{analyze, Atn, DecisionKind, GrammarAnalysis};
use llstar_grammar::{apply_peg_mode, parse_grammar, Grammar};

/// The Section 2 grammar whose rule `s` yields Figure 1's DFA.
pub const FIGURE1_GRAMMAR: &str = r#"
grammar Figure1;
s : ID | ID '=' expr | 'unsigned'* 'int' ID | 'unsigned'* ID ID ;
expr : INT ;
ID : [a-zA-Z_] [a-zA-Z0-9_]* ;
INT : [0-9]+ ;
WS : [ \t\r\n]+ -> skip ;
"#;

/// The Section 2 grammar whose rule `t` yields Figure 2's DFA
/// (PEG mode, m = 1).
pub const FIGURE2_GRAMMAR: &str = r#"
grammar Figure2;
options { backtrack = true; m = 1; }
t : '-'* ID | expr ;
expr : INT | '-' expr ;
ID : [a-z]+ ;
INT : [0-9]+ ;
WS : [ ]+ -> skip ;
"#;

/// The `a : b A+ X | c A+ Y` grammar that is LL(*) but not LR(k)
/// (Section 2's LPG anecdote), yielding a cyclic DFA.
pub const CYCLIC_GRAMMAR: &str = r#"
grammar Cyclic;
a : b A+ X | c A+ Y ;
b : ;
c : ;
A : 'a' ;
X : 'x' ;
Y : 'y' ;
"#;

/// Figure 6's grammar: S → Ac | Ad, A → aA | b.
pub const FIGURE6_GRAMMAR: &str = r#"
grammar Figure6;
s : a C | a D ;
a : A a | B ;
A : 'a' ;
B : 'b' ;
C : 'c' ;
D : 'd' ;
"#;

/// A prepared figure: grammar + analysis + rendered artifact.
pub struct Figure {
    /// Which figure this is.
    pub title: &'static str,
    /// The grammar.
    pub grammar: Grammar,
    /// Its analysis.
    pub analysis: GrammarAnalysis,
    /// The textual rendering (DFA transitions or dot).
    pub rendering: String,
}

fn rule_decision_dfa(grammar: &Grammar, analysis: &GrammarAnalysis, rule: &str) -> String {
    let rid = grammar.rule_id(rule).expect("figure rule exists");
    let d = analysis
        .atn
        .decisions
        .iter()
        .find(|d| d.rule == rid && d.kind == DecisionKind::RuleAlts)
        .expect("figure rule has a decision");
    analysis.decision(d.id).dfa.to_pretty(grammar)
}

/// Builds Figure 1: the LL(*) lookahead DFA for rule `s`.
pub fn figure1() -> Figure {
    let grammar = apply_peg_mode(parse_grammar(FIGURE1_GRAMMAR).expect("figure grammar"));
    let analysis = analyze(&grammar);
    let rendering = rule_decision_dfa(&grammar, &analysis, "s");
    Figure { title: "Figure 1: LL(*) lookahead DFA for rule s", grammar, analysis, rendering }
}

/// Builds Figure 2: the mixed k=3/backtracking DFA for rule `t`.
pub fn figure2() -> Figure {
    let grammar = apply_peg_mode(parse_grammar(FIGURE2_GRAMMAR).expect("figure grammar"));
    let analysis = analyze(&grammar);
    let rendering = rule_decision_dfa(&grammar, &analysis, "t");
    Figure {
        title: "Figure 2: mixed lookahead/backtracking DFA for rule t (m=1)",
        grammar,
        analysis,
        rendering,
    }
}

/// Builds the cyclic DFA for `a : b A+ X | c A+ Y`.
pub fn cyclic_figure() -> Figure {
    let grammar = apply_peg_mode(parse_grammar(CYCLIC_GRAMMAR).expect("figure grammar"));
    let analysis = analyze(&grammar);
    let rendering = rule_decision_dfa(&grammar, &analysis, "a");
    Figure {
        title: "Section 2: cyclic DFA for a : b A+ X | c A+ Y (LL(*) but not LR(k))",
        grammar,
        analysis,
        rendering,
    }
}

/// Builds Figure 6: the ATN for S → Ac|Ad, A → aA|b, rendered as dot.
pub fn figure6() -> Figure {
    let grammar = parse_grammar(FIGURE6_GRAMMAR).expect("figure grammar");
    let atn = Atn::from_grammar(&grammar);
    let rendering = atn.to_dot(&grammar);
    let analysis = analyze(&grammar);
    Figure { title: "Figure 6: ATN for S -> Ac|Ad, A -> aA|b", grammar, analysis, rendering }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_renders_cyclic_dfa() {
        let f = figure1();
        assert!(f.rendering.contains("'unsigned'"), "{}", f.rendering);
        assert!(f.rendering.contains("predict alt 3"), "{}", f.rendering);
        assert!(f.rendering.contains("predict alt 4"), "{}", f.rendering);
    }

    #[test]
    fn figure2_renders_predicate_failover() {
        let f = figure2();
        assert!(f.rendering.contains("synpred"), "{}", f.rendering);
        assert!(f.rendering.contains("else"), "{}", f.rendering);
    }

    #[test]
    fn cyclic_figure_loops() {
        let f = cyclic_figure();
        // A self-loop on A shows up as a transition from a state to itself.
        assert!(f.rendering.contains("-A->"), "{}", f.rendering);
    }

    #[test]
    fn figure6_is_dot() {
        let f = figure6();
        assert!(f.rendering.starts_with("digraph atn"));
        assert!(f.rendering.contains("doublecircle"));
    }
}
