//! Gauntlet bench mode: the paper's Tables 3–4 (runtime lookahead and
//! backtracking behaviour) reproduced over the realistic gauntlet
//! grammars, with one row per `grammar × engine` cell. Engines:
//!
//! - `interp-linear` — ATN interpreter, linear `DfaState::edges` scan;
//! - `interp-compiled` — ATN interpreter through the compiled
//!   dense/row-displaced dispatch tables;
//! - `packrat-memo` — the memoized packrat recognizer baseline;
//! - `packrat-nomemo` — the same recognizer with memoization off and a
//!   fuel cap (without memoization the PEG-mode grammars degrade
//!   super-linearly, which is the paper's argument *for* memoization —
//!   rows where the cap fired carry `completed = false`).
//!
//! Interpreter rows fold per-decision [`ParseStats`] into the Table 3
//! columns (avg k / back. k / max k), a per-event lookahead-depth
//! histogram, and the Table 4 columns (backtrack percentage and the
//! rate at potentially-backtracking decisions). Packrat rows report the
//! engine's own speculation counters (attempts, backtracked
//! alternatives, wasted tokens) and memo footprint. Timing excludes
//! lexing everywhere; interpreter engines recycle one parser via
//! [`Parser::reset`] exactly like the gauntlet oracle does.

use crate::report::can_backtrack_by_id;
use llstar_core::{analyze, GrammarAnalysis, Json};
use llstar_packrat::PackratParser;
use llstar_runtime::{NopHooks, Parser, TokenStream, TraceEvent, TraceSink};
use llstar_suite::gauntlet::{self, GauntletEntry, Tier};
use std::time::{Duration, Instant};

/// Corpus seed shared by every gauntlet bench row (distinct from the
/// oracle's seed: the bench is a measurement, not a replay).
pub const GAUNTLET_BENCH_SEED: u64 = 0x6a41_71e7;

/// Histogram bins: depth 1..=8 exactly, then a 9+ overflow bin.
pub const HIST_BINS: usize = 9;

/// One `grammar × engine` measurement row.
#[derive(Debug, Clone)]
pub struct GauntletRow {
    /// Gauntlet grammar name.
    pub grammar: &'static str,
    /// Engine label (see module docs).
    pub engine: &'static str,
    /// Corpus tier label (`10KB`/`1MB`/`10MB`).
    pub tier: &'static str,
    /// Total corpus bytes.
    pub input_bytes: usize,
    /// Total corpus tokens (EOF excluded).
    pub input_tokens: usize,
    /// Wall-clock parse time, lexing excluded.
    pub parse_time: Duration,
    /// Tokens per second (0 when the run did not complete).
    pub tokens_per_sec: u64,
    /// Whether every corpus file was fully parsed/recognized (only the
    /// fuel-capped `packrat-nomemo` engine ever reports `false`).
    pub completed: bool,
    /// Distinct decisions exercised (interpreter engines; 0 for packrat).
    pub decisions_covered: usize,
    /// Average lookahead depth per decision event.
    pub avg_k: f64,
    /// Average speculation depth over backtracking events.
    pub back_k: f64,
    /// Deepest lookahead observed.
    pub max_k: u64,
    /// Per-event lookahead-depth histogram, `hist[i]` = events with
    /// depth `i+1` (last bin is 9-or-deeper). Empty for packrat rows.
    pub lookahead_hist: Vec<u64>,
    /// Decision events (interpreter) or rule attempts (packrat).
    pub events: u64,
    /// Backtracking events (interpreter) or backtracked alternatives
    /// (packrat).
    pub backtracks: u64,
    /// Percentage of events that backtracked.
    pub backtrack_pct: f64,
    /// Backtrack likelihood at potentially-backtracking decisions
    /// (interpreter engines; 0 for packrat).
    pub back_rate_pct: f64,
    /// Memo entries written (memo footprint).
    pub memo_entries: u64,
    /// Memo hits.
    pub memo_hits: u64,
    /// Tokens speculatively consumed then rolled back (packrat engines;
    /// 0 for the interpreter, which predicts before consuming).
    pub wasted_tokens: u64,
}

/// A trace sink that bins every prediction event by lookahead depth —
/// cheap enough (one array increment per decision event) to stay
/// attached during the timed run.
struct LookaheadHist {
    bins: [u64; HIST_BINS],
}

impl LookaheadHist {
    fn new() -> Self {
        LookaheadHist { bins: [0; HIST_BINS] }
    }
}

impl TraceSink for LookaheadHist {
    fn event(&mut self, event: &TraceEvent) {
        if let TraceEvent::PredictStop { lookahead, .. } = event {
            let bin = (*lookahead as usize).clamp(1, HIST_BINS) - 1;
            self.bins[bin] += 1;
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Rule-attempt fuel cap for the `packrat-nomemo` engine: high enough
/// that the LL(1)-ish grammars finish, low enough that the PEG-mode
/// grammar's super-linear blowup is cut off within seconds.
const NOMEMO_FUEL: u64 = 200_000_000;

fn tokens_per_sec(tokens: usize, elapsed: Duration) -> u64 {
    let secs = elapsed.as_secs_f64();
    if secs <= 0.0 {
        return 0;
    }
    (tokens as f64 / secs) as u64
}

/// Measures all four engines for one gauntlet grammar.
pub fn gauntlet_run(entry: &GauntletEntry, tier: Tier, seed: u64) -> Vec<GauntletRow> {
    let inputs = gauntlet::corpus(entry, tier, seed);
    let g = entry.load();
    let a = analyze(&g);
    let scanner = g.lexer.build().expect("gauntlet lexer builds");
    let streams: Vec<Vec<llstar_lexer::Token>> = inputs
        .iter()
        .map(|(label, text)| {
            scanner.tokenize(text).unwrap_or_else(|e| panic!("{label}: fails to lex: {e}"))
        })
        .collect();
    let input_bytes: usize = inputs.iter().map(|(_, t)| t.len()).sum();
    let input_tokens: usize = streams.iter().map(|s| s.len() - 1).sum();

    let mut rows = Vec::with_capacity(4);
    for (engine, compiled) in [("interp-linear", false), ("interp-compiled", true)] {
        rows.push(interp_row(
            entry,
            tier,
            &g,
            &a,
            &streams,
            input_bytes,
            input_tokens,
            engine,
            compiled,
        ));
    }
    for (engine, memoize) in [("packrat-memo", true), ("packrat-nomemo", false)] {
        rows.push(packrat_row(
            entry,
            tier,
            &g,
            &streams,
            input_bytes,
            input_tokens,
            engine,
            memoize,
        ));
    }
    rows
}

#[allow(clippy::too_many_arguments)]
fn interp_row(
    entry: &GauntletEntry,
    tier: Tier,
    g: &llstar_grammar::Grammar,
    a: &GrammarAnalysis,
    streams: &[Vec<llstar_lexer::Token>],
    input_bytes: usize,
    input_tokens: usize,
    engine: &'static str,
    compiled: bool,
) -> GauntletRow {
    let can_backtrack = can_backtrack_by_id(a);
    let n_decisions = can_backtrack.len();
    let mut events_by_d = vec![0u64; n_decisions];
    let mut bt_by_d = vec![0u64; n_decisions];
    let mut lookahead_sum = 0u64;
    let mut bt_depth_sum = 0u64;
    let mut max_k = 0u64;
    let mut memo_entries = 0u64;
    let mut memo_hits = 0u64;
    let mut elapsed = Duration::ZERO;

    let mut hist = LookaheadHist::new();
    let mut parser = Parser::new(g, a, TokenStream::new(streams[0].clone()), NopHooks);
    parser.set_compiled_dispatch(compiled);
    parser.set_trace_sink(&mut hist);
    for (i, stream) in streams.iter().enumerate() {
        let tokens = TokenStream::new(stream.clone());
        if i > 0 {
            parser.reset(tokens);
        }
        let t0 = Instant::now();
        parser
            .parse_to_eof(entry.start_rule)
            .unwrap_or_else(|e| panic!("{}: interpreter rejected corpus input: {e}", entry.name));
        elapsed += t0.elapsed();
        let stats = parser.stats();
        for (d, ds) in stats.covered() {
            events_by_d[d] += ds.events;
            bt_by_d[d] += ds.backtrack_events;
            lookahead_sum += ds.lookahead_sum;
            bt_depth_sum += ds.backtrack_depth_sum;
            max_k = max_k.max(ds.max_lookahead);
        }
        memo_entries += stats.memo_entries;
        memo_hits += stats.memo_hits;
    }
    drop(parser);

    let events: u64 = events_by_d.iter().sum();
    let backtracks: u64 = bt_by_d.iter().sum();
    let bt_events: u64 =
        can_backtrack.iter().zip(&events_by_d).filter_map(|(can, e)| can.then_some(*e)).sum();
    GauntletRow {
        grammar: entry.name,
        engine,
        tier: tier.label(),
        input_bytes,
        input_tokens,
        parse_time: elapsed,
        tokens_per_sec: tokens_per_sec(input_tokens, elapsed),
        completed: true,
        decisions_covered: events_by_d.iter().filter(|&&e| e > 0).count(),
        avg_k: lookahead_sum as f64 / events.max(1) as f64,
        back_k: bt_depth_sum as f64 / backtracks.max(1) as f64,
        max_k,
        lookahead_hist: hist.bins.to_vec(),
        events,
        backtracks,
        backtrack_pct: 100.0 * backtracks as f64 / events.max(1) as f64,
        back_rate_pct: 100.0 * backtracks as f64 / bt_events.max(1) as f64,
        memo_entries,
        memo_hits,
        wasted_tokens: 0,
    }
}

#[allow(clippy::too_many_arguments)]
fn packrat_row(
    entry: &GauntletEntry,
    tier: Tier,
    g: &llstar_grammar::Grammar,
    streams: &[Vec<llstar_lexer::Token>],
    input_bytes: usize,
    input_tokens: usize,
    engine: &'static str,
    memoize: bool,
) -> GauntletRow {
    let mut elapsed = Duration::ZERO;
    let mut completed = true;
    let mut attempts = 0u64;
    let mut backtracked = 0u64;
    let mut memo_entries = 0u64;
    let mut memo_hits = 0u64;
    let mut wasted = 0u64;
    for stream in streams {
        let mut parser = PackratParser::new(g, stream.clone());
        parser.set_memoize(memoize);
        if !memoize {
            parser.set_fuel(NOMEMO_FUEL);
        }
        let t0 = Instant::now();
        let result = parser.recognize(entry.start_rule);
        elapsed += t0.elapsed();
        // Corpus inputs are in-language: a rejection here can only be
        // the fuel cap firing (asserted for the memoized engine by the
        // oracle suite).
        completed &= result.is_ok();
        let s = parser.stats();
        attempts += s.rule_attempts;
        backtracked += s.backtracked_alts;
        memo_entries += s.memo_entries;
        memo_hits += s.memo_hits;
        wasted += s.wasted_tokens;
    }
    GauntletRow {
        grammar: entry.name,
        engine,
        tier: tier.label(),
        input_bytes,
        input_tokens,
        parse_time: elapsed,
        tokens_per_sec: if completed { tokens_per_sec(input_tokens, elapsed) } else { 0 },
        completed,
        decisions_covered: 0,
        avg_k: 0.0,
        back_k: 0.0,
        max_k: 0,
        lookahead_hist: Vec::new(),
        events: attempts,
        backtracks: backtracked,
        backtrack_pct: 100.0 * backtracked as f64 / attempts.max(1) as f64,
        back_rate_pct: 0.0,
        memo_entries,
        memo_hits,
        wasted_tokens: wasted,
    }
}

/// Measures every gauntlet grammar at `tier`.
pub fn gauntlet_all(tier: Tier, seed: u64) -> Vec<GauntletRow> {
    gauntlet::all().iter().flat_map(|e| gauntlet_run(e, tier, seed)).collect()
}

/// JSONL export of the gauntlet rows (the `gauntlet` record type in
/// `BENCH_analysis.json`). Fractional columns are scaled integers
/// (`*-milli`), matching the stream's u64-only number model.
pub fn gauntlet_jsonl(rows: &[GauntletRow]) -> String {
    let mut out = String::new();
    for r in rows {
        let line = Json::Object(vec![
            ("type".into(), Json::Str("gauntlet".into())),
            ("grammar".into(), Json::Str(r.grammar.to_string())),
            ("engine".into(), Json::Str(r.engine.to_string())),
            ("tier".into(), Json::Str(r.tier.to_string())),
            ("input-bytes".into(), Json::Num(r.input_bytes as u64)),
            ("input-tokens".into(), Json::Num(r.input_tokens as u64)),
            ("parse-micros".into(), Json::Num(r.parse_time.as_micros() as u64)),
            ("tokens-per-sec".into(), Json::Num(r.tokens_per_sec)),
            ("completed".into(), Json::Bool(r.completed)),
            ("decisions-covered".into(), Json::Num(r.decisions_covered as u64)),
            ("avg-k-milli".into(), Json::Num((r.avg_k * 1000.0) as u64)),
            ("back-k-milli".into(), Json::Num((r.back_k * 1000.0) as u64)),
            ("max-k".into(), Json::Num(r.max_k)),
            (
                "lookahead-hist".into(),
                Json::Array(r.lookahead_hist.iter().map(|&c| Json::Num(c)).collect()),
            ),
            ("events".into(), Json::Num(r.events)),
            ("backtracks".into(), Json::Num(r.backtracks)),
            ("backtrack-pct-milli".into(), Json::Num((r.backtrack_pct * 1000.0) as u64)),
            ("back-rate-pct-milli".into(), Json::Num((r.back_rate_pct * 1000.0) as u64)),
            ("memo-entries".into(), Json::Num(r.memo_entries)),
            ("memo-hits".into(), Json::Num(r.memo_hits)),
            ("wasted-tokens".into(), Json::Num(r.wasted_tokens)),
        ]);
        out.push_str(&line.to_string());
        out.push('\n');
    }
    out
}

/// Renders the rows as the paper's Tables 3–4 (gauntlet edition).
pub fn format_gauntlet(rows: &[GauntletRow]) -> String {
    let mut out = String::from(
        "Table 3 (gauntlet). Runtime lookahead behaviour per engine\n\
         Grammar  Engine           Size    Tokens    Parse     ktok/s     n  avg k  back k  max k\n",
    );
    for r in rows {
        let note = if r.completed { "" } else { "  [fuel cap]" };
        out.push_str(&format!(
            "{:<8} {:<16} {:>5} {:>9} {:>8.2?} {:>10} {:>5} {:>6.2} {:>7.2} {:>6}{note}\n",
            r.grammar,
            r.engine,
            r.tier,
            r.input_tokens,
            r.parse_time,
            r.tokens_per_sec / 1000,
            r.decisions_covered,
            r.avg_k,
            r.back_k,
            r.max_k,
        ));
    }
    out.push_str(
        "\nTable 4 (gauntlet). Backtracking and memoization per engine\n\
         Grammar  Engine              Events  Backtracks  Back%  Rate%  Memo entries  Memo hits  Wasted tok\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<8} {:<16} {:>10} {:>11} {:>6.2} {:>6.2} {:>13} {:>10} {:>11}\n",
            r.grammar,
            r.engine,
            r.events,
            r.backtracks,
            r.backtrack_pct,
            r.back_rate_pct,
            r.memo_entries,
            r.memo_hits,
            r.wasted_tokens,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_tier_produces_all_cells() {
        let rows = gauntlet_all(Tier::Smoke, GAUNTLET_BENCH_SEED);
        assert_eq!(rows.len(), 12, "3 grammars x 4 engines");
        for grammar in ["java8", "sql", "json"] {
            for engine in ["interp-linear", "interp-compiled", "packrat-memo", "packrat-nomemo"] {
                assert!(
                    rows.iter().any(|r| r.grammar == grammar && r.engine == engine),
                    "missing row {grammar}/{engine}"
                );
            }
        }
        // Interpreter rows carry lookahead data; histogram events match
        // the event total.
        for r in rows.iter().filter(|r| r.engine.starts_with("interp")) {
            assert!(r.completed);
            assert!(r.decisions_covered > 0, "{}/{}", r.grammar, r.engine);
            assert!(r.avg_k >= 1.0, "{}/{}: avg k {}", r.grammar, r.engine, r.avg_k);
            assert_eq!(
                r.lookahead_hist.iter().sum::<u64>(),
                r.events,
                "{}/{}: histogram disagrees with event count",
                r.grammar,
                r.engine
            );
        }
        // Dispatch modes see identical decision behaviour.
        for grammar in ["java8", "sql", "json"] {
            let lin = rows.iter().find(|r| r.grammar == grammar && r.engine == "interp-linear");
            let com = rows.iter().find(|r| r.grammar == grammar && r.engine == "interp-compiled");
            let (lin, com) = (lin.unwrap(), com.unwrap());
            assert_eq!(lin.events, com.events, "{grammar}: dispatch modes diverge");
            assert_eq!(lin.lookahead_hist, com.lookahead_hist, "{grammar}");
        }
        let jsonl = gauntlet_jsonl(&rows);
        assert_eq!(jsonl.lines().count(), 12);
        for line in jsonl.lines() {
            Json::parse(line).expect("gauntlet row is valid JSON");
        }
    }
}
