//! Prints the reproduction of every table and figure in the paper's
//! evaluation section.
//!
//! Usage: `report_tables [--lines N] [--seed S] [--table N]...
//! [--figures] [--analysis-json PATH]`
//! With no selection flags, everything is printed. Whenever the tables
//! run, the per-decision analysis metrics and runtime summaries are also
//! written as JSONL to `--analysis-json` (default `BENCH_analysis.json`).

use llstar_bench::{cyclic_figure, figure1, figure2, figure6, report, GrammarRun};

fn main() {
    let mut lines = 2000usize;
    let mut seed = 42u64;
    let mut tables: Vec<u32> = Vec::new();
    let mut figures = false;
    let mut any_selection = false;
    let mut analysis_json = String::from("BENCH_analysis.json");

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--lines" => {
                i += 1;
                lines = args[i].parse().expect("--lines takes an integer");
            }
            "--seed" => {
                i += 1;
                seed = args[i].parse().expect("--seed takes an integer");
            }
            "--table" => {
                i += 1;
                tables.push(args[i].parse().expect("--table takes 1..=4"));
                any_selection = true;
            }
            "--figures" => {
                figures = true;
                any_selection = true;
            }
            "--analysis-json" => {
                i += 1;
                analysis_json = args[i].clone();
            }
            other => {
                eprintln!("unknown argument {other:?}");
                eprintln!(
                    "usage: report_tables [--lines N] [--seed S] [--table N]... [--figures] \
                     [--analysis-json PATH]"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if !any_selection {
        tables = vec![1, 2, 3, 4];
        figures = true;
    }

    if figures {
        for fig in [figure1(), figure2(), cyclic_figure(), figure6()] {
            println!("== {}\n{}", fig.title, fig.rendering);
        }
    }

    if !tables.is_empty() {
        eprintln!("running all six grammars on ~{lines}-line inputs (seed {seed})…");
        let runs = report::run_all(lines, seed);
        for t in &tables {
            let text = match t {
                1 => report::format_table1(
                    &runs.iter().map(GrammarRun::table1_row).collect::<Vec<_>>(),
                ),
                2 => report::format_table2(
                    &runs.iter().map(GrammarRun::table2_row).collect::<Vec<_>>(),
                ),
                3 => report::format_table3(
                    &runs.iter().map(GrammarRun::table3_row).collect::<Vec<_>>(),
                ),
                4 => report::format_table4(
                    &runs.iter().map(GrammarRun::table4_row).collect::<Vec<_>>(),
                ),
                other => {
                    eprintln!("no such table: {other}");
                    continue;
                }
            };
            println!("{text}");
        }
        eprintln!("measuring error-recovery overhead (clean vs 1% corrupted tokens)…");
        let recovery = report::recovery_all(lines, seed);
        println!("{}", report::format_recovery(&recovery));
        eprintln!("measuring analysis scaling across worker threads…");
        let scaling = report::scaling_all(3);
        println!("{}", report::format_scaling(&scaling));
        eprintln!("measuring coverage-collection overhead…");
        let coverage = report::coverage_overhead_all(lines, seed);
        println!("{}", report::format_coverage_overhead(&coverage));
        eprintln!("measuring prediction dispatch (linear scan vs compiled tables)…");
        let prediction = report::prediction_all(50_000, 5, seed);
        println!("{}", report::format_prediction(&prediction));
        let jsonl = report::bench_stream_header()
            + &report::analysis_jsonl(&runs)
            + &report::recovery_jsonl(&recovery)
            + &report::scaling_jsonl(&scaling)
            + &report::coverage_overhead_jsonl(&coverage)
            + &report::prediction_jsonl(&prediction);
        match std::fs::write(&analysis_json, jsonl) {
            Ok(()) => eprintln!(
                "wrote analysis + recovery + scaling + coverage + prediction metrics to \
                 {analysis_json}"
            ),
            Err(e) => eprintln!("warning: could not write {analysis_json}: {e}"),
        }
    }
}
