//! Rewriting of immediately left-recursive rules (Section 1.1).
//!
//! The paper's prototype replaces left recursion "with a predicated loop
//! that compares the precedence of the previous and the next operator",
//! supporting suffix, prefix, binary and ternary operators with precedence
//! following alternative order (highest to lowest). We implement the
//! *static stratification* of that same scheme: one synthesized rule per
//! precedence level, with binary levels expressed as the predicated loop's
//! unrolled equivalent `eᵢ : eᵢ₊₁ (op eᵢ₊₁)*`. The recognized language,
//! precedence, and (left) associativity are identical to the paper's
//! parameterized-loop formulation; only the derivation tree gains one
//! bookkeeping level per precedence tier.
//!
//! ```
//! use llstar_grammar::{parse_grammar, rewrite_left_recursion, validate};
//! let g = parse_grammar("grammar E; e : e '*' e | e '+' e | INT ; INT : [0-9]+ ;")?;
//! let g = rewrite_left_recursion(g)?;
//! assert!(validate(&g).iter().all(|i| !i.is_error()));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::ast::{Alt, Block, Ebnf, Element, Grammar, RuleId};
use std::fmt;

/// Error from [`rewrite_left_recursion`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LeftRecError {
    /// An alternative is just a bare self-reference (`e : e | …`), which
    /// no precedence scheme can give meaning to.
    BareSelfReference {
        /// The offending rule.
        rule: String,
    },
    /// The rule has no non-recursive (primary) alternative, so recursion
    /// can never bottom out.
    NoPrimaryAlternative {
        /// The offending rule.
        rule: String,
    },
}

impl fmt::Display for LeftRecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LeftRecError::BareSelfReference { rule } => {
                write!(f, "rule {rule} has a bare self-referential alternative")
            }
            LeftRecError::NoPrimaryAlternative { rule } => {
                write!(f, "rule {rule} has no non-left-recursive alternative")
            }
        }
    }
}

impl std::error::Error for LeftRecError {}

#[derive(Debug)]
enum OpKind {
    /// `e op… e` — left-associative binary/ternary operator tier.
    Binary(Vec<Element>),
    /// `e op…` — postfix operator tier.
    Suffix(Vec<Element>),
    /// `op… e` — prefix operator tier (right-recursive as written).
    Prefix(Vec<Element>),
    /// No self reference at either edge: a primary alternative.
    Primary(Alt),
}

fn classify(rule: RuleId, alt: &Alt) -> Result<OpKind, ()> {
    let starts = matches!(alt.elements.first(), Some(Element::Rule(r)) if *r == rule);
    let ends = matches!(alt.elements.last(), Some(Element::Rule(r)) if *r == rule)
        && alt.elements.len() > 1;
    Ok(if starts && alt.elements.len() == 1 {
        return Err(());
    } else if starts && ends {
        OpKind::Binary(alt.elements[1..alt.elements.len() - 1].to_vec())
    } else if starts {
        OpKind::Suffix(alt.elements[1..].to_vec())
    } else if ends {
        OpKind::Prefix(alt.elements[..alt.elements.len() - 1].to_vec())
    } else {
        OpKind::Primary(alt.clone())
    })
}

/// Rewrites every immediately left-recursive rule of `grammar` into an
/// equivalent stratified precedence ladder.
///
/// Rules that are not immediately left-recursive are untouched (indirect
/// left recursion is out of scope here and still reported by
/// [`crate::validate::validate`]).
///
/// # Errors
/// Returns [`LeftRecError`] for degenerate shapes (`e : e`, or a rule with
/// no primary alternative).
pub fn rewrite_left_recursion(mut grammar: Grammar) -> Result<Grammar, LeftRecError> {
    let targets: Vec<RuleId> = grammar
        .rules
        .iter()
        .filter(|r| {
            r.alts
                .iter()
                .any(|a| matches!(a.elements.first(), Some(Element::Rule(id)) if *id == r.id))
        })
        .map(|r| r.id)
        .collect();
    for rule in targets {
        rewrite_rule(&mut grammar, rule)?;
    }
    Ok(grammar)
}

fn rewrite_rule(grammar: &mut Grammar, rule: RuleId) -> Result<(), LeftRecError> {
    let name = grammar.rule(rule).name.clone();
    let alts = grammar.rule(rule).alts.clone();

    let mut tiers: Vec<OpKind> = Vec::new();
    let mut primaries: Vec<Alt> = Vec::new();
    for alt in &alts {
        match classify(rule, alt) {
            Ok(OpKind::Primary(p)) => primaries.push(p),
            Ok(op) => tiers.push(op),
            Err(()) => return Err(LeftRecError::BareSelfReference { rule: name }),
        }
    }
    if primaries.is_empty() {
        return Err(LeftRecError::NoPrimaryAlternative { rule: name });
    }

    // Synthesize one rule per operator tier, ordered lowest precedence
    // (first loop level) to highest; alternatives were listed highest
    // first, so iterate tiers in reverse.
    //
    //   e        : e__p0 ;
    //   e__p0    : e__p1 ( op_lowest e__p1 )* ;        (binary)
    //   …
    //   e__pK    : primaries ;
    let mut level_ids: Vec<RuleId> = Vec::new();
    let levels = tiers.len();
    for i in 0..=levels {
        level_ids.push(grammar.add_rule(&format!("{name}__p{i}")));
    }
    // Entry rule simply delegates to the lowest-precedence level.
    grammar.rules[rule.index()].alts = vec![Alt::new(vec![Element::Rule(level_ids[0])])];

    // Self references *inside* operator sequences (the ternary middle)
    // restart at the lowest precedence level.
    let entry = level_ids[0];
    let remap = |elements: Vec<Element>| -> Vec<Element> {
        elements
            .into_iter()
            .map(|e| match e {
                Element::Rule(r) if r == rule => Element::Rule(entry),
                other => other,
            })
            .collect()
    };

    for (i, tier) in tiers.into_iter().rev().enumerate() {
        let this = level_ids[i];
        let next = level_ids[i + 1];
        let alt = match tier {
            OpKind::Binary(mid) => {
                let mut loop_body = remap(mid);
                loop_body.push(Element::Rule(next));
                Alt::new(vec![
                    Element::Rule(next),
                    Element::Block(Block { alts: vec![Alt::new(loop_body)], ebnf: Ebnf::Star }),
                ])
            }
            OpKind::Suffix(ops) => Alt::new(vec![
                Element::Rule(next),
                Element::Block(Block { alts: vec![Alt::new(remap(ops))], ebnf: Ebnf::Star }),
            ]),
            OpKind::Prefix(ops) => {
                // eᵢ : op eᵢ | eᵢ₊₁  — prefix binds at its own level.
                let mut body = remap(ops);
                body.push(Element::Rule(this));
                grammar.add_alt(this, Alt::new(body));
                Alt::new(vec![Element::Rule(next)])
            }
            OpKind::Primary(_) => unreachable!("primaries filtered out above"),
        };
        grammar.add_alt(this, alt);
    }

    // Innermost level carries the primary alternatives, with self
    // references (e.g. `'(' e ')'`) pointing back at the original rule.
    let innermost = level_ids[levels];
    for p in primaries {
        grammar.add_alt(innermost, p);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::parse_grammar;
    use crate::validate::{validate, GrammarIssue};

    fn no_left_recursion(g: &Grammar) -> bool {
        !validate(g).iter().any(|i| matches!(i, GrammarIssue::LeftRecursion { .. }))
    }

    #[test]
    fn paper_expression_rule() {
        let g = parse_grammar("grammar E; e : e '*' e | e '+' e | INT ; INT:[0-9]+;").unwrap();
        assert!(!no_left_recursion(&g));
        let g = rewrite_left_recursion(g).unwrap();
        assert!(no_left_recursion(&g), "{}", crate::display::grammar_to_string(&g));
        // e : e__p0 ; e__p0 : e__p1 ('+' e__p1)* ; e__p1 : e__p2 ('*' e__p2)* ; e__p2 : INT ;
        assert_eq!(g.rules.len(), 4);
        let text = crate::display::grammar_to_string(&g);
        assert!(text.contains("e__p0 : e__p1 ('+' e__p1)*"), "{text}");
        assert!(text.contains("e__p1 : e__p2 ('*' e__p2)*"), "{text}");
    }

    #[test]
    fn prefix_and_suffix_operators() {
        let g =
            parse_grammar("grammar E; e : e '!' | '-' e | e '+' e | INT ; INT:[0-9]+;").unwrap();
        let g = rewrite_left_recursion(g).unwrap();
        assert!(no_left_recursion(&g), "{}", crate::display::grammar_to_string(&g));
        let text = crate::display::grammar_to_string(&g);
        // suffix '!' is highest precedence (first alternative).
        assert!(text.contains("('!')*"), "{text}");
        assert!(text.contains("'-' e__p1"), "{text}");
    }

    #[test]
    fn ternary_operator() {
        let g =
            parse_grammar("grammar E; e : e '?' e ':' e | e '+' e | INT ; INT:[0-9]+;").unwrap();
        let g = rewrite_left_recursion(g).unwrap();
        assert!(no_left_recursion(&g));
        let text = crate::display::grammar_to_string(&g);
        // The ternary middle restarts at the lowest level.
        assert!(text.contains("'?' e__p0 ':'"), "{text}");
    }

    #[test]
    fn parenthesized_primary_points_back_at_entry() {
        let g = parse_grammar("grammar E; e : e '+' e | '(' e ')' | INT ; INT:[0-9]+;").unwrap();
        let g = rewrite_left_recursion(g).unwrap();
        assert!(no_left_recursion(&g));
        let text = crate::display::grammar_to_string(&g);
        assert!(text.contains("'(' e ')'"), "{text}");
    }

    #[test]
    fn non_recursive_rules_untouched() {
        let g = parse_grammar("grammar E; s : A s | A ; A:'a';").unwrap();
        let before = g.rules.len();
        let g = rewrite_left_recursion(g).unwrap();
        assert_eq!(g.rules.len(), before);
    }

    #[test]
    fn bare_self_reference_is_error() {
        let g = parse_grammar("grammar E; e : e | INT ; INT:[0-9]+;").unwrap();
        assert!(matches!(rewrite_left_recursion(g), Err(LeftRecError::BareSelfReference { .. })));
    }

    #[test]
    fn no_primary_is_error() {
        let g = parse_grammar("grammar E; e : e '+' e ; INT:[0-9]+;").unwrap();
        assert!(matches!(
            rewrite_left_recursion(g),
            Err(LeftRecError::NoPrimaryAlternative { .. })
        ));
    }

    #[test]
    fn error_display() {
        assert!(LeftRecError::BareSelfReference { rule: "e".into() }
            .to_string()
            .contains("bare self-referential"));
        assert!(LeftRecError::NoPrimaryAlternative { rule: "e".into() }
            .to_string()
            .contains("no non-left-recursive"));
    }
}
