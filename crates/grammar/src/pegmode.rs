//! PEG mode: automatic insertion of syntactic predicates.
//!
//! With `options { backtrack = true; }` ANTLR "auto-inserts syntactic
//! predicates into every production, which we call PEG mode because it
//! mimics the behavior of PEG parsers" (Section 2). The analysis then
//! statically strips the predicates from every decision it can resolve
//! with pure lookahead, so only genuinely ambiguous decisions backtrack.
//!
//! This module performs the insertion as a grammar-to-grammar transform:
//! each production `A → α` of a multi-alternative decision becomes
//! `A → (α)=> α`. The *last* alternative of each decision is left
//! unpredicated (PEG semantics: the final ordered choice needs no guard —
//! if the input reaches it, it must match or the whole decision fails).

use crate::ast::{Alt, Block, Element, Grammar};

/// Applies PEG mode to every multi-alternative decision in `grammar`
/// (rule decisions and nested block decisions alike) if the grammar's
/// `backtrack` option is set; otherwise returns the grammar unchanged.
pub fn apply_peg_mode(mut grammar: Grammar) -> Grammar {
    if !grammar.options.backtrack {
        return grammar;
    }
    let mut rules = std::mem::take(&mut grammar.rules);
    for rule in &mut rules {
        let multi = rule.alts.len() > 1;
        let n = rule.alts.len();
        for (i, alt) in rule.alts.iter_mut().enumerate() {
            // Recurse into blocks first so inner decisions get predicated
            // before the outer fragment is captured.
            predicate_blocks(&mut grammar, &mut alt.elements);
            if multi && i + 1 < n {
                predicate_alt(&mut grammar, alt);
            }
        }
    }
    grammar.rules = rules;
    grammar
}

/// Prefixes `alt` with a syntactic predicate matching `alt` itself,
/// unless it already starts with one (manually specified).
fn predicate_alt(grammar: &mut Grammar, alt: &mut Alt) {
    if matches!(alt.elements.first(), Some(Element::SynPred(_))) {
        return;
    }
    let fragment = strip_for_fragment(alt);
    let id = grammar.add_synpred(fragment);
    alt.elements.insert(0, Element::SynPred(id));
}

/// The speculation fragment for an alternative: the same elements minus
/// actions and nested syntactic predicates (speculation re-evaluates
/// semantic predicates but must not duplicate side-effects).
fn strip_for_fragment(alt: &Alt) -> Alt {
    fn strip_elements(elements: &[Element]) -> Vec<Element> {
        elements
            .iter()
            .filter_map(|e| match e {
                Element::Action { .. } => None,
                Element::Block(b) => Some(Element::Block(Block {
                    alts: b.alts.iter().map(|a| Alt::new(strip_elements(&a.elements))).collect(),
                    ebnf: b.ebnf,
                })),
                other => Some(other.clone()),
            })
            .collect()
    }
    Alt::new(strip_elements(&alt.elements))
}

fn predicate_blocks(grammar: &mut Grammar, elements: &mut [Element]) {
    for elem in elements {
        if let Element::Block(b) = elem {
            let multi = b.alts.len() > 1;
            let n = b.alts.len();
            for (i, alt) in b.alts.iter_mut().enumerate() {
                predicate_blocks(grammar, &mut alt.elements);
                if multi && i + 1 < n {
                    predicate_alt(grammar, alt);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::parse_grammar;

    #[test]
    fn inserts_synpreds_on_all_but_last_alt() {
        let g = parse_grammar(
            "grammar P; options { backtrack = true; } s : A B | A C | A D ; A:'a'; B:'b'; C:'c'; D:'d';",
        )
        .unwrap();
        let g = apply_peg_mode(g);
        let s = g.rule_by_name("s").unwrap();
        assert!(matches!(s.alts[0].elements[0], Element::SynPred(_)));
        assert!(matches!(s.alts[1].elements[0], Element::SynPred(_)));
        assert!(
            !matches!(s.alts[2].elements[0], Element::SynPred(_)),
            "last alternative stays unpredicated"
        );
        assert_eq!(g.synpreds.len(), 2);
    }

    #[test]
    fn no_op_without_backtrack_option() {
        let g = parse_grammar("grammar P; s : A | B ; A:'a'; B:'b';").unwrap();
        let g = apply_peg_mode(g);
        assert!(g.synpreds.is_empty());
    }

    #[test]
    fn single_alt_rules_untouched() {
        let g = parse_grammar("grammar P; options { backtrack = true; } s : A B ; A:'a'; B:'b';")
            .unwrap();
        let g = apply_peg_mode(g);
        assert!(g.synpreds.is_empty());
    }

    #[test]
    fn nested_blocks_get_predicated() {
        let g = parse_grammar(
            "grammar P; options { backtrack = true; } s : (A B | A C) D ; A:'a'; B:'b'; C:'c'; D:'d';",
        )
        .unwrap();
        let g = apply_peg_mode(g);
        let s = g.rule_by_name("s").unwrap();
        match &s.alts[0].elements[0] {
            Element::Block(b) => {
                assert!(matches!(b.alts[0].elements[0], Element::SynPred(_)));
                assert!(!matches!(b.alts[1].elements[0], Element::SynPred(_)));
            }
            other => panic!("expected block, got {other:?}"),
        }
    }

    #[test]
    fn manual_synpred_not_duplicated() {
        let g = parse_grammar(
            "grammar P; options { backtrack = true; } s : (A)=> A B | C ; A:'a'; B:'b'; C:'c';",
        )
        .unwrap();
        let before = g.synpreds.len();
        let g = apply_peg_mode(g);
        assert_eq!(g.synpreds.len(), before, "existing predicate kept as-is");
    }

    #[test]
    fn fragments_exclude_actions() {
        let g = parse_grammar(
            "grammar P; options { backtrack = true; } s : {act()} A | B ; A:'a'; B:'b';",
        )
        .unwrap();
        let g = apply_peg_mode(g);
        let frag = &g.synpreds[0];
        assert!(
            !frag.elements.iter().any(|e| matches!(e, Element::Action { .. })),
            "speculation fragment must not contain actions: {frag:?}"
        );
    }
}
