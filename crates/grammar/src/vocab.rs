//! The token vocabulary: a bijection between terminal names/literals and
//! dense [`TokenType`] numbers.
//!
//! Type `0` is always EOF. Named tokens come from lexer rules (`ID`,
//! `INT`, …); literal tokens come from quoted strings used in parser rules
//! (`'if'`, `'+'`, …) and are displayed with their quotes.

use llstar_lexer::TokenType;
use std::collections::HashMap;
use std::fmt;

/// How a token type came to exist.
#[derive(Debug, Clone, PartialEq, Eq)]
enum TokenOrigin {
    Eof,
    Named(String),
    Literal(String),
}

/// A dense terminal vocabulary.
///
/// ```
/// use llstar_grammar::TokenVocab;
/// let mut v = TokenVocab::new();
/// let id = v.define_token("ID");
/// let kw = v.define_literal("if");
/// assert_eq!(v.display_name(id), "ID");
/// assert_eq!(v.display_name(kw), "'if'");
/// assert_eq!(v.by_name("ID"), Some(id));
/// assert_eq!(v.by_literal("if"), Some(kw));
/// ```
#[derive(Debug, Clone)]
pub struct TokenVocab {
    origins: Vec<TokenOrigin>,
    by_name: HashMap<String, TokenType>,
    by_literal: HashMap<String, TokenType>,
}

impl TokenVocab {
    /// A vocabulary containing only EOF.
    pub fn new() -> Self {
        TokenVocab {
            origins: vec![TokenOrigin::Eof],
            by_name: HashMap::new(),
            by_literal: HashMap::new(),
        }
    }

    /// Defines (or returns the existing) named token type.
    pub fn define_token(&mut self, name: &str) -> TokenType {
        if let Some(&t) = self.by_name.get(name) {
            return t;
        }
        let t = TokenType(self.origins.len() as u32);
        self.origins.push(TokenOrigin::Named(name.to_string()));
        self.by_name.insert(name.to_string(), t);
        t
    }

    /// Defines (or returns the existing) literal token type for the
    /// unquoted text `text`.
    pub fn define_literal(&mut self, text: &str) -> TokenType {
        if let Some(&t) = self.by_literal.get(text) {
            return t;
        }
        let t = TokenType(self.origins.len() as u32);
        self.origins.push(TokenOrigin::Literal(text.to_string()));
        self.by_literal.insert(text.to_string(), t);
        t
    }

    /// Looks up a named token.
    pub fn by_name(&self, name: &str) -> Option<TokenType> {
        if name == "EOF" {
            return Some(TokenType::EOF);
        }
        self.by_name.get(name).copied()
    }

    /// Looks up a literal token by its unquoted text.
    pub fn by_literal(&self, text: &str) -> Option<TokenType> {
        self.by_literal.get(text).copied()
    }

    /// Human-readable name for error messages and DFA dumps.
    pub fn display_name(&self, t: TokenType) -> String {
        match self.origins.get(t.index()) {
            Some(TokenOrigin::Eof) => "EOF".to_string(),
            Some(TokenOrigin::Named(n)) => n.clone(),
            Some(TokenOrigin::Literal(l)) => format!("'{l}'"),
            None => format!("<unknown:{}>", t.0),
        }
    }

    /// Number of token types, including EOF.
    pub fn len(&self) -> usize {
        self.origins.len()
    }

    /// Whether only EOF is defined.
    pub fn is_empty(&self) -> bool {
        self.origins.len() == 1
    }

    /// Iterates over all non-EOF token types.
    pub fn token_types(&self) -> impl Iterator<Item = TokenType> + '_ {
        (1..self.origins.len()).map(|i| TokenType(i as u32))
    }

    /// Iterates over `(type, unquoted literal text)` for all literals.
    pub fn literals(&self) -> impl Iterator<Item = (TokenType, &str)> + '_ {
        self.origins.iter().enumerate().filter_map(|(i, o)| match o {
            TokenOrigin::Literal(l) => Some((TokenType(i as u32), l.as_str())),
            _ => None,
        })
    }

    /// Iterates over `(type, name)` for all named tokens.
    pub fn named_tokens(&self) -> impl Iterator<Item = (TokenType, &str)> + '_ {
        self.origins.iter().enumerate().filter_map(|(i, o)| match o {
            TokenOrigin::Named(n) => Some((TokenType(i as u32), n.as_str())),
            _ => None,
        })
    }
}

impl Default for TokenVocab {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Display for TokenVocab {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, _) in self.origins.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}={}", i, self.display_name(TokenType(i as u32)))?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eof_is_predefined() {
        let v = TokenVocab::new();
        assert_eq!(v.len(), 1);
        assert!(v.is_empty());
        assert_eq!(v.display_name(TokenType::EOF), "EOF");
        assert_eq!(v.by_name("EOF"), Some(TokenType::EOF));
    }

    #[test]
    fn dense_assignment() {
        let mut v = TokenVocab::new();
        let a = v.define_token("A");
        let b = v.define_literal("+");
        let c = v.define_token("C");
        assert_eq!((a, b, c), (TokenType(1), TokenType(2), TokenType(3)));
        assert_eq!(v.len(), 4);
        assert!(!v.is_empty());
    }

    #[test]
    fn idempotent_definitions() {
        let mut v = TokenVocab::new();
        let a1 = v.define_token("A");
        let a2 = v.define_token("A");
        assert_eq!(a1, a2);
        let l1 = v.define_literal("if");
        let l2 = v.define_literal("if");
        assert_eq!(l1, l2);
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn literal_and_name_namespaces_are_separate() {
        let mut v = TokenVocab::new();
        let named = v.define_token("if");
        let lit = v.define_literal("if");
        assert_ne!(named, lit);
        assert_eq!(v.by_name("if"), Some(named));
        assert_eq!(v.by_literal("if"), Some(lit));
    }

    #[test]
    fn iteration() {
        let mut v = TokenVocab::new();
        v.define_token("ID");
        v.define_literal("while");
        let named: Vec<_> = v.named_tokens().map(|(_, n)| n.to_string()).collect();
        let lits: Vec<_> = v.literals().map(|(_, l)| l.to_string()).collect();
        assert_eq!(named, vec!["ID"]);
        assert_eq!(lits, vec!["while"]);
        assert_eq!(v.token_types().count(), 2);
    }

    #[test]
    fn display() {
        let mut v = TokenVocab::new();
        v.define_token("ID");
        let d = v.to_string();
        assert!(d.contains("0=EOF") && d.contains("1=ID"), "{d}");
    }
}
