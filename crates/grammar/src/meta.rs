//! Parser for the ANTLR-flavoured grammar meta-language.
//!
//! # Surface syntax
//!
//! ```text
//! grammar Name;
//! options { backtrack = true; memoize = true; m = 1; k = 2; }
//!
//! // parser rules start with a lowercase letter
//! s    : ID | ID '=' expr | 'unsigned'* 'int' ID ;
//! expr : INT | '-' expr ;
//! typ  : {isTypeName}? ID ;            // semantic predicate
//! t    : ('-'* ID)=> '-'* ID | expr ;  // syntactic predicate
//! w    : !('end')=> ID ;               // negated (PEG not-) predicate
//! r    : {act()} ID {{always_act()}} ; // actions
//!
//! // lexer rules start with an uppercase letter
//! ID  : [a-zA-Z_] [a-zA-Z0-9_]* ;
//! INT : [0-9]+ ;
//! WS  : [ \t\r\n]+ -> skip ;
//! fragment Digit : [0-9] ;
//! ```
//!
//! Parser-rule elements also support `.` (any token), `~X` / `~'lit'` /
//! `~(X|'y')` (token complement), `EOF`, blocks `( … )` with `? * +`
//! suffixes, and the same suffixes on single elements.
//!
//! Literals used in parser rules automatically become lexer rules with
//! priority over named rules (so `'if'` beats `ID`), unless an existing
//! lexer rule already matches exactly that literal, in which case the two
//! are unified.

use crate::ast::{Alt, Block, Ebnf, Element, Grammar, GrammarOptions};
use llstar_lexer::{Rx, TokenType};
use std::fmt;

/// Error from [`parse_grammar`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetaError {
    /// 1-based line of the error.
    pub line: u32,
    /// 1-based column of the error.
    pub col: u32,
    /// Description.
    pub message: String,
}

impl fmt::Display for MetaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "grammar syntax error at {}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for MetaError {}

/// Parses a grammar file into a resolved [`Grammar`].
///
/// # Errors
/// Returns a [`MetaError`] on the first syntax error, unknown token/rule
/// reference, or invalid lexer-rule pattern.
pub fn parse_grammar(src: &str) -> Result<Grammar, MetaError> {
    let raw = RawGrammar::parse(src)?;
    raw.resolve()
}

// ---------------------------------------------------------------------------
// Raw (unresolved) AST
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum RawTerm {
    TokenRef(String),
    Literal(String),
}

#[derive(Debug, Clone)]
enum RawElement {
    Term(RawTerm),
    Eof,
    RuleRef(String),
    Wildcard,
    Not(Vec<RawTerm>),
    Block(Vec<RawAlt>, Ebnf),
    SemPred(String),
    SynPred(Vec<RawAlt>),
    NotSynPred(Vec<RawAlt>),
    Action(String, bool),
}

#[derive(Debug, Clone)]
struct RawAlt {
    elements: Vec<RawElement>,
}

#[derive(Debug, Clone)]
struct RawRule {
    name: String,
    alts: Vec<RawAlt>,
    line: u32,
    col: u32,
}

#[derive(Debug, Clone)]
struct RawLexRule {
    name: String,
    pattern: String,
    skip: bool,
    fragment: bool,
    line: u32,
    col: u32,
}

#[derive(Debug)]
struct RawGrammar {
    name: String,
    options: GrammarOptions,
    rules: Vec<RawRule>,
    lex_rules: Vec<RawLexRule>,
}

// ---------------------------------------------------------------------------
// Character cursor
// ---------------------------------------------------------------------------

struct Cursor<'a> {
    src: &'a str,
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Cursor { src, chars: src.chars().collect(), pos: 0, line: 1, col: 1 }
    }

    fn err(&self, msg: impl Into<String>) -> MetaError {
        MetaError { line: self.line, col: self.col, message: msg.into() }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<char> {
        self.chars.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn at_eof(&self) -> bool {
        self.pos >= self.chars.len()
    }

    /// Skips whitespace and `//` / `/* */` comments.
    fn skip_trivia(&mut self) -> Result<(), MetaError> {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('/') if self.peek2() == Some('/') => {
                    while let Some(c) = self.bump() {
                        if c == '\n' {
                            break;
                        }
                    }
                }
                Some('/') if self.peek2() == Some('*') => {
                    self.bump();
                    self.bump();
                    loop {
                        match self.bump() {
                            Some('*') if self.peek() == Some('/') => {
                                self.bump();
                                break;
                            }
                            Some(_) => {}
                            None => return Err(self.err("unterminated block comment")),
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn eat(&mut self, expected: char) -> Result<(), MetaError> {
        self.skip_trivia()?;
        match self.peek() {
            Some(c) if c == expected => {
                self.bump();
                Ok(())
            }
            Some(c) => Err(self.err(format!("expected {expected:?}, found {c:?}"))),
            None => Err(self.err(format!("expected {expected:?}, found end of file"))),
        }
    }

    fn try_eat(&mut self, expected: char) -> Result<bool, MetaError> {
        self.skip_trivia()?;
        if self.peek() == Some(expected) {
            self.bump();
            Ok(true)
        } else {
            Ok(false)
        }
    }

    fn ident(&mut self) -> Result<String, MetaError> {
        self.skip_trivia()?;
        let mut out = String::new();
        match self.peek() {
            Some(c) if c.is_alphabetic() || c == '_' => {}
            Some(c) => return Err(self.err(format!("expected identifier, found {c:?}"))),
            None => return Err(self.err("expected identifier, found end of file")),
        }
        while matches!(self.peek(), Some(c) if c.is_alphanumeric() || c == '_') {
            out.push(self.bump().expect("peeked"));
        }
        Ok(out)
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<(), MetaError> {
        let name = self.ident()?;
        if name == kw {
            Ok(())
        } else {
            Err(self.err(format!("expected keyword {kw:?}, found {name:?}")))
        }
    }

    /// Parses a quoted literal `'…'` returning its unescaped contents.
    fn literal(&mut self) -> Result<String, MetaError> {
        self.skip_trivia()?;
        if self.peek() != Some('\'') {
            return Err(self.err("expected a quoted literal"));
        }
        self.bump();
        let mut out = String::new();
        loop {
            match self.bump() {
                Some('\'') => return Ok(out),
                Some('\\') => match self.bump() {
                    Some('n') => out.push('\n'),
                    Some('r') => out.push('\r'),
                    Some('t') => out.push('\t'),
                    Some(c) => out.push(c),
                    None => return Err(self.err("unterminated literal")),
                },
                Some(c) => out.push(c),
                None => return Err(self.err("unterminated literal")),
            }
        }
    }

    /// Captures balanced `{ … }` returning the inner text; assumes the
    /// cursor is at `{`. Skips over quoted strings inside.
    fn balanced_braces(&mut self) -> Result<String, MetaError> {
        debug_assert_eq!(self.peek(), Some('{'));
        self.bump();
        let start = self.pos;
        let mut depth = 1usize;
        loop {
            match self.bump() {
                Some('{') => depth += 1,
                Some('}') => {
                    depth -= 1;
                    if depth == 0 {
                        let inner: String = self.chars[start..self.pos - 1].iter().collect();
                        return Ok(inner);
                    }
                }
                Some(q @ ('"' | '\'')) => {
                    // Skip host-language string/char literal.
                    loop {
                        match self.bump() {
                            Some('\\') => {
                                self.bump();
                            }
                            Some(c) if c == q => break,
                            Some(_) => {}
                            None => return Err(self.err("unterminated string in action")),
                        }
                    }
                }
                Some(_) => {}
                None => return Err(self.err("unterminated action block")),
            }
        }
    }

    /// Captures a raw lexer-rule pattern up to a top-level `;` or `->`,
    /// respecting quotes and character classes.
    fn raw_pattern(&mut self) -> Result<(String, bool), MetaError> {
        self.skip_trivia()?;
        let start = self.pos;
        let mut skip_marker = false;
        let end;
        loop {
            match self.peek() {
                Some(';') => {
                    end = self.pos;
                    self.bump();
                    break;
                }
                Some('-') if self.peek2() == Some('>') => {
                    end = self.pos;
                    self.bump();
                    self.bump();
                    let word = self.ident()?;
                    if word != "skip" {
                        return Err(
                            self.err(format!("unsupported lexer command {word:?} (only 'skip')"))
                        );
                    }
                    skip_marker = true;
                    self.eat(';')?;
                    break;
                }
                Some('\'') => {
                    self.bump();
                    loop {
                        match self.bump() {
                            Some('\\') => {
                                self.bump();
                            }
                            Some('\'') => break,
                            Some(_) => {}
                            None => return Err(self.err("unterminated literal in pattern")),
                        }
                    }
                }
                Some('[') => {
                    self.bump();
                    loop {
                        match self.bump() {
                            Some('\\') => {
                                self.bump();
                            }
                            Some(']') => break,
                            Some(_) => {}
                            None => return Err(self.err("unterminated class in pattern")),
                        }
                    }
                }
                Some(_) => {
                    self.bump();
                }
                None => return Err(self.err("unterminated lexer rule (missing ';')")),
            }
        }
        let pattern: String = self.chars[start..end].iter().collect();
        Ok((pattern, skip_marker))
    }
}

// ---------------------------------------------------------------------------
// Raw parsing
// ---------------------------------------------------------------------------

impl RawGrammar {
    fn parse(src: &str) -> Result<RawGrammar, MetaError> {
        let mut cur = Cursor::new(src);
        cur.skip_trivia()?;
        cur.eat_keyword("grammar")?;
        let name = cur.ident()?;
        cur.eat(';')?;

        let mut options = GrammarOptions::default();
        cur.skip_trivia()?;
        // Peek for "options".
        let save = (cur.pos, cur.line, cur.col);
        if !cur.at_eof() {
            if let Ok(word) = cur.ident() {
                if word == "options" {
                    parse_options(&mut cur, &mut options)?;
                } else {
                    (cur.pos, cur.line, cur.col) = save;
                }
            } else {
                (cur.pos, cur.line, cur.col) = save;
            }
        }

        let mut rules = Vec::new();
        let mut lex_rules = Vec::new();
        loop {
            cur.skip_trivia()?;
            if cur.at_eof() {
                break;
            }
            let (line, col) = (cur.line, cur.col);
            let name = cur.ident()?;
            if name == "fragment" {
                let (line, col) = (cur.line, cur.col);
                let frag_name = cur.ident()?;
                if !starts_upper(&frag_name) {
                    return Err(cur.err("fragment names must start with an uppercase letter"));
                }
                cur.eat(':')?;
                let (pattern, skip) = cur.raw_pattern()?;
                if skip {
                    return Err(cur.err("fragments cannot be marked 'skip'"));
                }
                lex_rules.push(RawLexRule {
                    name: frag_name,
                    pattern,
                    skip: false,
                    fragment: true,
                    line,
                    col,
                });
            } else if starts_upper(&name) {
                cur.eat(':')?;
                let (pattern, skip) = cur.raw_pattern()?;
                lex_rules.push(RawLexRule { name, pattern, skip, fragment: false, line, col });
            } else {
                cur.eat(':')?;
                let alts = parse_alts(&mut cur)?;
                cur.eat(';')?;
                rules.push(RawRule { name, alts, line, col });
            }
        }
        Ok(RawGrammar { name, options, rules, lex_rules })
    }
}

fn starts_upper(s: &str) -> bool {
    s.chars().next().is_some_and(|c| c.is_uppercase())
}

fn parse_options(cur: &mut Cursor<'_>, options: &mut GrammarOptions) -> Result<(), MetaError> {
    cur.eat('{')?;
    loop {
        cur.skip_trivia()?;
        if cur.try_eat('}')? {
            return Ok(());
        }
        let key = cur.ident()?;
        cur.eat('=')?;
        cur.skip_trivia()?;
        let mut value = String::new();
        while matches!(cur.peek(), Some(c) if c.is_alphanumeric() || c == '_') {
            value.push(cur.bump().expect("peeked"));
        }
        cur.eat(';')?;
        let bool_value = |cur: &Cursor<'_>| match value.as_str() {
            "true" => Ok(true),
            "false" => Ok(false),
            other => Err(cur.err(format!("option {key} expects true/false, got {other:?}"))),
        };
        match key.as_str() {
            "backtrack" => options.backtrack = bool_value(cur)?,
            "memoize" => options.memoize = bool_value(cur)?,
            "m" => {
                options.rec_depth_m = value
                    .parse()
                    .map_err(|_| cur.err(format!("option m expects an integer, got {value:?}")))?
            }
            "k" => {
                options.max_k =
                    Some(value.parse().map_err(|_| {
                        cur.err(format!("option k expects an integer, got {value:?}"))
                    })?)
            }
            other => return Err(cur.err(format!("unknown option {other:?}"))),
        }
    }
}

fn parse_alts(cur: &mut Cursor<'_>) -> Result<Vec<RawAlt>, MetaError> {
    let mut alts = vec![parse_alt(cur)?];
    while cur.try_eat('|')? {
        alts.push(parse_alt(cur)?);
    }
    Ok(alts)
}

fn parse_alt(cur: &mut Cursor<'_>) -> Result<RawAlt, MetaError> {
    let mut elements = Vec::new();
    loop {
        cur.skip_trivia()?;
        match cur.peek() {
            None | Some(';') | Some('|') | Some(')') => break,
            _ => elements.push(parse_element(cur)?),
        }
    }
    Ok(RawAlt { elements })
}

/// Wraps `elem` in an EBNF block if a `? * +` suffix follows.
fn apply_suffix(cur: &mut Cursor<'_>, elem: RawElement) -> Result<RawElement, MetaError> {
    cur.skip_trivia()?;
    let ebnf = match cur.peek() {
        Some('?') => Ebnf::Optional,
        Some('*') => Ebnf::Star,
        Some('+') => Ebnf::Plus,
        _ => return Ok(elem),
    };
    cur.bump();
    Ok(RawElement::Block(vec![RawAlt { elements: vec![elem] }], ebnf))
}

fn parse_element(cur: &mut Cursor<'_>) -> Result<RawElement, MetaError> {
    cur.skip_trivia()?;
    match cur.peek() {
        Some('(') => {
            cur.bump();
            let alts = parse_alts(cur)?;
            cur.eat(')')?;
            cur.skip_trivia()?;
            if cur.peek() == Some('=') && cur.peek2() == Some('>') {
                cur.bump();
                cur.bump();
                return Ok(RawElement::SynPred(alts));
            }
            let ebnf = match cur.peek() {
                Some('?') => {
                    cur.bump();
                    Ebnf::Optional
                }
                Some('*') => {
                    cur.bump();
                    Ebnf::Star
                }
                Some('+') => {
                    cur.bump();
                    Ebnf::Plus
                }
                _ => Ebnf::None,
            };
            Ok(RawElement::Block(alts, ebnf))
        }
        Some('\'') => {
            let text = cur.literal()?;
            if text.is_empty() {
                return Err(cur.err("empty literals are not allowed in parser rules"));
            }
            apply_suffix(cur, RawElement::Term(RawTerm::Literal(text)))
        }
        Some('.') => {
            cur.bump();
            apply_suffix(cur, RawElement::Wildcard)
        }
        Some('!') => {
            cur.bump();
            cur.skip_trivia()?;
            if cur.peek() != Some('(') {
                return Err(cur.err("'!' must be followed by a '(…)=>'-style predicate"));
            }
            cur.bump();
            let alts = parse_alts(cur)?;
            cur.eat(')')?;
            cur.skip_trivia()?;
            if cur.peek() == Some('=') && cur.peek2() == Some('>') {
                cur.bump();
                cur.bump();
                Ok(RawElement::NotSynPred(alts))
            } else {
                Err(cur.err("negated predicates must end with '=>'"))
            }
        }
        Some('~') => {
            cur.bump();
            cur.skip_trivia()?;
            let mut terms = Vec::new();
            if cur.try_eat('(')? {
                loop {
                    terms.push(parse_term(cur)?);
                    if !cur.try_eat('|')? {
                        break;
                    }
                }
                cur.eat(')')?;
            } else {
                terms.push(parse_term(cur)?);
            }
            apply_suffix(cur, RawElement::Not(terms))
        }
        Some('{') => {
            if cur.peek2() == Some('{') {
                // {{ … }} always-action: capture outer braces, then strip.
                let outer = cur.balanced_braces()?;
                let inner = outer
                    .strip_prefix('{')
                    .and_then(|s| s.strip_suffix('}'))
                    .ok_or_else(|| cur.err("malformed {{…}} action"))?;
                Ok(RawElement::Action(inner.trim().to_string(), true))
            } else {
                let text = cur.balanced_braces()?;
                if cur.try_eat('?')? {
                    Ok(RawElement::SemPred(text.trim().to_string()))
                } else {
                    Ok(RawElement::Action(text.trim().to_string(), false))
                }
            }
        }
        Some(c) if c.is_alphabetic() || c == '_' => {
            let name = cur.ident()?;
            let elem = if name == "EOF" {
                RawElement::Eof
            } else if starts_upper(&name) {
                RawElement::Term(RawTerm::TokenRef(name))
            } else {
                RawElement::RuleRef(name)
            };
            apply_suffix(cur, elem)
        }
        Some(c) => Err(cur.err(format!("unexpected character {c:?} in production"))),
        None => Err(cur.err("unexpected end of file in production")),
    }
}

fn parse_term(cur: &mut Cursor<'_>) -> Result<RawTerm, MetaError> {
    cur.skip_trivia()?;
    match cur.peek() {
        Some('\'') => Ok(RawTerm::Literal(cur.literal()?)),
        Some(c) if c.is_alphabetic() => {
            let name = cur.ident()?;
            if starts_upper(&name) {
                Ok(RawTerm::TokenRef(name))
            } else {
                Err(cur.err("'~' applies to tokens, not rules"))
            }
        }
        _ => Err(cur.err("expected a token reference or literal after '~'")),
    }
}

// ---------------------------------------------------------------------------
// Resolution: raw AST -> Grammar
// ---------------------------------------------------------------------------

impl RawGrammar {
    fn resolve(self) -> Result<Grammar, MetaError> {
        let mut g = Grammar::new(&self.name, self.options.clone());

        // Pass 1: lexer rules define the named-token vocabulary and spec.
        for lr in &self.lex_rules {
            let rx = Rx::parse(&lr.pattern).map_err(|e| MetaError {
                line: lr.line,
                col: lr.col,
                message: format!("in lexer rule {}: {e}", lr.name),
            })?;
            if lr.fragment {
                g.lexer.add_fragment(&lr.name, rx);
            } else {
                let ttype = g.vocab.define_token(&lr.name);
                g.lexer.push_rule(&lr.name, rx, ttype, lr.skip);
            }
        }

        // Pass 2: declare all parser rules so references resolve.
        for r in &self.rules {
            if g.rule_id(&r.name).is_some() {
                return Err(MetaError {
                    line: r.line,
                    col: r.col,
                    message: format!("duplicate rule {:?}", r.name),
                });
            }
            g.add_rule(&r.name);
        }
        if self.rules.is_empty() {
            return Err(MetaError {
                line: 1,
                col: 1,
                message: "grammar has no parser rules".to_string(),
            });
        }

        // Pass 3: resolve productions.
        for r in &self.rules {
            let id = g.rule_id(&r.name).expect("declared in pass 2");
            let mut alts = Vec::with_capacity(r.alts.len());
            for raw_alt in &r.alts {
                alts.push(resolve_alt(&mut g, raw_alt, r)?);
            }
            for alt in alts {
                g.add_alt(id, alt);
            }
        }
        Ok(g)
    }
}

fn resolve_term(g: &mut Grammar, term: &RawTerm, at: &RawRule) -> Result<TokenType, MetaError> {
    match term {
        RawTerm::TokenRef(name) => g.vocab.by_name(name).ok_or_else(|| MetaError {
            line: at.line,
            col: at.col,
            message: format!("rule {:?} references undefined token {name:?}", at.name),
        }),
        RawTerm::Literal(text) => {
            if let Some(t) = g.vocab.by_literal(text) {
                return Ok(t);
            }
            // Unify with an existing lexer rule whose pattern is exactly
            // this literal; otherwise synthesize a high-priority rule.
            let lit_rx = Rx::literal(text);
            if let Some(rule) = g.lexer.rules().iter().find(|r| r.rx == lit_rx && !r.skip) {
                let t = rule.ttype;
                // Record the alias so later lookups hit the fast path.
                let name = rule.name.clone();
                let _ = name;
                return Ok(t);
            }
            let t = g.vocab.define_literal(text);
            g.lexer.push_rule_front(&format!("'{text}'"), lit_rx, t, false);
            Ok(t)
        }
    }
}

fn resolve_alt(g: &mut Grammar, raw: &RawAlt, at: &RawRule) -> Result<Alt, MetaError> {
    let mut elements = Vec::with_capacity(raw.elements.len());
    for e in &raw.elements {
        elements.push(resolve_element(g, e, at)?);
    }
    Ok(Alt::new(elements))
}

fn resolve_synpred_fragment(
    g: &mut Grammar,
    raw_alts: &[RawAlt],
    at: &RawRule,
) -> Result<crate::ast::SynPredId, MetaError> {
    let mut alts = Vec::with_capacity(raw_alts.len());
    for a in raw_alts {
        alts.push(resolve_alt(g, a, at)?);
    }
    let fragment = if alts.len() == 1 {
        alts.pop().expect("len checked")
    } else {
        Alt::new(vec![Element::Block(Block { alts, ebnf: Ebnf::None })])
    };
    Ok(g.add_synpred(fragment))
}

fn resolve_element(g: &mut Grammar, raw: &RawElement, at: &RawRule) -> Result<Element, MetaError> {
    Ok(match raw {
        RawElement::Term(t) => Element::Token(resolve_term(g, t, at)?),
        RawElement::Eof => Element::Token(TokenType::EOF),
        RawElement::RuleRef(name) => {
            let id = g.rule_id(name).ok_or_else(|| MetaError {
                line: at.line,
                col: at.col,
                message: format!("rule {:?} references undefined rule {name:?}", at.name),
            })?;
            Element::Rule(id)
        }
        RawElement::Wildcard => {
            let alts: Vec<Alt> =
                g.vocab.token_types().map(|t| Alt::new(vec![Element::Token(t)])).collect();
            if alts.is_empty() {
                return Err(MetaError {
                    line: at.line,
                    col: at.col,
                    message: "wildcard '.' needs at least one token type".to_string(),
                });
            }
            Element::Block(Block { alts, ebnf: Ebnf::None })
        }
        RawElement::Not(terms) => {
            let mut excluded = Vec::with_capacity(terms.len());
            for t in terms {
                excluded.push(resolve_term(g, t, at)?);
            }
            let alts: Vec<Alt> = g
                .vocab
                .token_types()
                .filter(|t| !excluded.contains(t))
                .map(|t| Alt::new(vec![Element::Token(t)]))
                .collect();
            if alts.is_empty() {
                return Err(MetaError {
                    line: at.line,
                    col: at.col,
                    message: "'~' complement is empty".to_string(),
                });
            }
            Element::Block(Block { alts, ebnf: Ebnf::None })
        }
        RawElement::Block(raw_alts, ebnf) => {
            let mut alts = Vec::with_capacity(raw_alts.len());
            for a in raw_alts {
                alts.push(resolve_alt(g, a, at)?);
            }
            Element::Block(Block { alts, ebnf: *ebnf })
        }
        RawElement::SemPred(text) => {
            let id = g.add_sempred(text);
            Element::SemPred(id)
        }
        RawElement::SynPred(raw_alts) => {
            let id = resolve_synpred_fragment(g, raw_alts, at)?;
            Element::SynPred(id)
        }
        RawElement::NotSynPred(raw_alts) => {
            let id = resolve_synpred_fragment(g, raw_alts, at)?;
            Element::NotSynPred(id)
        }
        RawElement::Action(text, always) => {
            let id = g.add_action(text);
            Element::Action { id, always: *always }
        }
    })
}

// `src` is retained on Cursor for future use (error snippets).
impl<'a> Cursor<'a> {
    #[allow(dead_code)]
    fn source(&self) -> &'a str {
        self.src
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Element;

    const PAPER_S: &str = r#"
        grammar S;
        s : ID | ID '=' expr | 'unsigned'* 'int' ID | 'unsigned'* ID ID ;
        expr : INT ;
        ID : [a-zA-Z_] [a-zA-Z0-9_]* ;
        INT : [0-9]+ ;
        WS : [ \t\r\n]+ -> skip ;
    "#;

    #[test]
    fn parses_paper_rule_s() {
        let g = parse_grammar(PAPER_S).unwrap();
        assert_eq!(g.name, "S");
        assert_eq!(g.rules.len(), 2);
        let s = g.rule_by_name("s").unwrap();
        assert_eq!(s.alts.len(), 4);
        // Third alternative: 'unsigned'* 'int' ID
        let alt3 = &s.alts[2];
        assert!(matches!(alt3.elements[0], Element::Block(ref b) if b.ebnf == Ebnf::Star));
        assert!(matches!(alt3.elements[1], Element::Token(_)));
        // Vocabulary: ID INT WS named + 'unsigned' '=' 'int' literals + EOF.
        assert_eq!(g.vocab.len(), 7);
    }

    #[test]
    fn literals_unify_with_exact_lexer_rules() {
        let g = parse_grammar("grammar U; s : 'if' ID ; IF : 'if' ; ID : [a-z]+ ;").unwrap();
        // 'if' in the parser should reuse the IF token type, not mint a new
        // one that shadows it.
        let if_type = g.vocab.by_name("IF").unwrap();
        let s = g.rule_by_name("s").unwrap();
        assert_eq!(s.alts[0].elements[0], Element::Token(if_type));
    }

    #[test]
    fn options_parse() {
        let g = parse_grammar(
            "grammar O; options { backtrack = true; memoize = false; m = 2; k = 4; } s : A ; A : 'a' ;",
        )
        .unwrap();
        assert!(g.options.backtrack);
        assert!(!g.options.memoize);
        assert_eq!(g.options.rec_depth_m, 2);
        assert_eq!(g.options.max_k, Some(4));
    }

    #[test]
    fn unknown_option_is_error() {
        let err = parse_grammar("grammar O; options { frobnicate = true; } s : A ; A : 'a' ;")
            .unwrap_err();
        assert!(err.message.contains("unknown option"), "{err}");
    }

    #[test]
    fn predicates_and_actions() {
        let g = parse_grammar(
            r#"
            grammar P;
            typeId : {isTypeName}? ID {log()} {{scope_push()}} ;
            ID : [a-z]+ ;
            "#,
        )
        .unwrap();
        let r = g.rule_by_name("typeId").unwrap();
        match &r.alts[0].elements[..] {
            [Element::SemPred(p), Element::Token(_), Element::Action { id: a1, always: false }, Element::Action { id: a2, always: true }] =>
            {
                assert_eq!(g.sempred_text(*p), "isTypeName");
                assert_eq!(g.action_text(*a1), "log()");
                assert_eq!(g.action_text(*a2), "scope_push()");
            }
            other => panic!("unexpected elements: {other:?}"),
        }
    }

    #[test]
    fn syntactic_predicate() {
        let g = parse_grammar(
            r#"
            grammar Y;
            t : ('-'* ID)=> '-'* ID | expr ;
            expr : INT | '-' expr ;
            ID : [a-z]+ ;
            INT : [0-9]+ ;
            "#,
        )
        .unwrap();
        let t = g.rule_by_name("t").unwrap();
        assert!(matches!(t.alts[0].elements[0], Element::SynPred(_)));
        assert_eq!(g.synpreds.len(), 1);
        assert_eq!(g.synpreds[0].elements.len(), 2);
    }

    #[test]
    fn ebnf_suffix_on_single_element() {
        let g = parse_grammar("grammar E; s : A? B* C+ ; A:'a'; B:'b'; C:'c';").unwrap();
        let s = g.rule_by_name("s").unwrap();
        let kinds: Vec<Ebnf> = s.alts[0]
            .elements
            .iter()
            .map(|e| match e {
                Element::Block(b) => b.ebnf,
                other => panic!("expected block, got {other:?}"),
            })
            .collect();
        assert_eq!(kinds, vec![Ebnf::Optional, Ebnf::Star, Ebnf::Plus]);
    }

    #[test]
    fn wildcard_and_not() {
        let g = parse_grammar("grammar W; s : ~A . ; A:'a'; B:'b'; C:'c';").unwrap();
        let s = g.rule_by_name("s").unwrap();
        match &s.alts[0].elements[0] {
            Element::Block(b) => assert_eq!(b.alts.len(), 2, "~A = B|C"),
            other => panic!("{other:?}"),
        }
        match &s.alts[0].elements[1] {
            Element::Block(b) => assert_eq!(b.alts.len(), 3, ". = A|B|C"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn eof_reference() {
        let g = parse_grammar("grammar F; s : A EOF ; A : 'a' ;").unwrap();
        let s = g.rule_by_name("s").unwrap();
        assert_eq!(s.alts[0].elements[1], Element::Token(TokenType::EOF));
    }

    #[test]
    fn undefined_references_are_errors() {
        let err = parse_grammar("grammar B; s : nothere ; A : 'a' ;").unwrap_err();
        assert!(err.message.contains("undefined rule"), "{err}");
        let err = parse_grammar("grammar B; s : MISSING ; A : 'a' ;").unwrap_err();
        assert!(err.message.contains("undefined token"), "{err}");
    }

    #[test]
    fn duplicate_rule_is_error() {
        let err = parse_grammar("grammar D; s : A ; s : A ; A : 'a' ;").unwrap_err();
        assert!(err.message.contains("duplicate rule"), "{err}");
    }

    #[test]
    fn comments_are_skipped() {
        let g = parse_grammar("grammar C; // line comment\n/* block\ncomment */ s : A ; A : 'a' ;")
            .unwrap();
        assert_eq!(g.rules.len(), 1);
    }

    #[test]
    fn fragments_flow_to_lexer_spec() {
        let g =
            parse_grammar("grammar G; s : NUM ; fragment Digit : [0-9] ; NUM : Digit+ ;").unwrap();
        let scanner = g.lexer.build().unwrap();
        let toks = scanner.tokenize("123").unwrap();
        assert_eq!(toks[0].ttype, g.vocab.by_name("NUM").unwrap());
    }

    #[test]
    fn error_positions_are_tracked() {
        let err = parse_grammar("grammar X;\n\ns : $ ;").unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.message.contains('$'), "{err}");
    }

    #[test]
    fn nested_action_braces() {
        let g = parse_grammar("grammar N; s : {if x { y(\"}\"); }} A ; A : 'a' ;").unwrap();
        assert_eq!(g.actions[0], "if x { y(\"}\"); }");
    }

    #[test]
    fn grammar_without_parser_rules_is_error() {
        let err = parse_grammar("grammar Z; A : 'a' ;").unwrap_err();
        assert!(err.message.contains("no parser rules"), "{err}");
    }
}
