//! The predicated-grammar abstract syntax, following Section 3 of the
//! paper.
//!
//! A [`Grammar`] is the tuple *G = (N, T, P, S, Π, M)*: nonterminals
//! ([`Rule`]s), terminals (the [`TokenVocab`]), productions ([`Alt`]s),
//! a start symbol, side-effect-free semantic predicates, and actions
//! (mutators). We additionally keep syntactic predicates explicit (the
//! paper erases them to semantic predicates `synpred(α)` — Section 4.1 —
//! which the runtime does too).

use crate::vocab::TokenVocab;
use llstar_lexer::{LexerSpec, TokenType};
use std::collections::HashMap;
use std::fmt;

/// Identifies a parser rule (nonterminal) within its [`Grammar`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RuleId(pub u32);

impl RuleId {
    /// Dense index for table lookups.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Identifies a semantic predicate (host-language boolean expression).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PredId(pub u32);

/// Identifies an embedded action (mutator).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ActionId(pub u32);

/// Identifies a syntactic predicate: a grammar fragment that must match
/// the upcoming input for the gated production to be viable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SynPredId(pub u32);

/// EBNF suffix of a [`Block`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Ebnf {
    /// Plain subrule `( … )`: exactly once.
    None,
    /// `( … )?`: at most once.
    Optional,
    /// `( … )*`: zero or more times.
    Star,
    /// `( … )+`: one or more times.
    Plus,
}

impl Ebnf {
    /// The suffix characters as written in a grammar.
    pub fn suffix(self) -> &'static str {
        match self {
            Ebnf::None => "",
            Ebnf::Optional => "?",
            Ebnf::Star => "*",
            Ebnf::Plus => "+",
        }
    }
}

/// A parenthesized subrule with an EBNF suffix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// The alternatives inside the parentheses.
    pub alts: Vec<Alt>,
    /// The EBNF operator applied to the block.
    pub ebnf: Ebnf,
}

/// One element on the right-hand side of a production.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Element {
    /// A terminal (token reference or literal, already resolved to a type).
    Token(TokenType),
    /// A nonterminal reference.
    Rule(RuleId),
    /// A nested subrule, possibly with an EBNF operator.
    Block(Block),
    /// A semantic predicate `{π}?` gating what follows.
    SemPred(PredId),
    /// A syntactic predicate `(α)=>` gating what follows.
    SynPred(SynPredId),
    /// A negated syntactic predicate `!(α)=>`: what follows is viable
    /// only if the fragment does *not* match (Ford's PEG not-predicate,
    /// Section 4.1).
    NotSynPred(SynPredId),
    /// An embedded action `{μ}`; `always` actions (`{{μ}}`) execute even
    /// during speculation.
    Action {
        /// Index into [`Grammar::actions`].
        id: ActionId,
        /// Whether the action runs during speculative parses.
        always: bool,
    },
}

impl Element {
    /// A non-always action element.
    pub fn action(id: ActionId) -> Element {
        Element::Action { id, always: false }
    }
}

/// One production (alternative) of a rule: a sequence of elements.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Alt {
    /// The elements, in order; empty means ε.
    pub elements: Vec<Element>,
}

impl Alt {
    /// Creates an alternative from elements.
    pub fn new(elements: Vec<Element>) -> Self {
        Alt { elements }
    }

    /// The empty (ε) alternative.
    pub fn epsilon() -> Self {
        Alt::default()
    }
}

impl FromIterator<Element> for Alt {
    fn from_iter<I: IntoIterator<Item = Element>>(iter: I) -> Self {
        Alt { elements: iter.into_iter().collect() }
    }
}

/// A parser rule (nonterminal) with its ordered alternatives.
///
/// Alternative order encodes precedence: ambiguities resolve in favour of
/// the lowest-numbered production (Section 3.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    /// The rule name as written in the grammar.
    pub name: String,
    /// This rule's id (its index in [`Grammar::rules`]).
    pub id: RuleId,
    /// The ordered productions.
    pub alts: Vec<Alt>,
}

/// Grammar-level options (the `options { … }` section).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GrammarOptions {
    /// PEG mode: auto-insert a syntactic predicate on the left edge of
    /// every production of every decision (Section 2).
    pub backtrack: bool,
    /// Memoize speculative sub-parses (packrat caching; Section 6.2).
    pub memoize: bool,
    /// The recursion-depth bound `m` used by grammar analysis to avoid
    /// nontermination (Section 5.3). The paper's examples use `m = 1`.
    pub rec_depth_m: u32,
    /// Optional cap on lookahead DFA depth (a fixed-k mode used by the
    /// LL(k) blow-up experiment); `None` means unbounded (true LL(*)).
    pub max_k: Option<u32>,
}

impl Default for GrammarOptions {
    fn default() -> Self {
        GrammarOptions { backtrack: false, memoize: true, rec_depth_m: 1, max_k: None }
    }
}

/// A predicated grammar: rules, token vocabulary, predicates, actions, and
/// the lexer specification that produces its terminals.
#[derive(Debug, Clone)]
pub struct Grammar {
    /// The grammar name.
    pub name: String,
    /// Grammar-level options.
    pub options: GrammarOptions,
    /// Parser rules; `rules[i].id == RuleId(i)`. The start symbol is the
    /// first rule unless overridden by consumers.
    pub rules: Vec<Rule>,
    /// Terminal vocabulary.
    pub vocab: TokenVocab,
    /// Lexer rules compiled alongside the grammar.
    pub lexer: LexerSpec,
    /// Semantic predicate source texts, indexed by [`PredId`].
    pub sempreds: Vec<String>,
    /// Action source texts, indexed by [`ActionId`].
    pub actions: Vec<String>,
    /// Syntactic predicate fragments, indexed by [`SynPredId`]. Each is a
    /// production-like sequence that must match the upcoming input.
    pub synpreds: Vec<Alt>,
    rule_map: HashMap<String, RuleId>,
}

impl Grammar {
    /// Creates an empty grammar with the given name and options.
    pub fn new(name: &str, options: GrammarOptions) -> Self {
        Grammar {
            name: name.to_string(),
            options,
            rules: Vec::new(),
            vocab: TokenVocab::new(),
            lexer: LexerSpec::new(),
            sempreds: Vec::new(),
            actions: Vec::new(),
            synpreds: Vec::new(),
            rule_map: HashMap::new(),
        }
    }

    /// Adds a rule shell (no alternatives yet) and returns its id.
    ///
    /// # Panics
    /// Panics if a rule with this name already exists.
    pub fn add_rule(&mut self, name: &str) -> RuleId {
        assert!(!self.rule_map.contains_key(name), "duplicate rule definition {name:?}");
        let id = RuleId(self.rules.len() as u32);
        self.rules.push(Rule { name: name.to_string(), id, alts: Vec::new() });
        self.rule_map.insert(name.to_string(), id);
        id
    }

    /// Appends an alternative to `rule`.
    pub fn add_alt(&mut self, rule: RuleId, alt: Alt) {
        self.rules[rule.index()].alts.push(alt);
    }

    /// Looks a rule up by name.
    pub fn rule_by_name(&self, name: &str) -> Option<&Rule> {
        self.rule_map.get(name).map(|id| &self.rules[id.index()])
    }

    /// Looks a rule id up by name.
    pub fn rule_id(&self, name: &str) -> Option<RuleId> {
        self.rule_map.get(name).copied()
    }

    /// The rule for `id`.
    pub fn rule(&self, id: RuleId) -> &Rule {
        &self.rules[id.index()]
    }

    /// The start rule (first rule of the grammar).
    ///
    /// # Panics
    /// Panics if the grammar has no rules.
    pub fn start_rule(&self) -> &Rule {
        self.rules.first().expect("grammar has no rules")
    }

    /// Registers a semantic predicate and returns its id.
    pub fn add_sempred(&mut self, text: &str) -> PredId {
        self.sempreds.push(text.to_string());
        PredId(self.sempreds.len() as u32 - 1)
    }

    /// Registers an action and returns its id.
    pub fn add_action(&mut self, text: &str) -> ActionId {
        self.actions.push(text.to_string());
        ActionId(self.actions.len() as u32 - 1)
    }

    /// Registers a syntactic-predicate fragment and returns its id.
    pub fn add_synpred(&mut self, fragment: Alt) -> SynPredId {
        self.synpreds.push(fragment);
        SynPredId(self.synpreds.len() as u32 - 1)
    }

    /// The source text of semantic predicate `id`.
    pub fn sempred_text(&self, id: PredId) -> &str {
        &self.sempreds[id.0 as usize]
    }

    /// The source text of action `id`.
    pub fn action_text(&self, id: ActionId) -> &str {
        &self.actions[id.0 as usize]
    }

    /// The fragment of syntactic predicate `id`.
    pub fn synpred(&self, id: SynPredId) -> &Alt {
        &self.synpreds[id.0 as usize]
    }

    /// Total number of grammar positions (a rough size metric used in the
    /// evaluation tables).
    pub fn element_count(&self) -> usize {
        fn count_alt(alt: &Alt) -> usize {
            alt.elements.iter().map(count_elem).sum::<usize>()
        }
        fn count_elem(e: &Element) -> usize {
            match e {
                Element::Block(b) => 1 + b.alts.iter().map(count_alt).sum::<usize>(),
                _ => 1,
            }
        }
        self.rules.iter().flat_map(|r| r.alts.iter()).map(count_alt).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Grammar {
        let mut g = Grammar::new("T", GrammarOptions::default());
        let a = g.vocab.define_token("A");
        let s = g.add_rule("s");
        let x = g.add_rule("x");
        g.add_alt(s, Alt::new(vec![Element::Rule(x), Element::Token(a)]));
        g.add_alt(x, Alt::epsilon());
        g
    }

    #[test]
    fn rule_registration_and_lookup() {
        let g = tiny();
        assert_eq!(g.rule_id("s"), Some(RuleId(0)));
        assert_eq!(g.rule_id("x"), Some(RuleId(1)));
        assert!(g.rule_id("nope").is_none());
        assert_eq!(g.start_rule().name, "s");
        assert_eq!(g.rule_by_name("x").unwrap().alts.len(), 1);
    }

    #[test]
    #[should_panic(expected = "duplicate rule")]
    fn duplicate_rule_panics() {
        let mut g = tiny();
        g.add_rule("s");
    }

    #[test]
    fn predicate_and_action_pools() {
        let mut g = tiny();
        let p = g.add_sempred("isTypeName");
        let a = g.add_action("println!(\"hi\")");
        assert_eq!(g.sempred_text(p), "isTypeName");
        assert_eq!(g.action_text(a), "println!(\"hi\")");
        let sp = g.add_synpred(Alt::epsilon());
        assert_eq!(g.synpred(sp), &Alt::epsilon());
    }

    #[test]
    fn element_count_includes_blocks() {
        let mut g = tiny();
        let a = g.vocab.define_token("B");
        let r = g.add_rule("blocky");
        g.add_alt(
            r,
            Alt::new(vec![Element::Block(Block {
                alts: vec![Alt::new(vec![Element::Token(a)])],
                ebnf: Ebnf::Star,
            })]),
        );
        // s: rule+token (2); x: 0; blocky: block(1) + inner token(1).
        assert_eq!(g.element_count(), 4);
    }

    #[test]
    fn ebnf_suffixes() {
        assert_eq!(Ebnf::None.suffix(), "");
        assert_eq!(Ebnf::Optional.suffix(), "?");
        assert_eq!(Ebnf::Star.suffix(), "*");
        assert_eq!(Ebnf::Plus.suffix(), "+");
    }
}
