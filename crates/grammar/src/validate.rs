//! Grammar validation: the static well-formedness checks ANTLR performs
//! before analysis.
//!
//! LL(*) requires non-left-recursive grammars (Section 3.2), so left
//! recursion — immediate or indirect, including recursion through nullable
//! prefixes and nullable block alternatives — is reported as an error.
//! Unreachable rules are reported as warnings.

use crate::ast::{Alt, Element, Grammar, RuleId};
use std::collections::HashSet;
use std::fmt;

/// A validation problem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GrammarIssue {
    /// The rule can derive a sentential form beginning with itself.
    LeftRecursion {
        /// The cycle of rule names, starting and ending at the same rule.
        cycle: Vec<String>,
    },
    /// The rule is not reachable from the start rule.
    UnreachableRule {
        /// The unreachable rule's name.
        rule: String,
    },
    /// A rule has no alternatives at all (empty body).
    EmptyRule {
        /// The offending rule's name.
        rule: String,
    },
}

impl GrammarIssue {
    /// Whether this issue prevents LL(*) analysis (vs. a warning).
    pub fn is_error(&self) -> bool {
        matches!(self, GrammarIssue::LeftRecursion { .. } | GrammarIssue::EmptyRule { .. })
    }
}

impl fmt::Display for GrammarIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GrammarIssue::LeftRecursion { cycle } => {
                write!(f, "left recursion: {}", cycle.join(" -> "))
            }
            GrammarIssue::UnreachableRule { rule } => {
                write!(f, "rule {rule} is unreachable from the start rule")
            }
            GrammarIssue::EmptyRule { rule } => write!(f, "rule {rule} has no alternatives"),
        }
    }
}

/// Runs all validations, returning every issue found (errors and warnings).
pub fn validate(grammar: &Grammar) -> Vec<GrammarIssue> {
    let mut issues = Vec::new();
    for rule in &grammar.rules {
        if rule.alts.is_empty() {
            issues.push(GrammarIssue::EmptyRule { rule: rule.name.clone() });
        }
    }
    issues.extend(find_left_recursion(grammar));
    issues.extend(find_unreachable(grammar));
    issues
}

/// Returns `true` if the grammar has no *errors* (warnings allowed).
pub fn is_well_formed(grammar: &Grammar) -> bool {
    validate(grammar).iter().all(|i| !i.is_error())
}

// ---------------------------------------------------------------------------
// Nullability
// ---------------------------------------------------------------------------

/// Computes which rules can derive ε (needed for left-recursion detection
/// through nullable prefixes).
pub fn nullable_rules(grammar: &Grammar) -> Vec<bool> {
    let n = grammar.rules.len();
    let mut nullable = vec![false; n];
    let mut changed = true;
    while changed {
        changed = false;
        for (i, rule) in grammar.rules.iter().enumerate() {
            if nullable[i] {
                continue;
            }
            if rule.alts.iter().any(|a| alt_nullable(a, &nullable)) {
                nullable[i] = true;
                changed = true;
            }
        }
    }
    nullable
}

fn alt_nullable(alt: &Alt, nullable: &[bool]) -> bool {
    alt.elements.iter().all(|e| elem_nullable(e, nullable))
}

fn elem_nullable(elem: &Element, nullable: &[bool]) -> bool {
    match elem {
        Element::Token(_) => false,
        Element::Rule(r) => nullable[r.index()],
        Element::Block(b) => match b.ebnf {
            crate::ast::Ebnf::Star | crate::ast::Ebnf::Optional => true,
            crate::ast::Ebnf::None | crate::ast::Ebnf::Plus => {
                b.alts.iter().any(|a| alt_nullable(a, nullable))
            }
        },
        // Predicates and actions consume no input.
        Element::SemPred(_)
        | Element::SynPred(_)
        | Element::NotSynPred(_)
        | Element::Action { .. } => true,
    }
}

// ---------------------------------------------------------------------------
// Left recursion
// ---------------------------------------------------------------------------

/// The "directly-left-reachable" relation: rules that can appear leftmost
/// in a derivation step from `rule` (through nullable prefixes).
fn left_edges(grammar: &Grammar, rule: RuleId, nullable: &[bool]) -> Vec<RuleId> {
    let mut out = Vec::new();
    for alt in &grammar.rules[rule.index()].alts {
        collect_left_rules(&alt.elements, nullable, &mut out);
    }
    out.sort_unstable();
    out.dedup();
    out
}

fn collect_left_rules(elements: &[Element], nullable: &[bool], out: &mut Vec<RuleId>) {
    for elem in elements {
        match elem {
            Element::Token(_) => return,
            Element::Rule(r) => {
                out.push(*r);
                if !nullable[r.index()] {
                    return;
                }
            }
            Element::Block(b) => {
                for alt in &b.alts {
                    collect_left_rules(&alt.elements, nullable, out);
                }
                if !elem_nullable(elem, nullable) {
                    return;
                }
            }
            Element::SemPred(_)
            | Element::SynPred(_)
            | Element::NotSynPred(_)
            | Element::Action { .. } => {}
        }
    }
}

fn find_left_recursion(grammar: &Grammar) -> Vec<GrammarIssue> {
    let nullable = nullable_rules(grammar);
    let n = grammar.rules.len();
    let mut issues = Vec::new();
    // DFS from each rule over the left-edge relation, looking for a cycle
    // back to the origin. Reporting one cycle per origin rule keeps the
    // output readable.
    for origin in 0..n {
        let origin_id = RuleId(origin as u32);
        let mut stack = vec![(origin_id, vec![origin_id])];
        let mut visited: HashSet<RuleId> = HashSet::new();
        while let Some((rule, path)) = stack.pop() {
            for next in left_edges(grammar, rule, &nullable) {
                if next == origin_id {
                    let mut cycle: Vec<String> =
                        path.iter().map(|r| grammar.rule(*r).name.clone()).collect();
                    cycle.push(grammar.rule(origin_id).name.clone());
                    issues.push(GrammarIssue::LeftRecursion { cycle });
                    stack.clear();
                    break;
                }
                if visited.insert(next) {
                    let mut p = path.clone();
                    p.push(next);
                    stack.push((next, p));
                }
            }
        }
    }
    issues
}

// ---------------------------------------------------------------------------
// Reachability
// ---------------------------------------------------------------------------

fn rule_refs(elements: &[Element], out: &mut Vec<RuleId>) {
    for elem in elements {
        match elem {
            Element::Rule(r) => out.push(*r),
            Element::Block(b) => {
                for alt in &b.alts {
                    rule_refs(&alt.elements, out);
                }
            }
            _ => {}
        }
    }
}

fn find_unreachable(grammar: &Grammar) -> Vec<GrammarIssue> {
    if grammar.rules.is_empty() {
        return Vec::new();
    }
    let mut reachable = vec![false; grammar.rules.len()];
    let mut stack = vec![RuleId(0)];
    reachable[0] = true;
    // Syntactic predicate fragments keep their referenced rules live.
    let mut synpred_refs = Vec::new();
    for frag in &grammar.synpreds {
        rule_refs(&frag.elements, &mut synpred_refs);
    }
    while let Some(rule) = stack.pop() {
        let mut refs = Vec::new();
        for alt in &grammar.rules[rule.index()].alts {
            rule_refs(&alt.elements, &mut refs);
        }
        refs.extend(synpred_refs.iter().copied());
        for r in refs {
            if !reachable[r.index()] {
                reachable[r.index()] = true;
                stack.push(r);
            }
        }
    }
    grammar
        .rules
        .iter()
        .zip(&reachable)
        .filter(|(_, &ok)| !ok)
        .map(|(rule, _)| GrammarIssue::UnreachableRule { rule: rule.name.clone() })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::parse_grammar;

    #[test]
    fn clean_grammar_validates() {
        let g = parse_grammar("grammar G; s : A s | B ; A:'a'; B:'b';").unwrap();
        assert!(validate(&g).is_empty());
        assert!(is_well_formed(&g));
    }

    #[test]
    fn immediate_left_recursion_detected() {
        let g = parse_grammar("grammar G; e : e '+' INT | INT ; INT:[0-9]+;").unwrap();
        let issues = validate(&g);
        assert!(
            matches!(&issues[..], [GrammarIssue::LeftRecursion { cycle }] if cycle == &vec!["e".to_string(), "e".to_string()])
        );
        assert!(!is_well_formed(&g));
    }

    #[test]
    fn indirect_left_recursion_detected() {
        let g = parse_grammar("grammar G; a : b X | X ; b : a Y | Y ; X:'x'; Y:'y';").unwrap();
        let issues: Vec<_> = validate(&g).into_iter().filter(GrammarIssue::is_error).collect();
        assert_eq!(issues.len(), 2, "both a and b are left-recursive: {issues:?}");
    }

    #[test]
    fn left_recursion_through_nullable_prefix() {
        // n is nullable, so `a : n a X` is left-recursive.
        let g = parse_grammar("grammar G; a : n a X | X ; n : Y | ; X:'x'; Y:'y';").unwrap();
        assert!(
            validate(&g).iter().any(|i| matches!(i, GrammarIssue::LeftRecursion { .. })),
            "{:?}",
            validate(&g)
        );
    }

    #[test]
    fn left_recursion_through_optional_block() {
        let g = parse_grammar("grammar G; a : (Y)? a X | X ; X:'x'; Y:'y';").unwrap();
        assert!(validate(&g).iter().any(|i| matches!(i, GrammarIssue::LeftRecursion { .. })));
    }

    #[test]
    fn right_recursion_is_fine() {
        let g = parse_grammar("grammar G; e : INT '+' e | INT ; INT:[0-9]+;").unwrap();
        assert!(validate(&g).is_empty());
    }

    #[test]
    fn unreachable_rule_is_warning_not_error() {
        let g = parse_grammar("grammar G; s : A ; orphan : B ; A:'a'; B:'b';").unwrap();
        let issues = validate(&g);
        assert!(matches!(
            &issues[..],
            [GrammarIssue::UnreachableRule { rule }] if rule == "orphan"
        ));
        assert!(is_well_formed(&g), "unreachable rules are only warnings");
    }

    #[test]
    fn nullability_computation() {
        let g = parse_grammar("grammar G; a : b c ; b : X | ; c : b b ; d : X ; X:'x';").unwrap();
        let nullable = nullable_rules(&g);
        let by_name = |name: &str| nullable[g.rule_id(name).unwrap().index()];
        assert!(by_name("a"), "a -> b c, both nullable");
        assert!(by_name("b"));
        assert!(by_name("c"));
        assert!(!by_name("d"));
    }

    #[test]
    fn predicates_and_actions_are_transparent_for_left_recursion() {
        let g = parse_grammar("grammar G; a : {p}? {act()} a X | X ; X:'x';").unwrap();
        assert!(validate(&g).iter().any(|i| matches!(i, GrammarIssue::LeftRecursion { .. })));
    }

    #[test]
    fn issue_display() {
        let i = GrammarIssue::LeftRecursion { cycle: vec!["a".into(), "b".into(), "a".into()] };
        assert_eq!(i.to_string(), "left recursion: a -> b -> a");
        assert!(GrammarIssue::UnreachableRule { rule: "x".into() }
            .to_string()
            .contains("unreachable"));
    }
}
