//! Pretty-printing of grammars back to (approximately) the meta-language
//! surface syntax, used for debugging, `--dump` style tooling, and golden
//! tests.

use crate::ast::{Alt, Element, Grammar};
use std::fmt::Write as _;

/// Renders `alt` of `grammar` as meta-language text.
pub fn alt_to_string(grammar: &Grammar, alt: &Alt) -> String {
    let mut out = String::new();
    write_alt(grammar, alt, &mut out);
    out
}

fn write_alt(grammar: &Grammar, alt: &Alt, out: &mut String) {
    if alt.elements.is_empty() {
        out.push_str("/* epsilon */");
        return;
    }
    for (i, e) in alt.elements.iter().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        write_element(grammar, e, out);
    }
}

fn write_element(grammar: &Grammar, elem: &Element, out: &mut String) {
    match elem {
        Element::Token(t) => out.push_str(&grammar.vocab.display_name(*t)),
        Element::Rule(r) => out.push_str(&grammar.rule(*r).name),
        Element::Block(b) => {
            out.push('(');
            for (i, alt) in b.alts.iter().enumerate() {
                if i > 0 {
                    out.push_str(" | ");
                }
                write_alt(grammar, alt, out);
            }
            out.push(')');
            out.push_str(b.ebnf.suffix());
        }
        Element::SemPred(p) => {
            let _ = write!(out, "{{{}}}?", grammar.sempred_text(*p));
        }
        Element::SynPred(sp) => {
            out.push('(');
            write_alt(grammar, grammar.synpred(*sp), out);
            out.push_str(")=>");
        }
        Element::NotSynPred(sp) => {
            out.push_str("!(");
            write_alt(grammar, grammar.synpred(*sp), out);
            out.push_str(")=>");
        }
        Element::Action { id, always } => {
            if *always {
                let _ = write!(out, "{{{{{}}}}}", grammar.action_text(*id));
            } else {
                let _ = write!(out, "{{{}}}", grammar.action_text(*id));
            }
        }
    }
}

/// Renders the whole grammar as meta-language text (parser rules only;
/// lexer rules are shown as name stubs since patterns round-trip through
/// [`llstar_lexer::Rx`] display instead).
pub fn grammar_to_string(grammar: &Grammar) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "grammar {};", grammar.name);
    // The options block is part of the rendering even when every value is
    // the default: analysis behaviour (max_k, rec_depth_m, backtracking)
    // derives from it, so any consumer hashing this text — notably
    // `grammar_fingerprint` guarding the analysis cache — must see option
    // edits as a change to the grammar.
    let o = &grammar.options;
    let _ = write!(
        out,
        "options {{ backtrack = {}; memoize = {}; m = {};",
        o.backtrack, o.memoize, o.rec_depth_m
    );
    if let Some(k) = o.max_k {
        let _ = write!(out, " k = {k};");
    }
    out.push_str(" }\n");
    for rule in &grammar.rules {
        let _ = write!(out, "{} :", rule.name);
        for (i, alt) in rule.alts.iter().enumerate() {
            if i > 0 {
                out.push_str("\n  |");
            }
            out.push(' ');
            write_alt(grammar, alt, &mut out);
        }
        out.push_str(" ;\n");
    }
    for lr in grammar.lexer.rules() {
        let _ = writeln!(out, "{} : {} ;{}", lr.name, lr.rx, if lr.skip { " // skip" } else { "" });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::parse_grammar;

    #[test]
    fn round_trip_is_reparseable_shape() {
        let g = parse_grammar(
            r#"
            grammar R;
            s : ID | ID '=' e | ('-')* ID ;
            e : INT ;
            ID : [a-z]+ ;
            INT : [0-9]+ ;
            "#,
        )
        .unwrap();
        let text = grammar_to_string(&g);
        assert!(text.contains("grammar R;"), "{text}");
        assert!(text.contains("s : ID"), "{text}");
        assert!(text.contains("('-')*"), "{text}");
        assert!(text.contains("'='"), "{text}");
    }

    #[test]
    fn predicates_render() {
        let g = parse_grammar("grammar P; s : {p}? A | (A B)=> A B {act} {{aa}} ; A:'a'; B:'b';")
            .unwrap();
        let text = grammar_to_string(&g);
        assert!(text.contains("{p}?"), "{text}");
        assert!(text.contains("(A B)=>"), "{text}");
        assert!(text.contains("{act}"), "{text}");
        assert!(text.contains("{{aa}}"), "{text}");
    }

    #[test]
    fn options_render_and_discriminate() {
        let plain = parse_grammar("grammar O; s : A ; A:'a';").unwrap();
        let text = grammar_to_string(&plain);
        assert!(text.contains("options { backtrack = false; memoize = true; m = 1; }"), "{text}");

        // Same rules, different options ⇒ different rendering (the
        // analysis-cache fingerprint depends on this).
        let tuned = parse_grammar("grammar O; options { k = 1; m = 2; } s : A ; A:'a';").unwrap();
        let tuned_text = grammar_to_string(&tuned);
        assert!(tuned_text.contains("m = 2; k = 1;"), "{tuned_text}");
        assert_ne!(text, tuned_text);
    }

    #[test]
    fn epsilon_alt_renders() {
        let g = parse_grammar("grammar E; s : A | ; A:'a';").unwrap();
        let text = grammar_to_string(&g);
        assert!(text.contains("epsilon"), "{text}");
    }
}
