//! Predicated-grammar representation and meta-language front end for the
//! `llstar` LL(*) parser generator.
//!
//! This crate implements the grammar side of Parr & Fisher's LL(*) paper
//! (PLDI 2011): predicated grammars *G = (N, T, P, S, Π, M)* with semantic
//! predicates, syntactic predicates and embedded actions (Section 3), an
//! ANTLR-flavoured meta-language parser, validation (left-recursion and
//! reachability checks), PEG mode (`backtrack=true` auto-predication,
//! Section 2), and the immediate-left-recursion rewrite sketched in
//! Section 1.1.
//!
//! # Quickstart
//!
//! ```
//! use llstar_grammar::{parse_grammar, validate};
//!
//! let g = parse_grammar(r#"
//!     grammar Demo;
//!     s : ID | ID '=' expr ;
//!     expr : INT ;
//!     ID : [a-zA-Z_] [a-zA-Z0-9_]* ;
//!     INT : [0-9]+ ;
//!     WS : [ \t\r\n]+ -> skip ;
//! "#)?;
//! assert_eq!(g.rules.len(), 2);
//! assert!(validate(&g).is_empty());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod display;
pub mod leftrec;
pub mod meta;
pub mod pegmode;
pub mod validate;
pub mod vocab;

pub use ast::{
    ActionId, Alt, Block, Ebnf, Element, Grammar, GrammarOptions, PredId, Rule, RuleId, SynPredId,
};
pub use display::{alt_to_string, grammar_to_string};
pub use leftrec::{rewrite_left_recursion, LeftRecError};
pub use meta::{parse_grammar, MetaError};
pub use pegmode::apply_peg_mode;
pub use validate::{is_well_formed, nullable_rules, validate, GrammarIssue};
pub use vocab::TokenVocab;
