//! A pure packrat/PEG baseline parser (Ford 2002), used by the evaluation
//! as the always-speculating comparator for LL(*).
//!
//! This parser performs *no* static analysis: every multi-alternative
//! decision is an ordered choice resolved by trying each alternative with
//! full backtracking, memoizing `(rule, position)` outcomes so parsing
//! stays linear (Section 6.2 of the LL(*) paper discusses exactly this
//! trade-off). EBNF operators are greedy, PEG-style. Embedded actions are
//! *not* executed (packrat parsers are perpetually speculating — the
//! paper's point about nondeterministic strategies and side effects);
//! semantic predicates are consulted via [`PackratHooks`], and syntactic
//! predicates act as and-predicates.
//!
//! # Quickstart
//!
//! ```
//! use llstar_grammar::parse_grammar;
//! use llstar_packrat::PackratParser;
//!
//! let g = parse_grammar(r#"
//!     grammar Demo;
//!     s : ID '=' INT ';' ;
//!     ID : [a-z]+ ;
//!     INT : [0-9]+ ;
//!     WS : [ ]+ -> skip ;
//! "#)?;
//! let scanner = g.lexer.build()?;
//! let tokens = scanner.tokenize("x = 1 ;")?;
//! let mut p = PackratParser::new(&g, tokens);
//! assert!(p.recognize("s").is_ok());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

use llstar_grammar::{Alt, Block, Ebnf, Element, Grammar, RuleId};
use llstar_lexer::{Token, TokenType};
use std::fmt;

/// A packrat parse failure at the deepest token reached.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackratError {
    /// The deepest token index reached by any failed attempt.
    pub token_index: usize,
    /// The token there.
    pub token: Token,
}

impl fmt::Display for PackratError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "packrat parse failed; deepest failure at line {}:{}",
            self.token.line, self.token.col
        )
    }
}

impl std::error::Error for PackratError {}

/// Counters describing the packrat parser's speculation behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PackratStats {
    /// Rule invocations attempted (including memoized replays).
    pub rule_attempts: u64,
    /// Memoization hits.
    pub memo_hits: u64,
    /// Memoization entries written.
    pub memo_entries: u64,
    /// Alternatives that failed and were rolled back.
    pub backtracked_alts: u64,
    /// Tokens speculatively consumed then rolled back.
    pub wasted_tokens: u64,
}

#[derive(Debug, Clone, Copy)]
enum Memo {
    Success(usize),
    Failure,
}

/// Semantic-predicate oracle for the packrat baseline.
pub trait PackratHooks {
    /// Evaluates semantic predicate `text`; defaults to `true`.
    fn sempred(&mut self, text: &str, at_index: usize) -> bool {
        let _ = (text, at_index);
        true
    }
}

/// Hooks that accept every predicate.
#[derive(Debug, Clone, Copy, Default)]
pub struct AllTrue;

impl PackratHooks for AllTrue {}

/// A memoizing PEG interpreter over an `llstar` grammar.
pub struct PackratParser<'g, H: PackratHooks = AllTrue> {
    grammar: &'g Grammar,
    tokens: Vec<Token>,
    pos: usize,
    /// Flat memo table: `memo[rule][pos]`, rows lazily sized to the
    /// input. O(1) per probe, no hashing, allocations reused across
    /// backtracking (and across parses — see [`PackratParser::recognize`]).
    memo: Vec<Vec<Option<Memo>>>,
    memoize: bool,
    stats: PackratStats,
    deepest: usize,
    hooks: H,
    /// Fuel cap so pathological grammars without memoization terminate in
    /// tests/benches instead of running for hours (the paper notes RatsC
    /// "appears not to terminate" without memoization).
    fuel: u64,
}

impl<'g> PackratParser<'g, AllTrue> {
    /// Creates a parser with default (all-true) predicate hooks.
    ///
    /// # Panics
    /// Panics if `tokens` does not end with EOF.
    pub fn new(grammar: &'g Grammar, tokens: Vec<Token>) -> Self {
        Self::with_hooks(grammar, tokens, AllTrue)
    }
}

impl<'g, H: PackratHooks> PackratParser<'g, H> {
    /// Creates a parser with explicit hooks.
    ///
    /// # Panics
    /// Panics if `tokens` does not end with EOF.
    pub fn with_hooks(grammar: &'g Grammar, tokens: Vec<Token>, hooks: H) -> Self {
        assert!(tokens.last().is_some_and(|t| t.ttype.is_eof()), "token stream must end with EOF");
        PackratParser {
            grammar,
            tokens,
            pos: 0,
            memo: vec![Vec::new(); grammar.rules.len()],
            memoize: true,
            stats: PackratStats::default(),
            deepest: 0,
            hooks,
            fuel: u64::MAX,
        }
    }

    /// Enables or disables memoization (the packrat-vs-plain-backtracking
    /// ablation).
    pub fn set_memoize(&mut self, memoize: bool) {
        self.memoize = memoize;
    }

    /// Caps the number of parsing steps; exceeding it aborts with an
    /// error. Used to demonstrate exponential blow-up safely.
    pub fn set_fuel(&mut self, fuel: u64) {
        self.fuel = fuel;
    }

    /// Statistics from the last parse.
    pub fn stats(&self) -> PackratStats {
        self.stats
    }

    /// Recognizes `rule_name` followed by EOF.
    ///
    /// # Errors
    /// Returns a [`PackratError`] at the deepest failure point, or if the
    /// fuel cap was exhausted.
    ///
    /// # Panics
    /// Panics if `rule_name` is not a rule of the grammar.
    pub fn recognize(&mut self, rule_name: &str) -> Result<(), PackratError> {
        let rule = self
            .grammar
            .rule_id(rule_name)
            .unwrap_or_else(|| panic!("unknown start rule {rule_name:?}"));
        self.pos = 0;
        // Blank the rows in place: the buffers stay warm for re-parses.
        for row in &mut self.memo {
            row.clear();
        }
        self.stats = PackratStats::default();
        self.deepest = 0;
        if self.parse_rule(rule) && self.la().is_eof() {
            Ok(())
        } else {
            Err(self.error())
        }
    }

    fn error(&self) -> PackratError {
        let idx = self.deepest.min(self.tokens.len() - 1);
        PackratError { token_index: idx, token: self.tokens[idx] }
    }

    fn la(&self) -> TokenType {
        self.tokens[self.pos.min(self.tokens.len() - 1)].ttype
    }

    fn burn_fuel(&mut self) -> bool {
        if self.fuel == 0 {
            return false;
        }
        self.fuel -= 1;
        true
    }

    fn parse_rule(&mut self, rule: RuleId) -> bool {
        self.stats.rule_attempts += 1;
        if !self.burn_fuel() {
            return false;
        }
        let start = self.pos;
        if self.memoize {
            if let Some(m) = self.memo[rule.index()].get(start).copied().flatten() {
                self.stats.memo_hits += 1;
                return match m {
                    Memo::Success(stop) => {
                        self.pos = stop;
                        true
                    }
                    Memo::Failure => false,
                };
            }
        }
        let alts = self.grammar.rule(rule).alts.clone();
        let ok = self.ordered_choice(&alts);
        if self.memoize {
            self.stats.memo_entries += 1;
            let entry = if ok { Memo::Success(self.pos) } else { Memo::Failure };
            let row = &mut self.memo[rule.index()];
            if row.len() <= start {
                row.resize(start + 1, None);
            }
            row[start] = Some(entry);
        }
        ok
    }

    /// PEG ordered choice: the first matching alternative wins.
    fn ordered_choice(&mut self, alts: &[Alt]) -> bool {
        let start = self.pos;
        for alt in alts {
            if self.parse_seq(&alt.elements) {
                return true;
            }
            self.stats.backtracked_alts += 1;
            self.stats.wasted_tokens += (self.pos - start) as u64;
            self.pos = start;
        }
        false
    }

    fn parse_seq(&mut self, elements: &[Element]) -> bool {
        for e in elements {
            if !self.parse_element(e) {
                return false;
            }
        }
        true
    }

    fn parse_element(&mut self, e: &Element) -> bool {
        if !self.burn_fuel() {
            return false;
        }
        match e {
            Element::Token(t) => {
                if self.la() == *t {
                    self.pos = (self.pos + 1).min(self.tokens.len() - 1);
                    self.deepest = self.deepest.max(self.pos);
                    true
                } else {
                    false
                }
            }
            Element::Rule(r) => self.parse_rule(*r),
            Element::Block(b) => self.parse_block(b),
            Element::SemPred(p) => {
                let text = self.grammar.sempred_text(*p).to_string();
                self.hooks.sempred(&text, self.pos)
            }
            Element::SynPred(sp) => {
                // PEG and-predicate: must match, consumes nothing.
                let start = self.pos;
                let frag = self.grammar.synpred(*sp).clone();
                let ok = self.parse_seq(&frag.elements);
                self.stats.wasted_tokens += (self.pos - start) as u64;
                self.pos = start;
                ok
            }
            Element::NotSynPred(sp) => {
                // PEG not-predicate: must NOT match, consumes nothing.
                let start = self.pos;
                let frag = self.grammar.synpred(*sp).clone();
                let ok = self.parse_seq(&frag.elements);
                self.stats.wasted_tokens += (self.pos - start) as u64;
                self.pos = start;
                !ok
            }
            // Packrat parsers cannot run side-effecting actions safely;
            // they are skipped entirely.
            Element::Action { .. } => true,
        }
    }

    fn parse_block(&mut self, b: &Block) -> bool {
        match b.ebnf {
            Ebnf::None => self.ordered_choice(&b.alts),
            Ebnf::Optional => {
                let start = self.pos;
                if !self.ordered_choice(&b.alts) {
                    self.pos = start;
                }
                true
            }
            Ebnf::Star => {
                loop {
                    let start = self.pos;
                    if !self.burn_fuel() {
                        return false;
                    }
                    if !self.ordered_choice(&b.alts) {
                        self.pos = start;
                        return true;
                    }
                    if self.pos == start {
                        // ε-matching body: stop to guarantee termination.
                        return true;
                    }
                }
            }
            Ebnf::Plus => {
                if !self.ordered_choice(&b.alts) {
                    return false;
                }
                self.parse_block(&Block { alts: b.alts.clone(), ebnf: Ebnf::Star })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llstar_grammar::parse_grammar;

    fn tokens(g: &Grammar, input: &str) -> Vec<Token> {
        g.lexer.build().unwrap().tokenize(input).unwrap()
    }

    fn recognizes(src: &str, input: &str, rule: &str) -> Result<PackratStats, PackratError> {
        let g = parse_grammar(src).unwrap();
        let toks = tokens(&g, input);
        let mut p = PackratParser::new(&g, toks);
        p.recognize(rule)?;
        Ok(p.stats())
    }

    const EXPR: &str = r#"
        grammar E;
        s : e EOF ;
        e : t '+' e | t ;
        t : f '*' t | f ;
        f : INT | '(' e ')' ;
        INT : [0-9]+ ;
        WS : [ ]+ -> skip ;
    "#;

    #[test]
    fn parses_expressions() {
        assert!(recognizes(EXPR, "1 + 2 * 3", "s").is_ok());
        assert!(recognizes(EXPR, "( 1 + 2 ) * 3", "s").is_ok());
        assert!(recognizes(EXPR, "1 +", "s").is_err());
    }

    #[test]
    fn ordered_choice_prefers_first() {
        // The PEG hazard from the paper's introduction: A → a | ab never
        // matches the second alternative on input "a b".
        let src = "grammar P; s : A | A B ; A:'a'; B:'b'; WS:[ ]+ -> skip;";
        let err = recognizes(src, "a b", "s").unwrap_err();
        // Alternative 1 matches just 'a'; the EOF requirement then fails.
        assert!(err.token_index >= 1, "{err:?}");
    }

    #[test]
    fn backtracking_is_counted() {
        let stats = recognizes(EXPR, "1 * 2 * 3 + 4", "s").unwrap();
        assert!(stats.backtracked_alts > 0, "{stats:?}");
        assert!(stats.rule_attempts > 3);
    }

    #[test]
    fn memoization_reduces_rule_attempts() {
        let src = r#"
            grammar M;
            s : e ';' EOF | e '!' EOF | e '?' EOF ;
            e : '(' e ')' | INT ;
            INT : [0-9]+ ;
            WS : [ ]+ -> skip ;
        "#;
        let g = parse_grammar(src).unwrap();
        let input = "( ( ( ( 1 ) ) ) ) ?";
        let toks = tokens(&g, input);
        let mut with = PackratParser::new(&g, toks.clone());
        with.recognize("s").unwrap();
        let mut without = PackratParser::new(&g, toks);
        without.set_memoize(false);
        without.recognize("s").unwrap();
        assert!(
            with.stats().memo_hits > 0,
            "memoized run should hit the cache: {:?}",
            with.stats()
        );
        assert!(
            without.stats().rule_attempts > with.stats().rule_attempts,
            "memoization must reduce rule attempts: {:?} vs {:?}",
            without.stats(),
            with.stats()
        );
    }

    #[test]
    fn ebnf_operators() {
        let src = "grammar B; s : A? B* C+ EOF ; A:'a'; B:'b'; C:'c'; WS:[ ]+ -> skip;";
        assert!(recognizes(src, "a b b c", "s").is_ok());
        assert!(recognizes(src, "c c", "s").is_ok());
        assert!(recognizes(src, "a b", "s").is_err());
    }

    #[test]
    fn epsilon_star_terminates() {
        let src = "grammar Z; s : (A?)* B EOF ; A:'a'; B:'b'; WS:[ ]+ -> skip;";
        assert!(recognizes(src, "a a b", "s").is_ok());
        assert!(recognizes(src, "b", "s").is_ok());
    }

    #[test]
    fn synpred_is_and_predicate() {
        let src =
            "grammar Y; s : (A B)=> A B EOF | A C EOF ; A:'a'; B:'b'; C:'c'; WS:[ ]+ -> skip;";
        assert!(recognizes(src, "a b", "s").is_ok());
        assert!(recognizes(src, "a c", "s").is_ok());
    }

    #[test]
    fn sempred_hooks_gate_alternatives() {
        struct No;
        impl PackratHooks for No {
            fn sempred(&mut self, _: &str, _: usize) -> bool {
                false
            }
        }
        let src = "grammar H; s : {p}? A EOF | B EOF ; A:'a'; B:'b'; WS:[ ]+ -> skip;";
        let g = parse_grammar(src).unwrap();
        let toks = tokens(&g, "a");
        let mut p = PackratParser::with_hooks(&g, toks, No);
        assert!(p.recognize("s").is_err(), "alt 1 gated off, alt 2 wants 'b'");
    }

    #[test]
    fn fuel_cap_aborts() {
        let g = parse_grammar(EXPR).unwrap();
        let toks = tokens(&g, "1 + 2 + 3 + 4 + 5");
        let mut p = PackratParser::new(&g, toks);
        p.set_memoize(false);
        p.set_fuel(10);
        assert!(p.recognize("s").is_err());
    }

    #[test]
    fn deepest_failure_reported() {
        let src = "grammar D; s : A B C EOF ; A:'a'; B:'b'; C:'c'; WS:[ ]+ -> skip;";
        let e = recognizes(src, "a b b", "s").unwrap_err();
        assert_eq!(e.token_index, 2, "failure at the second b");
    }

    #[test]
    fn actions_are_skipped() {
        let src = "grammar A; s : {boom()} A EOF ; A:'a'; WS:[ ]+ -> skip;";
        assert!(recognizes(src, "a", "s").is_ok());
    }
}
