//! Emits the scanner: the compiled lexer DFA as static tables plus a
//! maximal-munch `tokenize` function.

use crate::writer::CodeWriter;
use llstar_grammar::Grammar;
use llstar_lexer::Scanner;

/// Generates the lexer tables and `tokenize` for `grammar` into `w`.
///
/// # Errors
/// Returns the lexer build error message if the grammar's lexer spec is
/// invalid.
pub fn emit_lexer(w: &mut CodeWriter, grammar: &Grammar) -> Result<(), String> {
    let scanner: Scanner = grammar.lexer.build().map_err(|e| e.to_string())?;
    let dfa = scanner.dfa();

    // Character classes as inclusive ordinal ranges.
    let mut classes = String::from("static LEX_CLASSES: &[&[(u32, u32)]] = &[");
    for class in &dfa.classes {
        classes.push_str("&[");
        for &(lo, hi) in class.ranges() {
            classes.push_str(&format!("({lo}, {hi}), "));
        }
        classes.push_str("], ");
    }
    classes.push_str("];");
    w.line(&classes);

    // Transitions per DFA state.
    let mut edges = String::from("static LEX_EDGES: &[&[(u16, u16)]] = &[");
    for st in &dfa.states {
        edges.push_str("&[");
        for &(class, target) in &st.transitions {
            edges.push_str(&format!("({class}, {target}), "));
        }
        edges.push_str("], ");
    }
    edges.push_str("];");
    w.line(&edges);

    // Accepting lexer rule per state (-1 = none).
    let accepts: Vec<String> =
        dfa.states.iter().map(|s| s.accept.map_or("-1".to_string(), |r| r.to_string())).collect();
    w.line(&format!("static LEX_ACCEPT: &[i32] = &[{}];", accepts.join(", ")));

    // Per lexer rule: skip flag and emitted token type.
    let skips: Vec<String> = scanner.rules().iter().map(|r| r.skip.to_string()).collect();
    w.line(&format!("static LEX_SKIP: &[bool] = &[{}];", skips.join(", ")));
    let ttypes: Vec<String> = scanner.rules().iter().map(|r| r.ttype.0.to_string()).collect();
    w.line(&format!("static LEX_TTYPE: &[u32] = &[{}];", ttypes.join(", ")));
    w.blank();

    w.open("fn lex_class_of(c: char) -> Option<usize> {");
    w.line("let x = c as u32;");
    w.open("LEX_CLASSES.iter().position(|ranges| {");
    w.line("ranges.iter().any(|&(lo, hi)| lo <= x && x <= hi)");
    w.close("})");
    w.close("}");
    w.blank();

    w.line("/// Tokenizes `input` with the generated maximal-munch scanner.");
    w.open("pub fn tokenize(input: &str) -> Result<Vec<Token>, Error> {");
    w.line("let mut tokens = Vec::new();");
    w.line("let mut offset = 0usize;");
    w.line("let (mut line, mut col) = (1u32, 1u32);");
    w.open("while offset < input.len() {");
    w.line("let rest = &input[offset..];");
    w.line("let mut state = 0usize;");
    w.line("let mut best: Option<(usize, usize)> = None;");
    w.line("let mut consumed = 0usize;");
    w.open("for c in rest.chars() {");
    w.line("let Some(class) = lex_class_of(c) else { break };");
    w.line("let Some(&(_, target)) = LEX_EDGES[state].iter().find(|&&(cl, _)| cl as usize == class) else { break };");
    w.line("state = target as usize;");
    w.line("consumed += c.len_utf8();");
    w.open("if LEX_ACCEPT[state] >= 0 {");
    w.line("best = Some((consumed, LEX_ACCEPT[state] as usize));");
    w.close("}");
    w.close("}");
    w.open("match best {");
    w.open("Some((len, rule)) => {");
    w.open("if !LEX_SKIP[rule] {");
    w.line("tokens.push(Token { ttype: LEX_TTYPE[rule], start: offset, end: offset + len, line, col });");
    w.close("}");
    w.open("for c in rest[..len].chars() {");
    w.line("if c == '\\n' { line += 1; col = 1; } else { col += 1; }");
    w.close("}");
    w.line("offset += len;");
    w.close("}");
    w.open("None => {");
    w.line("let ch = rest.chars().next().expect(\"offset < len\");");
    w.line("return Err(Error { line, col, message: format!(\"no lexer rule matches {ch:?}\") });");
    w.close("}");
    w.close("}");
    w.close("}");
    w.line("tokens.push(Token { ttype: 0, start: offset, end: offset, line, col });");
    w.line("Ok(tokens)");
    w.close("}");
    w.blank();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use llstar_grammar::parse_grammar;

    #[test]
    fn emits_tables_and_function() {
        let g = parse_grammar("grammar L; s : ID ; ID : [a-z]+ ; WS : [ ]+ -> skip ;").unwrap();
        let mut w = CodeWriter::new();
        emit_lexer(&mut w, &g).unwrap();
        let src = w.finish();
        assert!(src.contains("static LEX_CLASSES"), "{src}");
        assert!(src.contains("pub fn tokenize"), "{src}");
        assert!(src.contains("LEX_SKIP: &[bool] = &[false, true]"), "{src}");
    }
}
