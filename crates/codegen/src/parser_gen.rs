//! Emits the recursive-descent parser: one function per rule, one
//! predictor per decision (the lookahead DFA unrolled into a state-machine
//! `match`), and one speculative matcher per syntactic predicate — the
//! shape of ANTLR's generated parsers.

use crate::writer::CodeWriter;
use crate::CodegenOptions;
use llstar_core::{DecisionKind, DfaState, GrammarAnalysis, LookaheadDfa, PredSource};
use llstar_grammar::{Alt, Block, Ebnf, Element, Grammar};

/// Walks grammar constructs in the exact order the ATN builder numbered
/// their decisions, handing out decision ids.
struct DecisionCursor<'a> {
    analysis: &'a GrammarAnalysis,
    next: usize,
}

impl<'a> DecisionCursor<'a> {
    fn take(&mut self, expected: DecisionKind) -> usize {
        let d = self
            .analysis
            .atn
            .decisions
            .get(self.next)
            .unwrap_or_else(|| panic!("decision cursor ran past the end"));
        assert_eq!(
            d.kind, expected,
            "codegen decision order diverged from ATN construction at d{}",
            self.next
        );
        self.next += 1;
        self.next - 1
    }
}

struct ParserGen<'a> {
    grammar: &'a Grammar,
    analysis: &'a GrammarAnalysis,
    /// Decision ids actually referenced by predictors, in emit order.
    used_decisions: Vec<usize>,
    /// Emit `Hooks::trace` calls around predictors and synpreds.
    trace: bool,
}

/// Generates the parser for `grammar` into `w`. `analysis` must come from
/// the same grammar.
pub fn emit_parser(
    w: &mut CodeWriter,
    grammar: &Grammar,
    analysis: &GrammarAnalysis,
    options: CodegenOptions,
) {
    let mut gen = ParserGen { grammar, analysis, used_decisions: Vec::new(), trace: options.trace };
    gen.emit(w);
}

impl<'a> ParserGen<'a> {
    fn emit(&mut self, w: &mut CodeWriter) {
        self.emit_parser_struct(w);
        let mut cursor = DecisionCursor { analysis: self.analysis, next: 0 };

        w.open("impl<'h, H: Hooks> Parser<'h, H> {");
        // Rule functions, in ATN construction order.
        for rule in &self.grammar.rules {
            self.emit_rule(w, rule, &mut cursor);
        }
        // Syntactic-predicate matchers (fragments come after all rules in
        // the ATN, in synpred order).
        for (i, frag) in self.grammar.synpreds.iter().enumerate() {
            self.emit_synpred(w, i, frag, &mut cursor);
        }
        // Predictors for every decision that was referenced.
        let used = std::mem::take(&mut self.used_decisions);
        for d in used {
            self.emit_predictor(w, d);
        }
        w.close("}");
    }

    fn emit_parser_struct(&self, w: &mut CodeWriter) {
        w.line("enum Memo { Stop(usize), Fail(Error) }");
        w.blank();
        w.line("/// The generated recursive-descent LL(*) parser.");
        w.open("pub struct Parser<'h, H: Hooks> {");
        w.line("tokens: Vec<Token>,");
        w.line("pos: usize,");
        w.line("speculating: u32,");
        w.line("memo: std::collections::HashMap<(u32, usize), Memo>,");
        w.line("hooks: &'h mut H,");
        w.close("}");
        w.blank();
        w.open("impl<'h, H: Hooks> Parser<'h, H> {");
        w.line("/// Creates a parser over a token buffer ending in EOF.");
        w.open("pub fn new(tokens: Vec<Token>, hooks: &'h mut H) -> Self {");
        w.line("Parser { tokens, pos: 0, speculating: 0, memo: std::collections::HashMap::new(), hooks }");
        w.close("}");
        w.blank();
        w.open("fn la(&self, i: usize) -> u32 {");
        w.line("self.tokens[(self.pos + i - 1).min(self.tokens.len() - 1)].ttype");
        w.close("}");
        w.blank();
        w.open("fn err_at(&self, offset: usize, message: String) -> Error {");
        w.line("let t = self.tokens[(self.pos + offset).min(self.tokens.len() - 1)];");
        w.line("Error { line: t.line, col: t.col, message }");
        w.close("}");
        w.blank();
        w.open("fn expect(&mut self, ttype: u32, name: &str) -> Result<Token, Error> {");
        w.open("if self.la(1) == ttype {");
        w.line("let t = self.tokens[self.pos.min(self.tokens.len() - 1)];");
        w.line("if self.pos + 1 < self.tokens.len() { self.pos += 1; }");
        w.line("Ok(t)");
        w.close("}");
        w.open("else {");
        w.line("Err(self.err_at(0, format!(\"expected {name}\")))");
        w.close("}");
        w.close("}");
        w.close("}");
        w.blank();
    }

    fn rule_fn_name(&self, idx: usize) -> String {
        format!("parse_{}", self.grammar.rules[idx].name)
    }

    fn emit_rule(
        &mut self,
        w: &mut CodeWriter,
        rule: &llstar_grammar::Rule,
        cursor: &mut DecisionCursor<'_>,
    ) {
        let name = self.rule_fn_name(rule.id.index());
        let rid = rule.id.index();
        w.blank();
        w.line(&format!("/// Parses rule `{}` (memoized while speculating).", rule.name));
        w.open(&format!("pub fn {name}(&mut self) -> Result<Tree, Error> {{"));
        w.line("let start = self.pos;");
        w.open("if self.speculating > 0 {");
        w.open(&format!("match self.memo.get(&({rid}, start)) {{"));
        w.line(&format!(
            "Some(Memo::Stop(stop)) => {{ self.pos = *stop; return Ok(Tree::Rule {{ rule: {rid}, alt: 0, children: Vec::new() }}); }}"
        ));
        w.line("Some(Memo::Fail(e)) => return Err(e.clone()),");
        w.line("None => {}");
        w.close("}");
        w.close("}");
        w.line(&format!("let result = self.{name}_body();"));
        w.open("if self.speculating > 0 {");
        w.open("let entry = match &result {");
        w.line("Ok(_) => Memo::Stop(self.pos),");
        w.line("Err(e) => Memo::Fail(e.clone()),");
        w.close("};");
        w.line(&format!("self.memo.insert(({rid}, start), entry);"));
        w.close("}");
        w.line("result");
        w.close("}");
        w.blank();
        w.open(&format!("fn {name}_body(&mut self) -> Result<Tree, Error> {{"));
        w.line("let mut children: Vec<Tree> = Vec::new();");
        w.line("let mut alt: u16 = 0;");
        if rule.alts.len() > 1 {
            let d = cursor.take(DecisionKind::RuleAlts);
            self.used_decisions.push(d);
            w.line(&format!("alt = self.predict_{d}()?;"));
            w.open("match alt {");
            for (i, a) in rule.alts.iter().enumerate() {
                w.open(&format!("{} => {{", i + 1));
                self.emit_sequence(w, &a.elements, cursor);
                w.close("}");
            }
            w.line("_ => unreachable!(\"predictor returned an unknown alternative\"),");
            w.close("}");
        } else {
            let a = rule.alts.first().expect("validated rules have alternatives");
            self.emit_sequence(w, &a.elements, cursor);
        }
        w.line(&format!("Ok(Tree::Rule {{ rule: {}, alt, children }})", rule.id.index()));
        w.close("}");
    }

    fn emit_synpred(
        &mut self,
        w: &mut CodeWriter,
        idx: usize,
        frag: &Alt,
        cursor: &mut DecisionCursor<'_>,
    ) {
        let memo_key = self.grammar.rules.len() + idx;
        w.blank();
        w.line(&format!("/// Syntactic predicate {idx}: speculative match, rewinds."));
        w.open(&format!("fn synpred_{idx}(&mut self) -> bool {{"));
        w.line("let start = self.pos;");
        w.open(&format!("match self.memo.get(&({memo_key}, start)) {{"));
        if self.trace {
            w.line(&format!(
                "Some(Memo::Stop(_)) => {{ self.hooks.trace(\"memo-hit\", {idx}, start); return true; }}"
            ));
            w.line(&format!(
                "Some(Memo::Fail(_)) => {{ self.hooks.trace(\"memo-hit\", {idx}, start); return false; }}"
            ));
        } else {
            w.line("Some(Memo::Stop(_)) => return true,");
            w.line("Some(Memo::Fail(_)) => return false,");
        }
        w.line("None => {}");
        w.close("}");
        if self.trace {
            w.line(&format!("self.hooks.trace(\"backtrack-enter\", {idx}, start);"));
        }
        w.line("self.speculating += 1;");
        w.line(&format!("let result = self.synpred_{idx}_body();"));
        w.line("self.speculating -= 1;");
        w.line("let stop = self.pos;");
        w.line("self.pos = start;");
        w.open("let entry = match &result {");
        w.line("Ok(()) => Memo::Stop(stop),");
        w.line("Err(e) => Memo::Fail(e.clone()),");
        w.close("};");
        w.line(&format!("self.memo.insert(({memo_key}, start), entry);"));
        if self.trace {
            w.line(&format!("self.hooks.trace(\"backtrack-exit\", {idx}, start);"));
        }
        w.line("result.is_ok()");
        w.close("}");
        w.blank();
        w.open(&format!("fn synpred_{idx}_body(&mut self) -> Result<(), Error> {{"));
        w.line("let mut children: Vec<Tree> = Vec::new();");
        // The fragment submachine has a single alternative.
        self.emit_sequence(w, &frag.elements, cursor);
        w.line("let _ = children;");
        w.line("Ok(())");
        w.close("}");
    }

    fn emit_sequence(
        &mut self,
        w: &mut CodeWriter,
        elements: &[Element],
        cursor: &mut DecisionCursor<'_>,
    ) {
        for e in elements {
            self.emit_element(w, e, cursor);
        }
    }

    fn emit_element(&mut self, w: &mut CodeWriter, e: &Element, cursor: &mut DecisionCursor<'_>) {
        match e {
            Element::Token(t) => {
                let name = self.grammar.vocab.display_name(*t);
                w.line(&format!("children.push(Tree::Leaf(self.expect({}, {:?})?));", t.0, name));
            }
            Element::Rule(r) => {
                w.line(&format!("children.push(self.{}()?);", self.rule_fn_name(r.index())));
            }
            Element::SemPred(p) => {
                let text = self.grammar.sempred_text(*p);
                w.open(&format!("if !self.hooks.sempred({}, {:?}, self.pos) {{", p.0, text));
                w.line(&format!(
                    "return Err(self.err_at(0, format!(\"predicate {{}} failed\", {:?})));",
                    text
                ));
                w.close("}");
            }
            Element::SynPred(sp) => {
                w.open(&format!("if !self.synpred_{}() {{", sp.0));
                w.line(&format!(
                    "return Err(self.err_at(0, \"syntactic predicate {} failed\".to_string()));",
                    sp.0
                ));
                w.close("}");
            }
            Element::NotSynPred(sp) => {
                w.open(&format!("if self.synpred_{}() {{", sp.0));
                w.line(&format!(
                    "return Err(self.err_at(0, \"negated syntactic predicate {} failed\".to_string()));",
                    sp.0
                ));
                w.close("}");
            }
            Element::Action { id, always } => {
                let text = self.grammar.action_text(*id);
                let guard =
                    if *always { "".to_string() } else { "if self.speculating == 0 ".to_string() };
                w.open(&format!("{guard}{{"));
                w.line(&format!("self.hooks.action({}, {:?}, self.pos);", id.0, text));
                w.close("}");
            }
            Element::Block(b) => self.emit_block(w, b, cursor),
        }
    }

    fn emit_block(&mut self, w: &mut CodeWriter, b: &Block, cursor: &mut DecisionCursor<'_>) {
        match b.ebnf {
            Ebnf::None => {
                if b.alts.len() == 1 {
                    self.emit_sequence(w, &b.alts[0].elements, cursor);
                } else {
                    let d = cursor.take(DecisionKind::Block);
                    self.used_decisions.push(d);
                    w.open(&format!("match self.predict_{d}()? {{"));
                    for (i, a) in b.alts.iter().enumerate() {
                        w.open(&format!("{} => {{", i + 1));
                        self.emit_sequence(w, &a.elements, cursor);
                        w.close("}");
                    }
                    w.line("_ => unreachable!(),");
                    w.close("}");
                }
            }
            Ebnf::Optional => {
                let d = cursor.take(DecisionKind::Optional);
                self.used_decisions.push(d);
                let exit = b.alts.len() + 1;
                w.open(&format!("match self.predict_{d}()? {{"));
                for (i, a) in b.alts.iter().enumerate() {
                    w.open(&format!("{} => {{", i + 1));
                    self.emit_sequence(w, &a.elements, cursor);
                    w.close("}");
                }
                w.line(&format!("{exit} => {{}} // skip"));
                w.line("_ => unreachable!(),");
                w.close("}");
            }
            Ebnf::Star => {
                let d = cursor.take(DecisionKind::Star);
                self.used_decisions.push(d);
                let exit = b.alts.len() + 1;
                w.open("loop {");
                w.line("let before = self.pos;");
                w.open(&format!("match self.predict_{d}()? {{"));
                for (i, a) in b.alts.iter().enumerate() {
                    w.open(&format!("{} => {{", i + 1));
                    self.emit_sequence(w, &a.elements, cursor);
                    w.close("}");
                }
                w.line(&format!("{exit} => break,"));
                w.line("_ => unreachable!(),");
                w.close("}");
                w.line("if self.pos == before { break; } // ε-body guard");
                w.close("}");
            }
            Ebnf::Plus => {
                // Entry block decision first (if multiple alternatives),
                // then the loop-back decision — the ATN builder's order.
                let entry_d = if b.alts.len() > 1 {
                    let d = cursor.take(DecisionKind::Block);
                    self.used_decisions.push(d);
                    Some(d)
                } else {
                    None
                };
                w.open("loop {");
                w.line("let before = self.pos;");
                if let Some(d) = entry_d {
                    w.open(&format!("match self.predict_{d}()? {{"));
                    for (i, a) in b.alts.iter().enumerate() {
                        w.open(&format!("{} => {{", i + 1));
                        // Inner decisions are emitted for alternative
                        // bodies here; the cursor advances inside.
                        self.emit_sequence(w, &a.elements, cursor);
                        w.close("}");
                    }
                    w.line("_ => unreachable!(),");
                    w.close("}");
                } else {
                    self.emit_sequence(w, &b.alts[0].elements, cursor);
                }
                let d = cursor.take(DecisionKind::PlusLoop);
                self.used_decisions.push(d);
                w.line(&format!("if self.predict_{d}()? != 1 {{ break; }}"));
                w.line("if self.pos == before { break; } // ε-body guard");
                w.close("}");
            }
        }
    }

    // -----------------------------------------------------------------
    // Predictors
    // -----------------------------------------------------------------

    fn emit_predictor(&self, w: &mut CodeWriter, decision: usize) {
        let analysis = &self.analysis.decisions[decision];
        let dfa = &analysis.dfa;
        let rule = self.analysis.atn.decisions[decision].rule;
        let rule_name = &self.grammar.rule(rule).name;
        w.blank();
        w.line(&format!("/// Lookahead DFA for decision {decision} (rule `{rule_name}`)."));
        if self.trace {
            // Traced build: a wrapper reports the prediction outcome and
            // the DFA walk moves into a `_body` helper.
            w.open(&format!("fn predict_{decision}(&mut self) -> Result<u16, Error> {{"));
            w.line(&format!("self.hooks.trace(\"predict-start\", {decision}, self.pos);"));
            w.line(&format!("let result = self.predict_{decision}_body();"));
            w.open("match &result {");
            w.line(&format!("Ok(_) => self.hooks.trace(\"predict-stop\", {decision}, self.pos),"));
            w.line(&format!("Err(_) => self.hooks.trace(\"syntax-error\", {decision}, self.pos),"));
            w.close("}");
            w.line("result");
            w.close("}");
            w.blank();
            w.open(&format!("fn predict_{decision}_body(&mut self) -> Result<u16, Error> {{"));
        } else {
            w.open(&format!("fn predict_{decision}(&mut self) -> Result<u16, Error> {{"));
        }
        w.line("let mut s = 0usize;");
        w.line("let mut i = 0usize;");
        w.line("let _ = &mut i;");
        w.open("loop {");
        w.open("match s {");
        for (sid, st) in dfa.states.iter().enumerate() {
            self.emit_dfa_state(w, dfa, sid, st, rule_name);
        }
        w.line("_ => unreachable!(\"generated DFA has no such state\"),");
        w.close("}");
        w.close("}");
        w.close("}");
    }

    fn emit_dfa_state(
        &self,
        w: &mut CodeWriter,
        _dfa: &LookaheadDfa,
        sid: usize,
        st: &DfaState,
        rule_name: &str,
    ) {
        if let Some(alt) = st.accept {
            w.line(&format!("{sid} => return Ok({alt}),"));
            return;
        }
        w.open(&format!("{sid} => {{"));
        if !st.edges.is_empty() {
            w.open("match self.la(i + 1) {");
            for &(tok, target) in &st.edges {
                w.line(&format!("{} => {{ s = {target}; i += 1; }}", tok.0));
            }
            w.open("_ => {");
            self.emit_state_fallback(w, st, rule_name);
            w.close("}");
            w.close("}");
        } else {
            self.emit_state_fallback(w, st, rule_name);
        }
        w.close("}");
    }

    /// Emits the predicate/default/error handling reached when no token
    /// edge applies in a DFA state.
    fn emit_state_fallback(&self, w: &mut CodeWriter, st: &DfaState, rule_name: &str) {
        for &(pred, alt) in &st.preds {
            match pred {
                PredSource::Sem(p) => {
                    let text = self.grammar.sempred_text(p);
                    w.line(&format!(
                        "if self.hooks.sempred({}, {:?}, self.pos) {{ return Ok({alt}); }}",
                        p.0, text
                    ));
                }
                PredSource::Syn(sp) => {
                    w.line(&format!("if self.synpred_{}() {{ return Ok({alt}); }}", sp.0));
                }
                PredSource::NotSyn(sp) => {
                    w.line(&format!("if !self.synpred_{}() {{ return Ok({alt}); }}", sp.0));
                }
            }
        }
        if let Some(alt) = st.default_alt {
            w.line(&format!("return Ok({alt});"));
        } else {
            w.line(&format!(
                "return Err(self.err_at(i, \"no viable alternative for rule {rule_name}\".to_string()));"
            ));
        }
    }
}
