//! Emits the recursive-descent parser: one function per rule, one
//! predictor per decision (the lookahead DFA unrolled into a state-machine
//! `match`), and one speculative matcher per syntactic predicate — the
//! shape of ANTLR's generated parsers.

use crate::writer::CodeWriter;
use crate::CodegenOptions;
use llstar_core::{CompiledDfa, DecisionKind, DfaState, GrammarAnalysis, NextTable, PredSource};
use llstar_grammar::{Alt, Block, Ebnf, Element, Grammar};

/// Walks grammar constructs in the exact order the ATN builder numbered
/// their decisions, handing out decision ids.
struct DecisionCursor<'a> {
    analysis: &'a GrammarAnalysis,
    next: usize,
}

impl<'a> DecisionCursor<'a> {
    fn take(&mut self, expected: DecisionKind) -> usize {
        let d = self
            .analysis
            .atn
            .decisions
            .get(self.next)
            .unwrap_or_else(|| panic!("decision cursor ran past the end"));
        assert_eq!(
            d.kind, expected,
            "codegen decision order diverged from ATN construction at d{}",
            self.next
        );
        self.next += 1;
        self.next - 1
    }
}

struct ParserGen<'a> {
    grammar: &'a Grammar,
    analysis: &'a GrammarAnalysis,
    /// Decision ids actually referenced by predictors, in emit order.
    used_decisions: Vec<usize>,
    /// Emit `Hooks::trace` calls around predictors and synpreds.
    trace: bool,
    /// Emit direct coverage counters (`Parser::cov`) mirroring the
    /// interpreter's `CoverageSink` fold byte-for-byte.
    coverage: bool,
    /// Emit direct metric counters (`Parser::met`) mirroring the
    /// interpreter's always-on `ParseMetrics` byte-for-byte.
    metrics: bool,
    /// The grammar memoizes (`options.memoize`): memo hit/miss coverage
    /// counters are only emitted then, matching the interpreter's
    /// memoization gate (the generated engine always memoizes, but
    /// counting uncounted traffic would break parity).
    count_memo: bool,
    /// As `count_memo`, for the metric memo counters.
    met_memo: bool,
    /// Interned expected-token sets, in first-use order; emitted as the
    /// `EXPECTED_SETS` static the recovery helpers index into.
    sets: Vec<Vec<u32>>,
    set_ids: std::collections::HashMap<Vec<u32>, usize>,
    /// Cursor over [`llstar_core::Atn::token_sites`]: one `(from, to)`
    /// state pair per `Element::Token`, in creation order — which is
    /// exactly this module's emission order (same invariant as
    /// [`DecisionCursor`]).
    token_site: usize,
    /// Cursor over [`llstar_core::Atn::call_sites`] (follow state per
    /// `Element::Rule`), same order invariant.
    call_site: usize,
    /// Emitting a synpred fragment body: recovery never engages while
    /// speculating, so sites emit the plain strict forms (the cursors
    /// still advance to stay aligned).
    in_fragment: bool,
    /// The rule whose body is being emitted (for sync-and-return's early
    /// `return Ok(Tree::Rule { .. })` and diagnostic trace ids).
    current_rule: usize,
}

/// Generates the parser for `grammar` into `w`. `analysis` must come from
/// the same grammar.
pub fn emit_parser(
    w: &mut CodeWriter,
    grammar: &Grammar,
    analysis: &GrammarAnalysis,
    options: CodegenOptions,
) {
    let mut gen = ParserGen {
        grammar,
        analysis,
        used_decisions: Vec::new(),
        trace: options.trace,
        coverage: options.coverage,
        metrics: options.metrics,
        count_memo: options.coverage && grammar.options.memoize,
        met_memo: options.metrics && grammar.options.memoize,
        sets: Vec::new(),
        set_ids: std::collections::HashMap::new(),
        token_site: 0,
        call_site: 0,
        in_fragment: false,
        current_rule: 0,
    };
    gen.emit(w);
}

impl<'a> ParserGen<'a> {
    fn emit(&mut self, w: &mut CodeWriter) {
        self.emit_parser_struct(w);
        let mut cursor = DecisionCursor { analysis: self.analysis, next: 0 };

        w.open("impl<'h, H: Hooks> Parser<'h, H> {");
        // Rule functions, in ATN construction order.
        for rule in &self.grammar.rules {
            self.emit_rule(w, rule, &mut cursor);
        }
        // Syntactic-predicate matchers (fragments come after all rules in
        // the ATN, in synpred order).
        for (i, frag) in self.grammar.synpreds.iter().enumerate() {
            self.emit_synpred(w, i, frag, &mut cursor);
        }
        // Predictors for every decision that was referenced.
        let used = std::mem::take(&mut self.used_decisions);
        for &d in &used {
            self.emit_predictor(w, d);
        }
        w.close("}");
        assert_eq!(
            self.token_site,
            self.analysis.atn.token_sites.len(),
            "codegen token-site order diverged from ATN construction"
        );
        assert_eq!(
            self.call_site,
            self.analysis.atn.call_sites.len(),
            "codegen call-site order diverged from ATN construction"
        );
        self.emit_expected_sets(w);
        self.emit_prediction_tables(w, &used);
        if self.coverage {
            self.emit_coverage_support(w);
        }
        if self.metrics {
            self.emit_metrics_support(w);
        }
    }

    /// Whether any per-prediction instrumentation is on (coverage or
    /// metrics) — both need the `__bt`/`__spec` predictor locals and the
    /// `last_spec` speculation-width side channel.
    fn instrument(&self) -> bool {
        self.coverage || self.metrics
    }

    /// Emits the compiled prediction tables as `static` arrays: the
    /// grammar-wide token→class map plus, per emitted predictor, the
    /// accept/default side tables and the dense (or row-displaced)
    /// transition table the predictor loop indexes. This is the
    /// generated-parser counterpart of ANTLR's serialized decision
    /// tables. Nothing is emitted when lowering was disabled (the
    /// predictors then carry unrolled per-state `match`es instead).
    fn emit_prediction_tables(&self, w: &mut CodeWriter, used: &[usize]) {
        let Some(classes) = self.analysis.tables.classes() else {
            return;
        };
        if used.is_empty() {
            return;
        }
        let fmt = |xs: &[u32]| -> String {
            xs.iter().map(|x| x.to_string()).collect::<Vec<_>>().join(", ")
        };
        w.blank();
        w.line("// Compiled prediction tables: one row-compressed DFA per decision");
        w.line("// over token equivalence classes. u32::MAX marks \"no transition\",");
        w.line("// u16::MAX marks \"no alternative\".");
        let map = fmt(&classes.map().iter().map(|&c| c as u32).collect::<Vec<_>>());
        w.line(&format!("static CLASS_MAP: &[u8] = &[{map}];"));
        for &d in used {
            let (_, table) = self.analysis.tables.get(d).expect("tables are enabled");
            let accept = fmt(&table.accept.iter().map(|&a| a as u32).collect::<Vec<_>>());
            w.line(&format!("static D{d}_ACCEPT: &[u16] = &[{accept}];"));
            let default = fmt(&table.default_alt.iter().map(|&a| a as u32).collect::<Vec<_>>());
            w.line(&format!("static D{d}_DEFAULT: &[u16] = &[{default}];"));
            match &table.table {
                NextTable::Dense(next) => {
                    w.line(&format!("static D{d}_NEXT: &[u32] = &[{}];", fmt(next)));
                }
                NextTable::RowDisplaced { base, check, next } => {
                    w.line(&format!("static D{d}_BASE: &[u32] = &[{}];", fmt(base)));
                    w.line(&format!("static D{d}_CHECK: &[u32] = &[{}];", fmt(check)));
                    w.line(&format!("static D{d}_NEXT: &[u32] = &[{}];", fmt(next)));
                }
            }
        }
    }

    /// Emits the coverage statics (`COV_STATES`, `COV_EDGES`,
    /// `RULE_ALT_COUNTS`, `GRAMMAR_FINGERPRINT`) and the `Coverage` /
    /// `CovDecision` accumulator types whose `to_json` rendering is
    /// byte-identical to the interpreter's `CoverageMap::to_json`.
    fn emit_coverage_support(&self, w: &mut CodeWriter) {
        let fingerprint = llstar_core::grammar_fingerprint(self.grammar);
        let schema = llstar_core::schema::COVERAGE_SCHEMA_VERSION;
        w.blank();
        w.line("/// Fingerprint of the source grammar (keys coverage documents).");
        w.line(&format!("pub const GRAMMAR_FINGERPRINT: u64 = {fingerprint};"));
        let states: Vec<String> =
            self.analysis.decisions.iter().map(|d| d.dfa.states.len().to_string()).collect();
        w.line("/// DFA state counts per decision.");
        w.line(&format!("static COV_STATES: &[usize] = &[{}];", states.join(", ")));
        let edges: Vec<String> = self
            .analysis
            .decisions
            .iter()
            .map(|d| {
                let mut list: Vec<(u32, u32)> = Vec::new();
                for (from, st) in d.dfa.states.iter().enumerate() {
                    for &(_, to) in &st.edges {
                        list.push((from as u32, to as u32));
                    }
                }
                list.sort_unstable();
                list.dedup();
                let items: Vec<String> = list.iter().map(|(f, t)| format!("({f}, {t})")).collect();
                format!("&[{}]", items.join(", "))
            })
            .collect();
        w.line("/// Distinct `(from, to)` DFA edges per decision, sorted (the");
        w.line("/// binary-search key space of each decision's `edge_hits`).");
        w.line(&format!("static COV_EDGES: &[&[(u32, u32)]] = &[{}];", edges.join(", ")));
        let alts: Vec<String> =
            self.grammar.rules.iter().map(|r| r.alts.len().to_string()).collect();
        w.line("/// Alternative counts per rule.");
        w.line(&format!("static RULE_ALT_COUNTS: &[usize] = &[{}];", alts.join(", ")));
        w.blank();
        w.line("/// Coverage counters for one decision (see `Coverage`).");
        w.line("#[derive(Debug, Clone, PartialEq, Eq)]");
        w.open("pub struct CovDecision {");
        w.line("/// Visit counts per DFA state.");
        w.line("pub states: Vec<u64>,");
        w.line("/// Traversal counts parallel to this decision's `COV_EDGES` row.");
        w.line("pub edge_hits: Vec<u64>,");
        w.line("/// Lookahead-depth histogram: depth -> prediction count.");
        w.line("pub lookahead: std::collections::BTreeMap<u64, u64>,");
        w.line("/// Successful predictions at speculation depth zero.");
        w.line("pub predictions: u64,");
        w.line("/// Predictions (of those) that fell over to backtracking.");
        w.line("pub backtracks: u64,");
        w.line("/// Memo (hits, misses) attributed to this decision.");
        w.line("pub memo: (u64, u64),");
        w.close("}");
        w.blank();
        w.line("/// Mergeable coverage counters; `to_json` renders the same bytes");
        w.line("/// as the interpreter's `CoverageMap::to_json` for the same runs.");
        w.line("#[derive(Debug, Clone, PartialEq, Eq)]");
        w.open("pub struct Coverage {");
        w.line("/// Number of corpus inputs accumulated (bumped by the embedder).");
        w.line("pub files: u64,");
        w.line("/// Per-rule alternative completion counts.");
        w.line("pub rules: Vec<Vec<u64>>,");
        w.line("/// Per-decision counters.");
        w.line("pub decisions: Vec<CovDecision>,");
        w.line("/// Memo (hits, misses) seen with no prediction in flight.");
        w.line("pub memo_unattributed: (u64, u64),");
        w.close("}");
        w.blank();
        w.open("impl Coverage {");
        w.line("/// An all-zero accumulator shaped for this grammar.");
        w.open("pub fn new() -> Coverage {");
        w.open("Coverage {");
        w.line("files: 0,");
        w.line("rules: RULE_ALT_COUNTS.iter().map(|&n| vec![0; n]).collect(),");
        w.line("decisions: COV_STATES.iter().zip(COV_EDGES).map(|(&n, es)| CovDecision { states: vec![0; n], edge_hits: vec![0; es.len()], lookahead: std::collections::BTreeMap::new(), predictions: 0, backtracks: 0, memo: (0, 0) }).collect(),");
        w.line("memo_unattributed: (0, 0),");
        w.close("}");
        w.close("}");
        w.blank();
        w.line("/// Adds `other` into `self`, cell by cell.");
        w.open("pub fn merge(&mut self, other: &Coverage) {");
        w.line("self.files += other.files;");
        w.open("for (a, b) in self.rules.iter_mut().zip(&other.rules) {");
        w.line("for (x, y) in a.iter_mut().zip(b) { *x += y; }");
        w.close("}");
        w.open("for (a, b) in self.decisions.iter_mut().zip(&other.decisions) {");
        w.line("for (x, y) in a.states.iter_mut().zip(&b.states) { *x += y; }");
        w.line("for (x, y) in a.edge_hits.iter_mut().zip(&b.edge_hits) { *x += y; }");
        w.line("for (&k, &v) in &b.lookahead { *a.lookahead.entry(k).or_insert(0) += v; }");
        w.line("a.predictions += b.predictions;");
        w.line("a.backtracks += b.backtracks;");
        w.line("a.memo.0 += b.memo.0;");
        w.line("a.memo.1 += b.memo.1;");
        w.close("}");
        w.line("self.memo_unattributed.0 += other.memo_unattributed.0;");
        w.line("self.memo_unattributed.1 += other.memo_unattributed.1;");
        w.close("}");
        w.blank();
        w.line("/// The stable JSON rendering (field order and bytes match the");
        w.line("/// interpreter's coverage documents exactly).");
        w.open("pub fn to_json(&self) -> String {");
        w.line("let mut out = String::new();");
        w.line(&format!(
            "out.push_str(&format!(\"{{{{\\\"type\\\":\\\"coverage\\\",\\\"schema\\\":{schema},\\\"fingerprint\\\":{{}},\\\"files\\\":{{}},\\\"rules\\\":[\", GRAMMAR_FINGERPRINT, self.files));"
        ));
        w.open("for (i, counts) in self.rules.iter().enumerate() {");
        w.line("if i > 0 { out.push(','); }");
        w.line("out.push('[');");
        w.open("for (j, c) in counts.iter().enumerate() {");
        w.line("if j > 0 { out.push(','); }");
        w.line("out.push_str(&c.to_string());");
        w.close("}");
        w.line("out.push(']');");
        w.close("}");
        w.line("out.push_str(\"],\\\"decisions\\\":[\");");
        w.open("for (i, d) in self.decisions.iter().enumerate() {");
        w.line("if i > 0 { out.push(','); }");
        w.line("out.push_str(\"{\\\"states\\\":[\");");
        w.open("for (j, c) in d.states.iter().enumerate() {");
        w.line("if j > 0 { out.push(','); }");
        w.line("out.push_str(&c.to_string());");
        w.close("}");
        w.line("out.push_str(\"],\\\"edges\\\":[\");");
        w.open("for (j, (&(f, t), &h)) in COV_EDGES[i].iter().zip(&d.edge_hits).enumerate() {");
        w.line("if j > 0 { out.push(','); }");
        w.line("out.push_str(&format!(\"[{f},{t},{h}]\"));");
        w.close("}");
        w.line("out.push_str(\"],\\\"lookahead\\\":[\");");
        w.open("for (j, (&k, &v)) in d.lookahead.iter().enumerate() {");
        w.line("if j > 0 { out.push(','); }");
        w.line("out.push_str(&format!(\"[{k},{v}]\"));");
        w.close("}");
        w.line("out.push_str(&format!(\"],\\\"predictions\\\":{},\\\"backtracks\\\":{},\\\"memo\\\":[{},{}]}}\", d.predictions, d.backtracks, d.memo.0, d.memo.1));");
        w.close("}");
        w.line("out.push_str(&format!(\"],\\\"memo-unattributed\\\":[{},{}]}}\", self.memo_unattributed.0, self.memo_unattributed.1));");
        w.line("out");
        w.close("}");
        w.close("}");
        w.blank();
        w.open("impl Default for Coverage {");
        w.line("fn default() -> Coverage { Coverage::new() }");
        w.close("}");
    }

    /// Emits the metric statics (`MET_DECISION_RULES`, the grammar
    /// fingerprint when coverage hasn't already emitted it), the
    /// log-linear bucket function, and the `Metrics` / `MetDecision`
    /// accumulator types whose `to_json` rendering is byte-identical to
    /// the runtime's `MetricsSnapshot::to_json(engine, false)`.
    fn emit_metrics_support(&self, w: &mut CodeWriter) {
        w.blank();
        if !self.coverage {
            let fingerprint = llstar_core::grammar_fingerprint(self.grammar);
            w.line("/// Fingerprint of the source grammar (keys metric documents).");
            w.line(&format!("pub const GRAMMAR_FINGERPRINT: u64 = {fingerprint};"));
        }
        let rules: Vec<String> = self
            .analysis
            .atn
            .decisions
            .iter()
            .map(|d| format!("{:?}", self.grammar.rule(d.rule).name))
            .collect();
        w.line("/// Owning rule name per decision (metric exposition labels).");
        w.line(&format!("static MET_DECISION_RULES: &[&str] = &[{}];", rules.join(", ")));
        w.blank();
        w.line("/// Log-linear bucket index of `v` in an `n`-bucket histogram:");
        w.line("/// identity below 16, then two sub-buckets per power of two,");
        w.line("/// clamped (identical to the runtime's `metrics::bucket_of`).");
        w.open("fn met_bucket(v: u64, n: usize) -> usize {");
        w.open("if v < 16 {");
        w.line("v as usize");
        w.close("}");
        w.open("else {");
        w.line("let msb = 63 - v.leading_zeros() as usize;");
        w.line("let sub = ((v >> (msb - 1)) & 1) as usize;");
        w.line("(16 + (msb - 4) * 2 + sub).min(n - 1)");
        w.close("}");
        w.close("}");
        w.blank();
        w.line("/// Renders a histogram as a JSON array, trailing zeros trimmed");
        w.line("/// (the runtime's rendering exactly).");
        w.open("fn met_hist_json(hist: &[u64]) -> String {");
        w.line("let len = hist.iter().rposition(|&v| v != 0).map_or(0, |i| i + 1);");
        w.line("let items: Vec<String> = hist[..len].iter().map(|v| v.to_string()).collect();");
        w.line("format!(\"[{}]\", items.join(\",\"))");
        w.close("}");
        w.blank();
        w.line("/// Per-decision metric slots (see `Metrics`).");
        w.line("#[derive(Debug, Clone, PartialEq, Eq)]");
        w.open("pub struct MetDecision {");
        w.line("/// Completed predictions (all speculation depths).");
        w.line("pub events: u64,");
        w.line("/// Sum of effective lookahead depths.");
        w.line("pub la_sum: u64,");
        w.line("/// Deepest effective lookahead seen.");
        w.line("pub la_max: u64,");
        w.line("/// Predictions that fell over to backtracking.");
        w.line("pub backtracks: u64,");
        w.line("/// Sum of deepest-speculation token counts.");
        w.line("pub spec_sum: u64,");
        w.line("/// Log-linear histogram of effective lookahead depth.");
        w.line("pub hist: [u64; 32],");
        w.close("}");
        w.blank();
        w.line("/// Mergeable metric counters; `to_json` renders the same bytes");
        w.line("/// as the runtime's `MetricsSnapshot::to_json(engine, false)`");
        w.line("/// for the same runs.");
        w.line("#[derive(Debug, Clone, PartialEq, Eq)]");
        w.open("pub struct Metrics {");
        w.line("/// Completed parses (bumped by `finish_parse`).");
        w.line("pub parses: u64,");
        w.line("/// Tokens consumed by completed parses.");
        w.line("pub tokens: u64,");
        w.line("/// Memo-table hits.");
        w.line("pub memo_hits: u64,");
        w.line("/// Memo-table entries written.");
        w.line("pub memo_entries: u64,");
        w.line("/// Histogram of tokens per parse.");
        w.line("pub tokens_hist: [u64; 64],");
        w.line("/// Histogram of memo entries written per parse.");
        w.line("pub memo_hist: [u64; 64],");
        w.line("/// `memo_entries` at the last `finish_parse` (per-parse deltas).");
        w.line("memo_mark: u64,");
        w.line("/// Per-decision counters, indexed by decision id.");
        w.line("pub decisions: Vec<MetDecision>,");
        w.close("}");
        w.blank();
        w.open("impl Metrics {");
        w.line("/// An all-zero accumulator shaped for this grammar.");
        w.open("pub fn new() -> Metrics {");
        w.line("Metrics { parses: 0, tokens: 0, memo_hits: 0, memo_entries: 0, tokens_hist: [0; 64], memo_hist: [0; 64], memo_mark: 0, decisions: MET_DECISION_RULES.iter().map(|_| MetDecision { events: 0, la_sum: 0, la_max: 0, backtracks: 0, spec_sum: 0, hist: [0; 32] }).collect() }");
        w.close("}");
        w.blank();
        w.line("/// Marks one successful parse-to-EOF over `tokens` consumed");
        w.line("/// tokens (the runtime's `ParseMetrics::finish_parse`).");
        w.open("pub fn finish_parse(&mut self, tokens: u64) {");
        w.line("self.parses += 1;");
        w.line("self.tokens += tokens;");
        w.line("self.tokens_hist[met_bucket(tokens, 64)] += 1;");
        w.line("let delta = self.memo_entries - self.memo_mark;");
        w.line("self.memo_mark = self.memo_entries;");
        w.line("self.memo_hist[met_bucket(delta, 64)] += 1;");
        w.close("}");
        w.blank();
        w.line("/// Adds `other` into `self`, cell by cell (`la_max` via max).");
        w.open("pub fn merge(&mut self, other: &Metrics) {");
        w.line("self.parses += other.parses;");
        w.line("self.tokens += other.tokens;");
        w.line("self.memo_hits += other.memo_hits;");
        w.line("self.memo_entries += other.memo_entries;");
        w.line("for (a, b) in self.tokens_hist.iter_mut().zip(&other.tokens_hist) { *a += b; }");
        w.line("for (a, b) in self.memo_hist.iter_mut().zip(&other.memo_hist) { *a += b; }");
        w.open("for (a, b) in self.decisions.iter_mut().zip(&other.decisions) {");
        w.line("a.events += b.events;");
        w.line("a.la_sum += b.la_sum;");
        w.line("a.la_max = a.la_max.max(b.la_max);");
        w.line("a.backtracks += b.backtracks;");
        w.line("a.spec_sum += b.spec_sum;");
        w.line("for (x, y) in a.hist.iter_mut().zip(&b.hist) { *x += y; }");
        w.close("}");
        w.close("}");
        w.blank();
        w.line("/// The deterministic snapshot JSON (field order and bytes match");
        w.line("/// the runtime's timing-free form exactly; zero-event decisions");
        w.line("/// are omitted).");
        w.open("pub fn to_json(&self, engine: &str) -> String {");
        w.line("let mut out = String::new();");
        w.line("out.push_str(&format!(\"{{\\\"type\\\":\\\"metrics\\\",\\\"fingerprint\\\":{},\\\"engine\\\":{},\\\"parses\\\":{},\\\"tokens\\\":{},\\\"memo-hits\\\":{},\\\"memo-entries\\\":{},\\\"tokens-hist\\\":{},\\\"memo-hist\\\":{},\\\"decisions\\\":[\", GRAMMAR_FINGERPRINT, json_quote(engine), self.parses, self.tokens, self.memo_hits, self.memo_entries, met_hist_json(&self.tokens_hist), met_hist_json(&self.memo_hist)));");
        w.line("let mut first = true;");
        w.open("for (d, m) in self.decisions.iter().enumerate() {");
        w.line("if m.events == 0 { continue; }");
        w.line("if !first { out.push(','); }");
        w.line("first = false;");
        w.line("out.push_str(&format!(\"{{\\\"decision\\\":{},\\\"rule\\\":{},\\\"events\\\":{},\\\"la-sum\\\":{},\\\"la-max\\\":{},\\\"backtracks\\\":{},\\\"spec-sum\\\":{},\\\"hist\\\":{}}}\", d, json_quote(MET_DECISION_RULES[d]), m.events, m.la_sum, m.la_max, m.backtracks, m.spec_sum, met_hist_json(&m.hist)));");
        w.close("}");
        w.line("out.push_str(\"]}\");");
        w.line("out");
        w.close("}");
        w.close("}");
        w.blank();
        w.open("impl Default for Metrics {");
        w.line("fn default() -> Metrics { Metrics::new() }");
        w.close("}");
    }

    /// Interns an expected set, returning its `EXPECTED_SETS` index.
    fn set_id(&mut self, set: &llstar_core::TokenSet) -> usize {
        let key: Vec<u32> = set.iter().map(|t| t.0).collect();
        if let Some(&id) = self.set_ids.get(&key) {
            return id;
        }
        let id = self.sets.len();
        self.set_ids.insert(key.clone(), id);
        self.sets.push(key);
        id
    }

    fn emit_expected_sets(&self, w: &mut CodeWriter) {
        w.blank();
        w.line("/// Deduplicated expected-token sets (ascending token types),");
        w.line("/// indexed by the ids baked into the recovery call sites.");
        let entries: Vec<String> = self
            .sets
            .iter()
            .map(|s| {
                let items: Vec<String> = s.iter().map(|t| t.to_string()).collect();
                format!("&[{}]", items.join(", "))
            })
            .collect();
        w.line(&format!("static EXPECTED_SETS: &[&[u32]] = &[{}];", entries.join(", ")));
    }

    fn emit_parser_struct(&self, w: &mut CodeWriter) {
        w.line("enum Memo { Stop(usize), Fail(Error) }");
        w.blank();
        w.line("/// Outcome of a recovery-aware terminal match (`expect_r`).");
        w.open("enum Matched {");
        w.line("/// The expected token, matched normally.");
        w.line("Tok(Token),");
        w.line("/// Single-token deletion: the extraneous token, then the match.");
        w.line("Del(Token, Token),");
        w.line("/// Single-token insertion: the synthesized token type.");
        w.line("Ins(u32),");
        w.line("/// Sync-and-return: the tokens skipped resynchronizing.");
        w.line("Out(Vec<Token>),");
        w.close("}");
        w.blank();
        w.line("/// The generated recursive-descent LL(*) parser.");
        w.open("pub struct Parser<'h, H: Hooks> {");
        w.line("tokens: Vec<Token>,");
        w.line("pos: usize,");
        w.line("speculating: u32,");
        w.line("memo: std::collections::HashMap<(u32, usize), Memo>,");
        w.line("hooks: &'h mut H,");
        w.line("/// Error recovery enabled (see `enable_recovery`).");
        w.line("recovering: bool,");
        w.line("/// Cap on recorded diagnostics; exceeding it aborts the parse.");
        w.line("max_errors: usize,");
        w.line("/// Error condition: set on report, cleared when a real token");
        w.line("/// matches; while set, follow-up repairs at the same corruption");
        w.line("/// site run silently (ANTLR's cascade suppression).");
        w.line("in_error_mode: bool,");
        w.line("errors: Vec<Diag>,");
        w.line("/// `EXPECTED_SETS` ids of the follow states of every rule");
        w.line("/// invocation on the call stack (the dynamic resync set).");
        w.line("follow: Vec<usize>,");
        w.line("/// Side channel from a failing predictor to `recover_nv`:");
        w.line("/// (offending token index, decision expected-set id).");
        w.line("nv: Option<(usize, usize)>,");
        w.line("/// ANTLR's `lastErrorIndex` failsafe: position of the last");
        w.line("/// zero-consumption repair; a repeat at the same position");
        w.line("/// force-consumes one token so loops cannot spin.");
        w.line("last_err_idx: usize,");
        if self.coverage {
            w.line("/// Coverage counters accumulated by this parser.");
            w.line("pub cov: Coverage,");
            w.line("/// DFA path of the in-flight depth-0 prediction.");
            w.line("cov_path: Vec<u32>,");
            w.line("/// Decisions with a prediction in flight (innermost last);");
            w.line("/// failed predictions leave deterministic dangling entries,");
            w.line("/// popped through by the next enclosing successful stop —");
            w.line("/// exactly the interpreter fold's rule.");
            w.line("cov_stack: Vec<u32>,");
        }
        if self.metrics {
            w.line("/// Metric counters accumulated by this parser.");
            w.line("pub met: Metrics,");
        }
        if self.instrument() {
            w.line("/// Tokens consumed by the most recent syntactic-predicate");
            w.line("/// evaluation (memoized failures report 0).");
            w.line("last_spec: u64,");
        }
        w.close("}");
        w.blank();
        w.open("impl<'h, H: Hooks> Parser<'h, H> {");
        w.line("/// Creates a parser over a token buffer ending in EOF.");
        w.open("pub fn new(tokens: Vec<Token>, hooks: &'h mut H) -> Self {");
        let mut extra_init = String::new();
        if self.coverage {
            extra_init
                .push_str(", cov: Coverage::new(), cov_path: Vec::new(), cov_stack: Vec::new()");
        }
        if self.metrics {
            extra_init.push_str(", met: Metrics::new()");
        }
        if self.instrument() {
            extra_init.push_str(", last_spec: 0");
        }
        w.line(&format!("Parser {{ tokens, pos: 0, speculating: 0, memo: std::collections::HashMap::new(), hooks, recovering: false, max_errors: 0, in_error_mode: false, errors: Vec::new(), follow: Vec::new(), nv: None, last_err_idx: usize::MAX{extra_init} }}"));
        w.close("}");
        if self.coverage {
            w.blank();
            w.line("/// Finishes a successful prediction of `d`: pops the decision");
            w.line("/// stack through dangling entries, then (outside speculation)");
            w.line("/// credits the walked DFA path, the lookahead histogram, and");
            w.line("/// the prediction/backtrack totals. Returns `alt` so predictor");
            w.line("/// return sites stay expressions.");
            w.open("fn cov_stop(&mut self, d: usize, alt: u16, depth: u64, backtracked: bool, spec: u64) -> u16 {");
            w.open("while let Some(top) = self.cov_stack.pop() {");
            w.line("if top as usize == d { break; }");
            w.close("}");
            w.open("if self.speculating == 0 {");
            w.line("let cov = &mut self.cov.decisions[d];");
            w.open("for &s in &self.cov_path {");
            w.line("if let Some(slot) = cov.states.get_mut(s as usize) { *slot += 1; }");
            w.close("}");
            w.open("for pair in self.cov_path.windows(2) {");
            w.line("if let Ok(i) = COV_EDGES[d].binary_search(&(pair[0], pair[1])) { cov.edge_hits[i] += 1; }");
            w.close("}");
            w.line("*cov.lookahead.entry(depth.max(1).max(spec)).or_insert(0) += 1;");
            w.line("cov.predictions += 1;");
            w.line("if backtracked { cov.backtracks += 1; }");
            w.close("}");
            w.line("alt");
            w.close("}");
            w.blank();
            w.line("/// Credits one memo hit/miss to the innermost in-flight");
            w.line("/// prediction, or to the unattributed bucket.");
            w.open("fn cov_memo(&mut self, hit: bool) {");
            w.open("match self.cov_stack.last() {");
            w.open("Some(&d) => {");
            w.line("let memo = &mut self.cov.decisions[d as usize].memo;");
            w.line("if hit { memo.0 += 1; } else { memo.1 += 1; }");
            w.close("}");
            w.open("None => {");
            w.line("let memo = &mut self.cov.memo_unattributed;");
            w.line("if hit { memo.0 += 1; } else { memo.1 += 1; }");
            w.close("}");
            w.close("}");
            w.close("}");
            w.blank();
            w.line("/// Credits a non-speculative rule completion via 1-based `alt`");
            w.line("/// (`0` only for single-alternative rules and recovery returns;");
            w.line("/// the latter are not counted).");
            w.open("fn cov_rule(&mut self, rid: usize, alt: u16) {");
            w.line("let counts = &mut self.cov.rules[rid];");
            w.line("let idx = if counts.len() == 1 { 0 } else if alt >= 1 { alt as usize - 1 } else { return };");
            w.line("if let Some(slot) = counts.get_mut(idx) { *slot += 1; }");
            w.close("}");
        }
        if self.metrics {
            w.blank();
            w.line("/// Folds one completed prediction of `d` into the metric");
            w.line("/// counters: all speculation depths count (the prediction");
            w.line("/// sequence is engine-invariant, so this matches the");
            w.line("/// interpreter's `record_predict` byte-for-byte). Returns");
            w.line("/// `alt` so predictor return sites stay expressions.");
            w.open("fn met_stop(&mut self, d: usize, alt: u16, depth: u64, backtracked: bool, spec: u64) -> u16 {");
            w.line("let la = depth.max(1).max(spec);");
            w.line("let m = &mut self.met.decisions[d];");
            w.line("m.events += 1;");
            w.line("m.la_sum += la;");
            w.line("m.la_max = m.la_max.max(la);");
            w.line("m.backtracks += backtracked as u64;");
            w.line("m.spec_sum += spec;");
            w.line("m.hist[met_bucket(la, 32)] += 1;");
            w.line("alt");
            w.close("}");
        }
        w.blank();
        w.line("/// Enables error recovery: syntax errors are repaired and");
        w.line("/// collected (up to `max_errors`) instead of aborting.");
        w.open("pub fn enable_recovery(&mut self, max_errors: usize) {");
        w.line("self.recovering = true;");
        w.line("self.max_errors = max_errors;");
        w.close("}");
        w.blank();
        w.line("/// Diagnostics recorded by recovery, in input order.");
        w.open("pub fn take_errors(&mut self) -> Vec<Diag> {");
        w.line("std::mem::take(&mut self.errors)");
        w.close("}");
        w.blank();
        w.open("fn la(&self, i: usize) -> u32 {");
        w.line("self.tokens[(self.pos + i - 1).min(self.tokens.len() - 1)].ttype");
        w.close("}");
        w.blank();
        w.open("fn err_at(&self, offset: usize, message: String) -> Error {");
        w.line("let t = self.tokens[(self.pos + offset).min(self.tokens.len() - 1)];");
        w.line("Error { line: t.line, col: t.col, message }");
        w.close("}");
        w.blank();
        w.open("fn expect(&mut self, ttype: u32, name: &str) -> Result<Token, Error> {");
        w.open("if self.la(1) == ttype {");
        w.line("let t = self.tokens[self.pos.min(self.tokens.len() - 1)];");
        w.line("if self.pos + 1 < self.tokens.len() { self.pos += 1; }");
        w.line("Ok(t)");
        w.close("}");
        w.open("else {");
        w.line("Err(self.err_at(0, format!(\"expected {name}\")))");
        w.close("}");
        w.close("}");
        w.blank();
        w.open("fn consume(&mut self) -> Token {");
        w.line("let t = self.tokens[self.pos.min(self.tokens.len() - 1)];");
        w.line("if self.pos + 1 < self.tokens.len() { self.pos += 1; }");
        w.line("t");
        w.close("}");
        w.blank();
        w.line("/// Whether `t` belongs to the dynamic resynchronization set:");
        w.line("/// the union of expected sets over the follow states of every");
        w.line("/// rule invocation on the call stack, plus EOF.");
        w.open("fn in_resync(&self, t: u32) -> bool {");
        w.line("if t == 0 { return true; }");
        w.line("self.follow.iter().any(|&f| EXPECTED_SETS[f].contains(&t))");
        w.close("}");
        w.blank();
        w.line("/// Records a diagnostic, or fails the parse when `max_errors`");
        w.line("/// is reached. Reports are suppressed while the error condition");
        w.line("/// is set (no token matched since the last report).");
        w.open("fn report(&mut self, d: Diag, e: Error, rid: u32) -> Result<(), Error> {");
        w.line("if self.in_error_mode { return Ok(()); }");
        w.line("if self.errors.len() >= self.max_errors { return Err(e); }");
        if self.trace {
            w.line("self.hooks.trace(\"recover\", rid, self.pos);");
        } else {
            w.line("let _ = rid;");
        }
        w.line("self.errors.push(d);");
        w.line("self.in_error_mode = true;");
        w.line("Ok(())");
        w.close("}");
        w.blank();
        w.line("/// Consumes tokens until the resynchronization set (or EOF).");
        w.open("fn sync(&mut self) -> Vec<Token> {");
        if self.trace {
            w.line("let start = self.pos;");
        }
        w.line("let mut skipped = Vec::new();");
        w.open("loop {");
        w.line("let la = self.la(1);");
        w.line("if la == 0 || self.in_resync(la) { break; }");
        w.line("skipped.push(self.consume());");
        w.close("}");
        if self.trace {
            w.line("self.hooks.trace(\"sync-skip\", skipped.len() as u32, start);");
        }
        w.line("skipped");
        w.close("}");
        w.blank();
        w.line("/// Recovery-aware terminal match: on mismatch (outside");
        w.line("/// speculation), reports a diagnostic and repairs by");
        w.line("/// single-token deletion (`la(2)` matches), single-token");
        w.line("/// insertion (`la(1)` is in the successor state's expected");
        w.line("/// set `succ`), or sync-and-return.");
        w.open("fn expect_r(&mut self, ttype: u32, name: &str, succ: usize, rid: u32) -> Result<Matched, Error> {");
        w.open("if self.la(1) == ttype {");
        w.line("let t = self.consume();");
        w.line("if self.speculating == 0 { self.in_error_mode = false; }");
        w.line("return Ok(Matched::Tok(t));");
        w.close("}");
        w.line("let e = self.err_at(0, format!(\"expected {name}\"));");
        w.line("if !self.recovering || self.speculating > 0 { return Err(e); }");
        w.line("let t = self.tokens[self.pos.min(self.tokens.len() - 1)];");
        w.line("let found = TOKEN_NAMES[t.ttype as usize];");
        w.line("let d = Diag { kind: \"mismatch\", line: t.line, col: t.col, start: t.start, end: t.end, found: found.to_string(), expected: vec![name.to_string()], message: format!(\"expected {name}, found {found}\") };");
        w.line("self.report(d, e, rid)?;");
        w.open("if self.la(2) == ttype {");
        w.line("let bad = self.consume();");
        if self.trace {
            w.line("self.hooks.trace(\"token-deleted\", bad.ttype, self.pos - 1);");
        }
        w.open("if self.la(1) == ttype {");
        w.line("let tok = self.consume();");
        w.line("if self.speculating == 0 { self.in_error_mode = false; }");
        w.line("return Ok(Matched::Del(bad, tok));");
        w.close("}");
        w.line("// The deletion guess was wrong; resynchronize, keeping the");
        w.line("// deleted token in the error node.");
        w.line("let mut skipped = vec![bad];");
        w.line("skipped.extend(self.sync());");
        w.line("return Ok(Matched::Out(skipped));");
        w.close("}");
        w.open("if EXPECTED_SETS[succ].contains(&self.la(1)) {");
        if self.trace {
            w.line("self.hooks.trace(\"token-inserted\", ttype, self.pos);");
        }
        w.line("return Ok(Matched::Ins(ttype));");
        w.close("}");
        w.line("// Sync-and-return, with the `lastErrorIndex` failsafe: a");
        w.line("// second zero-consumption resync at the same position");
        w.line("// force-consumes one token so loops cannot spin.");
        w.line("let start = self.pos;");
        w.line("let mut skipped = Vec::new();");
        w.open("if self.last_err_idx == start && self.la(1) != 0 && self.in_resync(self.la(1)) {");
        w.line("skipped.push(self.consume());");
        w.close("}");
        w.line("skipped.extend(self.sync());");
        w.line("if skipped.is_empty() { self.last_err_idx = start; }");
        w.line("Ok(Matched::Out(skipped))");
        w.close("}");
        w.blank();
        w.line("/// Builds a no-viable-alternative error at lookahead depth `i`,");
        w.line("/// leaving the offender and the decision's expected set for");
        w.line("/// `recover_nv` (the message matches the strict engine).");
        w.open("fn nv_err(&mut self, i: usize, dset: usize, message: &str) -> Error {");
        w.line("let idx = (self.pos + i).min(self.tokens.len() - 1);");
        w.line("self.nv = Some((idx, dset));");
        w.line("let t = self.tokens[idx];");
        w.line("Error { line: t.line, col: t.col, message: message.to_string() }");
        w.close("}");
        w.blank();
        w.line("/// Repairs a failed prediction: consume until either a token");
        w.line("/// in the decision's expected set appears (`(true, skipped)` —");
        w.line("/// retry the decision) or a resynchronization token appears");
        w.line("/// (`(false, skipped)` — return from the rule partially).");
        w.open(
            "fn recover_nv(&mut self, e: Error, rid: u32) -> Result<(bool, Vec<Token>), Error> {",
        );
        w.line("if !self.recovering || self.speculating > 0 { return Err(e); }");
        w.line("let (idx, dset) = match self.nv.take() { Some(v) => v, None => return Err(e) };");
        w.line("let t = self.tokens[idx];");
        w.line("let d = Diag { kind: \"no-viable\", line: t.line, col: t.col, start: t.start, end: t.end, found: TOKEN_NAMES[t.ttype as usize].to_string(), expected: EXPECTED_SETS[dset].iter().map(|&tt| TOKEN_NAMES[tt as usize].to_string()).collect(), message: e.message.clone() };");
        w.line("self.report(d, e, rid)?;");
        w.line("// Already synchronized: return from the rule without");
        w.line("// consuming (consuming a token the caller expects would");
        w.line("// cascade errors). Exception: a second zero-consumption");
        w.line("// repair at the same position force-consumes one token");
        w.line("// (the `lastErrorIndex` failsafe) so an enclosing loop");
        w.line("// cannot spin on the failing rule forever.");
        w.line("let la1 = self.la(1);");
        w.open("if la1 == 0 || self.in_resync(la1) {");
        w.open("if self.last_err_idx == self.pos && la1 != 0 {");
        w.line("let skipped = vec![self.consume()];");
        if self.trace {
            w.line("self.hooks.trace(\"sync-skip\", 1, self.pos - 1);");
        }
        w.line("return Ok((false, skipped));");
        w.close("}");
        w.line("self.last_err_idx = self.pos;");
        if self.trace {
            w.line("self.hooks.trace(\"sync-skip\", 0, self.pos);");
        }
        w.line("return Ok((false, Vec::new()));");
        w.close("}");
        w.line("// Otherwise the offending token is consumed unconditionally");
        w.line("// — every repair makes progress.");
        if self.trace {
            w.line("let start = self.pos;");
        }
        w.line("let mut skipped = vec![self.consume()];");
        w.open("loop {");
        w.line("let la = self.la(1);");
        w.open("if EXPECTED_SETS[dset].contains(&la) {");
        if self.trace {
            w.line("self.hooks.trace(\"sync-skip\", skipped.len() as u32, start);");
        }
        w.line("return Ok((true, skipped));");
        w.close("}");
        w.open("if la == 0 || self.in_resync(la) {");
        if self.trace {
            w.line("self.hooks.trace(\"sync-skip\", skipped.len() as u32, start);");
        }
        w.line("return Ok((false, skipped));");
        w.close("}");
        w.line("skipped.push(self.consume());");
        w.close("}");
        w.close("}");
        w.blank();
        w.line("/// Repairs a failed gating predicate: report, consume at least");
        w.line("/// the offending token (when not at EOF), skip to the");
        w.line("/// resynchronization set, and return from the rule. At least one");
        w.line("/// token is always consumed so an enclosing loop that re-enters");
        w.line("/// the rule cannot spin on the same gate forever.");
        w.open("fn recover_gate(&mut self, d: Diag, e: Error, rid: u32) -> Result<Vec<Token>, Error> {");
        w.line("self.report(d, e, rid)?;");
        if self.trace {
            w.line("let start = self.pos;");
        }
        w.line("let mut skipped = Vec::new();");
        w.open("if self.la(1) != 0 {");
        w.line("skipped.push(self.consume());");
        w.open("loop {");
        w.line("let la = self.la(1);");
        w.line("if la == 0 || self.in_resync(la) { break; }");
        w.line("skipped.push(self.consume());");
        w.close("}");
        w.close("}");
        if self.trace {
            w.line("self.hooks.trace(\"sync-skip\", skipped.len() as u32, start);");
        }
        w.line("Ok(skipped)");
        w.close("}");
        w.close("}");
        w.blank();
    }

    /// Emits the recovery tail of a failed body gate: build the
    /// predicate diagnostic at the current token (byte-identical to the
    /// interpreter's), resynchronize, and return from the rule with an
    /// error node. `strict_err` is the expression producing the strict
    /// engine's `Error`.
    fn emit_gate_recovery(&mut self, w: &mut CodeWriter, strict_err: &str, diag_message: &str) {
        let rid = self.current_rule;
        w.line(&format!("let __e = {strict_err};"));
        w.line("if !self.recovering || self.speculating > 0 { return Err(__e); }");
        w.line("let __t = self.tokens[self.pos.min(self.tokens.len() - 1)];");
        w.line(&format!(
            "let __d = Diag {{ kind: \"predicate\", line: __t.line, col: __t.col, \
             start: __t.start, end: __t.end, \
             found: TOKEN_NAMES[__t.ttype as usize].to_string(), expected: Vec::new(), \
             message: {diag_message:?}.to_string() }};"
        ));
        w.line(&format!("let __skipped = self.recover_gate(__d, __e, {rid})?;"));
        w.line("children.push(Tree::Error { tokens: __skipped, inserted: None });");
        w.line(&format!("return Ok(Tree::Rule {{ rule: {rid}, alt, children }});"));
    }

    fn rule_fn_name(&self, idx: usize) -> String {
        format!("parse_{}", self.grammar.rules[idx].name)
    }

    fn emit_rule(
        &mut self,
        w: &mut CodeWriter,
        rule: &llstar_grammar::Rule,
        cursor: &mut DecisionCursor<'_>,
    ) {
        let name = self.rule_fn_name(rule.id.index());
        let rid = rule.id.index();
        w.blank();
        w.line(&format!("/// Parses rule `{}` (memoized while speculating).", rule.name));
        w.open(&format!("pub fn {name}(&mut self) -> Result<Tree, Error> {{"));
        w.line("let start = self.pos;");
        w.open("if self.speculating > 0 {");
        w.open(&format!("match self.memo.get(&({rid}, start)) {{"));
        let mut hit = String::new();
        if self.met_memo {
            hit.push_str("self.met.memo_hits += 1; ");
        }
        if self.count_memo {
            hit.push_str("self.cov_memo(true); ");
        }
        if hit.is_empty() {
            w.line(&format!(
                "Some(Memo::Stop(stop)) => {{ self.pos = *stop; return Ok(Tree::Rule {{ rule: {rid}, alt: 0, children: Vec::new() }}); }}"
            ));
            w.line("Some(Memo::Fail(e)) => return Err(e.clone()),");
        } else {
            // The memo borrow is copied out before the counter helpers
            // retake `&mut self`.
            w.line(&format!(
                "Some(Memo::Stop(stop)) => {{ let stop = *stop; {hit}self.pos = stop; return Ok(Tree::Rule {{ rule: {rid}, alt: 0, children: Vec::new() }}); }}"
            ));
            w.line(&format!("Some(Memo::Fail(e)) => {{ let e = e.clone(); {hit}return Err(e); }}"));
        }
        w.line("None => {}");
        w.close("}");
        w.close("}");
        w.line(&format!("let result = self.{name}_body();"));
        w.open("if self.speculating > 0 {");
        w.open("let entry = match &result {");
        w.line("Ok(_) => Memo::Stop(self.pos),");
        w.line("Err(e) => Memo::Fail(e.clone()),");
        w.close("};");
        if self.met_memo {
            w.line("self.met.memo_entries += 1;");
        }
        if self.count_memo {
            w.line("self.cov_memo(false);");
        }
        w.line(&format!("self.memo.insert(({rid}, start), entry);"));
        w.close("}");
        if self.coverage {
            w.open("if self.speculating == 0 {");
            w.line(&format!(
                "if let Ok(Tree::Rule {{ alt: __a, .. }}) = &result {{ self.cov_rule({rid}, *__a); }}"
            ));
            w.close("}");
        }
        w.line("result");
        w.close("}");
        w.blank();
        w.open(&format!("fn {name}_body(&mut self) -> Result<Tree, Error> {{"));
        w.line("let mut children: Vec<Tree> = Vec::new();");
        w.line("let mut alt: u16 = 0;");
        self.current_rule = rid;
        if rule.alts.len() > 1 {
            let d = cursor.take(DecisionKind::RuleAlts);
            self.used_decisions.push(d);
            self.emit_predict_binding(w, d, "alt =");
            w.open("match alt {");
            for (i, a) in rule.alts.iter().enumerate() {
                w.open(&format!("{} => {{", i + 1));
                self.emit_sequence(w, &a.elements, cursor);
                w.close("}");
            }
            w.line("_ => unreachable!(\"predictor returned an unknown alternative\"),");
            w.close("}");
        } else {
            let a = rule.alts.first().expect("validated rules have alternatives");
            self.emit_sequence(w, &a.elements, cursor);
        }
        w.line(&format!("Ok(Tree::Rule {{ rule: {}, alt, children }})", rule.id.index()));
        w.close("}");
    }

    fn emit_synpred(
        &mut self,
        w: &mut CodeWriter,
        idx: usize,
        frag: &Alt,
        cursor: &mut DecisionCursor<'_>,
    ) {
        let memo_key = self.grammar.rules.len() + idx;
        w.blank();
        w.line(&format!("/// Syntactic predicate {idx}: speculative match, rewinds."));
        w.open(&format!("fn synpred_{idx}(&mut self) -> bool {{"));
        w.line("let start = self.pos;");
        let trace_hit = if self.trace {
            format!("self.hooks.trace(\"memo-hit\", {idx}, start); ")
        } else {
            String::new()
        };
        let mut memo_hit = String::new();
        if self.met_memo {
            memo_hit.push_str("self.met.memo_hits += 1; ");
        }
        if self.count_memo {
            memo_hit.push_str("self.cov_memo(true); ");
        }
        w.open(&format!("match self.memo.get(&({memo_key}, start)) {{"));
        if self.instrument() {
            w.line(&format!(
                "Some(Memo::Stop(stop)) => {{ let stop = *stop; {trace_hit}{memo_hit}self.last_spec = (stop - start) as u64; return true; }}"
            ));
            w.line(&format!(
                "Some(Memo::Fail(_)) => {{ {trace_hit}{memo_hit}self.last_spec = 0; return false; }}"
            ));
        } else if self.trace {
            w.line(&format!("Some(Memo::Stop(_)) => {{ {trace_hit}return true; }}"));
            w.line(&format!("Some(Memo::Fail(_)) => {{ {trace_hit}return false; }}"));
        } else {
            w.line("Some(Memo::Stop(_)) => return true,");
            w.line("Some(Memo::Fail(_)) => return false,");
        }
        w.line("None => {}");
        w.close("}");
        if self.trace {
            w.line(&format!("self.hooks.trace(\"backtrack-enter\", {idx}, start);"));
        }
        w.line("self.speculating += 1;");
        w.line(&format!("let result = self.synpred_{idx}_body();"));
        w.line("self.speculating -= 1;");
        w.line("let stop = self.pos;");
        w.line("self.pos = start;");
        if self.instrument() {
            w.line("self.last_spec = (stop - start) as u64;");
        }
        w.open("let entry = match &result {");
        w.line("Ok(()) => Memo::Stop(stop),");
        w.line("Err(e) => Memo::Fail(e.clone()),");
        w.close("};");
        if self.met_memo {
            w.line("self.met.memo_entries += 1;");
        }
        if self.count_memo {
            w.line("self.cov_memo(false);");
        }
        w.line(&format!("self.memo.insert(({memo_key}, start), entry);"));
        if self.trace {
            w.line(&format!("self.hooks.trace(\"backtrack-exit\", {idx}, start);"));
        }
        w.line("result.is_ok()");
        w.close("}");
        w.blank();
        w.open(&format!("fn synpred_{idx}_body(&mut self) -> Result<(), Error> {{"));
        w.line("let mut children: Vec<Tree> = Vec::new();");
        // The fragment submachine has a single alternative. Recovery
        // never engages while speculating, so fragment bodies emit the
        // plain strict forms.
        self.in_fragment = true;
        self.emit_sequence(w, &frag.elements, cursor);
        self.in_fragment = false;
        w.line("let _ = children;");
        w.line("Ok(())");
        w.close("}");
    }

    /// Emits `{binding} <predicted alt>;` for decision `d`: the predictor
    /// call wrapped in the no-viable recovery loop — resynchronize and
    /// either retry the decision or return partially from the rule. In
    /// fragment bodies (speculation) the plain propagating call is
    /// emitted instead.
    fn emit_predict_binding(&mut self, w: &mut CodeWriter, d: usize, binding: &str) {
        if self.in_fragment {
            w.line(&format!("{binding} self.predict_{d}()?;"));
            return;
        }
        let rid = self.current_rule;
        w.open(&format!("{binding} loop {{"));
        w.open(&format!("match self.predict_{d}() {{"));
        w.line("Ok(__a) => break __a,");
        w.open("Err(__e) => {");
        w.line(&format!("let (__retry, __skipped) = self.recover_nv(__e, {rid})?;"));
        w.line("children.push(Tree::Error { tokens: __skipped, inserted: None });");
        w.open("if !__retry {");
        w.line(&format!("return Ok(Tree::Rule {{ rule: {rid}, alt, children }});"));
        w.close("}");
        w.close("}");
        w.close("}");
        w.close("};");
    }

    fn emit_sequence(
        &mut self,
        w: &mut CodeWriter,
        elements: &[Element],
        cursor: &mut DecisionCursor<'_>,
    ) {
        for e in elements {
            self.emit_element(w, e, cursor);
        }
    }

    fn emit_element(&mut self, w: &mut CodeWriter, e: &Element, cursor: &mut DecisionCursor<'_>) {
        match e {
            Element::Token(t) => {
                let name = self.grammar.vocab.display_name(*t);
                // The ATN recorded one (from, to) pair per token element,
                // in this exact emission order; `to`'s expected set is the
                // single-token-insertion viability test.
                let (_, to) = self.analysis.atn.token_sites[self.token_site];
                self.token_site += 1;
                if self.in_fragment {
                    w.line(&format!(
                        "children.push(Tree::Leaf(self.expect({}, {:?})?));",
                        t.0, name
                    ));
                } else {
                    let succ = self.set_id(self.analysis.recovery.expected_at(to));
                    let rid = self.current_rule;
                    w.open(&format!("match self.expect_r({}, {:?}, {succ}, {rid})? {{", t.0, name));
                    w.line("Matched::Tok(__t) => children.push(Tree::Leaf(__t)),");
                    w.open("Matched::Del(__bad, __t) => {");
                    w.line("children.push(Tree::Error { tokens: vec![__bad], inserted: None });");
                    w.line("children.push(Tree::Leaf(__t));");
                    w.close("}");
                    w.line(
                        "Matched::Ins(__tt) => children.push(Tree::Error { tokens: Vec::new(), inserted: Some(__tt) }),",
                    );
                    w.open("Matched::Out(__skipped) => {");
                    w.line("children.push(Tree::Error { tokens: __skipped, inserted: None });");
                    w.line(&format!("return Ok(Tree::Rule {{ rule: {rid}, alt, children }});"));
                    w.close("}");
                    w.close("}");
                }
            }
            Element::Rule(r) => {
                // One follow state per rule invocation, same order
                // invariant as `token_sites`.
                let follow = self.analysis.atn.call_sites[self.call_site];
                self.call_site += 1;
                if self.in_fragment {
                    w.line(&format!("children.push(self.{}()?);", self.rule_fn_name(r.index())));
                } else {
                    let fid = self.set_id(self.analysis.recovery.expected_at(follow));
                    w.line(&format!("self.follow.push({fid});"));
                    w.line(&format!("let __sub = self.{}();", self.rule_fn_name(r.index())));
                    w.line("self.follow.pop();");
                    w.line("children.push(__sub?);");
                }
            }
            Element::SemPred(p) => {
                let text = self.grammar.sempred_text(*p).to_string();
                w.open(&format!("if !self.hooks.sempred({}, {:?}, self.pos) {{", p.0, text));
                let strict =
                    format!("self.err_at(0, format!(\"predicate {{}} failed\", {:?}))", text);
                if self.in_fragment {
                    w.line(&format!("return Err({strict});"));
                } else {
                    let msg = format!("semantic predicate {{{text}}}? failed");
                    self.emit_gate_recovery(w, &strict, &msg);
                }
                w.close("}");
            }
            Element::SynPred(sp) => {
                w.open(&format!("if !self.synpred_{}() {{", sp.0));
                let strict =
                    format!("self.err_at(0, \"syntactic predicate {} failed\".to_string())", sp.0);
                if self.in_fragment {
                    w.line(&format!("return Err({strict});"));
                } else {
                    let msg = format!("semantic predicate {{synpred{}}}? failed", sp.0);
                    self.emit_gate_recovery(w, &strict, &msg);
                }
                w.close("}");
            }
            Element::NotSynPred(sp) => {
                w.open(&format!("if self.synpred_{}() {{", sp.0));
                let strict = format!(
                    "self.err_at(0, \"negated syntactic predicate {} failed\".to_string())",
                    sp.0
                );
                if self.in_fragment {
                    w.line(&format!("return Err({strict});"));
                } else {
                    let msg = format!("semantic predicate {{!synpred{}}}? failed", sp.0);
                    self.emit_gate_recovery(w, &strict, &msg);
                }
                w.close("}");
            }
            Element::Action { id, always } => {
                let text = self.grammar.action_text(*id);
                let guard =
                    if *always { "".to_string() } else { "if self.speculating == 0 ".to_string() };
                w.open(&format!("{guard}{{"));
                w.line(&format!("self.hooks.action({}, {:?}, self.pos);", id.0, text));
                w.close("}");
            }
            Element::Block(b) => self.emit_block(w, b, cursor),
        }
    }

    fn emit_block(&mut self, w: &mut CodeWriter, b: &Block, cursor: &mut DecisionCursor<'_>) {
        match b.ebnf {
            Ebnf::None => {
                if b.alts.len() == 1 {
                    self.emit_sequence(w, &b.alts[0].elements, cursor);
                } else {
                    let d = cursor.take(DecisionKind::Block);
                    self.used_decisions.push(d);
                    self.emit_predict_binding(w, d, &format!("let __alt_{d} ="));
                    w.open(&format!("match __alt_{d} {{"));
                    for (i, a) in b.alts.iter().enumerate() {
                        w.open(&format!("{} => {{", i + 1));
                        self.emit_sequence(w, &a.elements, cursor);
                        w.close("}");
                    }
                    w.line("_ => unreachable!(),");
                    w.close("}");
                }
            }
            Ebnf::Optional => {
                let d = cursor.take(DecisionKind::Optional);
                self.used_decisions.push(d);
                let exit = b.alts.len() + 1;
                self.emit_predict_binding(w, d, &format!("let __alt_{d} ="));
                w.open(&format!("match __alt_{d} {{"));
                for (i, a) in b.alts.iter().enumerate() {
                    w.open(&format!("{} => {{", i + 1));
                    self.emit_sequence(w, &a.elements, cursor);
                    w.close("}");
                }
                w.line(&format!("{exit} => {{}} // skip"));
                w.line("_ => unreachable!(),");
                w.close("}");
            }
            Ebnf::Star => {
                let d = cursor.take(DecisionKind::Star);
                self.used_decisions.push(d);
                let exit = b.alts.len() + 1;
                w.open("loop {");
                w.line("let before = self.pos;");
                self.emit_predict_binding(w, d, &format!("let __alt_{d} ="));
                w.open(&format!("match __alt_{d} {{"));
                for (i, a) in b.alts.iter().enumerate() {
                    w.open(&format!("{} => {{", i + 1));
                    self.emit_sequence(w, &a.elements, cursor);
                    w.close("}");
                }
                w.line(&format!("{exit} => break,"));
                w.line("_ => unreachable!(),");
                w.close("}");
                w.line("if self.pos == before { break; } // ε-body guard");
                w.close("}");
            }
            Ebnf::Plus => {
                // Entry block decision first (if multiple alternatives),
                // then the loop-back decision — the ATN builder's order.
                let entry_d = if b.alts.len() > 1 {
                    let d = cursor.take(DecisionKind::Block);
                    self.used_decisions.push(d);
                    Some(d)
                } else {
                    None
                };
                w.open("loop {");
                w.line("let before = self.pos;");
                if let Some(d) = entry_d {
                    self.emit_predict_binding(w, d, &format!("let __alt_{d} ="));
                    w.open(&format!("match __alt_{d} {{"));
                    for (i, a) in b.alts.iter().enumerate() {
                        w.open(&format!("{} => {{", i + 1));
                        // Inner decisions are emitted for alternative
                        // bodies here; the cursor advances inside.
                        self.emit_sequence(w, &a.elements, cursor);
                        w.close("}");
                    }
                    w.line("_ => unreachable!(),");
                    w.close("}");
                } else {
                    self.emit_sequence(w, &b.alts[0].elements, cursor);
                }
                let d = cursor.take(DecisionKind::PlusLoop);
                self.used_decisions.push(d);
                self.emit_predict_binding(w, d, &format!("let __alt_{d} ="));
                w.line(&format!("if __alt_{d} != 1 {{ break; }}"));
                w.line("if self.pos == before { break; } // ε-body guard");
                w.close("}");
            }
        }
    }

    // -----------------------------------------------------------------
    // Predictors
    // -----------------------------------------------------------------

    fn emit_predictor(&mut self, w: &mut CodeWriter, decision: usize) {
        // The decision state's expected set: the no-viable diagnostic's
        // `expected` list and `recover_nv`'s retry test.
        let dstate = self.analysis.atn.decisions[decision].state;
        let dset = self.set_id(self.analysis.recovery.expected_at(dstate));
        let analysis = &self.analysis.decisions[decision];
        let dfa = &analysis.dfa;
        let rule = self.analysis.atn.decisions[decision].rule;
        let rule_name = &self.grammar.rule(rule).name;
        w.blank();
        w.line(&format!("/// Lookahead DFA for decision {decision} (rule `{rule_name}`)."));
        if self.trace {
            // Traced build: a wrapper reports the prediction outcome and
            // the DFA walk moves into a `_body` helper.
            w.open(&format!("fn predict_{decision}(&mut self) -> Result<u16, Error> {{"));
            w.line(&format!("self.hooks.trace(\"predict-start\", {decision}, self.pos);"));
            w.line(&format!("let result = self.predict_{decision}_body();"));
            w.open("match &result {");
            w.line(&format!("Ok(_) => self.hooks.trace(\"predict-stop\", {decision}, self.pos),"));
            w.line(&format!("Err(_) => self.hooks.trace(\"syntax-error\", {decision}, self.pos),"));
            w.close("}");
            w.line("result");
            w.close("}");
            w.blank();
            w.open(&format!("fn predict_{decision}_body(&mut self) -> Result<u16, Error> {{"));
        } else {
            w.open(&format!("fn predict_{decision}(&mut self) -> Result<u16, Error> {{"));
        }
        if self.coverage {
            // Mirrors the interpreter fold: the decision is pushed before
            // any DFA walking or predicate evaluation (the `predict-start`
            // point), and the shared path buffer is only touched at
            // speculation depth zero.
            w.line(&format!("self.cov_stack.push({decision});"));
            w.line("if self.speculating == 0 { self.cov_path.clear(); self.cov_path.push(0); }");
        }
        if self.instrument() {
            w.line("let mut __bt = false;");
            w.line("let mut __spec = 0u64;");
        }
        w.line("let mut s = 0usize;");
        w.line("let mut i = 0usize;");
        w.line("let _ = &mut i;");
        if let Some((_, table)) = self.analysis.tables.get(decision) {
            self.emit_table_predictor_body(w, decision, table, dfa, rule_name, dset);
        } else {
            w.open("loop {");
            w.open("match s {");
            for (sid, st) in dfa.states.iter().enumerate() {
                self.emit_dfa_state(w, decision, sid, st, rule_name, dset);
            }
            w.line("_ => unreachable!(\"generated DFA has no such state\"),");
            w.close("}");
            w.close("}");
        }
        w.close("}");
    }

    /// Emits the table-driven predictor loop: accept check, class-mapped
    /// transition lookup, then (on a miss) predicate arms for the few
    /// states that carry them, the default side table, and the no-viable
    /// error. Semantically identical to the unrolled per-state `match`
    /// (see `emit_dfa_state`) — the parity suites compare the two paths
    /// byte for byte — but dispatch is pure array indexing.
    fn emit_table_predictor_body(
        &self,
        w: &mut CodeWriter,
        decision: usize,
        table: &CompiledDfa,
        dfa: &llstar_core::LookaheadDfa,
        rule_name: &str,
        dset: usize,
    ) {
        w.open("loop {");
        w.line(&format!("let __a = D{decision}_ACCEPT[s];"));
        w.line(&format!(
            "if __a != u16::MAX {{ return {}; }}",
            self.predict_ok_expr(decision, "__a")
        ));
        w.line("let __c = CLASS_MAP[self.la(i + 1) as usize] as usize;");
        match &table.table {
            NextTable::Dense(_) => {
                w.line(&format!("let __t = D{decision}_NEXT[s * {} + __c];", table.num_classes));
            }
            NextTable::RowDisplaced { .. } => {
                w.line(&format!("let __slot = D{decision}_BASE[s] as usize + __c;"));
                w.line(&format!(
                    "let __t = if D{decision}_CHECK[__slot] == s as u32 {{ D{decision}_NEXT[__slot] }} else {{ u32::MAX }};"
                ));
            }
        }
        w.open("if __t != u32::MAX {");
        w.line("s = __t as usize;");
        w.line("i += 1;");
        if self.coverage {
            w.line("if self.speculating == 0 { self.cov_path.push(__t); }");
        }
        w.line("continue;");
        w.close("}");
        // Predicate transitions live outside the table: a `match` with
        // arms only for the (rare) states that carry them.
        if dfa.states.iter().any(|st| !st.preds.is_empty()) {
            w.open("match s {");
            for (sid, st) in dfa.states.iter().enumerate() {
                if st.preds.is_empty() {
                    continue;
                }
                w.open(&format!("{sid} => {{"));
                self.emit_state_preds(w, st, decision);
                w.close("}");
            }
            w.line("_ => {}");
            w.close("}");
        }
        w.line(&format!("let __d = D{decision}_DEFAULT[s];"));
        w.line(&format!(
            "if __d != u16::MAX {{ return {}; }}",
            self.predict_ok_expr(decision, "__d")
        ));
        w.line(&format!(
            "return Err(self.nv_err(i, {dset}, \"no viable alternative for rule {rule_name}\"));"
        ));
        w.close("}");
    }

    /// The expression a predictor returns for alternative `alt`: with
    /// coverage, routed through `cov_stop` (which records the path walked
    /// so far and hands `alt` back).
    fn predict_ok(&self, decision: usize, alt: u16) -> String {
        self.predict_ok_expr(decision, &alt.to_string())
    }

    /// [`ParserGen::predict_ok`] for a runtime alternative expression
    /// (the table-driven predictors read `alt` out of a side table).
    /// With both instrumentations on, the recorders nest — each hands
    /// `alt` back, so the return site stays a single expression.
    fn predict_ok_expr(&self, decision: usize, alt: &str) -> String {
        // When both instrumentations are on the calls cannot nest (two
        // overlapping `&mut self` receivers), so the inner result is
        // bound to a local between them.
        match (self.coverage, self.metrics) {
            (false, false) => format!("Ok({alt})"),
            (true, false) => {
                format!("Ok(self.cov_stop({decision}, {alt}, i as u64, __bt, __spec))")
            }
            (false, true) => {
                format!("Ok(self.met_stop({decision}, {alt}, i as u64, __bt, __spec))")
            }
            (true, true) => format!(
                "Ok({{ let __alt = self.cov_stop({decision}, {alt}, i as u64, __bt, __spec); self.met_stop({decision}, __alt, i as u64, __bt, __spec) }})"
            ),
        }
    }

    fn emit_dfa_state(
        &self,
        w: &mut CodeWriter,
        decision: usize,
        sid: usize,
        st: &DfaState,
        rule_name: &str,
        dset: usize,
    ) {
        if let Some(alt) = st.accept {
            w.line(&format!("{sid} => return {},", self.predict_ok(decision, alt)));
            return;
        }
        w.open(&format!("{sid} => {{"));
        if !st.edges.is_empty() {
            w.open("match self.la(i + 1) {");
            for &(tok, target) in &st.edges {
                if self.coverage {
                    w.line(&format!(
                        "{} => {{ s = {target}; i += 1; if self.speculating == 0 {{ self.cov_path.push({target}); }} }}",
                        tok.0
                    ));
                } else {
                    w.line(&format!("{} => {{ s = {target}; i += 1; }}", tok.0));
                }
            }
            w.open("_ => {");
            self.emit_state_fallback(w, st, decision, rule_name, dset);
            w.close("}");
            w.close("}");
        } else {
            self.emit_state_fallback(w, st, decision, rule_name, dset);
        }
        w.close("}");
    }

    /// Emits the predicate/default/error handling reached when no token
    /// edge applies in a DFA state.
    fn emit_state_fallback(
        &self,
        w: &mut CodeWriter,
        st: &DfaState,
        decision: usize,
        rule_name: &str,
        dset: usize,
    ) {
        self.emit_state_preds(w, st, decision);
        if let Some(alt) = st.default_alt {
            w.line(&format!("return {};", self.predict_ok(decision, alt)));
        } else {
            w.line(&format!(
                "return Err(self.nv_err(i, {dset}, \"no viable alternative for rule {rule_name}\"));"
            ));
        }
    }

    /// Emits the predicate transitions of one DFA state, in evaluation
    /// order (shared by the unrolled and table-driven predictors).
    fn emit_state_preds(&self, w: &mut CodeWriter, st: &DfaState, decision: usize) {
        for &(pred, alt) in &st.preds {
            let ok = self.predict_ok(decision, alt);
            match pred {
                PredSource::Sem(p) => {
                    let text = self.grammar.sempred_text(p);
                    w.line(&format!(
                        "if self.hooks.sempred({}, {:?}, self.pos) {{ return {ok}; }}",
                        p.0, text
                    ));
                }
                PredSource::Syn(sp) => {
                    if self.instrument() {
                        // The speculation depth is folded in before the
                        // outcome check, matching the interpreter (failed
                        // speculative parses still deepen the histogram).
                        w.line("__bt = true;");
                        w.line(&format!("let __ok = self.synpred_{}();", sp.0));
                        w.line("__spec = __spec.max(self.last_spec);");
                        w.line(&format!("if __ok {{ return {ok}; }}"));
                    } else {
                        w.line(&format!("if self.synpred_{}() {{ return Ok({alt}); }}", sp.0));
                    }
                }
                PredSource::NotSyn(sp) => {
                    if self.instrument() {
                        w.line("__bt = true;");
                        w.line(&format!("let __ok = self.synpred_{}();", sp.0));
                        w.line("__spec = __spec.max(self.last_spec);");
                        w.line(&format!("if !__ok {{ return {ok}; }}"));
                    } else {
                        w.line(&format!("if !self.synpred_{}() {{ return Ok({alt}); }}", sp.0));
                    }
                }
            }
        }
    }
}
