//! A tiny indented-code writer used by the generator.

/// Accumulates generated Rust source with indentation tracking.
#[derive(Debug, Default)]
pub struct CodeWriter {
    out: String,
    indent: usize,
}

impl CodeWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Writes one line at the current indentation.
    pub fn line(&mut self, text: &str) {
        if !text.is_empty() {
            for _ in 0..self.indent {
                self.out.push_str("    ");
            }
            self.out.push_str(text);
        }
        self.out.push('\n');
    }

    /// Writes a line, then increases indentation (for `… {`).
    pub fn open(&mut self, text: &str) {
        self.line(text);
        self.indent += 1;
    }

    /// Decreases indentation, then writes a line (for `}`).
    pub fn close(&mut self, text: &str) {
        self.indent = self.indent.saturating_sub(1);
        self.line(text);
    }

    /// A blank line.
    pub fn blank(&mut self) {
        self.out.push('\n');
    }

    /// Finishes, returning the source text.
    pub fn finish(self) -> String {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indentation_tracks_open_close() {
        let mut w = CodeWriter::new();
        w.open("fn main() {");
        w.line("let x = 1;");
        w.open("if x > 0 {");
        w.line("x;");
        w.close("}");
        w.close("}");
        assert_eq!(
            w.finish(),
            "fn main() {\n    let x = 1;\n    if x > 0 {\n        x;\n    }\n}\n"
        );
    }

    #[test]
    fn empty_line_has_no_trailing_spaces() {
        let mut w = CodeWriter::new();
        w.open("{");
        w.line("");
        w.close("}");
        assert_eq!(w.finish(), "{\n\n}\n");
    }
}
