//! Filling a [`CoverageMap`] from the runtime: [`CoverageSink`] is a
//! [`TraceSink`] that folds the event stream into coverage counters
//! without buffering events — attach it alone for trace-off coverage
//! collection, or tee it with an export sink (see
//! [`TeeSink`](crate::trace::TeeSink)).
//!
//! The fold's gating rules are the contract that generated parsers
//! reproduce with direct counters (parity-tested byte-for-byte):
//!
//! * Speculation is never counted. The fold tracks depth via
//!   `backtrack-enter`/`-exit`; only depth-0 `predict-stop` and
//!   successful depth-0 `rule-exit` events bump counters.
//! * Failed predictions emit no `predict-stop`, so they leave their
//!   `predict-start` entry dangling on the decision stack; a later
//!   successful stop pops through dangling entries. Both engines
//!   implement exactly this pop-until-match rule, keeping memo
//!   attribution deterministic even around no-viable errors.
//! * Memo events are charged to the innermost in-flight prediction
//!   (decision-stack top); with none active (PEG body gates), they land
//!   in the map's unattributed bucket. Memo traffic is counted at any
//!   depth — it exists only during speculation.

use crate::trace::{TraceEvent, TraceSink};
use llstar_core::coverage::CoverageMap;
use llstar_core::GrammarAnalysis;
use llstar_grammar::Grammar;

/// A [`TraceSink`] folding events into a [`CoverageMap`]. See the
/// module docs for the fold's gating rules.
pub struct CoverageSink {
    map: CoverageMap,
    spec_depth: u32,
    decision_stack: Vec<u32>,
}

impl CoverageSink {
    /// An empty fold shaped for `grammar` + `analysis`.
    pub fn new(grammar: &Grammar, analysis: &GrammarAnalysis) -> CoverageSink {
        CoverageSink {
            map: CoverageMap::for_grammar(grammar, analysis),
            spec_depth: 0,
            decision_stack: Vec::new(),
        }
    }

    /// Folds one event into the map.
    pub fn apply(&mut self, event: &TraceEvent) {
        match event {
            TraceEvent::PredictStart { decision, .. } => {
                self.decision_stack.push(*decision);
            }
            TraceEvent::PredictStop { decision, lookahead, path, backtracked, .. } => {
                while let Some(top) = self.decision_stack.pop() {
                    if top == *decision {
                        break;
                    }
                }
                if self.spec_depth == 0 {
                    if let Some(cov) = self.map.decisions.get_mut(*decision as usize) {
                        cov.record_path(path, *lookahead, *backtracked);
                    }
                }
            }
            TraceEvent::BacktrackEnter { .. } => self.spec_depth += 1,
            TraceEvent::BacktrackExit { .. } => {
                self.spec_depth = self.spec_depth.saturating_sub(1);
            }
            TraceEvent::MemoHit { .. } => self.bump_memo(true),
            TraceEvent::MemoWrite { .. } => self.bump_memo(false),
            TraceEvent::RuleExit { rule, alt, ok, .. } if self.spec_depth == 0 && *ok => {
                self.map.record_rule(*rule as usize, *alt);
            }
            _ => {}
        }
    }

    fn bump_memo(&mut self, hit: bool) {
        match self.decision_stack.last() {
            Some(&d) => {
                if let Some(cov) = self.map.decisions.get_mut(d as usize) {
                    if hit {
                        cov.memo_hits += 1;
                    } else {
                        cov.memo_misses += 1;
                    }
                }
            }
            None => {
                if hit {
                    self.map.unattributed_memo_hits += 1;
                } else {
                    self.map.unattributed_memo_misses += 1;
                }
            }
        }
    }

    /// Marks one corpus input as folded (bumps the map's file counter).
    pub fn finish_file(&mut self) {
        self.map.files += 1;
    }

    /// The map folded so far.
    pub fn map(&self) -> &CoverageMap {
        &self.map
    }

    /// Consumes the sink, returning the folded map.
    pub fn into_map(self) -> CoverageMap {
        self.map
    }
}

impl TraceSink for CoverageSink {
    fn event(&mut self, event: &TraceEvent) {
        self.apply(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hooks::NopHooks;
    use crate::parser::Parser;
    use crate::stream::TokenStream;
    use llstar_core::analyze;
    use llstar_grammar::{apply_peg_mode, parse_grammar};

    fn setup(src: &str) -> (Grammar, GrammarAnalysis) {
        let g = apply_peg_mode(parse_grammar(src).expect("grammar"));
        let a = analyze(&g);
        (g, a)
    }

    fn fold(g: &Grammar, a: &GrammarAnalysis, input: &str, rule: &str) -> CoverageMap {
        let scanner = g.lexer.build().expect("lexer");
        let tokens = TokenStream::new(scanner.tokenize(input).expect("lexes"));
        let mut sink = CoverageSink::new(g, a);
        let mut parser = Parser::new(g, a, tokens, NopHooks);
        parser.set_trace_sink(&mut sink);
        parser.parse_to_eof(rule).expect("parses");
        sink.finish_file();
        sink.into_map()
    }

    const DEMO: &str = r#"
    grammar Demo;
    s : ID | ID '=' expr ;
    expr : INT ;
    ID : [a-z]+ ;
    INT : [0-9]+ ;
    WS : [ ]+ -> skip ;
    "#;

    #[test]
    fn fold_counts_alts_paths_and_histograms() {
        let (g, a) = setup(DEMO);
        let map = fold(&g, &a, "x = 4", "s");
        assert_eq!(map.files, 1);
        // Rule s completed via alternative 2; expr via its only alt.
        assert_eq!(map.rules[0], vec![0, 1]);
        assert_eq!(map.rules[1], vec![1]);
        let d0 = &map.decisions[0];
        assert_eq!(d0.predictions, 1);
        assert_eq!(d0.backtracks, 0);
        assert_eq!(d0.states[0], 1, "start state counted once per prediction");
        assert!(d0.lookahead.values().sum::<u64>() == 1);
        assert!(d0.edge_hits.iter().sum::<u64>() > 0, "token edges traversed");
        // The uncovered first alternative is visible.
        assert!(map.uncovered_alts().contains(&(0, 0)));
    }

    #[test]
    fn speculation_is_not_counted() {
        // PEG mode: every decision backtracks via synpreds, so the fold
        // must gate out speculative predictions and rule exits.
        let peg = r#"
        grammar Peg;
        options { backtrack = true; }
        s : item+ ;
        item : A B SEMI | A C SEMI ;
        A : 'a' ;
        B : 'b' ;
        C : 'c' ;
        SEMI : ';' ;
        WS : [ ]+ -> skip ;
        "#;
        let (g, a) = setup(peg);
        let map = fold(&g, &a, "a b ; a c ;", "s");
        // Two non-speculative completions of `item`, one per alternative —
        // the speculative sub-parses inside prediction are not counted.
        assert_eq!(map.rules[1], vec![1, 1]);
        // Memo traffic exists (speculation ran) and every memo event is
        // attributed somewhere deterministic.
        let attributed: u64 = map.decisions.iter().map(|d| d.memo_hits + d.memo_misses).sum();
        let total = attributed + map.unattributed_memo_hits + map.unattributed_memo_misses;
        assert!(total > 0, "PEG parse should produce memo traffic");
    }

    #[test]
    fn merged_folds_equal_single_fold_sums() {
        let (g, a) = setup(DEMO);
        let mut left = fold(&g, &a, "x", "s");
        let right = fold(&g, &a, "y = 2", "s");
        left.merge(&right).expect("same grammar");
        assert_eq!(left.files, 2);
        assert_eq!(left.rules[0], vec![1, 1]);
        assert!(left.uncovered_alts().is_empty());
    }
}
