//! Host-language hooks: semantic predicates and embedded actions.
//!
//! The paper's grammars embed predicates and actions written in the host
//! language; here the "host language" surface is a trait the embedding
//! program implements. Predicates must be side-effect free (Section 3);
//! actions may mutate arbitrary state but are suppressed during
//! speculation unless marked always-run (`{{…}}`, Section 4.3).

use llstar_lexer::Token;
use std::collections::HashMap;

/// Context passed to predicate and action hooks.
#[derive(Debug, Clone, Copy)]
pub struct HookContext {
    /// Index of the current token in the stream.
    pub token_index: usize,
    /// The current (next unconsumed) token.
    pub next_token: Token,
    /// Whether the parser is speculating (inside a syntactic-predicate
    /// evaluation). Actions only see `true` here when marked `{{…}}`.
    pub speculating: bool,
}

/// Callbacks supplied by the embedding program.
pub trait Hooks {
    /// Evaluates semantic predicate `text`. Defaults to `true` (predicates
    /// an embedder does not implement are treated as passing).
    fn sempred(&mut self, text: &str, ctx: &HookContext) -> bool {
        let _ = (text, ctx);
        true
    }

    /// Runs embedded action `text`.
    fn action(&mut self, text: &str, ctx: &HookContext) {
        let _ = (text, ctx);
    }
}

/// A registered predicate implementation.
type PredFn = Box<dyn FnMut(&HookContext) -> bool>;
/// A registered action implementation.
type ActionFn = Box<dyn FnMut(&HookContext)>;

/// Hooks that do nothing: every predicate passes, actions are ignored.
#[derive(Debug, Clone, Copy, Default)]
pub struct NopHooks;

impl Hooks for NopHooks {}

/// Table-driven hooks: predicate and action texts map to closures.
///
/// ```
/// use llstar_runtime::{Hooks, HookContext, MapHooks};
/// use llstar_lexer::Token;
/// let mut hooks = MapHooks::new();
/// hooks.on_pred("isTypeName", |_ctx| false);
/// let ctx = HookContext { token_index: 0, next_token: Token::eof(0, 1, 1), speculating: false };
/// assert!(!hooks.sempred("isTypeName", &ctx));
/// assert!(hooks.sempred("unknownPred", &ctx), "unknown predicates default to true");
/// ```
#[derive(Default)]
pub struct MapHooks {
    preds: HashMap<String, PredFn>,
    actions: HashMap<String, ActionFn>,
    /// Count of action invocations, for testing speculation gating.
    pub action_log: Vec<String>,
}

impl MapHooks {
    /// Empty hook table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a predicate implementation.
    pub fn on_pred(
        &mut self,
        text: &str,
        f: impl FnMut(&HookContext) -> bool + 'static,
    ) -> &mut Self {
        self.preds.insert(text.to_string(), Box::new(f));
        self
    }

    /// Registers an action implementation.
    pub fn on_action(&mut self, text: &str, f: impl FnMut(&HookContext) + 'static) -> &mut Self {
        self.actions.insert(text.to_string(), Box::new(f));
        self
    }
}

impl Hooks for MapHooks {
    fn sempred(&mut self, text: &str, ctx: &HookContext) -> bool {
        match self.preds.get_mut(text) {
            Some(f) => f(ctx),
            None => true,
        }
    }

    fn action(&mut self, text: &str, ctx: &HookContext) {
        self.action_log.push(text.to_string());
        if let Some(f) = self.actions.get_mut(text) {
            f(ctx);
        }
    }
}

impl std::fmt::Debug for MapHooks {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MapHooks")
            .field("preds", &self.preds.keys().collect::<Vec<_>>())
            .field("actions", &self.actions.keys().collect::<Vec<_>>())
            .field("action_log", &self.action_log)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> HookContext {
        HookContext { token_index: 3, next_token: Token::eof(0, 1, 1), speculating: false }
    }

    #[test]
    fn nop_hooks_pass_everything() {
        let mut h = NopHooks;
        assert!(h.sempred("anything", &ctx()));
        h.action("ignored", &ctx());
    }

    #[test]
    fn map_hooks_dispatch() {
        let mut h = MapHooks::new();
        h.on_pred("no", |_| false);
        h.on_pred("by_index", |c| c.token_index > 1);
        assert!(!h.sempred("no", &ctx()));
        assert!(h.sempred("by_index", &ctx()));
        assert!(h.sempred("unregistered", &ctx()));
    }

    #[test]
    fn action_log_records_invocations() {
        let mut h = MapHooks::new();
        h.action("a1", &ctx());
        h.action("a2", &ctx());
        assert_eq!(h.action_log, vec!["a1", "a2"]);
    }
}
