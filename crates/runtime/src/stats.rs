//! Runtime instrumentation backing the paper's Tables 3 and 4: per
//! decision, how deep lookahead went and how often backtracking fired.
//!
//! [`ParseStats`] is a fold over the parser's [`TraceEvent`] stream (see
//! [`ParseStats::apply`]): the parser emits events, and these counters
//! are one particular aggregation of them.

use crate::trace::TraceEvent;
use llstar_core::DecisionId;

/// Counters for one decision.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecisionStats {
    /// Number of prediction events at this decision.
    pub events: u64,
    /// Sum of lookahead depths over all events.
    pub lookahead_sum: u64,
    /// Deepest lookahead used by any event.
    pub max_lookahead: u64,
    /// Events that launched at least one speculative parse.
    pub backtrack_events: u64,
    /// Sum of speculation depths (tokens scanned while backtracking).
    pub backtrack_depth_sum: u64,
    /// Deepest speculation.
    pub backtrack_depth_max: u64,
}

/// Whole-parse statistics, indexed by decision.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ParseStats {
    per_decision: Vec<DecisionStats>,
    /// Memoization cache hits during speculation.
    pub memo_hits: u64,
    /// Memoization cache entries written.
    pub memo_entries: u64,
    /// Error-recovery engagements (one per recorded syntax error that the
    /// parser repaired rather than aborted on).
    pub recoveries: u64,
    /// Tokens removed by single-token deletion.
    pub tokens_deleted: u64,
    /// Tokens synthesized by single-token insertion.
    pub tokens_inserted: u64,
    /// Tokens consumed while resynchronizing on follow sets.
    pub tokens_skipped: u64,
}

impl ParseStats {
    /// Stats sized for `decision_count` decisions.
    pub fn new(decision_count: usize) -> Self {
        ParseStats {
            per_decision: vec![DecisionStats::default(); decision_count],
            memo_hits: 0,
            memo_entries: 0,
            recoveries: 0,
            tokens_deleted: 0,
            tokens_inserted: 0,
            tokens_skipped: 0,
        }
    }

    /// Folds one trace event into the counters. [`TraceEvent::PredictStop`]
    /// feeds the per-decision lookahead/backtrack columns,
    /// [`TraceEvent::MemoHit`]/[`TraceEvent::MemoWrite`] feed the memo
    /// totals; other events carry no aggregate.
    pub fn apply(&mut self, event: &TraceEvent) {
        match event {
            TraceEvent::PredictStop { decision, lookahead, backtracked, spec_depth, .. } => {
                self.record_event(DecisionId(*decision), *lookahead);
                if *backtracked {
                    self.record_backtrack(DecisionId(*decision), *spec_depth);
                }
            }
            TraceEvent::MemoHit { .. } => self.memo_hits += 1,
            TraceEvent::MemoWrite { .. } => self.memo_entries += 1,
            TraceEvent::Recover { .. } => self.recoveries += 1,
            TraceEvent::TokenDeleted { .. } => self.tokens_deleted += 1,
            TraceEvent::TokenInserted { .. } => self.tokens_inserted += 1,
            TraceEvent::SyncSkip { skipped, .. } => self.tokens_skipped += skipped,
            _ => {}
        }
    }

    /// Rebuilds stats from a recorded event stream (e.g. a parsed JSONL
    /// export): the fold form of a live parse's instrumentation.
    pub fn from_events<'e>(
        decision_count: usize,
        events: impl IntoIterator<Item = &'e TraceEvent>,
    ) -> Self {
        let mut stats = ParseStats::new(decision_count);
        for event in events {
            stats.apply(event);
        }
        stats
    }

    /// Records one prediction event.
    pub fn record_event(&mut self, decision: DecisionId, lookahead: u64) {
        let d = &mut self.per_decision[decision.index()];
        d.events += 1;
        d.lookahead_sum += lookahead;
        d.max_lookahead = d.max_lookahead.max(lookahead);
    }

    /// Records that the most recent event at `decision` backtracked,
    /// scanning `depth` tokens speculatively.
    pub fn record_backtrack(&mut self, decision: DecisionId, depth: u64) {
        let d = &mut self.per_decision[decision.index()];
        d.backtrack_events += 1;
        d.backtrack_depth_sum += depth;
        d.backtrack_depth_max = d.backtrack_depth_max.max(depth);
    }

    /// Counters for one decision.
    pub fn decision(&self, decision: DecisionId) -> &DecisionStats {
        &self.per_decision[decision.index()]
    }

    /// Iterates `(decision index, stats)` for decisions with ≥1 event.
    pub fn covered(&self) -> impl Iterator<Item = (usize, &DecisionStats)> + '_ {
        self.per_decision.iter().enumerate().filter(|(_, d)| d.events > 0)
    }

    /// Number of distinct decisions exercised (Table 3's *n*).
    pub fn decisions_covered(&self) -> usize {
        self.covered().count()
    }

    /// Total prediction events across all decisions.
    pub fn total_events(&self) -> u64 {
        self.per_decision.iter().map(|d| d.events).sum()
    }

    /// Average lookahead depth per event (Table 3's *avg k*).
    pub fn avg_lookahead(&self) -> f64 {
        let events = self.total_events();
        if events == 0 {
            return 0.0;
        }
        self.per_decision.iter().map(|d| d.lookahead_sum).sum::<u64>() as f64 / events as f64
    }

    /// Average speculation depth over backtracking events only (Table 3's
    /// *back. k*).
    pub fn avg_backtrack_depth(&self) -> f64 {
        let n: u64 = self.per_decision.iter().map(|d| d.backtrack_events).sum();
        if n == 0 {
            return 0.0;
        }
        self.per_decision.iter().map(|d| d.backtrack_depth_sum).sum::<u64>() as f64 / n as f64
    }

    /// Deepest lookahead of the whole parse (Table 3's *max k*),
    /// including speculation depths.
    pub fn max_lookahead(&self) -> u64 {
        self.per_decision
            .iter()
            .map(|d| d.max_lookahead.max(d.backtrack_depth_max))
            .max()
            .unwrap_or(0)
    }

    /// Total events that backtracked.
    pub fn total_backtrack_events(&self) -> u64 {
        self.per_decision.iter().map(|d| d.backtrack_events).sum()
    }

    /// Number of distinct decisions that backtracked at least once
    /// (Table 4's *Did back.*).
    pub fn decisions_that_backtracked(&self) -> usize {
        self.per_decision.iter().filter(|d| d.backtrack_events > 0).count()
    }

    /// Percentage of all decision events that backtracked (Table 4's
    /// *Backtrack* column).
    pub fn backtrack_event_rate(&self) -> f64 {
        let events = self.total_events();
        if events == 0 {
            return 0.0;
        }
        100.0 * self.total_backtrack_events() as f64 / events as f64
    }

    /// Given the set of decisions that *can* backtrack (from static
    /// analysis), the likelihood that an event at such a decision actually
    /// backtracks (Table 4's *Back. rate*).
    pub fn backtrack_trigger_rate(&self, can_backtrack: &[bool]) -> f64 {
        let mut events_at_pbd = 0u64;
        let mut backtracked = 0u64;
        for (i, d) in self.per_decision.iter().enumerate() {
            if can_backtrack.get(i).copied().unwrap_or(false) {
                events_at_pbd += d.events;
                backtracked += d.backtrack_events;
            }
        }
        if events_at_pbd == 0 {
            return 0.0;
        }
        100.0 * backtracked as f64 / events_at_pbd as f64
    }

    /// Resets all counters (between parses).
    pub fn reset(&mut self) {
        for d in &mut self.per_decision {
            *d = DecisionStats::default();
        }
        self.memo_hits = 0;
        self.memo_entries = 0;
        self.recoveries = 0;
        self.tokens_deleted = 0;
        self.tokens_inserted = 0;
        self.tokens_skipped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates() {
        let mut s = ParseStats::new(3);
        s.record_event(DecisionId(0), 1);
        s.record_event(DecisionId(0), 3);
        s.record_event(DecisionId(2), 2);
        s.record_backtrack(DecisionId(2), 10);
        assert_eq!(s.decisions_covered(), 2);
        assert_eq!(s.total_events(), 3);
        assert!((s.avg_lookahead() - 2.0).abs() < 1e-9);
        assert_eq!(s.max_lookahead(), 10);
        assert!((s.avg_backtrack_depth() - 10.0).abs() < 1e-9);
        assert_eq!(s.decisions_that_backtracked(), 1);
        assert!((s.backtrack_event_rate() - 100.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn trigger_rate_uses_only_pbd_events() {
        let mut s = ParseStats::new(2);
        // Decision 0 cannot backtrack; decision 1 can.
        s.record_event(DecisionId(0), 1);
        s.record_event(DecisionId(1), 1);
        s.record_event(DecisionId(1), 1);
        s.record_backtrack(DecisionId(1), 4);
        let rate = s.backtrack_trigger_rate(&[false, true]);
        assert!((rate - 50.0).abs() < 1e-9, "{rate}");
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = ParseStats::new(4);
        assert_eq!(s.avg_lookahead(), 0.0);
        assert_eq!(s.avg_backtrack_depth(), 0.0);
        assert_eq!(s.max_lookahead(), 0);
        assert_eq!(s.backtrack_event_rate(), 0.0);
        assert_eq!(s.backtrack_trigger_rate(&[true, true, true, true]), 0.0);
    }

    #[test]
    fn fold_over_events_matches_direct_recording() {
        let events = vec![
            TraceEvent::PredictStart { decision: 0, token_index: 0 },
            TraceEvent::PredictStop {
                decision: 0,
                token_index: 0,
                alt: 1,
                lookahead: 2,
                path: vec![0, 1],
                backtracked: false,
                spec_depth: 0,
            },
            TraceEvent::PredictStop {
                decision: 1,
                token_index: 2,
                alt: 2,
                lookahead: 3,
                path: vec![0],
                backtracked: true,
                spec_depth: 3,
            },
            TraceEvent::MemoHit {
                kind: crate::trace::MemoKind::Rule,
                id: 0,
                token_index: 2,
                success: true,
            },
            TraceEvent::MemoWrite {
                kind: crate::trace::MemoKind::SynPred,
                id: 0,
                token_index: 2,
                success: false,
            },
            TraceEvent::SyntaxError { token_index: 4, speculating: true },
        ];
        let folded = ParseStats::from_events(2, &events);

        let mut direct = ParseStats::new(2);
        direct.record_event(DecisionId(0), 2);
        direct.record_event(DecisionId(1), 3);
        direct.record_backtrack(DecisionId(1), 3);
        direct.memo_hits = 1;
        direct.memo_entries = 1;
        assert_eq!(folded, direct);
    }

    #[test]
    fn reset_clears() {
        let mut s = ParseStats::new(1);
        s.record_event(DecisionId(0), 5);
        s.memo_hits = 3;
        s.reset();
        assert_eq!(s.total_events(), 0);
        assert_eq!(s.memo_hits, 0);
    }
}
