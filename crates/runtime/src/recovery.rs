//! ANTLR-style error recovery: the pluggable [`ErrorStrategy`] the parser
//! consults after a terminal match or prediction fails in recovery mode.
//!
//! The strategy only *chooses* among the three repair moves; the parser
//! executes them:
//!
//! * **single-token deletion** — the offending token is extraneous:
//!   consume it into an error node and match the expected token that
//!   follows it (`la(2)`).
//! * **single-token insertion** — the expected token is missing:
//!   synthesize it (no input consumed) when the current token is in the
//!   *expected set of the successor ATN state*, i.e. the parse can
//!   continue as if the token had been there.
//! * **sync-and-return** — neither local repair applies: consume tokens
//!   until one appears in the *resynchronization set* (the union of
//!   expected sets over the runtime rule-invocation stack's follow
//!   states, plus EOF), then return from the current rule.
//!
//! Recovery never engages during speculation — backtracking semantics
//! (Section 4.1) are unchanged — and the number of recorded errors is
//! capped by `max_errors`, after which the parser aborts like the strict
//! engine. All sets come from [`llstar_core::RecoverySets`], precomputed
//! from the same ATN that drives prediction.

use llstar_core::TokenSet;
use llstar_lexer::TokenType;

/// A repair move chosen by an [`ErrorStrategy`] for a failed terminal
/// match.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Repair {
    /// Delete the offending token, then match the expected token.
    DeleteToken,
    /// Synthesize the expected token without consuming input.
    InsertToken,
    /// Consume until the resynchronization set, then return from the
    /// current rule.
    SyncAndReturn,
    /// Give up: propagate the error exactly like the strict engine.
    Abort,
}

/// What the parser knows at a failed terminal match.
#[derive(Debug)]
pub struct RepairContext<'a> {
    /// The token type the ATN edge requires.
    pub expected: TokenType,
    /// Expected set of the ATN state *after* the required token — the
    /// insertion viability test.
    pub successor_expected: &'a TokenSet,
    /// The offending token's type (`la(1)`).
    pub la1: TokenType,
    /// The type of the token after it (`la(2)`).
    pub la2: TokenType,
}

/// Chooses repair moves. Implementations must be deterministic for the
/// trace streams (and the interpreted/generated diagnostic parity) to
/// stay byte-identical.
pub trait ErrorStrategy {
    /// The repair for a failed terminal match.
    fn on_mismatch(&mut self, ctx: &RepairContext<'_>) -> Repair;

    /// Whether to resynchronize after a failed prediction (`false`
    /// propagates the no-viable-alternative error).
    fn on_no_viable(&mut self) -> bool {
        true
    }
}

/// ANTLR's default policy: single-token deletion if `la(2)` matches,
/// else single-token insertion if `la(1)` can follow the missing token,
/// else sync-and-return. Generated parsers hard-code this policy, so use
/// it whenever interpreted/generated diagnostic parity matters.
#[derive(Debug, Default, Clone, Copy)]
pub struct DefaultErrorStrategy;

impl ErrorStrategy for DefaultErrorStrategy {
    fn on_mismatch(&mut self, ctx: &RepairContext<'_>) -> Repair {
        if ctx.la2 == ctx.expected {
            Repair::DeleteToken
        } else if ctx.successor_expected.contains(ctx.la1) {
            Repair::InsertToken
        } else {
            Repair::SyncAndReturn
        }
    }
}

/// Aborts on the first error: recovery mode with strict-engine
/// semantics (useful to flip recovery off per-parse without rebuilding
/// the parser).
#[derive(Debug, Default, Clone, Copy)]
pub struct BailErrorStrategy;

impl ErrorStrategy for BailErrorStrategy {
    fn on_mismatch(&mut self, _ctx: &RepairContext<'_>) -> Repair {
        Repair::Abort
    }

    fn on_no_viable(&mut self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(expected: u32, succ: &TokenSet, la1: u32, la2: u32) -> RepairContext<'_> {
        RepairContext {
            expected: TokenType(expected),
            successor_expected: succ,
            la1: TokenType(la1),
            la2: TokenType(la2),
        }
    }

    #[test]
    fn default_strategy_prefers_deletion_then_insertion() {
        let mut succ = TokenSet::new(8);
        succ.insert(TokenType(5));
        let mut s = DefaultErrorStrategy;
        // la(2) matches: delete the offender.
        assert_eq!(s.on_mismatch(&ctx(3, &succ, 9, 3)), Repair::DeleteToken);
        // la(1) viable after the missing token: insert.
        assert_eq!(s.on_mismatch(&ctx(3, &succ, 5, 6)), Repair::InsertToken);
        // Neither: resynchronize.
        assert_eq!(s.on_mismatch(&ctx(3, &succ, 9, 6)), Repair::SyncAndReturn);
        assert!(s.on_no_viable());
    }

    #[test]
    fn bail_strategy_always_aborts() {
        let succ = TokenSet::new(8);
        let mut s = BailErrorStrategy;
        assert_eq!(s.on_mismatch(&ctx(3, &succ, 3, 3)), Repair::Abort);
        assert!(!s.on_no_viable());
    }
}
