//! LL(*) parse-time engine: DFA-driven prediction, backtracking via
//! syntactic predicates with packrat memoization, semantic-predicate and
//! action hooks, parse trees, and the runtime instrumentation behind the
//! paper's Tables 3–4.
//!
//! # Quickstart
//!
//! ```
//! use llstar_grammar::parse_grammar;
//! use llstar_core::analyze;
//! use llstar_runtime::{parse_text, NopHooks};
//!
//! let g = parse_grammar(r#"
//!     grammar Demo;
//!     s : ID '=' expr ';' ;
//!     expr : ID | INT ;
//!     ID : [a-z]+ ;
//!     INT : [0-9]+ ;
//!     WS : [ ]+ -> skip ;
//! "#)?;
//! let analysis = analyze(&g);
//! let (tree, stats) = parse_text(&g, &analysis, "x = 42 ;", "s", NopHooks)?;
//! assert_eq!(tree.to_sexpr(&g, "x = 42 ;"), r#"(s "x" "=" (expr "42") ";")"#);
//! assert!(stats.avg_lookahead() >= 1.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod chrome;
pub mod coverage;
pub mod diagnostics;
pub mod error;
pub mod hooks;
pub mod metrics;
pub mod parser;
pub mod recovery;
pub mod session;
pub mod stats;
pub mod stream;
pub mod trace;
pub mod tree;
pub mod visit;

pub use chrome::chrome_trace;
pub use coverage::CoverageSink;
pub use diagnostics::{diagnostics_jsonl, parse_diagnostics_jsonl, render_all, Diagnostic};
pub use error::{ParseError, ParseErrorKind};
pub use hooks::{HookContext, Hooks, MapHooks, NopHooks};
pub use metrics::{
    parse_metrics_jsonl, validate_prometheus, DecisionCounters, MetricsHandle, MetricsRegistry,
    MetricsSnapshot, ParseMetrics,
};
pub use parser::{
    parse_text, parse_text_recovering, parse_text_recovering_traced, parse_text_traced, Parser,
};
pub use recovery::{BailErrorStrategy, DefaultErrorStrategy, ErrorStrategy, Repair, RepairContext};
pub use session::{ParseSession, SessionError};
pub use stats::{DecisionStats, ParseStats};
pub use stream::TokenStream;
pub use trace::{
    parse_jsonl, JsonlSink, MemoKind, NopSink, RingSink, SamplingSink, TeeSink, TraceEvent,
    TraceSink,
};
pub use tree::ParseTree;
pub use visit::{covered_text, find_rule_nodes, walk, TreeListener};
