//! Chrome `trace_event` export: converts a [`TraceEvent`] stream (live
//! or replayed from JSONL) into the JSON object format that
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev) open
//! directly.
//!
//! Rule sub-parses, predictions, and speculative (backtracking) parses
//! become duration spans (`"ph":"B"`/`"E"`); memo traffic, semantic
//! predicates, and error-recovery events become instants (`"ph":"i"`).
//! The timeline axis is the event ordinal, **not** wall-clock — trace
//! events deliberately carry no timestamps (byte-determinism), so the
//! export shows structure and relative effort, with token positions in
//! each span's `args`.
//!
//! The exporter balances spans defensively: a failed prediction emits
//! no `predict-stop`, so its span (and anything else left open at end
//! of stream) is closed synthetically — Perfetto refuses ill-nested
//! B/E pairs.

use crate::trace::TraceEvent;
use llstar_core::json::quote;
use llstar_core::GrammarAnalysis;
use llstar_grammar::Grammar;
use std::fmt::Write as _;

/// A span kind + id, used to match closing events to open spans.
#[derive(PartialEq, Eq, Clone, Copy)]
enum Span {
    Rule(u32),
    Predict(u32),
    Backtrack(u32),
}

struct Writer {
    out: String,
    any: bool,
    open: Vec<(Span, String)>,
}

impl Writer {
    fn push(&mut self, record: String) {
        if self.any {
            self.out.push(',');
        }
        self.any = true;
        self.out.push_str(&record);
    }

    fn begin(&mut self, span: Span, name: &str, cat: &str, ts: usize, args: &str) {
        self.push(format!(
            "{{\"name\":{},\"cat\":{},\"ph\":\"B\",\"ts\":{ts},\"pid\":1,\"tid\":1,\
             \"args\":{{{args}}}}}",
            quote(name),
            quote(cat)
        ));
        self.open.push((span, name.to_string()));
    }

    /// Closes `span`, synthetically closing anything opened after it
    /// (ill-nested streams arise from failed predictions). A close with
    /// no matching open span is dropped.
    fn end(&mut self, span: Span, ts: usize, args: &str) {
        if !self.open.iter().any(|(s, _)| *s == span) {
            return;
        }
        while let Some((top, name)) = self.open.pop() {
            let matched = top == span;
            let args = if matched { args } else { "\"synthetic-close\":true" };
            self.push(format!(
                "{{\"name\":{},\"ph\":\"E\",\"ts\":{ts},\"pid\":1,\"tid\":1,\
                 \"args\":{{{args}}}}}",
                quote(&name)
            ));
            if matched {
                break;
            }
        }
    }

    fn instant(&mut self, name: &str, cat: &str, ts: usize, args: &str) {
        self.push(format!(
            "{{\"name\":{},\"cat\":{},\"ph\":\"i\",\"ts\":{ts},\"s\":\"t\",\"pid\":1,\
             \"tid\":1,\"args\":{{{args}}}}}",
            quote(name),
            quote(cat)
        ));
    }
}

/// Renders `events` as one Chrome `trace_event` JSON document. `grammar`
/// and `analysis` supply rule/decision names for readable span labels.
pub fn chrome_trace(
    events: &[TraceEvent],
    grammar: &Grammar,
    analysis: &GrammarAnalysis,
) -> String {
    let rule_name = |id: u32| -> String {
        grammar
            .rules
            .get(id as usize)
            .map(|r| r.name.clone())
            .unwrap_or_else(|| format!("rule{id}"))
    };
    let decision_rule = |id: u32| -> String {
        analysis
            .atn
            .decisions
            .get(id as usize)
            .map(|d| rule_name(d.rule.0))
            .unwrap_or_else(|| format!("d{id}"))
    };

    let mut w = Writer { out: String::from("{\"traceEvents\":["), any: false, open: Vec::new() };
    let mut last_ts = 0usize;
    for (ts, event) in events.iter().enumerate() {
        last_ts = ts;
        match event {
            TraceEvent::RuleEnter { rule, token_index } => {
                w.begin(
                    Span::Rule(*rule),
                    &rule_name(*rule),
                    "rule",
                    ts,
                    &format!("\"token\":{token_index}"),
                );
            }
            TraceEvent::RuleExit { rule, token_index, alt, ok } => {
                w.end(
                    Span::Rule(*rule),
                    ts,
                    &format!("\"token\":{token_index},\"alt\":{alt},\"ok\":{ok}"),
                );
            }
            TraceEvent::PredictStart { decision, token_index } => {
                w.begin(
                    Span::Predict(*decision),
                    &format!("predict d{decision}"),
                    "predict",
                    ts,
                    &format!(
                        "\"rule\":{},\"token\":{token_index}",
                        quote(&decision_rule(*decision))
                    ),
                );
            }
            TraceEvent::PredictStop { decision, alt, lookahead, backtracked, .. } => {
                w.end(
                    Span::Predict(*decision),
                    ts,
                    &format!(
                        "\"alt\":{alt},\"lookahead\":{lookahead},\"backtracked\":{backtracked}"
                    ),
                );
            }
            TraceEvent::BacktrackEnter { synpred, token_index, .. } => {
                w.begin(
                    Span::Backtrack(*synpred),
                    &format!("synpred{synpred}"),
                    "backtrack",
                    ts,
                    &format!("\"token\":{token_index}"),
                );
            }
            TraceEvent::BacktrackExit { synpred, matched, consumed, .. } => {
                w.end(
                    Span::Backtrack(*synpred),
                    ts,
                    &format!("\"matched\":{matched},\"consumed\":{consumed}"),
                );
            }
            TraceEvent::MemoHit { kind, id, token_index, success } => {
                w.instant(
                    "memo-hit",
                    "memo",
                    ts,
                    &format!(
                        "\"kind\":{},\"id\":{id},\"token\":{token_index},\"success\":{success}",
                        quote(match kind {
                            crate::trace::MemoKind::Rule => "rule",
                            crate::trace::MemoKind::SynPred => "synpred",
                        })
                    ),
                );
            }
            TraceEvent::MemoWrite { id, token_index, .. } => {
                w.instant(
                    "memo-write",
                    "memo",
                    ts,
                    &format!("\"id\":{id},\"token\":{token_index}"),
                );
            }
            TraceEvent::Sempred { pred, token_index, outcome } => {
                w.instant(
                    "sempred",
                    "predicate",
                    ts,
                    &format!(
                        "\"pred\":{},\"token\":{token_index},\"outcome\":{outcome}",
                        quote(pred)
                    ),
                );
            }
            TraceEvent::SyntaxError { token_index, speculating } => {
                w.instant(
                    "syntax-error",
                    "error",
                    ts,
                    &format!("\"token\":{token_index},\"speculating\":{speculating}"),
                );
            }
            TraceEvent::Recover { token_index, rule } => {
                w.instant(
                    "recover",
                    "error",
                    ts,
                    &format!("\"token\":{token_index},\"rule\":{}", quote(&rule_name(*rule))),
                );
            }
            TraceEvent::SyncSkip { token_index, skipped } => {
                w.instant(
                    "sync-skip",
                    "error",
                    ts,
                    &format!("\"token\":{token_index},\"skipped\":{skipped}"),
                );
            }
            TraceEvent::TokenInserted { token_index, ttype } => {
                w.instant(
                    "token-inserted",
                    "error",
                    ts,
                    &format!("\"token\":{token_index},\"ttype\":{ttype}"),
                );
            }
            TraceEvent::TokenDeleted { token_index, ttype } => {
                w.instant(
                    "token-deleted",
                    "error",
                    ts,
                    &format!("\"token\":{token_index},\"ttype\":{ttype}"),
                );
            }
        }
    }
    // Close anything still open (failed predictions, truncated streams).
    let final_ts = last_ts + 1;
    while let Some((_, name)) = w.open.pop() {
        let record = format!(
            "{{\"name\":{},\"ph\":\"E\",\"ts\":{final_ts},\"pid\":1,\"tid\":1,\
             \"args\":{{\"synthetic-close\":true}}}}",
            quote(&name)
        );
        w.push(record);
    }
    let _ = write!(w.out, "],\"displayTimeUnit\":\"ms\"}}");
    w.out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hooks::NopHooks;
    use crate::parser::Parser;
    use crate::stream::TokenStream;
    use crate::trace::RingSink;
    use llstar_core::analyze;
    use llstar_core::json::Json;
    use llstar_grammar::{apply_peg_mode, parse_grammar};

    #[test]
    fn export_is_structurally_valid_and_balanced() {
        let g = apply_peg_mode(
            parse_grammar(
                r#"
                grammar Demo;
                s : ID | ID '=' expr ;
                expr : INT ;
                ID : [a-z]+ ;
                INT : [0-9]+ ;
                WS : [ ]+ -> skip ;
                "#,
            )
            .expect("grammar"),
        );
        let a = analyze(&g);
        let scanner = g.lexer.build().expect("lexer");
        let tokens = TokenStream::new(scanner.tokenize("x = 12").expect("lexes"));
        let mut ring = RingSink::unbounded();
        let mut parser = Parser::new(&g, &a, tokens, NopHooks);
        parser.set_trace_sink(&mut ring);
        parser.parse_to_eof("s").expect("parses");
        let events = ring.into_events();

        let text = chrome_trace(&events, &g, &a);
        let doc = Json::parse(&text).expect("chrome trace is valid JSON");
        let records =
            doc.get("traceEvents").and_then(Json::as_array).expect("traceEvents array present");
        assert!(!records.is_empty());
        let mut depth = 0i64;
        for r in records {
            for key in ["name", "ph", "ts", "pid", "tid"] {
                assert!(r.get(key).is_some(), "record missing {key}: {r}");
            }
            match r.get("ph").and_then(Json::as_str).unwrap() {
                "B" => depth += 1,
                "E" => {
                    depth -= 1;
                    assert!(depth >= 0, "E without matching B");
                }
                "i" => assert_eq!(r.get("s").and_then(Json::as_str), Some("t")),
                other => panic!("unexpected phase {other:?}"),
            }
        }
        assert_eq!(depth, 0, "spans must balance for Perfetto");
        // Spans carry grammar names.
        assert!(text.contains("\"name\":\"s\""), "{text}");
        assert!(text.contains("predict d"), "{text}");
    }

    #[test]
    fn dangling_prediction_spans_are_closed_synthetically() {
        let events = vec![
            TraceEvent::RuleEnter { rule: 0, token_index: 0 },
            TraceEvent::PredictStart { decision: 0, token_index: 0 },
            // No predict-stop: the prediction failed (no-viable).
            TraceEvent::SyntaxError { token_index: 0, speculating: false },
            TraceEvent::RuleExit { rule: 0, token_index: 0, alt: 0, ok: false },
        ];
        let g = parse_grammar("grammar Tiny;\ns : ID ;\nID : [a-z]+ ;\nWS : [ ]+ -> skip ;\n")
            .expect("grammar");
        let a = analyze(&g);
        let text = chrome_trace(&events, &g, &a);
        let doc = Json::parse(&text).expect("valid JSON");
        let records = doc.get("traceEvents").and_then(Json::as_array).unwrap();
        let begins = records.iter().filter(|r| r.get("ph").and_then(Json::as_str) == Some("B"));
        let ends = records.iter().filter(|r| r.get("ph").and_then(Json::as_str) == Some("E"));
        assert_eq!(begins.count(), ends.count(), "{text}");
        assert!(text.contains("synthetic-close"), "{text}");
    }
}
