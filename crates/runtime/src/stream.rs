//! Token streams with mark/rewind support for arbitrary lookahead and
//! backtracking.
//!
//! Unlike the two-pass LL-regular parsers of Nijholt and Poplawski —
//! which must read the input right-to-left first and therefore "cannot
//! parse infinite streams such as socket protocols and interactive
//! interpreters" (Section 4) — LL(*) is one-pass left-to-right, so a
//! [`TokenStream`] can be fed **lazily** from a live source
//! ([`TokenStream::from_source`]): tokens are pulled only as far as the
//! current lookahead or speculation actually needs.

use llstar_lexer::{Token, TokenType};

/// Where tokens come from.
enum Source {
    /// Fully lexed up front.
    Complete,
    /// Pulled on demand; `None` means the source is exhausted (an EOF
    /// token is synthesized if the source never produced one).
    Lazy(Box<dyn FnMut() -> Option<Token>>),
}

impl std::fmt::Debug for Source {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Source::Complete => write!(f, "Complete"),
            Source::Lazy(_) => write!(f, "Lazy(..)"),
        }
    }
}

/// A random-access token stream over a (possibly still growing) buffer.
///
/// The final token is always EOF: either present in the eager buffer (as
/// produced by [`llstar_lexer::Scanner::tokenize`]) or synthesized when a
/// lazy source runs dry. Lookahead past the end saturates at EOF.
///
/// ```
/// use llstar_lexer::{Span, Token, TokenType};
/// use llstar_runtime::TokenStream;
/// let toks = vec![
///     Token::new(TokenType(1), Span::new(0, 1), 1, 1),
///     Token::eof(1, 1, 2),
/// ];
/// let mut ts = TokenStream::new(toks);
/// assert_eq!(ts.la(1), TokenType(1));
/// assert_eq!(ts.la(2), TokenType::EOF);
/// ts.consume();
/// assert_eq!(ts.la(1), TokenType::EOF);
/// ```
#[derive(Debug)]
pub struct TokenStream {
    tokens: Vec<Token>,
    index: usize,
    source: Source,
    /// Set once EOF is in `tokens` (always true for complete streams).
    finished: bool,
}

impl Clone for TokenStream {
    /// Cloning is only supported for fully-buffered streams (a lazy
    /// source cannot be duplicated).
    ///
    /// # Panics
    /// Panics if the stream has a lazy source that has not yet finished.
    fn clone(&self) -> Self {
        assert!(self.finished, "cannot clone a token stream whose lazy source is still live");
        TokenStream {
            tokens: self.tokens.clone(),
            index: self.index,
            source: Source::Complete,
            finished: true,
        }
    }
}

impl TokenStream {
    /// Wraps a fully lexed token buffer.
    ///
    /// # Panics
    /// Panics if `tokens` is empty or does not end with EOF.
    pub fn new(tokens: Vec<Token>) -> Self {
        assert!(tokens.last().is_some_and(|t| t.ttype.is_eof()), "token stream must end with EOF");
        TokenStream { tokens, index: 0, source: Source::Complete, finished: true }
    }

    /// Wraps a live token source (socket, interactive interpreter, …).
    /// Tokens are pulled only when lookahead or consumption requires
    /// them; when the source returns `None`, an EOF token is synthesized
    /// (unless the source already produced one).
    pub fn from_source(source: impl FnMut() -> Option<Token> + 'static) -> Self {
        TokenStream {
            tokens: Vec::new(),
            index: 0,
            source: Source::Lazy(Box::new(source)),
            finished: false,
        }
    }

    /// Ensures at least `n` tokens are buffered (or the stream has
    /// finished with EOF). The source match is resolved once up front —
    /// the pull loop itself fills incrementally without re-entering it
    /// per token.
    fn fill_to(&mut self, n: usize) {
        if self.finished || self.tokens.len() >= n {
            return;
        }
        let Source::Lazy(pull) = &mut self.source else {
            unreachable!("unfinished streams are lazy")
        };
        while self.tokens.len() < n {
            match pull() {
                Some(tok) => {
                    let eof = tok.ttype.is_eof();
                    self.tokens.push(tok);
                    if eof {
                        self.finished = true;
                        break;
                    }
                }
                None => {
                    let offset = self.tokens.last().map_or(0, |t| t.span.end);
                    let line = self.tokens.last().map_or(1, |t| t.line);
                    self.tokens.push(Token::eof(offset, line, 1));
                    self.finished = true;
                    break;
                }
            }
        }
    }

    /// The token type `i` tokens ahead (1-based: `la(1)` is the current
    /// token). Saturates at EOF.
    #[inline]
    pub fn la(&mut self, i: usize) -> TokenType {
        self.lt(i).ttype
    }

    /// The token `i` ahead (1-based), saturating at EOF.
    #[inline]
    pub fn lt(&mut self, i: usize) -> Token {
        debug_assert!(i >= 1, "lookahead is 1-based");
        // Fast path: the position is already buffered (always true for a
        // fully-lexed `Source::Complete` stream within bounds).
        let pos = self.index + i - 1;
        if pos < self.tokens.len() {
            return self.tokens[pos];
        }
        self.fill_to(self.index + i);
        let pos = pos.min(self.tokens.len() - 1);
        self.tokens[pos]
    }

    /// Consumes the current token (does not move past EOF).
    pub fn consume(&mut self) -> Token {
        self.fill_to(self.index + 2);
        let t = self.tokens[self.index];
        if self.index + 1 < self.tokens.len() {
            self.index += 1;
        }
        t
    }

    /// The current position (for mark/rewind and memoization keys).
    pub fn index(&self) -> usize {
        self.index
    }

    /// Rewinds (or fast-forwards) to a previously observed position.
    ///
    /// # Panics
    /// Panics if `index` points past the buffered region.
    pub fn seek(&mut self, index: usize) {
        assert!(index < self.tokens.len().max(1), "seek out of bounds");
        self.index = index;
    }

    /// Number of tokens buffered so far, including EOF once seen. For
    /// complete streams this is the total token count; for lazy streams
    /// it measures how far the parser actually had to read.
    pub fn buffered_len(&self) -> usize {
        self.tokens.len()
    }

    /// Total number of tokens, including EOF.
    ///
    /// # Panics
    /// Panics for a lazy stream that has not reached EOF yet.
    pub fn len(&self) -> usize {
        assert!(self.finished, "length of a live stream is unknown");
        self.tokens.len()
    }

    /// Whether the (finished) stream holds only EOF.
    pub fn is_empty(&self) -> bool {
        self.finished && self.tokens.len() == 1
    }

    /// Whether the cursor sits at EOF.
    pub fn at_eof(&mut self) -> bool {
        self.la(1).is_eof()
    }

    /// All tokens buffered so far (for diagnostics).
    pub fn tokens(&self) -> &[Token] {
        &self.tokens
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llstar_lexer::Span;

    fn toks(n: usize) -> Vec<Token> {
        let mut v: Vec<Token> = (0..n)
            .map(|i| Token::new(TokenType(i as u32 + 1), Span::new(i, i + 1), 1, i as u32 + 1))
            .collect();
        v.push(Token::eof(n, 1, n as u32 + 1));
        v
    }

    #[test]
    fn lookahead_and_consume() {
        let mut ts = TokenStream::new(toks(3));
        assert_eq!(ts.la(1), TokenType(1));
        assert_eq!(ts.la(3), TokenType(3));
        assert_eq!(ts.la(4), TokenType::EOF);
        assert_eq!(ts.la(99), TokenType::EOF);
        let t = ts.consume();
        assert_eq!(t.ttype, TokenType(1));
        assert_eq!(ts.la(1), TokenType(2));
    }

    #[test]
    fn consume_saturates_at_eof() {
        let mut ts = TokenStream::new(toks(1));
        ts.consume();
        assert!(ts.at_eof());
        ts.consume();
        ts.consume();
        assert!(ts.at_eof());
        assert_eq!(ts.index(), 1);
    }

    #[test]
    fn mark_and_rewind() {
        let mut ts = TokenStream::new(toks(4));
        ts.consume();
        ts.consume();
        let mark = ts.index();
        ts.consume();
        assert_eq!(ts.la(1), TokenType(4));
        ts.seek(mark);
        assert_eq!(ts.la(1), TokenType(3));
    }

    #[test]
    #[should_panic(expected = "must end with EOF")]
    fn rejects_missing_eof() {
        let mut v = toks(2);
        v.pop();
        let _ = TokenStream::new(v);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn seek_bounds_checked() {
        let mut ts = TokenStream::new(toks(1));
        ts.seek(7);
    }

    #[test]
    fn empty_stream() {
        let mut ts = TokenStream::new(toks(0));
        assert!(ts.is_empty());
        assert!(ts.at_eof());
        assert_eq!(ts.len(), 1);
    }

    #[test]
    fn lazy_source_pulls_on_demand() {
        let buffer = toks(10);
        let mut i = 0;
        let mut ts = TokenStream::from_source(move || {
            let t = buffer.get(i).copied();
            i += 1;
            t
        });
        assert_eq!(ts.buffered_len(), 0, "nothing pulled before first use");
        assert_eq!(ts.la(1), TokenType(1));
        assert_eq!(ts.buffered_len(), 1);
        assert_eq!(ts.la(3), TokenType(3));
        assert_eq!(ts.buffered_len(), 3, "pulls exactly as far as lookahead");
        ts.consume();
        // consume pre-fills one ahead.
        assert!(ts.buffered_len() <= 4);
    }

    #[test]
    fn lazy_source_synthesizes_eof() {
        let mut ts = TokenStream::from_source({
            let mut given = false;
            move || {
                if given {
                    None
                } else {
                    given = true;
                    Some(Token::new(TokenType(5), Span::new(0, 1), 1, 1))
                }
            }
        });
        assert_eq!(ts.la(1), TokenType(5));
        ts.consume();
        assert!(ts.at_eof());
        assert_eq!(ts.len(), 2);
    }

    #[test]
    fn lazy_rewind_within_buffer() {
        let buffer = toks(6);
        let mut i = 0;
        let mut ts = TokenStream::from_source(move || {
            let t = buffer.get(i).copied();
            i += 1;
            t
        });
        let mark = ts.index();
        for _ in 0..4 {
            ts.consume();
        }
        ts.seek(mark);
        assert_eq!(ts.la(1), TokenType(1), "rewound lazily-pulled tokens stay buffered");
    }

    #[test]
    #[should_panic(expected = "still live")]
    fn cloning_live_lazy_stream_panics() {
        let ts = TokenStream::from_source(|| None);
        let _ = ts.clone();
    }

    #[test]
    fn fill_stops_pulling_at_eof() {
        use std::cell::Cell;
        use std::rc::Rc;
        let pulls = Rc::new(Cell::new(0usize));
        let counter = pulls.clone();
        let buffer = toks(2); // 2 tokens + EOF
        let mut i = 0;
        let mut ts = TokenStream::from_source(move || {
            counter.set(counter.get() + 1);
            let t = buffer.get(i).copied();
            i += 1;
            t
        });
        // Ask far past the end: the fill loop must stop at the EOF token
        // instead of draining the source's `None` tail.
        assert_eq!(ts.la(50), TokenType::EOF);
        assert_eq!(pulls.get(), 3, "two tokens + the EOF pull, nothing after");
        // Fully buffered now: further lookahead touches the source never.
        assert_eq!(ts.la(99), TokenType::EOF);
        assert_eq!(ts.la(1), TokenType(1));
        assert_eq!(pulls.get(), 3);
    }
}
