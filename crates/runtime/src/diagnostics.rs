//! Rendering [`ParseError`]s as annotated source diagnostics.
//!
//! A [`Diagnostic`] is the presentation form of a parse error: grammar
//! token types resolved to display names, the offending span in
//! line/column terms, and a one-line message. It has two stable
//! renderings:
//!
//! * [`Diagnostic::render`] — a rustc-style snippet with a caret
//!   underline, for humans;
//! * [`Diagnostic::to_json`] — a single JSON object with a **fixed
//!   field order** (`type`, `kind`, `line`, `col`, `start`, `end`,
//!   `found`, `expected`, `message`), for tooling. Interpreted and
//!   generated parsers emit byte-identical lines for the same errors,
//!   which the parity tests assert.

use crate::error::{ParseError, ParseErrorKind};
use llstar_core::json::{quote, Json};
use llstar_core::schema;
use llstar_grammar::Grammar;
use std::fmt::Write as _;

/// A parse error resolved into presentation form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Error class: `"mismatch"`, `"no-viable"`, `"predicate"`, or
    /// `"infinite-loop"`.
    pub kind: &'static str,
    /// 1-based line of the offending token.
    pub line: u32,
    /// 1-based column of the offending token.
    pub col: u32,
    /// Byte offset where the offending token starts.
    pub start: usize,
    /// Byte offset where the offending token ends (exclusive).
    pub end: usize,
    /// Display name of the token actually found.
    pub found: String,
    /// Display names of the tokens that would have been accepted
    /// (ascending after the first, which is the directly-required one);
    /// empty for predicate and loop errors.
    pub expected: Vec<String>,
    /// The human-readable one-liner (no position prefix).
    pub message: String,
}

impl Diagnostic {
    /// Resolves a [`ParseError`] against the grammar's vocabulary.
    pub fn from_error(grammar: &Grammar, err: &ParseError) -> Diagnostic {
        let found = grammar.vocab.display_name(err.token.ttype);
        let (kind, expected, message) = match &err.kind {
            ParseErrorKind::Mismatch { expected_names, .. } => (
                "mismatch",
                expected_names.clone(),
                format!(
                    "expected {}, found {found}",
                    ParseErrorKind::render_expected(expected_names)
                ),
            ),
            ParseErrorKind::NoViableAlternative { rule, expected_names, .. } => (
                "no-viable",
                expected_names.clone(),
                format!("no viable alternative for rule {rule}"),
            ),
            ParseErrorKind::PredicateFailed { predicate } => {
                ("predicate", Vec::new(), format!("semantic predicate {{{predicate}}}? failed"))
            }
            ParseErrorKind::InfiniteLoop { rule } => {
                ("infinite-loop", Vec::new(), format!("rule {rule} loops without consuming input"))
            }
        };
        Diagnostic {
            kind,
            line: err.token.line,
            col: err.token.col,
            start: err.token.span.start,
            end: err.token.span.end,
            found,
            expected,
            message,
        }
    }

    /// Resolves every error in order.
    pub fn from_errors(grammar: &Grammar, errors: &[ParseError]) -> Vec<Diagnostic> {
        errors.iter().map(|e| Diagnostic::from_error(grammar, e)).collect()
    }

    /// One JSON object with the stable field order documented on the
    /// module. Generated parsers replicate this byte-for-byte.
    pub fn to_json(&self) -> String {
        let expected = self.expected.iter().map(|n| quote(n)).collect::<Vec<_>>().join(",");
        format!(
            "{{\"type\":\"diagnostic\",\"kind\":{},\"line\":{},\"col\":{},\"start\":{},\"end\":{},\"found\":{},\"expected\":[{}],\"message\":{}}}",
            quote(self.kind),
            self.line,
            self.col,
            self.start,
            self.end,
            quote(&self.found),
            expected,
            quote(&self.message),
        )
    }

    /// Parses a value produced by [`Diagnostic::to_json`].
    ///
    /// # Errors
    /// Returns a description when `value` is not a diagnostic object or
    /// names an unknown error kind.
    pub fn from_json(value: &Json) -> Result<Diagnostic, String> {
        if value.get("type").and_then(Json::as_str) != Some("diagnostic") {
            return Err("not a diagnostic object".into());
        }
        let num = |name: &str| {
            value.get(name).and_then(Json::as_u64).ok_or_else(|| format!("missing field {name:?}"))
        };
        let text = |name: &str| {
            value
                .get(name)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing field {name:?}"))
        };
        let kind = match value.get("kind").and_then(Json::as_str) {
            Some("mismatch") => "mismatch",
            Some("no-viable") => "no-viable",
            Some("predicate") => "predicate",
            Some("infinite-loop") => "infinite-loop",
            Some(other) => return Err(format!("unknown diagnostic kind {other:?}")),
            None => return Err("missing field \"kind\"".into()),
        };
        let expected = value
            .get("expected")
            .and_then(Json::as_array)
            .ok_or("missing field \"expected\"")?
            .iter()
            .map(|v| v.as_str().map(str::to_string).ok_or("non-string expected entry".to_string()))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Diagnostic {
            kind,
            line: num("line")? as u32,
            col: num("col")? as u32,
            start: num("start")? as usize,
            end: num("end")? as usize,
            found: text("found")?,
            expected,
            message: text("message")?,
        })
    }

    /// Renders a rustc-style annotated snippet:
    ///
    /// ```text
    /// error: expected one of '+', ';', found INT
    ///  --> input.txt:1:7
    ///   |
    /// 1 | x = 1 2 ;
    ///   |       ^ expected one of '+', ';'
    /// ```
    pub fn render(&self, source: &str, file: &str) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "error: {}", self.message);
        let _ = writeln!(out, " --> {}:{}:{}", file, self.line, self.col);
        let line_text = source.lines().nth(self.line.saturating_sub(1) as usize).unwrap_or("");
        let gutter = self.line.to_string();
        let pad = " ".repeat(gutter.len());
        let _ = writeln!(out, "{pad} |");
        let _ = writeln!(out, "{gutter} | {line_text}");
        // Caret width: the token's span, clamped to the rest of the line
        // (EOF and multi-line tokens get a single caret or run to EOL).
        let col0 = self.col.saturating_sub(1) as usize;
        let span = self.end.saturating_sub(self.start).max(1);
        let remaining = line_text.chars().count().saturating_sub(col0).max(1);
        let carets = "^".repeat(span.min(remaining));
        let label = if self.expected.is_empty() {
            String::new()
        } else {
            format!(" expected {}", ParseErrorKind::render_expected(&self.expected))
        };
        let _ = writeln!(out, "{pad} | {}{carets}{label}", " ".repeat(col0));
        out
    }
}

/// Serializes diagnostics as JSONL: a schema header line, then one
/// object per line. Generated parsers emit the identical bytes.
pub fn diagnostics_jsonl(diags: &[Diagnostic]) -> String {
    let mut out = schema::StreamKind::Diagnostics.header_line();
    out.push('\n');
    for d in diags {
        out.push_str(&d.to_json());
        out.push('\n');
    }
    out
}

/// Parses a [`diagnostics_jsonl`] stream back into diagnostics. A
/// leading schema header is validated and consumed; headerless streams
/// (pre-versioning exports) are accepted.
///
/// # Errors
/// Returns `(1-based line, description)` for the first malformed line,
/// including a header naming another stream or an unsupported version.
pub fn parse_diagnostics_jsonl(text: &str) -> Result<Vec<Diagnostic>, (usize, String)> {
    let mut out = Vec::new();
    let mut first = true;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let value = Json::parse(line).map_err(|e| (i + 1, e))?;
        if std::mem::take(&mut first) && schema::parse_schema_header(&value).is_some() {
            schema::check_header(&value, schema::StreamKind::Diagnostics)
                .map_err(|e| (i + 1, e))?;
            continue;
        }
        out.push(Diagnostic::from_json(&value).map_err(|e| (i + 1, e))?);
    }
    Ok(out)
}

/// Renders all diagnostics as human-readable snippets, separated by
/// blank lines.
pub fn render_all(diags: &[Diagnostic], source: &str, file: &str) -> String {
    diags.iter().map(|d| d.render(source, file)).collect::<Vec<_>>().join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use llstar_grammar::parse_grammar;
    use llstar_lexer::{Span, Token, TokenType};

    fn grammar() -> Grammar {
        parse_grammar("grammar D; s : A B ; A:'a'; B:'b';").unwrap()
    }

    fn mismatch_err() -> ParseError {
        ParseError {
            kind: ParseErrorKind::Mismatch {
                expected: vec![TokenType(2)],
                expected_names: vec!["B".into()],
                found: TokenType(1),
            },
            token: Token::new(TokenType(1), Span::new(2, 3), 1, 3),
            token_index: 1,
        }
    }

    #[test]
    fn json_field_order_is_stable() {
        let g = grammar();
        let d = Diagnostic::from_error(&g, &mismatch_err());
        assert_eq!(
            d.to_json(),
            "{\"type\":\"diagnostic\",\"kind\":\"mismatch\",\"line\":1,\"col\":3,\
             \"start\":2,\"end\":3,\"found\":\"A\",\"expected\":[\"B\"],\
             \"message\":\"expected B, found A\"}"
        );
    }

    #[test]
    fn render_points_caret_at_column() {
        let g = grammar();
        let d = Diagnostic::from_error(&g, &mismatch_err());
        let rendered = d.render("a a b", "in.txt");
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines[0], "error: expected B, found A");
        assert_eq!(lines[1], " --> in.txt:1:3");
        assert_eq!(lines[3], "1 | a a b");
        assert_eq!(lines[4], "  |   ^ expected B");
    }

    #[test]
    fn render_survives_out_of_range_positions() {
        let g = grammar();
        let mut err = mismatch_err();
        err.token = Token::new(TokenType(0), Span::new(5, 5), 7, 9);
        let d = Diagnostic::from_error(&g, &err);
        // Line 7 doesn't exist in a one-line source; must not panic.
        let rendered = d.render("a a b", "in.txt");
        assert!(rendered.contains(" --> in.txt:7:9"), "{rendered}");
    }

    #[test]
    fn jsonl_is_headed_and_one_line_per_diagnostic() {
        let g = grammar();
        let errs = vec![mismatch_err(), mismatch_err()];
        let diags = Diagnostic::from_errors(&g, &errs);
        let jsonl = diagnostics_jsonl(&diags);
        assert_eq!(jsonl.lines().count(), 3);
        assert!(
            jsonl.starts_with("{\"type\":\"schema\",\"stream\":\"diagnostics\",\"version\":1}\n"),
            "{jsonl}"
        );
        assert!(jsonl.ends_with('\n'));
        assert_eq!(parse_diagnostics_jsonl(&jsonl).unwrap(), diags);
        // Headerless bodies stay parseable.
        let (_, body) = jsonl.split_once('\n').unwrap();
        assert_eq!(parse_diagnostics_jsonl(body).unwrap(), diags);
    }

    #[test]
    fn parse_rejects_mismatched_versions() {
        let (line, err) = parse_diagnostics_jsonl(
            "{\"type\":\"schema\",\"stream\":\"diagnostics\",\"version\":7}\n",
        )
        .unwrap_err();
        assert_eq!(line, 1);
        assert!(err.contains("version 7"), "{err}");
        let (_, err) =
            parse_diagnostics_jsonl("{\"type\":\"schema\",\"stream\":\"trace\",\"version\":2}\n")
                .unwrap_err();
        assert!(err.contains("stream mismatch"), "{err}");
        let (_, err) = parse_diagnostics_jsonl("{\"type\":\"diagnostic\",\"kind\":\"martian\"}\n")
            .unwrap_err();
        assert!(err.contains("unknown diagnostic kind"), "{err}");
    }
}
