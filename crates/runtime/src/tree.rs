//! Parse trees produced by the LL(*) interpreter.

use llstar_grammar::{Grammar, RuleId};
use llstar_lexer::{Token, TokenType};
use std::fmt::Write as _;

/// A parse tree: interior nodes are rule applications, leaves are tokens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseTree {
    /// A rule application with its children in match order.
    Rule {
        /// The rule that matched.
        rule: RuleId,
        /// Which alternative matched (1-based), when the rule had a
        /// decision; `0` for single-alternative rules.
        alt: u16,
        /// Matched children.
        children: Vec<ParseTree>,
    },
    /// A matched token.
    Token(Token),
    /// An error node recorded by recovery: the tokens consumed while
    /// repairing (deleted or skipped), or none for an inserted token.
    Error {
        /// Tokens the repair consumed without matching, in input order.
        tokens: Vec<Token>,
        /// The token type synthesized by single-token insertion, if the
        /// repair was an insertion.
        inserted: Option<TokenType>,
    },
}

impl ParseTree {
    /// Creates an empty rule node.
    pub fn rule(rule: RuleId) -> ParseTree {
        ParseTree::Rule { rule, alt: 0, children: Vec::new() }
    }

    /// Number of *matched* token leaves in the tree (tokens held by
    /// error nodes were consumed but never matched, so they don't count).
    pub fn token_count(&self) -> usize {
        match self {
            ParseTree::Token(_) => 1,
            ParseTree::Error { .. } => 0,
            ParseTree::Rule { children, .. } => children.iter().map(ParseTree::token_count).sum(),
        }
    }

    /// Number of rule nodes in the tree.
    pub fn rule_count(&self) -> usize {
        match self {
            ParseTree::Token(_) | ParseTree::Error { .. } => 0,
            ParseTree::Rule { children, .. } => {
                1 + children.iter().map(ParseTree::rule_count).sum::<usize>()
            }
        }
    }

    /// Number of error nodes recorded by recovery.
    pub fn error_node_count(&self) -> usize {
        match self {
            ParseTree::Token(_) => 0,
            ParseTree::Error { .. } => 1,
            ParseTree::Rule { children, .. } => {
                children.iter().map(ParseTree::error_node_count).sum()
            }
        }
    }

    /// Depth of the tree (a single token has depth 1).
    pub fn depth(&self) -> usize {
        match self {
            ParseTree::Token(_) | ParseTree::Error { .. } => 1,
            ParseTree::Rule { children, .. } => {
                1 + children.iter().map(ParseTree::depth).max().unwrap_or(0)
            }
        }
    }

    /// The matched leaf tokens in order (error-node tokens excluded).
    pub fn leaves(&self) -> Vec<Token> {
        let mut out = Vec::new();
        fn walk(t: &ParseTree, out: &mut Vec<Token>) {
            match t {
                ParseTree::Token(tok) => out.push(*tok),
                ParseTree::Error { .. } => {}
                ParseTree::Rule { children, .. } => {
                    for c in children {
                        walk(c, out);
                    }
                }
            }
        }
        walk(self, &mut out);
        out
    }

    /// Renders the tree as an s-expression using rule names and token
    /// text, e.g. `(s (expr "1" "+" "2"))`.
    pub fn to_sexpr(&self, grammar: &Grammar, source: &str) -> String {
        let mut out = String::new();
        self.write_sexpr(grammar, source, &mut out);
        out
    }

    fn write_sexpr(&self, grammar: &Grammar, source: &str, out: &mut String) {
        match self {
            ParseTree::Token(tok) => {
                let _ = write!(out, "{:?}", tok.text(source));
            }
            ParseTree::Error { tokens, inserted } => {
                out.push_str("(error");
                if let Some(t) = inserted {
                    let _ = write!(out, " <missing {}>", grammar.vocab.display_name(*t));
                }
                for tok in tokens {
                    let _ = write!(out, " {:?}", tok.text(source));
                }
                out.push(')');
            }
            ParseTree::Rule { rule, children, .. } => {
                let _ = write!(out, "({}", grammar.rule(*rule).name);
                for c in children {
                    out.push(' ');
                    c.write_sexpr(grammar, source, out);
                }
                out.push(')');
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llstar_grammar::parse_grammar;
    use llstar_lexer::{Span, TokenType};

    fn leaf(start: usize, end: usize) -> ParseTree {
        ParseTree::Token(Token::new(TokenType(1), Span::new(start, end), 1, 1))
    }

    #[test]
    fn counting_and_depth() {
        let t = ParseTree::Rule {
            rule: RuleId(0),
            alt: 1,
            children: vec![
                leaf(0, 1),
                ParseTree::Rule { rule: RuleId(1), alt: 0, children: vec![leaf(1, 2)] },
            ],
        };
        assert_eq!(t.token_count(), 2);
        assert_eq!(t.rule_count(), 2);
        assert_eq!(t.depth(), 3);
        assert_eq!(t.leaves().len(), 2);
    }

    #[test]
    fn sexpr_rendering() {
        let g = parse_grammar("grammar T; s : x ; x : A ; A:'a';").unwrap();
        let src = "a";
        let t = ParseTree::Rule {
            rule: g.rule_id("s").unwrap(),
            alt: 0,
            children: vec![ParseTree::Rule {
                rule: g.rule_id("x").unwrap(),
                alt: 0,
                children: vec![ParseTree::Token(Token::new(TokenType(1), Span::new(0, 1), 1, 1))],
            }],
        };
        assert_eq!(t.to_sexpr(&g, src), "(s (x \"a\"))");
    }

    #[test]
    fn empty_rule_node() {
        let t = ParseTree::rule(RuleId(3));
        assert_eq!(t.token_count(), 0);
        assert_eq!(t.rule_count(), 1);
        assert_eq!(t.depth(), 1);
    }
}
