//! The always-on metrics substrate: cheap enough to stay enabled in
//! every engine, rich enough to reproduce the paper's Tables 3–4
//! signals (lookahead depth, backtrack rate, memo traffic) live.
//!
//! Two tiers of observability coexist (see DESIGN.md):
//!
//! * **Sampled traces** ([`crate::trace`]): every event, full fidelity,
//!   event-per-token cost — a dial via `SamplingSink`, for debugging.
//! * **Always-on metrics** (this module): a handful of unconditional
//!   array increments per *prediction* (not per token), no per-event
//!   allocation, no `Option<sink>` branch — cheap enough for
//!   `llstar serve`-style deployments to leave on under load.
//!
//! The layers are: [`ParseMetrics`] lives inside one parser and is
//! cleared by [`Parser::reset`]; [`MetricsSnapshot`] is the mergeable,
//! label-carrying export form (deterministic JSON for parity testing,
//! Prometheus text exposition for scraping); [`MetricsRegistry`] is the
//! process-wide accumulation point — sharded atomic slots keyed by
//! `(grammar fingerprint, engine)` that many sessions flush into
//! concurrently without locking the hot path.
//!
//! [`Parser::reset`]: crate::Parser::reset

use llstar_core::schema::{self, StreamKind};
use llstar_core::Json;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Buckets in a per-decision lookahead-depth histogram: 16 linear
/// (0..15) then two sub-buckets per power of two — exact for the depths
/// the paper reports (Table 3's k ≤ 3 common case), log-resolution out
/// to 4095, clamped above.
pub const DEPTH_BUCKETS: usize = 32;

/// Buckets in the wide histograms (tokens/parse, memo entries/parse,
/// parse latency in microseconds): same log-linear layout, covering
/// values below 2^28 before clamping.
pub const WIDE_BUCKETS: usize = 64;

/// Nominal bytes per memo-table entry, used to render `memo-entries`
/// counters as a `llstar_memo_bytes` gauge. A fixed constant (rather
/// than `size_of` some engine's entry) keeps the exposition identical
/// across engines, whose in-memory entry layouts differ.
pub const MEMO_ENTRY_BYTES: u64 = 16;

/// Log-linear bucket index of `v` in an `n`-bucket histogram: identity
/// below 16, then `16 + 2·(msb−4) + second-highest-bit`, clamped. Pure
/// bit arithmetic — the hot path is `hist[bucket_of(v, N)] += 1`.
#[inline]
pub fn bucket_of(v: u64, n: usize) -> usize {
    if v < 16 {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros() as usize;
        let sub = ((v >> (msb - 1)) & 1) as usize;
        (16 + (msb - 4) * 2 + sub).min(n - 1)
    }
}

/// Inclusive lower bound of bucket `idx` (the smallest value that lands
/// in it).
pub fn bucket_lower(idx: usize) -> u64 {
    if idx < 16 {
        idx as u64
    } else {
        let e = (idx - 16) / 2 + 4;
        let sub = ((idx - 16) % 2) as u64;
        (1u64 << e) + sub * (1u64 << (e - 1))
    }
}

/// Inclusive upper bound of bucket `idx` in an `n`-bucket histogram
/// (`u64::MAX` for the clamp bucket).
pub fn bucket_upper(idx: usize, n: usize) -> u64 {
    if idx + 1 >= n {
        u64::MAX
    } else {
        bucket_lower(idx + 1) - 1
    }
}

/// Approximate `q`-quantile (0 ≤ q ≤ 1) of a log-linear histogram:
/// the upper bound of the first bucket whose cumulative count reaches
/// the target. Zero when the histogram is empty.
pub fn hist_quantile(hist: &[u64], q: f64) -> u64 {
    let total: u64 = hist.iter().sum();
    if total == 0 {
        return 0;
    }
    let target = ((total as f64) * q).ceil().max(1.0) as u64;
    let mut cum = 0u64;
    for (idx, &c) in hist.iter().enumerate() {
        cum += c;
        if cum >= target {
            let upper = bucket_upper(idx, hist.len());
            // The clamp bucket has no finite upper bound; report its
            // lower bound so quantiles stay meaningful.
            return if upper == u64::MAX { bucket_lower(idx) } else { upper };
        }
    }
    bucket_lower(hist.len() - 1)
}

/// Per-decision metric slots: prediction count, lookahead aggregates,
/// backtrack and speculation totals, and the depth histogram. Every
/// field updates with one unconditional add per completed prediction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecisionCounters {
    /// Completed predictions (all speculation depths — the byte-level
    /// prediction sequence is identical across engines, so counting
    /// everything keeps parity trivial).
    pub events: u64,
    /// Sum of effective lookahead depths (`max(DFA depth, 1, deepest
    /// speculation)` — the same quantity `predict-stop` reports).
    pub la_sum: u64,
    /// Deepest effective lookahead seen.
    pub la_max: u64,
    /// Predictions that fell over to backtracking.
    pub backtracks: u64,
    /// Sum of deepest-speculation token counts.
    pub spec_sum: u64,
    /// Log-linear histogram of effective lookahead depth.
    pub hist: [u64; DEPTH_BUCKETS],
}

impl DecisionCounters {
    /// All-zero counters.
    pub fn new() -> DecisionCounters {
        DecisionCounters {
            events: 0,
            la_sum: 0,
            la_max: 0,
            backtracks: 0,
            spec_sum: 0,
            hist: [0; DEPTH_BUCKETS],
        }
    }

    /// Folds one completed prediction in.
    #[inline]
    pub fn record(&mut self, lookahead: u64, backtracked: bool, spec: u64) {
        self.events += 1;
        self.la_sum += lookahead;
        self.la_max = self.la_max.max(lookahead);
        self.backtracks += backtracked as u64;
        self.spec_sum += spec;
        self.hist[bucket_of(lookahead, DEPTH_BUCKETS)] += 1;
    }

    /// Adds `other` into `self`, cell by cell (`la_max` via max).
    pub fn merge(&mut self, other: &DecisionCounters) {
        self.events += other.events;
        self.la_sum += other.la_sum;
        self.la_max = self.la_max.max(other.la_max);
        self.backtracks += other.backtracks;
        self.spec_sum += other.spec_sum;
        for (a, b) in self.hist.iter_mut().zip(&other.hist) {
            *a += b;
        }
    }

    /// Whether nothing was recorded (zero-event decisions are omitted
    /// from snapshots).
    pub fn is_zero(&self) -> bool {
        self.events == 0
    }

    /// Median effective lookahead (histogram estimate).
    pub fn p50_lookahead(&self) -> u64 {
        hist_quantile(&self.hist, 0.50)
    }

    /// 99th-percentile effective lookahead (histogram estimate).
    pub fn p99_lookahead(&self) -> u64 {
        hist_quantile(&self.hist, 0.99)
    }
}

impl Default for DecisionCounters {
    fn default() -> Self {
        Self::new()
    }
}

/// The per-parser metric state: one [`DecisionCounters`] row per
/// decision plus parse-level counters and histograms. Cleared by
/// [`Parser::reset`] (no carry-over between inputs); long-lived
/// accumulation happens in [`MetricsSnapshot`]s or a
/// [`MetricsRegistry`], which callers merge parses into.
///
/// [`Parser::reset`]: crate::Parser::reset
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseMetrics {
    decisions: Vec<DecisionCounters>,
    parses: u64,
    tokens: u64,
    memo_hits: u64,
    memo_entries: u64,
    tokens_hist: [u64; WIDE_BUCKETS],
    memo_hist: [u64; WIDE_BUCKETS],
    /// `memo_entries` at the last `finish_parse`, so the per-parse memo
    /// histogram records deltas.
    memo_mark: u64,
    /// A/B switch for the overhead bench **only**: the default (`true`)
    /// hot path is unconditional increments; flipping this off restores
    /// the metrics-free baseline so `metrics_overhead` rows can measure
    /// the substrate's real cost. Not reset by [`ParseMetrics::reset`].
    enabled: bool,
}

impl ParseMetrics {
    /// All-zero metrics shaped for `decision_count` decisions.
    pub fn new(decision_count: usize) -> ParseMetrics {
        ParseMetrics {
            decisions: vec![DecisionCounters::new(); decision_count],
            parses: 0,
            tokens: 0,
            memo_hits: 0,
            memo_entries: 0,
            tokens_hist: [0; WIDE_BUCKETS],
            memo_hist: [0; WIDE_BUCKETS],
            memo_mark: 0,
            enabled: true,
        }
    }

    /// Folds one completed prediction of `decision` in.
    #[inline]
    pub fn record_predict(
        &mut self,
        decision: usize,
        lookahead: u64,
        backtracked: bool,
        spec: u64,
    ) {
        if !self.enabled {
            return;
        }
        self.decisions[decision].record(lookahead, backtracked, spec);
    }

    /// Counts one memo-table hit.
    #[inline]
    pub fn record_memo_hit(&mut self) {
        self.memo_hits += self.enabled as u64;
    }

    /// Counts one memo-table write (an entry coming into existence).
    #[inline]
    pub fn record_memo_write(&mut self) {
        self.memo_entries += self.enabled as u64;
    }

    /// Marks one successful parse: bumps the parse counter, credits the
    /// tokens consumed, and folds the per-parse token and memo-entry
    /// histograms.
    pub fn finish_parse(&mut self, tokens: u64) {
        if !self.enabled {
            return;
        }
        self.parses += 1;
        self.tokens += tokens;
        self.tokens_hist[bucket_of(tokens, WIDE_BUCKETS)] += 1;
        let memo_delta = self.memo_entries - self.memo_mark;
        self.memo_mark = self.memo_entries;
        self.memo_hist[bucket_of(memo_delta, WIDE_BUCKETS)] += 1;
    }

    /// Clears every counter (allocation kept warm). The `enabled` A/B
    /// switch survives, like the parser's other configuration.
    pub fn reset(&mut self) {
        for d in &mut self.decisions {
            *d = DecisionCounters::new();
        }
        self.parses = 0;
        self.tokens = 0;
        self.memo_hits = 0;
        self.memo_entries = 0;
        self.tokens_hist = [0; WIDE_BUCKETS];
        self.memo_hist = [0; WIDE_BUCKETS];
        self.memo_mark = 0;
    }

    /// Disables (or re-enables) recording. Exists solely so the
    /// `metrics_overhead` bench can measure an off-baseline; production
    /// paths leave metrics on.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Whether recording is enabled (the default).
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Completed parses since the last reset.
    pub fn parses(&self) -> u64 {
        self.parses
    }

    /// Tokens consumed by completed parses since the last reset.
    pub fn tokens(&self) -> u64 {
        self.tokens
    }

    /// Memo hits since the last reset.
    pub fn memo_hits(&self) -> u64 {
        self.memo_hits
    }

    /// Memo entries written since the last reset.
    pub fn memo_entries(&self) -> u64 {
        self.memo_entries
    }

    /// The per-decision counter rows.
    pub fn decisions(&self) -> &[DecisionCounters] {
        &self.decisions
    }

    /// Whether nothing was recorded since the last reset.
    pub fn is_zero(&self) -> bool {
        self.parses == 0
            && self.tokens == 0
            && self.memo_hits == 0
            && self.memo_entries == 0
            && self.decisions.iter().all(DecisionCounters::is_zero)
    }

    /// Exports these counters as a labelled, mergeable snapshot.
    /// `decision_rule` maps a decision index to its rule name (for
    /// exposition labels).
    pub fn snapshot(
        &self,
        fingerprint: u64,
        decision_rule: impl Fn(usize) -> String,
    ) -> MetricsSnapshot {
        let decisions = self
            .decisions
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.is_zero())
            .map(|(i, c)| SnapshotDecision {
                decision: i as u32,
                rule: decision_rule(i),
                counters: c.clone(),
            })
            .collect();
        MetricsSnapshot {
            fingerprint,
            parses: self.parses,
            tokens: self.tokens,
            memo_hits: self.memo_hits,
            memo_entries: self.memo_entries,
            tokens_hist: self.tokens_hist,
            memo_hist: self.memo_hist,
            latency_hist: [0; WIDE_BUCKETS],
            elapsed_micros: 0,
            decisions,
        }
    }
}

/// One decision's counters inside a snapshot, labelled with its index
/// and owning rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotDecision {
    /// Decision index (the grammar-wide `DecisionId`).
    pub decision: u32,
    /// Name of the rule the decision belongs to.
    pub rule: String,
    /// The counters.
    pub counters: DecisionCounters,
}

/// A labelled, mergeable export of the metric counters: the `metrics
/// v1` JSON stream line and the source of the Prometheus exposition.
///
/// Determinism contract: [`MetricsSnapshot::to_json`] with
/// `timing: false` renders only deterministic counters — the parity
/// suite compares these byte-for-byte across engines. Latency and
/// elapsed wall-clock (recorded by sessions, inherently nondeterministic)
/// only appear with `timing: true`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Fingerprint of the source grammar (labels the exposition).
    pub fingerprint: u64,
    /// Completed parses.
    pub parses: u64,
    /// Tokens consumed by completed parses.
    pub tokens: u64,
    /// Memo-table hits.
    pub memo_hits: u64,
    /// Memo-table entries written.
    pub memo_entries: u64,
    /// Histogram of tokens per parse.
    pub tokens_hist: [u64; WIDE_BUCKETS],
    /// Histogram of memo entries written per parse.
    pub memo_hist: [u64; WIDE_BUCKETS],
    /// Histogram of parse latency in microseconds (timing tier only).
    pub latency_hist: [u64; WIDE_BUCKETS],
    /// Total wall-clock microseconds across recorded parses (timing
    /// tier only; `llstar watch` derives rates from deltas of this).
    pub elapsed_micros: u64,
    /// Non-zero decisions, ascending by index.
    pub decisions: Vec<SnapshotDecision>,
}

impl MetricsSnapshot {
    /// An all-zero snapshot for `fingerprint`.
    pub fn empty(fingerprint: u64) -> MetricsSnapshot {
        MetricsSnapshot {
            fingerprint,
            parses: 0,
            tokens: 0,
            memo_hits: 0,
            memo_entries: 0,
            tokens_hist: [0; WIDE_BUCKETS],
            memo_hist: [0; WIDE_BUCKETS],
            latency_hist: [0; WIDE_BUCKETS],
            elapsed_micros: 0,
            decisions: Vec::new(),
        }
    }

    /// Records one parse's wall-clock latency (the timing tier: kept
    /// out of the deterministic JSON).
    pub fn record_latency(&mut self, micros: u64) {
        self.latency_hist[bucket_of(micros, WIDE_BUCKETS)] += 1;
        self.elapsed_micros += micros;
    }

    /// Adds `other` into `self`.
    ///
    /// # Panics
    /// Panics when the fingerprints differ — merging metrics across
    /// grammars is a caller bug.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        assert_eq!(self.fingerprint, other.fingerprint, "merging metrics from different grammars");
        self.parses += other.parses;
        self.tokens += other.tokens;
        self.memo_hits += other.memo_hits;
        self.memo_entries += other.memo_entries;
        for (a, b) in self.tokens_hist.iter_mut().zip(&other.tokens_hist) {
            *a += b;
        }
        for (a, b) in self.memo_hist.iter_mut().zip(&other.memo_hist) {
            *a += b;
        }
        for (a, b) in self.latency_hist.iter_mut().zip(&other.latency_hist) {
            *a += b;
        }
        self.elapsed_micros += other.elapsed_micros;
        for d in &other.decisions {
            match self.decisions.binary_search_by_key(&d.decision, |x| x.decision) {
                Ok(i) => self.decisions[i].counters.merge(&d.counters),
                Err(i) => self.decisions.insert(i, d.clone()),
            }
        }
    }

    /// Memo hit rate in percent (0 when no memo traffic).
    pub fn memo_hit_pct(&self) -> f64 {
        let total = self.memo_hits + self.memo_entries;
        if total == 0 {
            0.0
        } else {
            self.memo_hits as f64 * 100.0 / total as f64
        }
    }

    /// The `metrics` stream header line (schema v1, no newline).
    pub fn stream_header() -> String {
        StreamKind::Metrics.header_line()
    }

    /// Renders one snapshot line (no trailing newline). With
    /// `timing: false` the output is byte-deterministic for a given
    /// parse sequence — the form the parity suite compares and the one
    /// generated parsers reproduce. `timing: true` additionally emits
    /// the latency histogram and elapsed wall-clock.
    pub fn to_json(&self, engine: &str, timing: bool) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"type\":\"metrics\",\"fingerprint\":{},\"engine\":{},\"parses\":{},\"tokens\":{},\"memo-hits\":{},\"memo-entries\":{},\"tokens-hist\":{},\"memo-hist\":{}",
            self.fingerprint,
            llstar_core::json::quote(engine),
            self.parses,
            self.tokens,
            self.memo_hits,
            self.memo_entries,
            render_hist(&self.tokens_hist),
            render_hist(&self.memo_hist),
        ));
        if timing {
            out.push_str(&format!(
                ",\"latency-hist\":{},\"elapsed-micros\":{}",
                render_hist(&self.latency_hist),
                self.elapsed_micros
            ));
        }
        out.push_str(",\"decisions\":[");
        for (i, d) in self.decisions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let c = &d.counters;
            out.push_str(&format!(
                "{{\"decision\":{},\"rule\":{},\"events\":{},\"la-sum\":{},\"la-max\":{},\"backtracks\":{},\"spec-sum\":{},\"hist\":{}}}",
                d.decision,
                llstar_core::json::quote(&d.rule),
                c.events,
                c.la_sum,
                c.la_max,
                c.backtracks,
                c.spec_sum,
                render_hist(&c.hist),
            ));
        }
        out.push_str("]}");
        out
    }

    /// Parses one snapshot line (the object form [`MetricsSnapshot::to_json`]
    /// writes). Returns the engine label alongside the snapshot.
    ///
    /// # Errors
    /// A description of the first malformed or missing field.
    pub fn from_json(value: &Json) -> Result<(String, MetricsSnapshot), String> {
        if value.get("type").and_then(Json::as_str) != Some("metrics") {
            return Err("not a metrics snapshot line".into());
        }
        let u = |k: &str| -> Result<u64, String> {
            value.get(k).and_then(Json::as_u64).ok_or_else(|| format!("missing field {k:?}"))
        };
        let engine = value
            .get("engine")
            .and_then(Json::as_str)
            .ok_or("missing field \"engine\"")?
            .to_string();
        let mut snap = MetricsSnapshot::empty(u("fingerprint")?);
        snap.parses = u("parses")?;
        snap.tokens = u("tokens")?;
        snap.memo_hits = u("memo-hits")?;
        snap.memo_entries = u("memo-entries")?;
        snap.tokens_hist = parse_hist(value, "tokens-hist")?;
        snap.memo_hist = parse_hist(value, "memo-hist")?;
        if value.get("latency-hist").is_some() {
            snap.latency_hist = parse_hist(value, "latency-hist")?;
            snap.elapsed_micros = u("elapsed-micros")?;
        }
        let decisions =
            value.get("decisions").and_then(Json::as_array).ok_or("missing \"decisions\"")?;
        for d in decisions {
            let du = |k: &str| -> Result<u64, String> {
                d.get(k)
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("missing decision field {k:?}"))
            };
            let mut counters = DecisionCounters::new();
            counters.events = du("events")?;
            counters.la_sum = du("la-sum")?;
            counters.la_max = du("la-max")?;
            counters.backtracks = du("backtracks")?;
            counters.spec_sum = du("spec-sum")?;
            let hist = d.get("hist").and_then(Json::as_array).ok_or("missing decision hist")?;
            if hist.len() > DEPTH_BUCKETS {
                return Err(format!(
                    "decision hist has {} buckets (max {DEPTH_BUCKETS})",
                    hist.len()
                ));
            }
            for (i, v) in hist.iter().enumerate() {
                counters.hist[i] = v.as_u64().ok_or("non-numeric hist bucket")?;
            }
            snap.decisions.push(SnapshotDecision {
                decision: du("decision")? as u32,
                rule: d
                    .get("rule")
                    .and_then(Json::as_str)
                    .ok_or("missing decision rule")?
                    .to_string(),
                counters,
            });
        }
        Ok((engine, snap))
    }

    /// Renders the snapshot in Prometheus text exposition format. Every
    /// sample carries `grammar` (fingerprint, hex) and `engine` labels;
    /// per-decision samples add `decision` and `rule`.
    pub fn to_prometheus(&self, engine: &str) -> String {
        let g = format!("{:016x}", self.fingerprint);
        let base = format!("grammar=\"{g}\",engine=\"{}\"", prom_escape(engine));
        let mut out = String::new();
        let mut counter = |name: &str, help: &str, labels: &str, value: u64| {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} counter\n{name}{{{labels}}} {value}\n"
            ));
        };
        counter("llstar_parses_total", "Completed parses.", &base, self.parses);
        counter("llstar_tokens_total", "Tokens consumed by completed parses.", &base, self.tokens);
        counter("llstar_memo_hits_total", "Packrat memo-table hits.", &base, self.memo_hits);
        counter(
            "llstar_memo_entries_total",
            "Packrat memo-table entries written.",
            &base,
            self.memo_entries,
        );
        for d in &self.decisions {
            let labels =
                format!("{base},decision=\"d{}\",rule=\"{}\"", d.decision, prom_escape(&d.rule));
            counter(
                "llstar_decision_predictions_total",
                "Completed predictions per decision.",
                &labels,
                d.counters.events,
            );
            counter(
                "llstar_decision_backtracks_total",
                "Predictions that fell over to backtracking.",
                &labels,
                d.counters.backtracks,
            );
        }
        out.push_str(&prom_histogram(
            "llstar_lookahead_depth",
            "Effective lookahead depth per prediction.",
            self.decisions.iter().map(|d| {
                let labels =
                    format!("decision=\"d{}\",rule=\"{}\"", d.decision, prom_escape(&d.rule));
                (labels, &d.counters.hist[..], d.counters.la_sum, d.counters.events)
            }),
            &base,
        ));
        let parses_hist: Vec<(String, &[u64], u64, u64)> =
            vec![(String::new(), &self.tokens_hist[..], self.tokens, self.parses)];
        out.push_str(&prom_histogram(
            "llstar_tokens_per_parse",
            "Tokens consumed per completed parse.",
            parses_hist.iter().map(|(l, h, s, c)| (l.clone(), *h, *s, *c)),
            &base,
        ));
        let memo_count: u64 = self.memo_hist.iter().sum();
        let memo_hist: Vec<(String, &[u64], u64, u64)> =
            vec![(String::new(), &self.memo_hist[..], self.memo_entries, memo_count)];
        out.push_str(&prom_histogram(
            "llstar_memo_entries_per_parse",
            "Memo entries written per completed parse.",
            memo_hist.iter().map(|(l, h, s, c)| (l.clone(), *h, *s, *c)),
            &base,
        ));
        out.push_str(&format!(
            "# HELP llstar_memo_bytes Nominal memo footprint ({MEMO_ENTRY_BYTES} bytes/entry).\n# TYPE llstar_memo_bytes gauge\nllstar_memo_bytes{{{base}}} {}\n",
            self.memo_entries * MEMO_ENTRY_BYTES
        ));
        let lat_count: u64 = self.latency_hist.iter().sum();
        if lat_count > 0 {
            let lat: Vec<(String, &[u64], u64, u64)> =
                vec![(String::new(), &self.latency_hist[..], self.elapsed_micros, lat_count)];
            out.push_str(&prom_histogram(
                "llstar_parse_latency_micros",
                "Wall-clock parse latency in microseconds.",
                lat.iter().map(|(l, h, s, c)| (l.clone(), *h, *s, *c)),
                &base,
            ));
        }
        out
    }
}

/// Renders a histogram as a JSON array with trailing zeros trimmed
/// (deterministic, and snapshot lines stay short for sparse data).
fn render_hist(hist: &[u64]) -> String {
    let len = hist.iter().rposition(|&v| v != 0).map_or(0, |i| i + 1);
    let items: Vec<String> = hist[..len].iter().map(|v| v.to_string()).collect();
    format!("[{}]", items.join(","))
}

/// Parses a (possibly trimmed) histogram array field into a full-width
/// wide histogram.
fn parse_hist(value: &Json, key: &str) -> Result<[u64; WIDE_BUCKETS], String> {
    let arr = value.get(key).and_then(Json::as_array).ok_or_else(|| format!("missing {key:?}"))?;
    if arr.len() > WIDE_BUCKETS {
        return Err(format!("{key} has {} buckets (max {WIDE_BUCKETS})", arr.len()));
    }
    let mut out = [0u64; WIDE_BUCKETS];
    for (i, v) in arr.iter().enumerate() {
        out[i] = v.as_u64().ok_or_else(|| format!("non-numeric bucket in {key}"))?;
    }
    Ok(out)
}

/// Escapes a label value per the exposition format.
fn prom_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

/// Renders one histogram family: cumulative `_bucket{le=...}` samples
/// per series, plus `_sum` and `_count`.
fn prom_histogram<'h>(
    name: &str,
    help: &str,
    series: impl Iterator<Item = (String, &'h [u64], u64, u64)>,
    base: &str,
) -> String {
    let mut out = format!("# HELP {name} {help}\n# TYPE {name} histogram\n");
    let mut any = false;
    for (extra, hist, sum, count) in series {
        any = true;
        let labels = if extra.is_empty() { base.to_string() } else { format!("{base},{extra}") };
        let mut cum = 0u64;
        for (idx, &c) in hist.iter().enumerate() {
            cum += c;
            if c == 0 && idx + 1 < hist.len() {
                continue; // keep the exposition sparse; `le` is cumulative anyway
            }
            let upper = bucket_upper(idx, hist.len());
            let le = if upper == u64::MAX { "+Inf".to_string() } else { upper.to_string() };
            out.push_str(&format!("{name}_bucket{{{labels},le=\"{le}\"}} {cum}\n"));
        }
        out.push_str(&format!("{name}_sum{{{labels}}} {sum}\n"));
        out.push_str(&format!("{name}_count{{{labels}}} {count}\n"));
    }
    if !any {
        return format!("# HELP {name} {help}\n# TYPE {name} histogram\n");
    }
    out
}

/// Validates Prometheus text exposition syntax: `# HELP`/`# TYPE`
/// comments with known types, and `name{labels} value` samples whose
/// family was TYPE-declared. Returns the number of samples.
///
/// # Errors
/// The first offending line, quoted with its line number.
pub fn validate_prometheus(text: &str) -> Result<usize, String> {
    let mut declared: Vec<String> = Vec::new();
    let mut samples = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        if line.trim().is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let family = parts.next().ok_or(format!("line {n}: TYPE without a family name"))?;
            let kind = parts.next().ok_or(format!("line {n}: TYPE without a kind"))?;
            if !matches!(kind, "counter" | "gauge" | "histogram" | "summary" | "untyped") {
                return Err(format!("line {n}: unknown TYPE kind {kind:?}"));
            }
            declared.push(family.to_string());
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP and free comments
        }
        let (name_and_labels, value) =
            line.rsplit_once(' ').ok_or(format!("line {n}: sample has no value: {line:?}"))?;
        if value.parse::<f64>().is_err() && value != "+Inf" && value != "NaN" {
            return Err(format!("line {n}: non-numeric sample value {value:?}"));
        }
        let name = match name_and_labels.split_once('{') {
            Some((name, labels)) => {
                if !labels.ends_with('}') {
                    return Err(format!("line {n}: unterminated label set: {line:?}"));
                }
                if labels.matches('"').count() % 2 != 0 {
                    return Err(format!("line {n}: unbalanced quotes in labels: {line:?}"));
                }
                name
            }
            None => name_and_labels,
        };
        if name.is_empty()
            || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
            || name.chars().next().is_some_and(|c| c.is_ascii_digit())
        {
            return Err(format!("line {n}: invalid metric name {name:?}"));
        }
        let family = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .unwrap_or(name);
        if !declared.iter().any(|d| d == family || d == name) {
            return Err(format!("line {n}: sample {name:?} has no preceding # TYPE"));
        }
        samples += 1;
    }
    Ok(samples)
}

// ---------------------------------------------------------------------
// The sharded registry
// ---------------------------------------------------------------------

/// How many shards each registry entry carries. Flushes pick a shard by
/// thread-id hash, so concurrent sessions rarely contend on a cache
/// line; snapshots sum across shards.
const SHARDS: usize = 8;

/// Slots per decision row in the flat atomic layout:
/// `events, la_sum, la_max, backtracks, spec_sum, hist[DEPTH_BUCKETS]`.
const DECISION_SLOTS: usize = 5 + DEPTH_BUCKETS;

/// Global slots before the decision rows: `parses, tokens, memo_hits,
/// memo_entries, elapsed_micros`, then the three wide histograms.
const GLOBAL_SLOTS: usize = 5 + 3 * WIDE_BUCKETS;

/// One `(grammar fingerprint, engine)` label's sharded slots.
struct ShardSet {
    fingerprint: u64,
    engine: String,
    decision_rules: Vec<String>,
    shards: Vec<Vec<AtomicU64>>,
}

impl ShardSet {
    fn new(fingerprint: u64, engine: &str, decision_rules: Vec<String>) -> ShardSet {
        let width = GLOBAL_SLOTS + decision_rules.len() * DECISION_SLOTS;
        let shards = (0..SHARDS).map(|_| (0..width).map(|_| AtomicU64::new(0)).collect()).collect();
        ShardSet { fingerprint, engine: engine.to_string(), decision_rules, shards }
    }

    /// The shard the current thread flushes into.
    fn my_shard(&self) -> &[AtomicU64] {
        let mut h = DefaultHasher::new();
        std::thread::current().id().hash(&mut h);
        &self.shards[(h.finish() as usize) % SHARDS]
    }

    fn add(&self, metrics: &ParseMetrics, latency_micros: u64) {
        let shard = self.my_shard();
        let add = |i: usize, v: u64| {
            if v != 0 {
                shard[i].fetch_add(v, Ordering::Relaxed);
            }
        };
        add(0, metrics.parses);
        add(1, metrics.tokens);
        add(2, metrics.memo_hits);
        add(3, metrics.memo_entries);
        add(4, latency_micros);
        let mut base = 5;
        for (i, &v) in metrics.tokens_hist.iter().enumerate() {
            add(base + i, v);
        }
        base += WIDE_BUCKETS;
        for (i, &v) in metrics.memo_hist.iter().enumerate() {
            add(base + i, v);
        }
        base += WIDE_BUCKETS;
        if latency_micros != 0 {
            add(base + bucket_of(latency_micros, WIDE_BUCKETS), 1);
        }
        base += WIDE_BUCKETS;
        for (d, c) in metrics.decisions.iter().enumerate() {
            if c.is_zero() {
                continue;
            }
            let row = base + d * DECISION_SLOTS;
            add(row, c.events);
            add(row + 1, c.la_sum);
            shard[row + 2].fetch_max(c.la_max, Ordering::Relaxed);
            add(row + 3, c.backtracks);
            add(row + 4, c.spec_sum);
            for (i, &v) in c.hist.iter().enumerate() {
                add(row + 5 + i, v);
            }
        }
    }

    fn snapshot(&self) -> MetricsSnapshot {
        let sum =
            |i: usize| -> u64 { self.shards.iter().map(|s| s[i].load(Ordering::Relaxed)).sum() };
        let max = |i: usize| -> u64 {
            self.shards.iter().map(|s| s[i].load(Ordering::Relaxed)).max().unwrap_or(0)
        };
        let mut snap = MetricsSnapshot::empty(self.fingerprint);
        snap.parses = sum(0);
        snap.tokens = sum(1);
        snap.memo_hits = sum(2);
        snap.memo_entries = sum(3);
        snap.elapsed_micros = sum(4);
        let mut base = 5;
        for i in 0..WIDE_BUCKETS {
            snap.tokens_hist[i] = sum(base + i);
        }
        base += WIDE_BUCKETS;
        for i in 0..WIDE_BUCKETS {
            snap.memo_hist[i] = sum(base + i);
        }
        base += WIDE_BUCKETS;
        for i in 0..WIDE_BUCKETS {
            snap.latency_hist[i] = sum(base + i);
        }
        base += WIDE_BUCKETS;
        for (d, rule) in self.decision_rules.iter().enumerate() {
            let row = base + d * DECISION_SLOTS;
            let mut counters = DecisionCounters::new();
            counters.events = sum(row);
            counters.la_sum = sum(row + 1);
            counters.la_max = max(row + 2);
            counters.backtracks = sum(row + 3);
            counters.spec_sum = sum(row + 4);
            for i in 0..DEPTH_BUCKETS {
                counters.hist[i] = sum(row + 5 + i);
            }
            if !counters.is_zero() {
                snap.decisions.push(SnapshotDecision {
                    decision: d as u32,
                    rule: rule.clone(),
                    counters,
                });
            }
        }
        snap
    }
}

/// The process-level accumulation point: a label-keyed registry of
/// sharded atomic counter slots. Registration (cold) takes a mutex;
/// recording through a [`MetricsHandle`] is lock-free — relaxed
/// `fetch_add`s into the calling thread's shard.
#[derive(Default)]
pub struct MetricsRegistry {
    entries: Mutex<Vec<Arc<ShardSet>>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Returns (creating if needed) the handle for
    /// `(fingerprint, engine)`. `decision_rules` names each decision's
    /// owning rule; it must be consistent across registrations of the
    /// same label.
    pub fn handle(
        &self,
        fingerprint: u64,
        engine: &str,
        decision_rules: &[String],
    ) -> MetricsHandle {
        let mut entries = self.entries.lock().expect("metrics registry poisoned");
        if let Some(e) = entries.iter().find(|e| e.fingerprint == fingerprint && e.engine == engine)
        {
            return MetricsHandle { shards: Arc::clone(e) };
        }
        let set = Arc::new(ShardSet::new(fingerprint, engine, decision_rules.to_vec()));
        entries.push(Arc::clone(&set));
        MetricsHandle { shards: set }
    }

    /// Snapshots every label, in registration order, as
    /// `(engine, snapshot)` pairs.
    pub fn snapshot_all(&self) -> Vec<(String, MetricsSnapshot)> {
        let entries = self.entries.lock().expect("metrics registry poisoned");
        entries.iter().map(|e| (e.engine.clone(), e.snapshot())).collect()
    }
}

/// A clonable, lock-free recording handle into one registry label.
#[derive(Clone)]
pub struct MetricsHandle {
    shards: Arc<ShardSet>,
}

impl MetricsHandle {
    /// Adds one parser's counters (and an optional parse latency) into
    /// the calling thread's shard. Lock-free; relaxed ordering.
    pub fn record(&self, metrics: &ParseMetrics, latency_micros: u64) {
        self.shards.add(metrics, latency_micros);
    }

    /// Sums this label's shards into a snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.shards.snapshot()
    }

    /// The engine label this handle records under.
    pub fn engine(&self) -> &str {
        &self.shards.engine
    }
}

/// Parses a `metrics` JSONL stream: optional schema header (validated
/// via [`schema::check_header`]) followed by snapshot lines. Returns
/// `(engine, snapshot)` pairs in stream order.
///
/// # Errors
/// The line number and description of the first malformed line, or a
/// schema-version mismatch.
pub fn parse_metrics_jsonl(text: &str) -> Result<Vec<(String, MetricsSnapshot)>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let value = Json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        if schema::parse_schema_header(&value).is_some() {
            schema::check_header(&value, StreamKind::Metrics)
                .map_err(|e| format!("line {}: {e}", i + 1))?;
            continue;
        }
        let pair =
            MetricsSnapshot::from_json(&value).map_err(|e| format!("line {}: {e}", i + 1))?;
        out.push(pair);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_is_monotone_and_exhaustive() {
        // Every bucket's bounds nest correctly and bucket_of inverts them.
        for n in [DEPTH_BUCKETS, WIDE_BUCKETS] {
            for idx in 0..n {
                let lo = bucket_lower(idx);
                let hi = bucket_upper(idx, n);
                assert!(lo <= hi, "bucket {idx}/{n}: {lo} > {hi}");
                assert_eq!(bucket_of(lo, n), idx, "lower bound of {idx}/{n}");
                if hi != u64::MAX {
                    assert_eq!(bucket_of(hi, n), idx, "upper bound of {idx}/{n}");
                    assert_eq!(bucket_of(hi + 1, n), idx + 1, "successor of {idx}/{n}");
                }
            }
        }
        // Linear region is exact.
        for v in 0..16 {
            assert_eq!(bucket_of(v, DEPTH_BUCKETS), v as usize);
        }
        // Clamp bucket swallows huge values.
        assert_eq!(bucket_of(u64::MAX, DEPTH_BUCKETS), DEPTH_BUCKETS - 1);
    }

    #[test]
    fn quantiles_from_histograms() {
        let mut hist = [0u64; DEPTH_BUCKETS];
        // 99 predictions at depth 1, one at depth 40.
        hist[1] = 99;
        hist[bucket_of(40, DEPTH_BUCKETS)] = 1;
        assert_eq!(hist_quantile(&hist, 0.50), 1);
        let p100 = hist_quantile(&hist, 1.0);
        assert!((32..=47).contains(&p100), "p100 bucket bound should bracket 40: {p100}");
        assert_eq!(hist_quantile(&[0; 8], 0.5), 0, "empty histogram");
    }

    fn sample_metrics() -> ParseMetrics {
        let mut m = ParseMetrics::new(3);
        m.record_predict(0, 1, false, 0);
        m.record_predict(0, 3, true, 7);
        m.record_predict(2, 2, false, 0);
        m.record_memo_hit();
        m.record_memo_write();
        m.record_memo_write();
        m.finish_parse(120);
        m
    }

    #[test]
    fn snapshot_json_round_trips() {
        let m = sample_metrics();
        let snap = m.snapshot(0xdead_beef, |d| format!("rule{d}"));
        // Zero-event decision 1 is omitted.
        assert_eq!(snap.decisions.len(), 2);
        let json = snap.to_json("interp", false);
        let (engine, back) = MetricsSnapshot::from_json(&Json::parse(&json).unwrap()).unwrap();
        assert_eq!(engine, "interp");
        assert_eq!(back, snap);
        // Timing round-trip.
        let mut timed = snap.clone();
        timed.record_latency(1500);
        let json = timed.to_json("session", true);
        let (_, back) = MetricsSnapshot::from_json(&Json::parse(&json).unwrap()).unwrap();
        assert_eq!(back, timed);
        // Deterministic form drops timing even when present.
        let json = timed.to_json("session", false);
        let (_, back) = MetricsSnapshot::from_json(&Json::parse(&json).unwrap()).unwrap();
        assert_eq!(back, snap, "timing fields must not leak into the deterministic form");
    }

    #[test]
    fn merge_is_cellwise() {
        let m = sample_metrics();
        let a = m.snapshot(7, |d| format!("r{d}"));
        let mut twice = a.clone();
        twice.merge(&a);
        assert_eq!(twice.parses, 2 * a.parses);
        assert_eq!(twice.tokens, 2 * a.tokens);
        assert_eq!(twice.decisions[0].counters.events, 2 * a.decisions[0].counters.events);
        assert_eq!(
            twice.decisions[0].counters.la_max, a.decisions[0].counters.la_max,
            "la_max merges by max"
        );
    }

    #[test]
    fn reset_clears_everything_but_enabled() {
        let mut m = sample_metrics();
        assert!(!m.is_zero());
        m.set_enabled(false);
        m.reset();
        assert!(m.is_zero(), "reset must clear all counters");
        assert!(!m.enabled(), "the A/B switch survives reset");
        m.record_predict(0, 5, false, 0);
        m.finish_parse(10);
        assert!(m.is_zero(), "disabled metrics must not record");
    }

    #[test]
    fn prometheus_output_validates_and_carries_labels() {
        let m = sample_metrics();
        let mut snap = m.snapshot(0xabcd, |d| format!("rule{d}"));
        snap.record_latency(900);
        let text = snap.to_prometheus("session");
        let samples = validate_prometheus(&text).unwrap_or_else(|e| panic!("{e}\n---\n{text}"));
        assert!(samples > 10, "expected a rich exposition, got {samples} samples");
        assert!(
            text.contains("llstar_parses_total{grammar=\"000000000000abcd\",engine=\"session\"} 1")
        );
        assert!(text.contains("rule=\"rule0\""));
        assert!(text.contains("llstar_parse_latency_micros_count"));
        assert!(text.contains("le=\"+Inf\""));
    }

    #[test]
    fn prometheus_validator_rejects_malformed_text() {
        assert!(validate_prometheus("no_type_decl{a=\"b\"} 1").is_err());
        assert!(validate_prometheus("# TYPE x counter\nx{unbalanced=\"} 1").is_err());
        assert!(validate_prometheus("# TYPE x counter\nx notanumber").is_err());
        assert!(validate_prometheus("# TYPE x wat\n").is_err());
        assert!(validate_prometheus("# TYPE x counter\nx 1\n").is_ok());
    }

    #[test]
    fn registry_sums_across_threads_and_shards() {
        let registry = MetricsRegistry::new();
        let rules = vec!["a".to_string(), "b".to_string(), "c".to_string()];
        let handle = registry.handle(42, "session", &rules);
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let h = handle.clone();
                std::thread::spawn(move || {
                    for _ in 0..50 {
                        h.record(&sample_metrics(), 10);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let snap = handle.snapshot();
        assert_eq!(snap.parses, 200);
        assert_eq!(snap.tokens, 200 * 120);
        assert_eq!(snap.elapsed_micros, 2000);
        assert_eq!(snap.latency_hist.iter().sum::<u64>(), 200);
        assert_eq!(snap.decisions[0].counters.events, 400);
        assert_eq!(snap.decisions[0].counters.la_max, 3, "la_max merges by max across shards");
        // Same-label handle resolves to the same slots.
        let again = registry.handle(42, "session", &rules);
        assert_eq!(again.snapshot().parses, 200);
        // Different engine label is independent.
        let other = registry.handle(42, "interp", &rules);
        assert_eq!(other.snapshot().parses, 0);
        assert_eq!(registry.snapshot_all().len(), 2);
    }

    #[test]
    fn metrics_jsonl_stream_round_trips_with_header() {
        let m = sample_metrics();
        let snap = m.snapshot(9, |d| format!("r{d}"));
        let stream = format!(
            "{}\n{}\n{}\n",
            MetricsSnapshot::stream_header(),
            snap.to_json("interp", false),
            snap.to_json("session", true),
        );
        let parsed = parse_metrics_jsonl(&stream).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].0, "interp");
        assert_eq!(parsed[1].0, "session");
        assert_eq!(parsed[0].1, snap);
        // Version bumps are rejected through the shared checker.
        let bad = format!(
            "{}\n{}\n",
            schema::schema_line("metrics", schema::METRICS_STREAM_VERSION + 1),
            snap.to_json("interp", false)
        );
        let err = parse_metrics_jsonl(&bad).unwrap_err();
        assert!(err.contains("schema version"), "{err}");
    }
}
