//! Runtime prediction tracing: typed events emitted by the parser,
//! consumed through the [`TraceSink`] trait.
//!
//! The event stream is the single source of truth for runtime
//! observability — [`ParseStats`] is a fold over it (see
//! [`ParseStats::apply`]), the `llstar profile` subcommand renders it,
//! and [`JsonlSink`] exports it one JSON object per line. Events carry
//! token indices and counters but never wall-clock timestamps, so the
//! JSONL stream for a given grammar + input is byte-identical across
//! runs.
//!
//! [`ParseStats`]: crate::stats::ParseStats
//! [`ParseStats::apply`]: crate::stats::ParseStats::apply

use llstar_core::json::{quote, Json};
use llstar_core::schema;
use std::collections::VecDeque;
use std::io::{self, Write};

/// What a memoization event refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemoKind {
    /// A rule sub-parse memo (packrat caching during speculation).
    Rule,
    /// A syntactic-predicate outcome memo.
    SynPred,
}

impl MemoKind {
    fn as_str(self) -> &'static str {
        match self {
            MemoKind::Rule => "rule",
            MemoKind::SynPred => "synpred",
        }
    }

    fn from_name(s: &str) -> Option<MemoKind> {
        match s {
            "rule" => Some(MemoKind::Rule),
            "synpred" => Some(MemoKind::SynPred),
            _ => None,
        }
    }
}

/// One traced runtime event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A rule sub-parse began (span opener; pairs with [`RuleExit`]).
    ///
    /// [`RuleExit`]: TraceEvent::RuleExit
    RuleEnter {
        /// The rule id.
        rule: u32,
        /// Token index at rule entry.
        token_index: usize,
    },
    /// A rule sub-parse concluded (span closer).
    RuleExit {
        /// The rule id.
        rule: u32,
        /// Token index at rule exit.
        token_index: usize,
        /// The alternative the rule completed through: 1-based for
        /// multi-alternative rules, 0 for single-alternative rules, for
        /// failures, and for speculative (non-building) sub-parses.
        alt: u16,
        /// Whether the sub-parse succeeded.
        ok: bool,
    },
    /// A decision's lookahead-DFA simulation began.
    PredictStart {
        /// The decision id.
        decision: u32,
        /// Token index where prediction started.
        token_index: usize,
    },
    /// A decision's prediction concluded with an alternative.
    PredictStop {
        /// The decision id.
        decision: u32,
        /// Token index where prediction started (no tokens consumed).
        token_index: usize,
        /// The predicted alternative (1-based).
        alt: u16,
        /// Lookahead depth charged to this event (≥ 1; includes
        /// speculation depth when backtracking decided).
        lookahead: u64,
        /// DFA states visited, in order, starting at state 0.
        path: Vec<u32>,
        /// Whether a speculative sub-parse ran.
        backtracked: bool,
        /// Deepest speculation (tokens), 0 when none ran.
        spec_depth: u64,
    },
    /// A speculative parse of a syntactic predicate began.
    BacktrackEnter {
        /// The syntactic predicate id.
        synpred: u32,
        /// Token index at speculation start.
        token_index: usize,
        /// Speculation nesting depth already active (0 = outermost).
        nesting: u32,
    },
    /// A speculative parse concluded (stream rewound).
    BacktrackExit {
        /// The syntactic predicate id.
        synpred: u32,
        /// Token index at speculation start.
        token_index: usize,
        /// Whether the speculative parse matched.
        matched: bool,
        /// Tokens consumed speculatively before rewinding.
        consumed: u64,
        /// Speculation nesting depth (matches the enter event).
        nesting: u32,
    },
    /// A memoized sub-parse result was served without re-parsing.
    MemoHit {
        /// What the memo caches.
        kind: MemoKind,
        /// Rule or synpred id.
        id: u32,
        /// Token index the memo is keyed on.
        token_index: usize,
        /// Whether the cached outcome was a successful parse.
        success: bool,
    },
    /// A sub-parse result was written into the memo table.
    MemoWrite {
        /// What the memo caches.
        kind: MemoKind,
        /// Rule or synpred id.
        id: u32,
        /// Token index the memo is keyed on.
        token_index: usize,
        /// Whether the recorded outcome was a successful parse.
        success: bool,
    },
    /// A semantic predicate was evaluated.
    Sempred {
        /// The predicate text.
        pred: String,
        /// Token index at evaluation.
        token_index: usize,
        /// The hook's verdict.
        outcome: bool,
    },
    /// A syntax error was recorded (possibly during speculation, where it
    /// steers backtracking rather than failing the parse).
    SyntaxError {
        /// Token index of the offending token.
        token_index: usize,
        /// Whether the parser was speculating.
        speculating: bool,
    },
    /// Error recovery engaged after a failed match or prediction (never
    /// during speculation).
    Recover {
        /// Token index of the recorded error.
        token_index: usize,
        /// The rule being parsed when recovery engaged.
        rule: u32,
    },
    /// Recovery consumed tokens to resynchronize on the follow set.
    SyncSkip {
        /// Token index where skipping started.
        token_index: usize,
        /// Number of tokens consumed (0 when already synchronized).
        skipped: u64,
    },
    /// Recovery synthesized a missing token without consuming input
    /// (single-token insertion).
    TokenInserted {
        /// Token index where the synthetic token was inserted.
        token_index: usize,
        /// The synthesized token type.
        ttype: u32,
    },
    /// Recovery deleted an extraneous token (single-token deletion).
    TokenDeleted {
        /// Token index of the deleted token.
        token_index: usize,
        /// The deleted token's type.
        ttype: u32,
    },
}

impl TraceEvent {
    /// One JSONL line (no trailing newline). No timestamps: output is
    /// byte-deterministic for a fixed grammar + input.
    pub fn to_json(&self) -> String {
        match self {
            TraceEvent::RuleEnter { rule, token_index } => {
                format!("{{\"type\":\"rule-enter\",\"rule\":{rule},\"token\":{token_index}}}")
            }
            TraceEvent::RuleExit { rule, token_index, alt, ok } => format!(
                "{{\"type\":\"rule-exit\",\"rule\":{rule},\"token\":{token_index},\
                 \"alt\":{alt},\"ok\":{ok}}}"
            ),
            TraceEvent::PredictStart { decision, token_index } => format!(
                "{{\"type\":\"predict-start\",\"decision\":{decision},\"token\":{token_index}}}"
            ),
            TraceEvent::PredictStop {
                decision,
                token_index,
                alt,
                lookahead,
                path,
                backtracked,
                spec_depth,
            } => {
                let path: Vec<String> = path.iter().map(u32::to_string).collect();
                format!(
                    "{{\"type\":\"predict-stop\",\"decision\":{decision},\"token\":{token_index},\
                     \"alt\":{alt},\"lookahead\":{lookahead},\"path\":[{}],\
                     \"backtracked\":{backtracked},\"spec_depth\":{spec_depth}}}",
                    path.join(",")
                )
            }
            TraceEvent::BacktrackEnter { synpred, token_index, nesting } => format!(
                "{{\"type\":\"backtrack-enter\",\"synpred\":{synpred},\"token\":{token_index},\
                 \"nesting\":{nesting}}}"
            ),
            TraceEvent::BacktrackExit { synpred, token_index, matched, consumed, nesting } => {
                format!(
                    "{{\"type\":\"backtrack-exit\",\"synpred\":{synpred},\"token\":{token_index},\
                     \"matched\":{matched},\"consumed\":{consumed},\"nesting\":{nesting}}}"
                )
            }
            TraceEvent::MemoHit { kind, id, token_index, success } => format!(
                "{{\"type\":\"memo-hit\",\"kind\":{},\"id\":{id},\"token\":{token_index},\
                 \"success\":{success}}}",
                quote(kind.as_str())
            ),
            TraceEvent::MemoWrite { kind, id, token_index, success } => format!(
                "{{\"type\":\"memo-write\",\"kind\":{},\"id\":{id},\"token\":{token_index},\
                 \"success\":{success}}}",
                quote(kind.as_str())
            ),
            TraceEvent::Sempred { pred, token_index, outcome } => format!(
                "{{\"type\":\"sempred\",\"pred\":{},\"token\":{token_index},\
                 \"outcome\":{outcome}}}",
                quote(pred)
            ),
            TraceEvent::SyntaxError { token_index, speculating } => format!(
                "{{\"type\":\"syntax-error\",\"token\":{token_index},\
                 \"speculating\":{speculating}}}"
            ),
            TraceEvent::Recover { token_index, rule } => {
                format!("{{\"type\":\"recover\",\"token\":{token_index},\"rule\":{rule}}}")
            }
            TraceEvent::SyncSkip { token_index, skipped } => {
                format!("{{\"type\":\"sync-skip\",\"token\":{token_index},\"skipped\":{skipped}}}")
            }
            TraceEvent::TokenInserted { token_index, ttype } => {
                format!("{{\"type\":\"token-inserted\",\"token\":{token_index},\"ttype\":{ttype}}}")
            }
            TraceEvent::TokenDeleted { token_index, ttype } => {
                format!("{{\"type\":\"token-deleted\",\"token\":{token_index},\"ttype\":{ttype}}}")
            }
        }
    }

    /// Parses a value produced by [`TraceEvent::to_json`].
    ///
    /// # Errors
    /// Returns a description when `value` is not a trace event.
    pub fn from_json(value: &Json) -> Result<TraceEvent, String> {
        let num = |name: &str| {
            value.get(name).and_then(Json::as_u64).ok_or_else(|| format!("missing field {name:?}"))
        };
        let flag = |name: &str| {
            value.get(name).and_then(Json::as_bool).ok_or_else(|| format!("missing field {name:?}"))
        };
        let token = || num("token").map(|n| n as usize);
        let memo = |kind_field: &Json| {
            kind_field
                .as_str()
                .and_then(MemoKind::from_name)
                .ok_or_else(|| format!("bad memo kind {kind_field}"))
        };
        match value.get("type").and_then(Json::as_str) {
            Some("rule-enter") => {
                Ok(TraceEvent::RuleEnter { rule: num("rule")? as u32, token_index: token()? })
            }
            Some("rule-exit") => Ok(TraceEvent::RuleExit {
                rule: num("rule")? as u32,
                token_index: token()?,
                alt: num("alt")? as u16,
                ok: flag("ok")?,
            }),
            Some("predict-start") => Ok(TraceEvent::PredictStart {
                decision: num("decision")? as u32,
                token_index: token()?,
            }),
            Some("predict-stop") => Ok(TraceEvent::PredictStop {
                decision: num("decision")? as u32,
                token_index: token()?,
                alt: num("alt")? as u16,
                lookahead: num("lookahead")?,
                path: value
                    .get("path")
                    .and_then(Json::as_array)
                    .ok_or("missing field \"path\"")?
                    .iter()
                    .map(|v| v.as_u64().map(|n| n as u32).ok_or("bad path entry".to_string()))
                    .collect::<Result<_, _>>()?,
                backtracked: flag("backtracked")?,
                spec_depth: num("spec_depth")?,
            }),
            Some("backtrack-enter") => Ok(TraceEvent::BacktrackEnter {
                synpred: num("synpred")? as u32,
                token_index: token()?,
                nesting: num("nesting")? as u32,
            }),
            Some("backtrack-exit") => Ok(TraceEvent::BacktrackExit {
                synpred: num("synpred")? as u32,
                token_index: token()?,
                matched: flag("matched")?,
                consumed: num("consumed")?,
                nesting: num("nesting")? as u32,
            }),
            Some("memo-hit") => Ok(TraceEvent::MemoHit {
                kind: memo(value.get("kind").ok_or("missing field \"kind\"")?)?,
                id: num("id")? as u32,
                token_index: token()?,
                success: flag("success")?,
            }),
            Some("memo-write") => Ok(TraceEvent::MemoWrite {
                kind: memo(value.get("kind").ok_or("missing field \"kind\"")?)?,
                id: num("id")? as u32,
                token_index: token()?,
                success: flag("success")?,
            }),
            Some("sempred") => Ok(TraceEvent::Sempred {
                pred: value
                    .get("pred")
                    .and_then(Json::as_str)
                    .ok_or("missing field \"pred\"")?
                    .to_string(),
                token_index: token()?,
                outcome: flag("outcome")?,
            }),
            Some("syntax-error") => Ok(TraceEvent::SyntaxError {
                token_index: token()?,
                speculating: flag("speculating")?,
            }),
            Some("recover") => {
                Ok(TraceEvent::Recover { token_index: token()?, rule: num("rule")? as u32 })
            }
            Some("sync-skip") => {
                Ok(TraceEvent::SyncSkip { token_index: token()?, skipped: num("skipped")? })
            }
            Some("token-inserted") => {
                Ok(TraceEvent::TokenInserted { token_index: token()?, ttype: num("ttype")? as u32 })
            }
            Some("token-deleted") => {
                Ok(TraceEvent::TokenDeleted { token_index: token()?, ttype: num("ttype")? as u32 })
            }
            Some(other) => Err(format!("unknown event type {other:?}")),
            None => Err("missing event type".into()),
        }
    }
}

/// A consumer of [`TraceEvent`]s. The parser calls [`TraceSink::event`]
/// synchronously; implementations should be cheap (buffer, don't block).
pub trait TraceSink {
    /// Consume one event.
    fn event(&mut self, event: &TraceEvent);

    /// Flush any buffered output.
    ///
    /// # Errors
    /// Propagates I/O errors from writer-backed sinks.
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Discards every event (tracing disabled).
#[derive(Debug, Default, Clone, Copy)]
pub struct NopSink;

impl TraceSink for NopSink {
    fn event(&mut self, _event: &TraceEvent) {}
}

/// An in-memory sink holding the most recent events (bounded), or every
/// event (unbounded).
#[derive(Debug, Default)]
pub struct RingSink {
    events: VecDeque<TraceEvent>,
    capacity: Option<usize>,
    seen: u64,
}

impl RingSink {
    /// A ring keeping the latest `capacity` events.
    pub fn new(capacity: usize) -> Self {
        RingSink { events: VecDeque::new(), capacity: Some(capacity), seen: 0 }
    }

    /// A sink that keeps every event.
    pub fn unbounded() -> Self {
        RingSink::default()
    }

    /// The buffered events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> + '_ {
        self.events.iter()
    }

    /// Total events received, including any evicted from the ring.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.seen - self.events.len() as u64
    }

    /// Consumes the sink, returning the buffered events oldest-first.
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events.into_iter().collect()
    }
}

impl TraceSink for RingSink {
    fn event(&mut self, event: &TraceEvent) {
        self.seen += 1;
        if let Some(cap) = self.capacity {
            if cap == 0 {
                return;
            }
            if self.events.len() == cap {
                self.events.pop_front();
            }
        }
        self.events.push_back(event.clone());
    }
}

/// Streams events to a writer, one JSON object per line, preceded by a
/// `{"type":"schema","stream":"trace","version":…}` header line (written
/// lazily before the first event).
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    out: W,
    error: Option<io::Error>,
    headed: bool,
}

impl<W: Write> JsonlSink<W> {
    /// A sink writing JSONL to `out`.
    pub fn new(out: W) -> Self {
        JsonlSink { out, error: None, headed: false }
    }

    /// Consumes the sink, returning the writer and the first write error
    /// encountered (if any; subsequent events are dropped after one).
    pub fn into_inner(self) -> (W, Option<io::Error>) {
        (self.out, self.error)
    }
}

impl<W: Write> TraceSink for JsonlSink<W> {
    fn event(&mut self, event: &TraceEvent) {
        if self.error.is_some() {
            return;
        }
        if !self.headed {
            self.headed = true;
            let header = schema::StreamKind::Trace.header_line();
            if let Err(e) = writeln!(self.out, "{header}") {
                self.error = Some(e);
                return;
            }
        }
        if let Err(e) = writeln!(self.out, "{}", event.to_json()) {
            self.error = Some(e);
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.out.flush()
    }
}

/// 1-in-N trace sampling: forwards every `n`-th *top-level prediction
/// window* — a [`TraceEvent::PredictStart`] at speculation window depth
/// 0 through its matching [`TraceEvent::PredictStop`], including every
/// nested event in between — and drops the windows in between. Events
/// outside any prediction window (rule spans, recovery) always pass
/// through, so the sampled stream keeps its structural skeleton.
///
/// Sampling is counter-based, not random: the k-th top-level window is
/// kept iff `k % n == 0`, so a sampled stream for a given grammar +
/// input is as byte-deterministic as the full one, and `n = 1` is
/// byte-identical to the unsampled stream. This turns full tracing into
/// a dial (1/64 keeps the event stream's shape at ~1/64 the cost)
/// rather than the on/off cliff the always-on metrics substrate sits
/// beneath; see DESIGN.md's two-tier observability section.
///
/// Windows nest via the same pop-until-match discipline as the coverage
/// fold: a `PredictStop` closes stack entries down to its decision id,
/// so a top-level prediction abandoned by a no-viable error (which never
/// emits its stop) is closed by the next outer stop — until then its
/// dangling entry keeps the sink in that window's fate.
pub struct SamplingSink<'a> {
    inner: &'a mut dyn TraceSink,
    n: u64,
    windows: u64,
    /// Decision ids of the open prediction windows (outermost first).
    stack: Vec<u32>,
    /// Whether the current top-level window is forwarded.
    active: bool,
}

impl<'a> SamplingSink<'a> {
    /// Samples 1 in `n` top-level prediction windows into `inner`
    /// (`n = 0` is treated as 1: keep everything).
    pub fn new(inner: &'a mut dyn TraceSink, n: u64) -> Self {
        SamplingSink { inner, n: n.max(1), windows: 0, stack: Vec::new(), active: true }
    }

    /// Top-level prediction windows seen so far (kept and dropped).
    pub fn windows(&self) -> u64 {
        self.windows
    }
}

impl TraceSink for SamplingSink<'_> {
    fn event(&mut self, event: &TraceEvent) {
        match event {
            TraceEvent::PredictStart { decision, .. } => {
                if self.stack.is_empty() {
                    self.active = self.windows.is_multiple_of(self.n);
                    self.windows += 1;
                }
                self.stack.push(*decision);
                if self.active {
                    self.inner.event(event);
                }
            }
            TraceEvent::PredictStop { decision, .. } => {
                // The stop belongs to the window it closes: decide
                // forwarding before popping.
                let forward = self.stack.is_empty() || self.active;
                if forward {
                    self.inner.event(event);
                }
                while let Some(top) = self.stack.pop() {
                    if top == *decision {
                        break;
                    }
                }
            }
            _ => {
                if self.stack.is_empty() || self.active {
                    self.inner.event(event);
                }
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// Forwards every event to both inner sinks (e.g. a [`JsonlSink`] for
/// export plus a coverage fold, in one traced parse).
pub struct TeeSink<'a>(pub &'a mut dyn TraceSink, pub &'a mut dyn TraceSink);

impl TraceSink for TeeSink<'_> {
    fn event(&mut self, event: &TraceEvent) {
        self.0.event(event);
        self.1.event(event);
    }

    fn flush(&mut self) -> io::Result<()> {
        let first = self.0.flush();
        self.1.flush()?;
        first
    }
}

/// Parses a JSONL event stream (as emitted by [`JsonlSink`]) back into
/// events; blank lines are skipped. A leading schema header line is
/// validated and consumed; headerless streams (pre-versioning exports,
/// in-memory dumps) are accepted as-is.
///
/// # Errors
/// Returns `(1-based line, description)` for the first malformed line,
/// including a header that names another stream or an unsupported
/// version.
pub fn parse_jsonl(text: &str) -> Result<Vec<TraceEvent>, (usize, String)> {
    let mut events = Vec::new();
    let mut first = true;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let value = Json::parse(line).map_err(|e| (i + 1, e))?;
        if std::mem::take(&mut first) && schema::parse_schema_header(&value).is_some() {
            schema::check_header(&value, schema::StreamKind::Trace).map_err(|e| (i + 1, e))?;
            continue;
        }
        events.push(TraceEvent::from_json(&value).map_err(|e| (i + 1, e))?);
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::RuleEnter { rule: 0, token_index: 0 },
            TraceEvent::RuleExit { rule: 0, token_index: 7, alt: 2, ok: true },
            TraceEvent::PredictStart { decision: 0, token_index: 0 },
            TraceEvent::PredictStop {
                decision: 0,
                token_index: 0,
                alt: 2,
                lookahead: 3,
                path: vec![0, 1, 4],
                backtracked: true,
                spec_depth: 3,
            },
            TraceEvent::BacktrackEnter { synpred: 1, token_index: 5, nesting: 0 },
            TraceEvent::BacktrackExit {
                synpred: 1,
                token_index: 5,
                matched: false,
                consumed: 4,
                nesting: 0,
            },
            TraceEvent::MemoHit { kind: MemoKind::Rule, id: 3, token_index: 6, success: true },
            TraceEvent::MemoWrite {
                kind: MemoKind::SynPred,
                id: 1,
                token_index: 5,
                success: false,
            },
            TraceEvent::Sempred { pred: "isTypeName".into(), token_index: 2, outcome: true },
            TraceEvent::SyntaxError { token_index: 9, speculating: true },
            TraceEvent::Recover { token_index: 9, rule: 2 },
            TraceEvent::SyncSkip { token_index: 9, skipped: 3 },
            TraceEvent::TokenInserted { token_index: 4, ttype: 7 },
            TraceEvent::TokenDeleted { token_index: 5, ttype: 8 },
        ]
    }

    #[test]
    fn events_round_trip_through_json() {
        for event in sample_events() {
            let line = event.to_json();
            let parsed = TraceEvent::from_json(&Json::parse(&line).unwrap()).unwrap();
            assert_eq!(parsed, event, "{line}");
            assert_eq!(parsed.to_json(), line, "re-serialization is byte-stable");
        }
    }

    #[test]
    fn jsonl_stream_round_trips() {
        let events = sample_events();
        let mut sink = JsonlSink::new(Vec::new());
        for e in &events {
            sink.event(e);
        }
        sink.flush().unwrap();
        let (bytes, error) = sink.into_inner();
        assert!(error.is_none());
        let text = String::from_utf8(bytes).unwrap();
        assert!(
            text.starts_with("{\"type\":\"schema\",\"stream\":\"trace\",\"version\":2}\n"),
            "{text}"
        );
        assert_eq!(parse_jsonl(&text).unwrap(), events);
        // Headerless streams stay parseable (pre-versioning exports).
        let (_, body) = text.split_once('\n').unwrap();
        assert_eq!(parse_jsonl(body).unwrap(), events);
    }

    #[test]
    fn parse_jsonl_rejects_mismatched_schema() {
        let (line, err) =
            parse_jsonl("{\"type\":\"schema\",\"stream\":\"trace\",\"version\":9}\n").unwrap_err();
        assert_eq!(line, 1);
        assert!(err.contains("version 9"), "{err}");
        let (_, err) =
            parse_jsonl("{\"type\":\"schema\",\"stream\":\"diagnostics\",\"version\":1}\n")
                .unwrap_err();
        assert!(err.contains("stream mismatch"), "{err}");
    }

    #[test]
    fn parse_jsonl_reports_the_bad_line() {
        let (line, _) = parse_jsonl(
            "{\"type\":\"syntax-error\",\"token\":1,\"speculating\":false}\nnot json\n",
        )
        .unwrap_err();
        assert_eq!(line, 2);
        let (line, _) = parse_jsonl("{\"type\":\"martian\"}").unwrap_err();
        assert_eq!(line, 1);
    }

    /// A stream with three top-level prediction windows (the second
    /// containing a nested prediction inside a backtrack) plus
    /// out-of-window structural events.
    fn windowed_events() -> Vec<TraceEvent> {
        let stop = |decision: u32| TraceEvent::PredictStop {
            decision,
            token_index: 0,
            alt: 1,
            lookahead: 1,
            path: vec![0],
            backtracked: false,
            spec_depth: 0,
        };
        vec![
            TraceEvent::RuleEnter { rule: 0, token_index: 0 },
            TraceEvent::PredictStart { decision: 0, token_index: 0 },
            stop(0),
            TraceEvent::PredictStart { decision: 1, token_index: 1 },
            TraceEvent::BacktrackEnter { synpred: 0, token_index: 1, nesting: 0 },
            TraceEvent::PredictStart { decision: 2, token_index: 1 },
            stop(2),
            TraceEvent::BacktrackExit {
                synpred: 0,
                token_index: 1,
                matched: true,
                consumed: 2,
                nesting: 0,
            },
            stop(1),
            TraceEvent::PredictStart { decision: 0, token_index: 3 },
            stop(0),
            TraceEvent::RuleExit { rule: 0, token_index: 4, alt: 1, ok: true },
        ]
    }

    #[test]
    fn sampling_one_in_one_is_byte_identical() {
        let mut full = RingSink::unbounded();
        let mut sampled_inner = RingSink::unbounded();
        {
            let mut sampled = SamplingSink::new(&mut sampled_inner, 1);
            for e in windowed_events() {
                full.event(&e);
                sampled.event(&e);
            }
            assert_eq!(sampled.windows(), 3);
        }
        assert_eq!(sampled_inner.into_events(), full.into_events());
    }

    #[test]
    fn sampling_keeps_whole_windows_and_skeleton() {
        let mut inner = RingSink::unbounded();
        {
            let mut sampled = SamplingSink::new(&mut inner, 2);
            for e in windowed_events() {
                sampled.event(&e);
            }
        }
        let kept = inner.into_events();
        // Windows 0 (decision 0) and 2 (decision 0 again) survive; window
        // 1 — including its nested decision-2 prediction — is dropped
        // whole. Out-of-window rule spans always pass.
        let kinds: Vec<String> = kept
            .iter()
            .map(|e| match e {
                TraceEvent::RuleEnter { .. } => "enter".into(),
                TraceEvent::RuleExit { .. } => "exit".into(),
                TraceEvent::PredictStart { decision, .. } => format!("start{decision}"),
                TraceEvent::PredictStop { decision, .. } => format!("stop{decision}"),
                other => panic!("unexpected sampled event {other:?}"),
            })
            .collect();
        assert_eq!(kinds, ["enter", "start0", "stop0", "start0", "stop0", "exit"]);
    }

    #[test]
    fn sampling_closes_abandoned_windows_on_outer_stop() {
        // A no-viable inner prediction never emits its stop; the outer
        // stop's pop-until-match must still close both entries so the
        // next window gets a fresh sampling decision.
        let mut inner = RingSink::unbounded();
        let mut sampled = SamplingSink::new(&mut inner, 2);
        sampled.event(&TraceEvent::PredictStart { decision: 0, token_index: 0 });
        sampled.event(&TraceEvent::PredictStart { decision: 1, token_index: 0 });
        sampled.event(&TraceEvent::PredictStop {
            decision: 0,
            token_index: 0,
            alt: 1,
            lookahead: 1,
            path: vec![],
            backtracked: false,
            spec_depth: 0,
        });
        assert!(sampled.stack.is_empty(), "outer stop closes the dangling inner entry");
        sampled.event(&TraceEvent::PredictStart { decision: 2, token_index: 1 });
        assert_eq!(sampled.windows(), 2);
    }

    #[test]
    fn ring_sink_bounds_and_counts() {
        let mut sink = RingSink::new(2);
        for e in sample_events() {
            sink.event(&e);
        }
        assert_eq!(sink.seen(), 14);
        assert_eq!(sink.events().count(), 2);
        assert_eq!(sink.dropped(), 12);
        let kept = sink.into_events();
        assert!(matches!(kept[1], TraceEvent::TokenDeleted { .. }), "{kept:?}");

        let mut all = RingSink::unbounded();
        for e in sample_events() {
            all.event(&e);
        }
        assert_eq!(all.dropped(), 0);
        assert_eq!(all.into_events(), sample_events());
    }
}
