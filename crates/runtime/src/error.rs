//! Parse errors with the paper's deepest-token reporting discipline
//! (Section 4.4): errors point at the specific token that killed the
//! prediction or match, not at the decision start.

use llstar_lexer::{Token, TokenType};
use std::fmt;

/// Why a parse failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseErrorKind {
    /// A terminal did not match.
    Mismatch {
        /// The full expected-token set at the failing ATN state. The
        /// token the parser directly required comes first; the rest
        /// follow in ascending token-type order.
        expected: Vec<TokenType>,
        /// Display names aligned with `expected` (so `expected_names[0]`
        /// names the directly-required token, as older messages did).
        expected_names: Vec<String>,
        /// What it found.
        found: TokenType,
    },
    /// No alternative of a decision was viable at the offending token.
    NoViableAlternative {
        /// The rule containing the decision.
        rule: String,
        /// The expected-token set at the decision state (ascending), for
        /// diagnostics; empty when the ATN state was not available.
        expected: Vec<TokenType>,
        /// Display names aligned with `expected`.
        expected_names: Vec<String>,
    },
    /// A gated semantic predicate evaluated to false.
    PredicateFailed {
        /// The predicate's source text.
        predicate: String,
    },
    /// The parser stopped making progress (a loop matched ε forever).
    InfiniteLoop {
        /// The rule being parsed.
        rule: String,
    },
}

impl ParseErrorKind {
    /// A single-token mismatch (the common case for terminal matches and
    /// the EOF check).
    pub fn mismatch_one(expected: TokenType, expected_name: String, found: TokenType) -> Self {
        ParseErrorKind::Mismatch {
            expected: vec![expected],
            expected_names: vec![expected_name],
            found,
        }
    }

    /// Renders an expected-name list as `X` or `one of X, Y, …`.
    pub fn render_expected(names: &[String]) -> String {
        match names {
            [] => "<nothing>".to_string(),
            [one] => one.clone(),
            many => format!("one of {}", many.join(", ")),
        }
    }
}

/// A parse error at a specific token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub kind: ParseErrorKind,
    /// The offending token.
    pub token: Token,
    /// Index of the offending token in the stream — the "deepest symbol
    /// reached" measure used to pick the best error across speculative
    /// attempts.
    pub token_index: usize,
}

impl ParseError {
    /// Keeps the error whose offending token is deeper in the input
    /// (Section 4.4: report errors at the deepest symbol reached by a
    /// failed speculative parse).
    pub fn deepest(self, other: ParseError) -> ParseError {
        if other.token_index > self.token_index {
            other
        } else {
            self
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}:{}: ", self.token.line, self.token.col)?;
        match &self.kind {
            ParseErrorKind::Mismatch { expected_names, found, .. } => {
                write!(
                    f,
                    "expected {}, found {found}",
                    ParseErrorKind::render_expected(expected_names)
                )
            }
            ParseErrorKind::NoViableAlternative { rule, .. } => {
                write!(f, "no viable alternative for rule {rule}")
            }
            ParseErrorKind::PredicateFailed { predicate } => {
                write!(f, "semantic predicate {{{predicate}}}? failed")
            }
            ParseErrorKind::InfiniteLoop { rule } => {
                write!(f, "rule {rule} loops without consuming input")
            }
        }
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;
    use llstar_lexer::Span;

    fn err_at(index: usize) -> ParseError {
        ParseError {
            kind: ParseErrorKind::NoViableAlternative {
                rule: "s".into(),
                expected: vec![],
                expected_names: vec![],
            },
            token: Token::new(TokenType(1), Span::new(index, index + 1), 1, index as u32 + 1),
            token_index: index,
        }
    }

    #[test]
    fn deepest_picks_later_token() {
        let shallow = err_at(2);
        let deep = err_at(7);
        assert_eq!(shallow.clone().deepest(deep.clone()), deep);
        assert_eq!(deep.clone().deepest(shallow.clone()), deep);
        // Ties keep the receiver.
        assert_eq!(shallow.clone().deepest(shallow.clone()), shallow);
    }

    #[test]
    fn display_includes_position_and_kind() {
        let e = ParseError {
            kind: ParseErrorKind::mismatch_one(TokenType(2), "';'".into(), TokenType(3)),
            token: Token::new(TokenType(3), Span::new(10, 11), 4, 2),
            token_index: 5,
        };
        let s = e.to_string();
        assert!(s.contains("line 4:2"), "{s}");
        assert!(s.contains("expected ';'"), "{s}");
        let e2 = ParseError {
            kind: ParseErrorKind::PredicateFailed { predicate: "isType".into() },
            ..e.clone()
        };
        assert!(e2.to_string().contains("isType"));
    }

    #[test]
    fn display_renders_expected_sets() {
        let e = ParseError {
            kind: ParseErrorKind::Mismatch {
                expected: vec![TokenType(2), TokenType(4)],
                expected_names: vec!["'a'".into(), "'b'".into()],
                found: TokenType(3),
            },
            token: Token::new(TokenType(3), Span::new(0, 1), 1, 1),
            token_index: 0,
        };
        let s = e.to_string();
        assert!(s.contains("expected one of 'a', 'b'"), "{s}");
    }
}
