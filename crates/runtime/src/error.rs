//! Parse errors with the paper's deepest-token reporting discipline
//! (Section 4.4): errors point at the specific token that killed the
//! prediction or match, not at the decision start.

use llstar_lexer::{Token, TokenType};
use std::fmt;

/// Why a parse failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseErrorKind {
    /// A terminal did not match.
    Mismatch {
        /// What the parser required.
        expected: TokenType,
        /// A display name for the expected token.
        expected_name: String,
        /// What it found.
        found: TokenType,
    },
    /// No alternative of a decision was viable at the offending token.
    NoViableAlternative {
        /// The rule containing the decision.
        rule: String,
    },
    /// A gated semantic predicate evaluated to false.
    PredicateFailed {
        /// The predicate's source text.
        predicate: String,
    },
    /// The parser stopped making progress (a loop matched ε forever).
    InfiniteLoop {
        /// The rule being parsed.
        rule: String,
    },
}

/// A parse error at a specific token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub kind: ParseErrorKind,
    /// The offending token.
    pub token: Token,
    /// Index of the offending token in the stream — the "deepest symbol
    /// reached" measure used to pick the best error across speculative
    /// attempts.
    pub token_index: usize,
}

impl ParseError {
    /// Keeps the error whose offending token is deeper in the input
    /// (Section 4.4: report errors at the deepest symbol reached by a
    /// failed speculative parse).
    pub fn deepest(self, other: ParseError) -> ParseError {
        if other.token_index > self.token_index {
            other
        } else {
            self
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}:{}: ", self.token.line, self.token.col)?;
        match &self.kind {
            ParseErrorKind::Mismatch { expected_name, found, .. } => {
                write!(f, "expected {expected_name}, found {found}")
            }
            ParseErrorKind::NoViableAlternative { rule } => {
                write!(f, "no viable alternative for rule {rule}")
            }
            ParseErrorKind::PredicateFailed { predicate } => {
                write!(f, "semantic predicate {{{predicate}}}? failed")
            }
            ParseErrorKind::InfiniteLoop { rule } => {
                write!(f, "rule {rule} loops without consuming input")
            }
        }
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;
    use llstar_lexer::Span;

    fn err_at(index: usize) -> ParseError {
        ParseError {
            kind: ParseErrorKind::NoViableAlternative { rule: "s".into() },
            token: Token::new(TokenType(1), Span::new(index, index + 1), 1, index as u32 + 1),
            token_index: index,
        }
    }

    #[test]
    fn deepest_picks_later_token() {
        let shallow = err_at(2);
        let deep = err_at(7);
        assert_eq!(shallow.clone().deepest(deep.clone()), deep);
        assert_eq!(deep.clone().deepest(shallow.clone()), deep);
        // Ties keep the receiver.
        assert_eq!(shallow.clone().deepest(shallow.clone()), shallow);
    }

    #[test]
    fn display_includes_position_and_kind() {
        let e = ParseError {
            kind: ParseErrorKind::Mismatch {
                expected: TokenType(2),
                expected_name: "';'".into(),
                found: TokenType(3),
            },
            token: Token::new(TokenType(3), Span::new(10, 11), 4, 2),
            token_index: 5,
        };
        let s = e.to_string();
        assert!(s.contains("line 4:2"), "{s}");
        assert!(s.contains("expected ';'"), "{s}");
        let e2 = ParseError {
            kind: ParseErrorKind::PredicateFailed { predicate: "isType".into() },
            ..e.clone()
        };
        assert!(e2.to_string().contains("isType"));
    }
}
