//! The LL(*) parse-time engine (Section 4).
//!
//! The parser interprets the grammar's ATN directly: single-successor
//! states execute terminals, rule invocations, predicates and actions;
//! decision states consult their lookahead DFA (Figure 5's configuration
//! change rules) to pick an alternative, gracefully throttling from LL(1)
//! to arbitrary regular lookahead and finally to backtracking via
//! syntactic predicates. Speculative parses memoize rule results (packrat
//! caching, Section 6.2), suppress non-`{{…}}` actions (Section 4.3), and
//! report errors at the deepest token reached (Section 4.4).

use crate::error::{ParseError, ParseErrorKind};
use crate::hooks::{HookContext, Hooks};
use crate::stats::ParseStats;
use crate::stream::TokenStream;
use crate::trace::{MemoKind, TraceEvent, TraceSink};
use crate::tree::ParseTree;
use llstar_core::{Atn, AtnEdge, DecisionId, GrammarAnalysis, PredSource, StateKind};
use llstar_grammar::{Grammar, RuleId, SynPredId};
use std::collections::HashMap;

/// Memoization key: a rule or a syntactic-predicate fragment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum MemoKey {
    Rule(RuleId),
    SynPred(SynPredId),
}

/// Memoized outcome of a speculative sub-parse at a position.
#[derive(Debug, Clone)]
enum MemoResult {
    /// Parsed successfully, stopping at this token index.
    Success(usize),
    /// Failed with this error.
    Failure(ParseError),
}

/// An LL(*) parser over a token stream.
///
/// See [`Parser::parse`] for the entry point and the crate root for a
/// complete example.
pub struct Parser<'g, H: Hooks> {
    grammar: &'g Grammar,
    analysis: &'g GrammarAnalysis,
    tokens: TokenStream,
    hooks: H,
    stats: ParseStats,
    memo: HashMap<(MemoKey, usize), MemoResult>,
    speculating: u32,
    furthest_error: Option<ParseError>,
    memoize: bool,
    trace: Option<&'g mut dyn TraceSink>,
}

impl<'g, H: Hooks> Parser<'g, H> {
    /// Creates a parser. `analysis` must come from [`llstar_core::analyze`]
    /// on the same (post-PEG-mode) grammar.
    pub fn new(
        grammar: &'g Grammar,
        analysis: &'g GrammarAnalysis,
        tokens: TokenStream,
        hooks: H,
    ) -> Self {
        let decision_count = analysis.atn.decisions.len();
        Parser {
            grammar,
            analysis,
            tokens,
            hooks,
            stats: ParseStats::new(decision_count),
            memo: HashMap::new(),
            speculating: 0,
            furthest_error: None,
            memoize: grammar.options.memoize,
            trace: None,
        }
    }

    /// Attaches a trace sink; every subsequent runtime event is forwarded
    /// to it (stats keep accumulating either way — they are a fold over
    /// the same event stream).
    pub fn set_trace_sink(&mut self, sink: &'g mut dyn TraceSink) {
        self.trace = Some(sink);
    }

    /// Routes one runtime event: folds it into the stats, then forwards
    /// it to the attached sink (if any).
    fn emit(&mut self, event: TraceEvent) {
        self.stats.apply(&event);
        if let Some(sink) = self.trace.as_mut() {
            sink.event(&event);
        }
    }

    /// Overrides the grammar's `memoize` option (used by the memoization
    /// ablation experiment).
    pub fn set_memoize(&mut self, memoize: bool) {
        self.memoize = memoize;
    }

    /// Runtime statistics collected so far.
    pub fn stats(&self) -> &ParseStats {
        &self.stats
    }

    /// The hooks, for inspecting embedder state after a parse.
    pub fn hooks(&self) -> &H {
        &self.hooks
    }

    /// Consumes the parser, returning the hooks.
    pub fn into_hooks(self) -> H {
        self.hooks
    }

    fn atn(&self) -> &Atn {
        &self.analysis.atn
    }

    /// Parses starting at `rule_name`.
    ///
    /// # Errors
    /// Returns the deepest [`ParseError`] observed if the input does not
    /// match. The token stream may be partially consumed on failure.
    pub fn parse(&mut self, rule_name: &str) -> Result<ParseTree, ParseError> {
        let rule = self
            .grammar
            .rule_id(rule_name)
            .unwrap_or_else(|| panic!("unknown start rule {rule_name:?}"));
        match self.parse_rule_node(rule, true) {
            Ok(tree) => Ok(tree.expect("building mode returns a tree")),
            Err(e) => Err(self.deepest_error(e)),
        }
    }

    /// Parses `rule_name` and then requires end of file.
    ///
    /// # Errors
    /// As [`Parser::parse`], plus a mismatch error if tokens remain.
    pub fn parse_to_eof(&mut self, rule_name: &str) -> Result<ParseTree, ParseError> {
        let tree = self.parse(rule_name)?;
        if !self.tokens.at_eof() {
            let found = self.tokens.la(1);
            let err = self.error_here(ParseErrorKind::Mismatch {
                expected: llstar_lexer::TokenType::EOF,
                expected_name: "EOF".to_string(),
                found,
            });
            return Err(self.deepest_error(err));
        }
        Ok(tree)
    }

    fn deepest_error(&self, e: ParseError) -> ParseError {
        match &self.furthest_error {
            Some(f) => e.deepest(f.clone()),
            None => e,
        }
    }

    fn error_here(&mut self, kind: ParseErrorKind) -> ParseError {
        let err = ParseError { kind, token: self.tokens.lt(1), token_index: self.tokens.index() };
        self.emit(TraceEvent::SyntaxError {
            token_index: err.token_index,
            speculating: self.speculating > 0,
        });
        self.furthest_error = Some(match self.furthest_error.take() {
            Some(f) => f.deepest(err.clone()),
            None => err.clone(),
        });
        err
    }

    fn hook_ctx(&mut self) -> HookContext {
        HookContext {
            token_index: self.tokens.index(),
            next_token: self.tokens.lt(1),
            speculating: self.speculating > 0,
        }
    }

    /// Parses one rule invocation; returns `None` when not building trees
    /// (speculation).
    fn parse_rule_node(
        &mut self,
        rule: RuleId,
        build: bool,
    ) -> Result<Option<ParseTree>, ParseError> {
        let start = self.tokens.index();
        let key = (MemoKey::Rule(rule), start);
        if self.speculating > 0 && self.memoize {
            if let Some(m) = self.memo.get(&key).cloned() {
                self.emit(TraceEvent::MemoHit {
                    kind: MemoKind::Rule,
                    id: rule.index() as u32,
                    token_index: start,
                    success: matches!(m, MemoResult::Success(_)),
                });
                return match m {
                    MemoResult::Success(stop) => {
                        self.tokens.seek(stop);
                        Ok(None)
                    }
                    MemoResult::Failure(e) => Err(e),
                };
            }
        }
        let entry = self.atn().rule_entry[rule.index()];
        let result = self.interpret(entry, rule, build);
        if self.speculating > 0 && self.memoize {
            let memo_value = match &result {
                Ok(_) => MemoResult::Success(self.tokens.index()),
                Err(e) => MemoResult::Failure(e.clone()),
            };
            self.emit(TraceEvent::MemoWrite {
                kind: MemoKind::Rule,
                id: rule.index() as u32,
                token_index: start,
                success: result.is_ok(),
            });
            self.memo.insert(key, memo_value);
        }
        result.map(|children| {
            build.then(|| {
                let (alt, children) = children.expect("build mode collects children");
                ParseTree::Rule { rule, alt, children }
            })
        })
    }

    /// Interprets a submachine from `entry` to its stop state. Returns the
    /// chosen rule alternative and collected children when building.
    #[allow(clippy::type_complexity)]
    fn interpret(
        &mut self,
        entry: usize,
        rule: RuleId,
        build: bool,
    ) -> Result<Option<(u16, Vec<ParseTree>)>, ParseError> {
        let mut children: Vec<ParseTree> = Vec::new();
        let mut state = entry;
        let mut rule_alt: u16 = 0;
        let mut idle_steps: usize = 0;
        let idle_limit = self.atn().states.len() * 2 + 64;
        loop {
            if self.atn().is_stop_state(state) {
                return Ok(Some((rule_alt, children)).filter(|_| build));
            }
            idle_steps += 1;
            if idle_steps > idle_limit {
                let rule_name = self.grammar.rule(rule).name.clone();
                return Err(self.error_here(ParseErrorKind::InfiniteLoop { rule: rule_name }));
            }
            if let StateKind::Decision(id) = self.atn().states[state].kind {
                let alt = self.predict(id)?;
                if state == entry {
                    rule_alt = alt;
                }
                let (_, target) = self.atn().states[state].edges[alt as usize - 1];
                state = target;
                continue;
            }
            let (edge, target) = self.atn().states[state].edges[0].clone();
            match edge {
                AtnEdge::Epsilon => state = target,
                AtnEdge::Token(expected) => {
                    if self.tokens.la(1) == expected {
                        let tok = self.tokens.consume();
                        idle_steps = 0;
                        if build {
                            children.push(ParseTree::Token(tok));
                        }
                        state = target;
                    } else {
                        let name = self.grammar.vocab.display_name(expected);
                        let found = self.tokens.la(1);
                        return Err(self.error_here(ParseErrorKind::Mismatch {
                            expected,
                            expected_name: name,
                            found,
                        }));
                    }
                }
                AtnEdge::Rule { rule: callee, follow } => {
                    let sub = self.parse_rule_node(callee, build)?;
                    idle_steps = 0;
                    if let Some(tree) = sub {
                        children.push(tree);
                    }
                    state = follow;
                }
                AtnEdge::Pred(p) => {
                    let text = self.grammar.sempred_text(p).to_string();
                    let ctx = self.hook_ctx();
                    let outcome = self.hooks.sempred(&text, &ctx);
                    self.emit(TraceEvent::Sempred {
                        pred: text.clone(),
                        token_index: self.tokens.index(),
                        outcome,
                    });
                    if outcome {
                        state = target;
                    } else {
                        return Err(
                            self.error_here(ParseErrorKind::PredicateFailed { predicate: text })
                        );
                    }
                }
                AtnEdge::SynPred(sp) => {
                    let (ok, _) = self.eval_synpred(sp);
                    if ok {
                        state = target;
                    } else {
                        let predicate = format!("synpred{}", sp.0);
                        return Err(self.error_here(ParseErrorKind::PredicateFailed { predicate }));
                    }
                }
                AtnEdge::NotSynPred(sp) => {
                    let (ok, _) = self.eval_synpred(sp);
                    if !ok {
                        state = target;
                    } else {
                        let predicate = format!("!synpred{}", sp.0);
                        return Err(self.error_here(ParseErrorKind::PredicateFailed { predicate }));
                    }
                }
                AtnEdge::Action(a, always) => {
                    if self.speculating == 0 || always {
                        let text = self.grammar.action_text(a).to_string();
                        let ctx = self.hook_ctx();
                        self.hooks.action(&text, &ctx);
                    }
                    state = target;
                }
            }
        }
    }

    /// Predicts an alternative at a decision by simulating its lookahead
    /// DFA over the remaining input (Figure 5).
    fn predict(&mut self, decision: DecisionId) -> Result<u16, ParseError> {
        let dfa = &self.analysis.decisions[decision.index()].dfa;
        let start_index = self.tokens.index();
        // The DFA path is only materialized when a sink is listening; the
        // stats fold doesn't need it.
        let tracing = self.trace.is_some();
        self.emit(TraceEvent::PredictStart { decision: decision.0, token_index: start_index });
        let mut path: Vec<u32> = if tracing { vec![0] } else { Vec::new() };
        let mut cur = 0usize;
        let mut depth: u64 = 0;
        let mut backtracked = false;
        let mut deepest_spec: u64 = 0;
        let alt = loop {
            let st = &dfa.states[cur];
            if let Some(alt) = st.accept {
                break alt;
            }
            let next = self.tokens.la(depth as usize + 1);
            if let Some(target) = st.target(next) {
                depth += 1;
                cur = target;
                if tracing {
                    path.push(target as u32);
                }
                continue;
            }
            if !st.preds.is_empty() || st.default_alt.is_some() {
                let preds = st.preds.clone();
                let default_alt = st.default_alt;
                let mut chosen = None;
                for (pred, alt) in preds {
                    match pred {
                        PredSource::Sem(p) => {
                            let text = self.grammar.sempred_text(p).to_string();
                            let ctx = self.hook_ctx();
                            let outcome = self.hooks.sempred(&text, &ctx);
                            self.emit(TraceEvent::Sempred {
                                pred: text,
                                token_index: start_index,
                                outcome,
                            });
                            if outcome {
                                chosen = Some(alt);
                                break;
                            }
                        }
                        PredSource::Syn(sp) => {
                            backtracked = true;
                            let (ok, consumed) = self.eval_synpred(sp);
                            deepest_spec = deepest_spec.max(consumed);
                            if ok {
                                chosen = Some(alt);
                                break;
                            }
                        }
                        PredSource::NotSyn(sp) => {
                            backtracked = true;
                            let (ok, consumed) = self.eval_synpred(sp);
                            deepest_spec = deepest_spec.max(consumed);
                            if !ok {
                                chosen = Some(alt);
                                break;
                            }
                        }
                    }
                }
                match chosen.or(default_alt) {
                    Some(alt) => break alt,
                    None => {
                        return Err(self.no_viable(decision, depth));
                    }
                }
            }
            return Err(self.no_viable(decision, depth));
        };
        self.emit(TraceEvent::PredictStop {
            decision: decision.0,
            token_index: start_index,
            alt,
            lookahead: depth.max(1).max(deepest_spec),
            path,
            backtracked,
            spec_depth: deepest_spec,
        });
        Ok(alt)
    }

    /// A no-viable-alternative error at the lookahead token that caused
    /// the DFA error state (Section 4.4).
    fn no_viable(&mut self, decision: DecisionId, depth: u64) -> ParseError {
        let rule = self.atn().decisions[decision.index()].rule;
        let rule_name = self.grammar.rule(rule).name.clone();
        let token = self.tokens.lt(depth as usize + 1);
        let err = ParseError {
            kind: ParseErrorKind::NoViableAlternative { rule: rule_name },
            token,
            token_index: self.tokens.index() + depth as usize,
        };
        self.emit(TraceEvent::SyntaxError {
            token_index: err.token_index,
            speculating: self.speculating > 0,
        });
        self.furthest_error = Some(match self.furthest_error.take() {
            Some(f) => f.deepest(err.clone()),
            None => err.clone(),
        });
        err
    }

    /// Evaluates a syntactic predicate by speculative parse; returns
    /// `(matched, tokens consumed)`. Rewinds the stream.
    fn eval_synpred(&mut self, sp: SynPredId) -> (bool, u64) {
        let start = self.tokens.index();
        let key = (MemoKey::SynPred(sp), start);
        if self.memoize {
            if let Some(m) = self.memo.get(&key).cloned() {
                self.emit(TraceEvent::MemoHit {
                    kind: MemoKind::SynPred,
                    id: sp.0,
                    token_index: start,
                    success: matches!(m, MemoResult::Success(_)),
                });
                return match m {
                    MemoResult::Success(stop) => (true, (stop - start) as u64),
                    MemoResult::Failure(_) => (false, 0),
                };
            }
        }
        let nesting = self.speculating;
        self.emit(TraceEvent::BacktrackEnter { synpred: sp.0, token_index: start, nesting });
        let entry = self.atn().synpred_entry[sp.0 as usize];
        self.speculating += 1;
        let result = self.interpret(entry, RuleId(0), false);
        self.speculating -= 1;
        let consumed = (self.tokens.index() - start) as u64;
        self.tokens.seek(start);
        if self.memoize {
            let value = match &result {
                Ok(_) => MemoResult::Success(start + consumed as usize),
                Err(e) => MemoResult::Failure(e.clone()),
            };
            self.emit(TraceEvent::MemoWrite {
                kind: MemoKind::SynPred,
                id: sp.0,
                token_index: start,
                success: result.is_ok(),
            });
            self.memo.insert(key, value);
        }
        self.emit(TraceEvent::BacktrackExit {
            synpred: sp.0,
            token_index: start,
            matched: result.is_ok(),
            consumed,
            nesting,
        });
        (result.is_ok(), consumed)
    }
}

/// End-to-end convenience: lex `source` with the grammar's scanner, then
/// parse `rule_name` to EOF.
///
/// # Errors
/// Returns lexer/build errors or the parse error, stringified.
pub fn parse_text<H: Hooks>(
    grammar: &Grammar,
    analysis: &GrammarAnalysis,
    source: &str,
    rule_name: &str,
    hooks: H,
) -> Result<(ParseTree, ParseStats), String> {
    let scanner = grammar.lexer.build().map_err(|e| e.to_string())?;
    let tokens = scanner.tokenize(source).map_err(|e| e.to_string())?;
    let mut parser = Parser::new(grammar, analysis, TokenStream::new(tokens), hooks);
    let tree = parser.parse_to_eof(rule_name).map_err(|e| e.to_string())?;
    Ok((tree, parser.stats().clone()))
}

/// Like [`parse_text`], but streams every runtime event into `sink`
/// (`llstar profile` uses this to trace a parse).
///
/// # Errors
/// As [`parse_text`]; the sink receives all events emitted before a
/// failure.
pub fn parse_text_traced<H: Hooks>(
    grammar: &Grammar,
    analysis: &GrammarAnalysis,
    source: &str,
    rule_name: &str,
    hooks: H,
    sink: &mut dyn TraceSink,
) -> Result<(ParseTree, ParseStats), String> {
    let scanner = grammar.lexer.build().map_err(|e| e.to_string())?;
    let tokens = scanner.tokenize(source).map_err(|e| e.to_string())?;
    let mut parser = Parser::new(grammar, analysis, TokenStream::new(tokens), hooks);
    parser.set_trace_sink(sink);
    let tree = parser.parse_to_eof(rule_name).map_err(|e| e.to_string())?;
    Ok((tree, parser.stats().clone()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hooks::{MapHooks, NopHooks};
    use llstar_core::analyze;
    use llstar_grammar::{apply_peg_mode, parse_grammar};

    fn setup(src: &str) -> (Grammar, GrammarAnalysis) {
        let g = apply_peg_mode(parse_grammar(src).unwrap());
        let a = analyze(&g);
        (g, a)
    }

    fn parse_ok(src: &str, input: &str, rule: &str) -> (ParseTree, ParseStats) {
        let (g, a) = setup(src);
        parse_text(&g, &a, input, rule, NopHooks).unwrap()
    }

    fn parse_err(src: &str, input: &str, rule: &str) -> String {
        let (g, a) = setup(src);
        parse_text(&g, &a, input, rule, NopHooks).unwrap_err()
    }

    const FIG1: &str = r#"
        grammar F1;
        s : ID | ID '=' expr | 'unsigned'* 'int' ID | 'unsigned'* ID ID ;
        expr : INT ;
        ID : [a-zA-Z_] [a-zA-Z0-9_]* ;
        INT : [0-9]+ ;
        WS : [ \t\r\n]+ -> skip ;
    "#;

    #[test]
    fn figure1_all_alternatives_parse() {
        for (input, expected_alt) in [
            ("x", 1),
            ("x = 42", 2),
            ("unsigned unsigned int x", 3),
            ("unsigned T y", 4),
            ("T y", 4),
            ("int x", 3),
        ] {
            let (g, a) = setup(FIG1);
            let (tree, _) = parse_text(&g, &a, input, "s", NopHooks).unwrap();
            match tree {
                ParseTree::Rule { alt, .. } => {
                    assert_eq!(alt, expected_alt, "input {input:?}")
                }
                _ => panic!("expected rule node"),
            }
        }
    }

    #[test]
    fn figure1_minimal_lookahead_per_input() {
        // `int x` must be decided with k = 1 (immediate alt 3).
        let (_, stats) = parse_ok(FIG1, "int x", "s");
        assert_eq!(stats.max_lookahead(), 1);
        // `T x` requires k = 2.
        let (_, stats) = parse_ok(FIG1, "T x", "s");
        assert_eq!(stats.max_lookahead(), 2);
        // `unsigned unsigned unsigned int x` scans past the unsigneds and
        // decides upon the distinguishing `int`, the 4th token: k = 4.
        let (_, stats) = parse_ok(FIG1, "unsigned unsigned unsigned int x", "s");
        assert_eq!(stats.max_lookahead(), 4);
    }

    #[test]
    fn figure2_backtracks_only_on_minus_minus() {
        let src = r#"
            grammar F2;
            options { backtrack = true; m = 1; }
            t : '-'* ID | expr ;
            expr : INT | '-' expr ;
            ID : [a-z]+ ;
            INT : [0-9]+ ;
            WS : [ ]+ -> skip ;
        "#;
        // Single '-' prefix: no backtracking.
        let (_, stats) = parse_ok(src, "- 5", "t");
        assert_eq!(stats.total_backtrack_events(), 0, "k<=2 decides without speculation");
        let (_, stats) = parse_ok(src, "x", "t");
        assert_eq!(stats.total_backtrack_events(), 0);
        // '--' prefix forces a speculative parse.
        let (tree, stats) = parse_ok(src, "- - x", "t");
        assert!(stats.total_backtrack_events() > 0, "'--' must trigger backtracking");
        match tree {
            ParseTree::Rule { alt, .. } => assert_eq!(alt, 1),
            _ => unreachable!(),
        }
        let (tree, _) = parse_ok(src, "- - 7", "t");
        match tree {
            ParseTree::Rule { alt, .. } => assert_eq!(alt, 2),
            _ => unreachable!(),
        }
    }

    #[test]
    fn cyclic_lookahead_parses_deep_input() {
        let src = "grammar C; a : b A+ X | c A+ Y ; b : ; c : ; A:'a'; X:'x'; Y:'y';";
        let (tree, stats) = parse_ok(src, "aaaaaaaay", "a");
        match tree {
            ParseTree::Rule { alt, .. } => assert_eq!(alt, 2),
            _ => unreachable!(),
        }
        assert_eq!(stats.max_lookahead(), 9, "scanned to the distinguishing y");
        assert_eq!(stats.total_backtrack_events(), 0, "cyclic DFA, no speculation");
    }

    #[test]
    fn ebnf_loops_and_options() {
        let src = "grammar E; s : A? B* C+ ; A:'a'; B:'b'; C:'c'; WS:[ ]+ -> skip;";
        let (tree, _) = parse_ok(src, "a b b c c c", "s");
        assert_eq!(tree.token_count(), 6);
        let (tree, _) = parse_ok(src, "c", "s");
        assert_eq!(tree.token_count(), 1);
        let err = parse_err(src, "a b", "s");
        assert!(err.contains("no viable alternative") || err.contains("expected"), "{err}");
    }

    #[test]
    fn nested_rules_build_trees() {
        let src = r#"
            grammar N;
            stat : ID '=' expr ';' ;
            expr : term ('+' term)* ;
            term : ID | INT ;
            ID : [a-z]+ ;
            INT : [0-9]+ ;
            WS : [ ]+ -> skip ;
        "#;
        let (g, a) = setup(src);
        let (tree, _) = parse_text(&g, &a, "x = y + 1 ;", "stat", NopHooks).unwrap();
        let sexpr = tree.to_sexpr(&g, "x = y + 1 ;");
        assert_eq!(sexpr, "(stat \"x\" \"=\" (expr (term \"y\") \"+\" (term \"1\")) \";\")");
    }

    #[test]
    fn semantic_predicates_direct_the_parse() {
        // The paper's type-name predicate (Section 4.2).
        let src = r#"
            grammar T;
            s : {isTypeName}? ID ID ';' | ID '=' INT ';' ;
            ID : [a-zA-Z_]+ ;
            INT : [0-9]+ ;
            WS : [ ]+ -> skip ;
        "#;
        let (g, a) = setup(src);
        // With the predicate true, `T x ;` is a declaration.
        let mut hooks = MapHooks::new();
        hooks.on_pred("isTypeName", |_| true);
        let (tree, _) = parse_text(&g, &a, "T x ;", "s", hooks).unwrap();
        match tree {
            ParseTree::Rule { alt, .. } => assert_eq!(alt, 1),
            _ => unreachable!(),
        }
        // With it false, alt 1 is not viable; `x = 3 ;` takes alt 2.
        let mut hooks = MapHooks::new();
        hooks.on_pred("isTypeName", |_| false);
        let (tree, _) = parse_text(&g, &a, "x = 3 ;", "s", hooks).unwrap();
        match tree {
            ParseTree::Rule { alt, .. } => assert_eq!(alt, 2),
            _ => unreachable!(),
        }
    }

    #[test]
    fn actions_run_in_order_but_not_while_speculating() {
        let src = r#"
            grammar A;
            options { backtrack = true; }
            s : x Y | x Z ;
            x : {regular}? {act} {{always}} X ;
            X : 'x' ; Y : 'y' ; Z : 'z' ;
            WS : [ ]+ -> skip ;
        "#;
        let (g, a) = setup(src);
        let scanner = g.lexer.build().unwrap();
        let toks = scanner.tokenize("x z").unwrap();
        let mut parser = Parser::new(&g, &a, TokenStream::new(toks), MapHooks::new());
        parser.parse_to_eof("s").unwrap();
        let log = &parser.hooks().action_log;
        // Decision s is LL(2) here (x Y vs x Z share only x), so whether
        // speculation happened depends on the DFA; the invariant we check:
        // {act} never runs more often than {{always}}, and both ran for
        // the real parse.
        let acts = log.iter().filter(|s| s.as_str() == "act").count();
        let always = log.iter().filter(|s| s.as_str() == "always").count();
        assert_eq!(acts, 1, "{log:?}");
        assert!(always >= acts, "{log:?}");
    }

    #[test]
    fn always_actions_run_during_speculation() {
        let src = r#"
            grammar AA;
            options { backtrack = true; m = 1; }
            t : '-'* x | expr ;
            x : {{spec_act}} ID ;
            expr : INT | '-' expr ;
            ID : [a-z]+ ;
            INT : [0-9]+ ;
            WS : [ ]+ -> skip ;
        "#;
        let (g, a) = setup(src);
        let scanner = g.lexer.build().unwrap();
        let toks = scanner.tokenize("- - q").unwrap();
        let mut parser = Parser::new(&g, &a, TokenStream::new(toks), MapHooks::new());
        parser.parse_to_eof("t").unwrap();
        let always = parser.hooks().action_log.iter().filter(|s| s.as_str() == "spec_act").count();
        assert!(always >= 2, "once speculatively, once for real: {:?}", parser.hooks().action_log);
    }

    #[test]
    fn error_reports_deepest_token() {
        // Section 4.4: A → a+b | a+c on input "aaaaad" should complain
        // about 'd', not the first 'a'.
        let src = "grammar E; s : A+ B | A+ C ; A:'a'; B:'b'; C:'c'; D:'d';";
        let (g, a) = setup(src);
        let err = parse_text(&g, &a, "aaaaad", "s", NopHooks).unwrap_err();
        assert!(err.contains("1:6"), "error should point at the d (col 6): {err}");
    }

    #[test]
    fn eof_required_by_parse_to_eof() {
        let src = "grammar P; s : A ; A : 'a' ;";
        let err = parse_err(src, "aa", "s");
        assert!(err.contains("expected EOF"), "{err}");
    }

    #[test]
    fn memoization_counts_hits() {
        // PEG mode with shared prefixes: speculation should hit the memo.
        let src = r#"
            grammar M;
            options { backtrack = true; }
            s : e '!' | e '?' | e ';' ;
            e : ID '(' e ')' | ID ;
            ID : [a-z]+ ;
            WS : [ ]+ -> skip ;
        "#;
        let (g, a) = setup(src);
        let scanner = g.lexer.build().unwrap();
        let input = "f ( g ( h ) ) ;";
        let toks = scanner.tokenize(input).unwrap();
        let mut parser = Parser::new(&g, &a, TokenStream::new(toks.clone()), NopHooks);
        parser.parse_to_eof("s").unwrap();
        let with_memo = parser.stats().clone();
        assert!(with_memo.memo_hits > 0, "expected memo hits: {with_memo:?}");
    }

    #[test]
    fn stats_track_decision_coverage() {
        let (_, stats) = parse_ok(FIG1, "x = 1", "s");
        assert!(stats.decisions_covered() >= 1);
        assert!(stats.total_events() >= 1);
        assert!(stats.avg_lookahead() >= 1.0);
    }

    #[test]
    #[should_panic(expected = "unknown start rule")]
    fn unknown_start_rule_panics() {
        let (g, a) = setup("grammar U; s : A ; A:'a';");
        let scanner = g.lexer.build().unwrap();
        let toks = scanner.tokenize("a").unwrap();
        let mut parser = Parser::new(&g, &a, TokenStream::new(toks), NopHooks);
        let _ = parser.parse("nope");
    }

    /// A star loop over a nullable body must terminate cleanly (either
    /// by exiting the loop or with an explicit error), never hang.
    #[test]
    fn nullable_loop_body_terminates() {
        let src = "grammar Z; s : (A?)* B ; A:'a'; B:'b'; WS:[ ]+ -> skip;";
        let (g, a) = setup(src);
        for input in ["b", "a b", "a a b"] {
            match parse_text(&g, &a, input, "s", NopHooks) {
                Ok((tree, _)) => assert!(tree.token_count() >= 1, "{input}"),
                Err(e) => assert!(
                    e.contains("loop") || e.contains("viable") || e.contains("expected"),
                    "{input}: {e}"
                ),
            }
        }
    }

    /// Parsing twice from the same parser continues where the first
    /// parse stopped (statement-at-a-time usage).
    #[test]
    fn sequential_parses_share_the_stream() {
        let src = "grammar Q; stat : ID '=' INT ';' ; ID:[a-z]+; INT:[0-9]+; WS:[ ]+ -> skip;";
        let (g, a) = setup(src);
        let scanner = g.lexer.build().unwrap();
        let toks = scanner.tokenize("a = 1 ; b = 2 ;").unwrap();
        let mut parser = Parser::new(&g, &a, TokenStream::new(toks), NopHooks);
        let t1 = parser.parse("stat").unwrap();
        let t2 = parser.parse("stat").unwrap();
        assert_eq!(t1.token_count(), 4);
        assert_eq!(t2.token_count(), 4);
        assert!(parser.parse("stat").is_err(), "stream exhausted");
    }

    /// into_hooks returns embedder state after the parse.
    #[test]
    fn into_hooks_recovers_state() {
        let src = "grammar H; s : {note} A ; A:'a';";
        let (g, a) = setup(src);
        let scanner = g.lexer.build().unwrap();
        let toks = scanner.tokenize("a").unwrap();
        let mut parser = Parser::new(&g, &a, TokenStream::new(toks), MapHooks::new());
        parser.parse_to_eof("s").unwrap();
        let hooks = parser.into_hooks();
        assert_eq!(hooks.action_log, vec!["note"]);
    }

    #[test]
    fn trace_events_reconstruct_stats() {
        use crate::trace::RingSink;
        // A backtracking grammar: the trace must carry predictions,
        // backtrack enter/exit pairs, and memo traffic.
        let src = r#"
            grammar TR;
            options { backtrack = true; m = 1; }
            t : '-'* ID | expr ;
            expr : INT | '-' expr ;
            ID : [a-z]+ ;
            INT : [0-9]+ ;
            WS : [ ]+ -> skip ;
        "#;
        let (g, a) = setup(src);
        let mut sink = RingSink::unbounded();
        let (_, stats) = parse_text_traced(&g, &a, "- - x", "t", NopHooks, &mut sink).unwrap();
        let events: Vec<_> = sink.into_events();
        assert!(events.iter().any(|e| matches!(e, TraceEvent::PredictStart { .. })));
        assert!(events.iter().any(|e| matches!(e, TraceEvent::BacktrackEnter { .. })));
        assert!(events.iter().any(|e| matches!(e, TraceEvent::BacktrackExit { .. })));
        // The stats are exactly the fold of the event stream.
        let folded = ParseStats::from_events(a.atn.decisions.len(), &events);
        assert_eq!(folded, stats);
        // Enter/exit events pair up.
        let enters = events.iter().filter(|e| matches!(e, TraceEvent::BacktrackEnter { .. }));
        let exits = events.iter().filter(|e| matches!(e, TraceEvent::BacktrackExit { .. }));
        assert_eq!(enters.count(), exits.count());
    }

    #[test]
    fn trace_records_dfa_path_and_stats_match_untraced_run() {
        use crate::trace::RingSink;
        let (g, a) = setup(FIG1);
        let input = "unsigned unsigned int x";
        let mut sink = RingSink::unbounded();
        let (_, traced) = parse_text_traced(&g, &a, input, "s", NopHooks, &mut sink).unwrap();
        let (_, untraced) = parse_text(&g, &a, input, "s", NopHooks).unwrap();
        assert_eq!(traced, untraced, "tracing must not change the counters");
        let path = sink
            .events()
            .find_map(|e| match e {
                TraceEvent::PredictStop { path, .. } => Some(path.clone()),
                _ => None,
            })
            .expect("at least one prediction");
        assert_eq!(path[0], 0, "paths start at DFA state 0");
        assert!(path.len() >= 2, "the k=4 decision walks several states: {path:?}");
    }

    #[test]
    fn sempred_and_syntax_error_events_are_traced() {
        use crate::trace::RingSink;
        let src = r#"
            grammar TS;
            s : {isTypeName}? ID ID ';' | ID '=' INT ';' ;
            ID : [a-zA-Z_]+ ;
            INT : [0-9]+ ;
            WS : [ ]+ -> skip ;
        "#;
        let (g, a) = setup(src);
        let mut hooks = MapHooks::new();
        hooks.on_pred("isTypeName", |_| true);
        let mut sink = RingSink::unbounded();
        parse_text_traced(&g, &a, "T x ;", "s", hooks, &mut sink).unwrap();
        assert!(
            sink.events().any(|e| matches!(e, TraceEvent::Sempred { outcome: true, .. })),
            "sempred evaluation must be traced"
        );

        let mut sink = RingSink::unbounded();
        let err = parse_text_traced(&g, &a, "x = ;", "s", NopHooks, &mut sink);
        assert!(err.is_err());
        assert!(
            sink.events().any(|e| matches!(e, TraceEvent::SyntaxError { .. })),
            "the failure must appear in the trace"
        );
    }

    #[test]
    fn lexer_error_propagates() {
        let (g, a) = setup("grammar L; s : A ; A:'a';");
        let err = parse_text(&g, &a, "%", "s", NopHooks).unwrap_err();
        assert!(err.contains("no lexer rule"), "{err}");
    }
}
