//! The LL(*) parse-time engine (Section 4).
//!
//! The parser interprets the grammar's ATN directly: single-successor
//! states execute terminals, rule invocations, predicates and actions;
//! decision states consult their lookahead DFA (Figure 5's configuration
//! change rules) to pick an alternative, gracefully throttling from LL(1)
//! to arbitrary regular lookahead and finally to backtracking via
//! syntactic predicates. Speculative parses memoize rule results (packrat
//! caching, Section 6.2), suppress non-`{{…}}` actions (Section 4.3), and
//! report errors at the deepest token reached (Section 4.4).

use crate::error::{ParseError, ParseErrorKind};
use crate::hooks::{HookContext, Hooks};
use crate::metrics::{MetricsSnapshot, ParseMetrics};
use crate::recovery::{DefaultErrorStrategy, ErrorStrategy, Repair, RepairContext};
use crate::stats::ParseStats;
use crate::stream::TokenStream;
use crate::trace::{MemoKind, TraceEvent, TraceSink};
use crate::tree::ParseTree;
use llstar_core::{
    Atn, AtnEdge, AtnStateId, DecisionId, GrammarAnalysis, PredSource, StateKind, NO_TARGET,
};
use llstar_grammar::{Grammar, RuleId, SynPredId};
use llstar_lexer::{Token, TokenType};

/// Memoized outcome of a speculative sub-parse at a position.
///
/// Memo storage is a flat table: one row per rule (or syntactic
/// predicate), indexed by token position — O(1) lookups with no hashing,
/// and the rows' allocations are reused across speculation.
#[derive(Debug, Clone, Default)]
enum MemoEntry {
    /// Nothing memoized at this position.
    #[default]
    Vacant,
    /// Parsed successfully, stopping at this token index.
    Success(usize),
    /// Failed with this error.
    Failure(ParseError),
}

/// Flat packrat memo rows, indexed by `row_id × token position`.
#[derive(Debug, Default)]
struct MemoTable {
    rows: Vec<Vec<MemoEntry>>,
}

impl MemoTable {
    fn new(rows: usize) -> Self {
        MemoTable { rows: vec![Vec::new(); rows] }
    }

    fn get(&self, row: usize, pos: usize) -> &MemoEntry {
        self.rows[row].get(pos).unwrap_or(&MemoEntry::Vacant)
    }

    fn set(&mut self, row: usize, pos: usize, entry: MemoEntry) {
        let row = &mut self.rows[row];
        if row.len() <= pos {
            row.resize(pos + 1, MemoEntry::Vacant);
        }
        row[pos] = entry;
    }

    /// Blanks every row in place; the allocations stay warm so a
    /// re-parse fills them without reallocating.
    fn clear(&mut self) {
        for row in &mut self.rows {
            row.clear();
        }
    }
}

/// Recovery-mode state: the pluggable strategy plus the errors recorded
/// so far (capped at `max_errors`).
struct RecoveryState {
    strategy: Box<dyn ErrorStrategy>,
    max_errors: usize,
    errors: Vec<ParseError>,
    /// ANTLR's error-condition flag: set when an error is reported,
    /// cleared when a real token matches. While set, further repairs at
    /// the same corruption site run silently instead of cascading
    /// reports.
    in_error_mode: bool,
    /// ANTLR's `lastErrorIndex` failsafe: the token index of the last
    /// no-viable repair that returned without consuming. A second such
    /// repair at the same index force-consumes one token so an enclosing
    /// loop that keeps re-entering the failing rule cannot spin forever.
    last_error_index: Option<usize>,
}

/// How a repair told the interpreter loop to proceed.
enum RepairOutcome {
    /// Continue interpreting at `state`; `consumed` says whether the
    /// repair advanced the input (and so resets the progress watchdog).
    Continue { state: AtnStateId, consumed: bool },
    /// Re-run the current decision state (resynchronized onto a viable
    /// lookahead token).
    Retry,
    /// Return from the current rule with a partial match.
    Return,
}

/// An LL(*) parser over a token stream.
///
/// See [`Parser::parse`] for the entry point and the crate root for a
/// complete example. [`Parser::enable_recovery`] switches the parser
/// from fail-fast to ANTLR-style error recovery.
pub struct Parser<'g, H: Hooks> {
    grammar: &'g Grammar,
    analysis: &'g GrammarAnalysis,
    tokens: TokenStream,
    hooks: H,
    stats: ParseStats,
    memo_rules: MemoTable,
    memo_preds: MemoTable,
    speculating: u32,
    furthest_error: Option<ParseError>,
    memoize: bool,
    trace: Option<&'g mut dyn TraceSink>,
    recovery: Option<RecoveryState>,
    /// Follow states of the rule invocations currently on the call
    /// stack; their expected sets form the dynamic resynchronization set.
    follow_stack: Vec<AtnStateId>,
    /// Per-decision prediction wall-clock (nanoseconds), indexed by
    /// `DecisionId`. `None` unless [`Parser::enable_decision_timing`]
    /// was called; timing never enters the trace stream or coverage
    /// maps, which must stay byte-deterministic.
    timing: Option<Vec<u64>>,
    /// Predict through the analysis's compiled tables (dense/row-displaced
    /// dispatch) instead of scanning `DfaState::edges`. On by default;
    /// both paths are byte-identical (see `tests/prediction_parity`), and
    /// the linear path remains as the fallback when tables are disabled.
    compiled_dispatch: bool,
    /// The always-on metric counters (lookahead depth, backtrack,
    /// memo traffic, tokens/parse). Unlike the trace pipeline this has
    /// no sink indirection and no per-event values — each record site
    /// is a handful of unconditional array increments.
    metrics: ParseMetrics,
}

impl<'g, H: Hooks> Parser<'g, H> {
    /// Creates a parser. `analysis` must come from [`llstar_core::analyze`]
    /// on the same (post-PEG-mode) grammar.
    pub fn new(
        grammar: &'g Grammar,
        analysis: &'g GrammarAnalysis,
        tokens: TokenStream,
        hooks: H,
    ) -> Self {
        let decision_count = analysis.atn.decisions.len();
        Parser {
            grammar,
            analysis,
            tokens,
            hooks,
            stats: ParseStats::new(decision_count),
            memo_rules: MemoTable::new(grammar.rules.len()),
            memo_preds: MemoTable::new(grammar.synpreds.len()),
            speculating: 0,
            furthest_error: None,
            memoize: grammar.options.memoize,
            trace: None,
            recovery: None,
            follow_stack: Vec::new(),
            timing: None,
            compiled_dispatch: true,
            metrics: ParseMetrics::new(decision_count),
        }
    }

    /// Rearms the parser for a fresh parse over `tokens`: clears all
    /// per-parse state (stats, metrics, memo tables, speculation depth,
    /// recorded errors, resync stack, decision timing) while keeping the grammar,
    /// analysis, hooks, trace sink, and configuration — dispatch mode,
    /// memoization, recovery strategy and error cap — exactly as set.
    /// Memo-table row allocations stay warm, so a long-lived parser
    /// re-parses many inputs without reallocating its tables. This is
    /// the re-entrant entry point [`crate::ParseSession`], the gauntlet
    /// oracle, and the benches drive.
    pub fn reset(&mut self, tokens: TokenStream) {
        self.tokens = tokens;
        self.stats.reset();
        self.metrics.reset();
        self.memo_rules.clear();
        self.memo_preds.clear();
        self.speculating = 0;
        self.furthest_error = None;
        self.follow_stack.clear();
        if let Some(r) = &mut self.recovery {
            r.errors.clear();
            r.in_error_mode = false;
        }
        if let Some(t) = &mut self.timing {
            t.iter_mut().for_each(|slot| *slot = 0);
        }
    }

    /// Selects the prediction dispatch: compiled tables (default) or the
    /// linear edge scan. Exposed so the parity suite can run both paths;
    /// output is byte-identical either way.
    pub fn set_compiled_dispatch(&mut self, compiled: bool) {
        self.compiled_dispatch = compiled;
    }

    /// Starts accumulating per-decision prediction wall-clock, readable
    /// via [`Parser::decision_nanos`]. Display-only: the hotspot table's
    /// time-share column joins this against the (deterministic)
    /// coverage map at render time.
    pub fn enable_decision_timing(&mut self) {
        self.timing = Some(vec![0; self.analysis.atn.decisions.len()]);
    }

    /// Nanoseconds spent predicting, per decision; `None` unless
    /// [`Parser::enable_decision_timing`] was called.
    pub fn decision_nanos(&self) -> Option<&[u64]> {
        self.timing.as_deref()
    }

    /// Switches the parser into recovery mode with the default strategy:
    /// instead of failing on the first syntax error it repairs (via
    /// single-token deletion/insertion or follow-set resynchronization),
    /// records the error, and keeps parsing — up to `max_errors` errors,
    /// after which the parse aborts like the strict engine. Recovered
    /// errors appear as [`ParseTree::Error`] nodes in the tree and in
    /// [`Parser::errors`]. Recovery never engages during speculation, so
    /// backtracking semantics are unchanged.
    pub fn enable_recovery(&mut self, max_errors: usize) {
        self.recovery = Some(RecoveryState {
            strategy: Box::new(DefaultErrorStrategy),
            max_errors,
            errors: Vec::new(),
            in_error_mode: false,
            last_error_index: None,
        });
    }

    /// Replaces the recovery strategy (enabling recovery with no error
    /// cap if it wasn't enabled). Use [`crate::recovery::BailErrorStrategy`]
    /// to get strict semantics without rebuilding the parser.
    pub fn set_error_strategy(&mut self, strategy: Box<dyn ErrorStrategy>) {
        match &mut self.recovery {
            Some(r) => r.strategy = strategy,
            None => {
                self.recovery = Some(RecoveryState {
                    strategy,
                    max_errors: usize::MAX,
                    errors: Vec::new(),
                    in_error_mode: false,
                    last_error_index: None,
                })
            }
        }
    }

    /// The syntax errors recorded by recovery so far, in input order.
    pub fn errors(&self) -> &[ParseError] {
        self.recovery.as_ref().map(|r| r.errors.as_slice()).unwrap_or(&[])
    }

    /// Takes the recorded errors, leaving the parser's list empty.
    pub fn take_errors(&mut self) -> Vec<ParseError> {
        self.recovery.as_mut().map(|r| std::mem::take(&mut r.errors)).unwrap_or_default()
    }

    /// Whether the token stream is exhausted.
    pub fn at_eof(&mut self) -> bool {
        self.tokens.at_eof()
    }

    /// Recovery engages only outside speculation (Section 4.1's
    /// backtracking must still fail fast).
    fn recovering(&self) -> bool {
        self.recovery.is_some() && self.speculating == 0
    }

    /// Attaches a trace sink; every subsequent runtime event is forwarded
    /// to it (stats keep accumulating either way — they are a fold over
    /// the same event stream).
    pub fn set_trace_sink(&mut self, sink: &'g mut dyn TraceSink) {
        self.trace = Some(sink);
    }

    /// Routes one runtime event: folds it into the stats, then forwards
    /// it to the attached sink (if any).
    fn emit(&mut self, event: TraceEvent) {
        self.stats.apply(&event);
        if let Some(sink) = self.trace.as_mut() {
            sink.event(&event);
        }
    }

    /// [`Parser::predict`] behind the optional wall-clock accumulator.
    fn timed_predict(&mut self, id: DecisionId) -> Result<u16, ParseError> {
        if self.timing.is_none() {
            return self.predict(id);
        }
        let started = std::time::Instant::now();
        let out = self.predict(id);
        let nanos = started.elapsed().as_nanos() as u64;
        if let Some(slot) = self.timing.as_mut().and_then(|t| t.get_mut(id.index())) {
            *slot += nanos;
        }
        out
    }

    /// Overrides the grammar's `memoize` option (used by the memoization
    /// ablation experiment).
    pub fn set_memoize(&mut self, memoize: bool) {
        self.memoize = memoize;
    }

    /// Runtime statistics collected so far.
    pub fn stats(&self) -> &ParseStats {
        &self.stats
    }

    /// The always-on metric counters accumulated since the last
    /// [`Parser::reset`].
    pub fn metrics(&self) -> &ParseMetrics {
        &self.metrics
    }

    /// Disables (or re-enables) metric recording. Exists solely so the
    /// `metrics_overhead` bench can measure the off-baseline; metrics
    /// are on by default and stay on in production paths.
    pub fn set_metrics_enabled(&mut self, enabled: bool) {
        self.metrics.set_enabled(enabled);
    }

    /// Exports the metric counters as a labelled snapshot: fingerprinted
    /// to the grammar, with each decision row named after its owning
    /// rule. Deterministic for a given parse sequence — the parity
    /// suite compares this byte-for-byte across engines.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let fingerprint = llstar_core::grammar_fingerprint(self.grammar);
        self.metrics.snapshot(fingerprint, |d| {
            let rule = self.analysis.atn.decisions[d].rule;
            self.grammar.rule(rule).name.clone()
        })
    }

    /// The hooks, for inspecting embedder state after a parse.
    pub fn hooks(&self) -> &H {
        &self.hooks
    }

    /// Consumes the parser, returning the hooks.
    pub fn into_hooks(self) -> H {
        self.hooks
    }

    fn atn(&self) -> &Atn {
        &self.analysis.atn
    }

    /// Parses starting at `rule_name`.
    ///
    /// # Errors
    /// Returns the deepest [`ParseError`] observed if the input does not
    /// match. The token stream may be partially consumed on failure.
    pub fn parse(&mut self, rule_name: &str) -> Result<ParseTree, ParseError> {
        let rule = self
            .grammar
            .rule_id(rule_name)
            .unwrap_or_else(|| panic!("unknown start rule {rule_name:?}"));
        match self.parse_rule_node(rule, true) {
            Ok(tree) => Ok(tree.expect("building mode returns a tree")),
            Err(e) => Err(self.deepest_error(e)),
        }
    }

    /// Parses `rule_name` and then requires end of file.
    ///
    /// # Errors
    /// As [`Parser::parse`], plus a mismatch error if tokens remain.
    pub fn parse_to_eof(&mut self, rule_name: &str) -> Result<ParseTree, ParseError> {
        let mut tree = self.parse(rule_name)?;
        if !self.tokens.at_eof() {
            let found = self.tokens.la(1);
            let err = self.error_here(ParseErrorKind::mismatch_one(
                TokenType::EOF,
                "EOF".to_string(),
                found,
            ));
            if self.recovering() {
                let rule = self.grammar.rule_id(rule_name).expect("resolved by parse");
                if let Err(e) = self.note_error(err, rule) {
                    return Err(self.deepest_error(e));
                }
                // Trailing junk: consume to EOF into an error node.
                let start = self.tokens.index();
                let mut skipped = Vec::new();
                while !self.tokens.at_eof() {
                    skipped.push(self.tokens.consume());
                }
                self.emit(TraceEvent::SyncSkip {
                    token_index: start,
                    skipped: skipped.len() as u64,
                });
                if let ParseTree::Rule { children, .. } = &mut tree {
                    children.push(ParseTree::Error { tokens: skipped, inserted: None });
                }
                self.metrics.finish_parse(self.tokens.index() as u64);
                return Ok(tree);
            }
            return Err(self.deepest_error(err));
        }
        self.metrics.finish_parse(self.tokens.index() as u64);
        Ok(tree)
    }

    fn deepest_error(&self, e: ParseError) -> ParseError {
        match &self.furthest_error {
            Some(f) => e.deepest(f.clone()),
            None => e,
        }
    }

    fn error_here(&mut self, kind: ParseErrorKind) -> ParseError {
        let err = ParseError { kind, token: self.tokens.lt(1), token_index: self.tokens.index() };
        self.emit(TraceEvent::SyntaxError {
            token_index: err.token_index,
            speculating: self.speculating > 0,
        });
        self.furthest_error = Some(match self.furthest_error.take() {
            Some(f) => f.deepest(err.clone()),
            None => err.clone(),
        });
        err
    }

    fn hook_ctx(&mut self) -> HookContext {
        HookContext {
            token_index: self.tokens.index(),
            next_token: self.tokens.lt(1),
            speculating: self.speculating > 0,
        }
    }

    /// Parses one rule invocation; returns `None` when not building trees
    /// (speculation).
    fn parse_rule_node(
        &mut self,
        rule: RuleId,
        build: bool,
    ) -> Result<Option<ParseTree>, ParseError> {
        let start = self.tokens.index();
        if self.speculating > 0 && self.memoize {
            let m = self.memo_rules.get(rule.index(), start).clone();
            if !matches!(m, MemoEntry::Vacant) {
                self.metrics.record_memo_hit();
                self.emit(TraceEvent::MemoHit {
                    kind: MemoKind::Rule,
                    id: rule.index() as u32,
                    token_index: start,
                    success: matches!(m, MemoEntry::Success(_)),
                });
                return match m {
                    MemoEntry::Success(stop) => {
                        self.tokens.seek(stop);
                        Ok(None)
                    }
                    MemoEntry::Failure(e) => Err(e),
                    MemoEntry::Vacant => unreachable!("vacant entries fall through"),
                };
            }
        }
        let entry = self.atn().rule_entry[rule.index()];
        self.emit(TraceEvent::RuleEnter { rule: rule.index() as u32, token_index: start });
        let result = self.interpret(entry, rule, build);
        let exit = TraceEvent::RuleExit {
            rule: rule.index() as u32,
            token_index: self.tokens.index(),
            alt: match &result {
                Ok(Some((alt, _))) => *alt,
                _ => 0,
            },
            ok: result.is_ok(),
        };
        self.emit(exit);
        if self.speculating > 0 && self.memoize {
            let memo_value = match &result {
                Ok(_) => MemoEntry::Success(self.tokens.index()),
                Err(e) => MemoEntry::Failure(e.clone()),
            };
            self.metrics.record_memo_write();
            self.emit(TraceEvent::MemoWrite {
                kind: MemoKind::Rule,
                id: rule.index() as u32,
                token_index: start,
                success: result.is_ok(),
            });
            self.memo_rules.set(rule.index(), start, memo_value);
        }
        result.map(|children| {
            build.then(|| {
                let (alt, children) = children.expect("build mode collects children");
                ParseTree::Rule { rule, alt, children }
            })
        })
    }

    /// Interprets a submachine from `entry` to its stop state. Returns the
    /// chosen rule alternative and collected children when building.
    #[allow(clippy::type_complexity)]
    fn interpret(
        &mut self,
        entry: usize,
        rule: RuleId,
        build: bool,
    ) -> Result<Option<(u16, Vec<ParseTree>)>, ParseError> {
        let mut children: Vec<ParseTree> = Vec::new();
        let mut state = entry;
        let mut rule_alt: u16 = 0;
        let mut idle_steps: usize = 0;
        let idle_limit = self.atn().states.len() * 2 + 64;
        loop {
            if self.atn().is_stop_state(state) {
                return Ok(Some((rule_alt, children)).filter(|_| build));
            }
            idle_steps += 1;
            if idle_steps > idle_limit {
                let rule_name = self.grammar.rule(rule).name.clone();
                return Err(self.error_here(ParseErrorKind::InfiniteLoop { rule: rule_name }));
            }
            if let StateKind::Decision(id) = self.atn().states[state].kind {
                let alt = match self.timed_predict(id) {
                    Ok(alt) => alt,
                    Err(err) => {
                        let resync = self.recovering()
                            && self.recovery.as_mut().expect("recovering").strategy.on_no_viable();
                        if !resync {
                            return Err(err);
                        }
                        match self.recover_no_viable(err, state, rule, build, &mut children)? {
                            RepairOutcome::Retry => {
                                idle_steps = 0;
                                continue;
                            }
                            RepairOutcome::Return => {
                                return Ok(Some((rule_alt, children)).filter(|_| build));
                            }
                            RepairOutcome::Continue { .. } => {
                                unreachable!("no-viable repairs retry or return")
                            }
                        }
                    }
                };
                if state == entry {
                    rule_alt = alt;
                }
                let (_, target) = self.atn().states[state].edges[alt as usize - 1];
                state = target;
                continue;
            }
            let (edge, target) = self.atn().states[state].edges[0].clone();
            match edge {
                AtnEdge::Epsilon => state = target,
                AtnEdge::Token(expected) => {
                    if self.tokens.la(1) == expected {
                        let tok = self.tokens.consume();
                        idle_steps = 0;
                        self.token_matched();
                        if build {
                            children.push(ParseTree::Token(tok));
                        }
                        state = target;
                    } else {
                        let err = self.mismatch_here(expected, state);
                        if !self.recovering() {
                            return Err(err);
                        }
                        match self.recover_mismatch(
                            err,
                            expected,
                            target,
                            rule,
                            build,
                            &mut children,
                        )? {
                            RepairOutcome::Continue { state: next, consumed } => {
                                if consumed {
                                    idle_steps = 0;
                                }
                                state = next;
                            }
                            RepairOutcome::Return => {
                                return Ok(Some((rule_alt, children)).filter(|_| build));
                            }
                            RepairOutcome::Retry => {
                                unreachable!("mismatch repairs continue or return")
                            }
                        }
                    }
                }
                AtnEdge::Rule { rule: callee, follow } => {
                    self.follow_stack.push(follow);
                    let sub = self.parse_rule_node(callee, build);
                    self.follow_stack.pop();
                    let sub = sub?;
                    idle_steps = 0;
                    if let Some(tree) = sub {
                        children.push(tree);
                    }
                    state = follow;
                }
                AtnEdge::Pred(p) => {
                    let text = self.grammar.sempred_text(p).to_string();
                    let ctx = self.hook_ctx();
                    let outcome = self.hooks.sempred(&text, &ctx);
                    self.emit(TraceEvent::Sempred {
                        pred: text.clone(),
                        token_index: self.tokens.index(),
                        outcome,
                    });
                    if outcome {
                        state = target;
                    } else {
                        let err =
                            self.error_here(ParseErrorKind::PredicateFailed { predicate: text });
                        if !self.recovering() {
                            return Err(err);
                        }
                        self.recover_gate(err, rule, build, &mut children)?;
                        return Ok(Some((rule_alt, children)).filter(|_| build));
                    }
                }
                AtnEdge::SynPred(sp) => {
                    let (ok, _) = self.eval_synpred(sp);
                    if ok {
                        state = target;
                    } else {
                        let predicate = format!("synpred{}", sp.0);
                        let err = self.error_here(ParseErrorKind::PredicateFailed { predicate });
                        if !self.recovering() {
                            return Err(err);
                        }
                        self.recover_gate(err, rule, build, &mut children)?;
                        return Ok(Some((rule_alt, children)).filter(|_| build));
                    }
                }
                AtnEdge::NotSynPred(sp) => {
                    let (ok, _) = self.eval_synpred(sp);
                    if !ok {
                        state = target;
                    } else {
                        let predicate = format!("!synpred{}", sp.0);
                        let err = self.error_here(ParseErrorKind::PredicateFailed { predicate });
                        if !self.recovering() {
                            return Err(err);
                        }
                        self.recover_gate(err, rule, build, &mut children)?;
                        return Ok(Some((rule_alt, children)).filter(|_| build));
                    }
                }
                AtnEdge::Action(a, always) => {
                    if self.speculating == 0 || always {
                        let text = self.grammar.action_text(a).to_string();
                        let ctx = self.hook_ctx();
                        self.hooks.action(&text, &ctx);
                    }
                    state = target;
                }
            }
        }
    }

    /// Predicts an alternative at a decision by simulating its lookahead
    /// DFA over the remaining input (Figure 5).
    ///
    /// Dispatch normally runs through the grammar's [`CompiledTables`]
    /// (class-mapped array indexing); the linear `DfaState::target` scan
    /// remains both as the fallback when lowering is disabled and as the
    /// parity baseline. The two paths visit the same states in the same
    /// order and emit the same events, byte for byte.
    ///
    /// [`CompiledTables`]: llstar_core::CompiledTables
    fn predict(&mut self, decision: DecisionId) -> Result<u16, ParseError> {
        // `self.analysis` is a `&'g` field; copying it out unties the
        // table borrows from `&mut self`.
        let analysis = self.analysis;
        let dfa = &analysis.decisions[decision.index()].dfa;
        let compiled =
            if self.compiled_dispatch { analysis.tables.get(decision.index()) } else { None };
        let start_index = self.tokens.index();
        // The DFA path is only materialized when a sink is listening; the
        // stats fold doesn't need it.
        let tracing = self.trace.is_some();
        self.emit(TraceEvent::PredictStart { decision: decision.0, token_index: start_index });
        let mut path: Vec<u32> = if tracing { vec![0] } else { Vec::new() };
        let mut cur = 0usize;
        let mut depth: u64 = 0;
        let mut backtracked = false;
        let mut deepest_spec: u64 = 0;
        let alt = loop {
            let accept = match compiled {
                Some((_, table)) => table.accept_alt(cur),
                None => dfa.states[cur].accept,
            };
            if let Some(alt) = accept {
                break alt;
            }
            let next = self.tokens.la(depth as usize + 1);
            let target = match compiled {
                Some((classes, table)) => match table.next(cur, classes.class_of(next)) {
                    NO_TARGET => None,
                    t => Some(t as usize),
                },
                None => dfa.states[cur].target(next),
            };
            if let Some(target) = target {
                depth += 1;
                cur = target;
                if tracing {
                    path.push(target as u32);
                }
                continue;
            }
            let (preds, default_alt) = match compiled {
                Some((_, table)) => (table.preds_of(cur).to_vec(), table.default_of(cur)),
                None => (dfa.states[cur].preds.clone(), dfa.states[cur].default_alt),
            };
            if !preds.is_empty() || default_alt.is_some() {
                let mut chosen = None;
                for (pred, alt) in preds {
                    match pred {
                        PredSource::Sem(p) => {
                            let text = self.grammar.sempred_text(p).to_string();
                            let ctx = self.hook_ctx();
                            let outcome = self.hooks.sempred(&text, &ctx);
                            self.emit(TraceEvent::Sempred {
                                pred: text,
                                token_index: start_index,
                                outcome,
                            });
                            if outcome {
                                chosen = Some(alt);
                                break;
                            }
                        }
                        PredSource::Syn(sp) => {
                            backtracked = true;
                            let (ok, consumed) = self.eval_synpred(sp);
                            deepest_spec = deepest_spec.max(consumed);
                            if ok {
                                chosen = Some(alt);
                                break;
                            }
                        }
                        PredSource::NotSyn(sp) => {
                            backtracked = true;
                            let (ok, consumed) = self.eval_synpred(sp);
                            deepest_spec = deepest_spec.max(consumed);
                            if !ok {
                                chosen = Some(alt);
                                break;
                            }
                        }
                    }
                }
                match chosen.or(default_alt) {
                    Some(alt) => break alt,
                    None => {
                        return Err(self.no_viable(decision, depth));
                    }
                }
            }
            return Err(self.no_viable(decision, depth));
        };
        self.metrics.record_predict(
            decision.index(),
            depth.max(1).max(deepest_spec),
            backtracked,
            deepest_spec,
        );
        self.emit(TraceEvent::PredictStop {
            decision: decision.0,
            token_index: start_index,
            alt,
            lookahead: depth.max(1).max(deepest_spec),
            path,
            backtracked,
            spec_depth: deepest_spec,
        });
        Ok(alt)
    }

    /// A no-viable-alternative error at the lookahead token that caused
    /// the DFA error state (Section 4.4), carrying the decision state's
    /// expected-token set for diagnostics.
    fn no_viable(&mut self, decision: DecisionId, depth: u64) -> ParseError {
        let (rule, dstate) = {
            let d = &self.atn().decisions[decision.index()];
            (d.rule, d.state)
        };
        let rule_name = self.grammar.rule(rule).name.clone();
        let expected = self.analysis.recovery.expected_at(dstate).types();
        let expected_names = expected.iter().map(|&t| self.grammar.vocab.display_name(t)).collect();
        let token = self.tokens.lt(depth as usize + 1);
        let err = ParseError {
            kind: ParseErrorKind::NoViableAlternative { rule: rule_name, expected, expected_names },
            token,
            token_index: self.tokens.index() + depth as usize,
        };
        self.emit(TraceEvent::SyntaxError {
            token_index: err.token_index,
            speculating: self.speculating > 0,
        });
        self.furthest_error = Some(match self.furthest_error.take() {
            Some(f) => f.deepest(err.clone()),
            None => err.clone(),
        });
        err
    }

    /// A mismatch error at the current token: `required` (the token the
    /// failing ATN edge demands) first, then the rest of the state's
    /// expected set in ascending order.
    fn mismatch_here(&mut self, required: TokenType, state: AtnStateId) -> ParseError {
        let analysis = self.analysis;
        let mut expected = vec![required];
        expected.extend(analysis.recovery.expected_at(state).iter().filter(|&t| t != required));
        let expected_names = expected.iter().map(|&t| self.grammar.vocab.display_name(t)).collect();
        let found = self.tokens.la(1);
        self.error_here(ParseErrorKind::Mismatch { expected, expected_names, found })
    }

    /// Records a recovered error, or fails the parse when `max_errors`
    /// is reached. Emits [`TraceEvent::Recover`] for each recorded error.
    /// While the error condition is set (no token matched since the last
    /// report), follow-up errors at the same corruption site are repaired
    /// silently rather than recorded — ANTLR's cascade suppression.
    fn note_error(&mut self, err: ParseError, rule: RuleId) -> Result<(), ParseError> {
        let r = self.recovery.as_ref().expect("recovery enabled");
        if r.in_error_mode {
            return Ok(());
        }
        if r.errors.len() >= r.max_errors {
            return Err(err);
        }
        self.emit(TraceEvent::Recover { token_index: err.token_index, rule: rule.index() as u32 });
        let r = self.recovery.as_mut().expect("recovery enabled");
        r.errors.push(err);
        r.in_error_mode = true;
        Ok(())
    }

    /// A real token matched: end the error condition (subsequent errors
    /// are new corruption sites, reported again).
    fn token_matched(&mut self) {
        if self.speculating == 0 {
            if let Some(r) = &mut self.recovery {
                r.in_error_mode = false;
            }
        }
    }

    /// Whether `t` belongs to the dynamic resynchronization set: the
    /// union of expected sets over the follow states of every rule
    /// invocation on the call stack (ANTLR's combined-follow recovery
    /// set), plus EOF.
    fn in_resync(&self, t: TokenType) -> bool {
        if t == TokenType::EOF {
            return true;
        }
        let rec = &self.analysis.recovery;
        self.follow_stack.iter().any(|&f| rec.expected_at(f).contains(t))
    }

    /// Consumes tokens until the resynchronization set (or EOF), emitting
    /// one [`TraceEvent::SyncSkip`] with the count.
    fn sync_tokens(&mut self) -> Vec<Token> {
        let start = self.tokens.index();
        let mut skipped = Vec::new();
        loop {
            if self.tokens.at_eof() {
                break;
            }
            let la = self.tokens.la(1);
            if self.in_resync(la) {
                break;
            }
            skipped.push(self.tokens.consume());
        }
        self.emit(TraceEvent::SyncSkip { token_index: start, skipped: skipped.len() as u64 });
        skipped
    }

    /// Repairs a failed terminal match (edge requiring `required`, from
    /// the mismatching state toward `target`) per the strategy's choice.
    fn recover_mismatch(
        &mut self,
        err: ParseError,
        required: TokenType,
        target: AtnStateId,
        rule: RuleId,
        build: bool,
        children: &mut Vec<ParseTree>,
    ) -> Result<RepairOutcome, ParseError> {
        self.note_error(err.clone(), rule)?;
        let analysis = self.analysis;
        let ctx = RepairContext {
            expected: required,
            successor_expected: analysis.recovery.expected_at(target),
            la1: self.tokens.la(1),
            la2: self.tokens.la(2),
        };
        let repair = self.recovery.as_mut().expect("recovery enabled").strategy.on_mismatch(&ctx);
        match repair {
            Repair::Abort => Err(err),
            Repair::InsertToken => {
                self.emit(TraceEvent::TokenInserted {
                    token_index: self.tokens.index(),
                    ttype: required.0,
                });
                if build {
                    children
                        .push(ParseTree::Error { tokens: Vec::new(), inserted: Some(required) });
                }
                Ok(RepairOutcome::Continue { state: target, consumed: false })
            }
            Repair::DeleteToken => {
                let bad = self.tokens.consume();
                self.emit(TraceEvent::TokenDeleted {
                    token_index: err.token_index,
                    ttype: bad.ttype.0,
                });
                if self.tokens.la(1) == required {
                    let tok = self.tokens.consume();
                    self.token_matched();
                    if build {
                        children.push(ParseTree::Error { tokens: vec![bad], inserted: None });
                        children.push(ParseTree::Token(tok));
                    }
                    Ok(RepairOutcome::Continue { state: target, consumed: true })
                } else {
                    // The strategy's guess was wrong; resynchronize,
                    // keeping the deleted token in the error node.
                    let mut skipped = vec![bad];
                    skipped.extend(self.sync_tokens());
                    if build {
                        children.push(ParseTree::Error { tokens: skipped, inserted: None });
                    }
                    Ok(RepairOutcome::Return)
                }
            }
            Repair::SyncAndReturn => {
                // ANTLR's `lastErrorIndex` failsafe: a second zero-token
                // resync at the same index means an enclosing loop keeps
                // re-entering the failing rule — force one token of
                // progress before synchronizing.
                let start = self.tokens.index();
                let repeat = self.recovery.as_ref().expect("recovery enabled").last_error_index
                    == Some(start);
                let mut skipped = Vec::new();
                let la1 = self.tokens.la(1);
                if repeat && !self.tokens.at_eof() && self.in_resync(la1) {
                    skipped.push(self.tokens.consume());
                }
                skipped.extend(self.sync_tokens());
                if skipped.is_empty() {
                    self.recovery.as_mut().expect("recovery enabled").last_error_index =
                        Some(start);
                }
                if build {
                    children.push(ParseTree::Error { tokens: skipped, inserted: None });
                }
                Ok(RepairOutcome::Return)
            }
        }
    }

    /// Repairs a failed gating predicate (semantic or syntactic) in a
    /// rule body: report, consume at least the offending token, skip to
    /// the resynchronization set, and return from the rule. Unlike
    /// no-viable repair there is no retry — the predicate already judged
    /// this position unparsable — and at least one token is always
    /// consumed (when not at EOF) so an enclosing loop that re-enters
    /// the rule cannot spin on the same gate forever.
    fn recover_gate(
        &mut self,
        err: ParseError,
        rule: RuleId,
        build: bool,
        children: &mut Vec<ParseTree>,
    ) -> Result<(), ParseError> {
        self.note_error(err, rule)?;
        let start = self.tokens.index();
        let mut skipped = Vec::new();
        if !self.tokens.at_eof() {
            skipped.push(self.tokens.consume());
            loop {
                let la = self.tokens.la(1);
                if la == TokenType::EOF || self.in_resync(la) {
                    break;
                }
                skipped.push(self.tokens.consume());
            }
        }
        self.emit(TraceEvent::SyncSkip { token_index: start, skipped: skipped.len() as u64 });
        if build {
            children.push(ParseTree::Error { tokens: skipped, inserted: None });
        }
        Ok(())
    }

    /// Repairs a failed prediction at decision state `dstate`: consume
    /// until either a token in the decision's expected set appears (then
    /// retry the decision) or a token in the resynchronization set
    /// appears (then return from the rule with a partial match).
    fn recover_no_viable(
        &mut self,
        err: ParseError,
        dstate: AtnStateId,
        rule: RuleId,
        build: bool,
        children: &mut Vec<ParseTree>,
    ) -> Result<RepairOutcome, ParseError> {
        self.note_error(err, rule)?;
        let analysis = self.analysis;
        let expected = analysis.recovery.expected_at(dstate);
        let start = self.tokens.index();
        // Already synchronized: return from the rule without consuming
        // (consuming a token the caller expects would cascade errors).
        // Exception — ANTLR's `lastErrorIndex` failsafe: a *second*
        // non-consuming repair at the same token means an enclosing loop
        // is re-entering the failing rule; force one token of progress.
        let la1 = self.tokens.la(1);
        if self.tokens.at_eof() || self.in_resync(la1) {
            let repeat =
                self.recovery.as_ref().expect("recovery enabled").last_error_index == Some(start);
            if repeat && !self.tokens.at_eof() {
                let skipped = vec![self.tokens.consume()];
                self.emit(TraceEvent::SyncSkip { token_index: start, skipped: 1 });
                if build {
                    children.push(ParseTree::Error { tokens: skipped, inserted: None });
                }
                return Ok(RepairOutcome::Return);
            }
            self.recovery.as_mut().expect("recovery enabled").last_error_index = Some(start);
            self.emit(TraceEvent::SyncSkip { token_index: start, skipped: 0 });
            if build {
                children.push(ParseTree::Error { tokens: Vec::new(), inserted: None });
            }
            return Ok(RepairOutcome::Return);
        }
        // Otherwise the offending token is consumed unconditionally —
        // every repair makes progress.
        let mut skipped = vec![self.tokens.consume()];
        loop {
            let la = self.tokens.la(1);
            let (outcome, done) = if expected.contains(la) {
                (RepairOutcome::Retry, true)
            } else if la == TokenType::EOF || self.in_resync(la) {
                (RepairOutcome::Return, true)
            } else {
                (RepairOutcome::Retry, false)
            };
            if done {
                self.emit(TraceEvent::SyncSkip {
                    token_index: start,
                    skipped: skipped.len() as u64,
                });
                if build {
                    children.push(ParseTree::Error { tokens: skipped, inserted: None });
                }
                return Ok(outcome);
            }
            skipped.push(self.tokens.consume());
        }
    }

    /// Evaluates a syntactic predicate by speculative parse; returns
    /// `(matched, tokens consumed)`. Rewinds the stream.
    fn eval_synpred(&mut self, sp: SynPredId) -> (bool, u64) {
        let start = self.tokens.index();
        if self.memoize {
            let m = self.memo_preds.get(sp.0 as usize, start).clone();
            if !matches!(m, MemoEntry::Vacant) {
                self.metrics.record_memo_hit();
                self.emit(TraceEvent::MemoHit {
                    kind: MemoKind::SynPred,
                    id: sp.0,
                    token_index: start,
                    success: matches!(m, MemoEntry::Success(_)),
                });
                return match m {
                    MemoEntry::Success(stop) => (true, (stop - start) as u64),
                    _ => (false, 0),
                };
            }
        }
        let nesting = self.speculating;
        self.emit(TraceEvent::BacktrackEnter { synpred: sp.0, token_index: start, nesting });
        let entry = self.atn().synpred_entry[sp.0 as usize];
        self.speculating += 1;
        let result = self.interpret(entry, RuleId(0), false);
        self.speculating -= 1;
        let consumed = (self.tokens.index() - start) as u64;
        self.tokens.seek(start);
        if self.memoize {
            let value = match &result {
                Ok(_) => MemoEntry::Success(start + consumed as usize),
                Err(e) => MemoEntry::Failure(e.clone()),
            };
            self.metrics.record_memo_write();
            self.emit(TraceEvent::MemoWrite {
                kind: MemoKind::SynPred,
                id: sp.0,
                token_index: start,
                success: result.is_ok(),
            });
            self.memo_preds.set(sp.0 as usize, start, value);
        }
        self.emit(TraceEvent::BacktrackExit {
            synpred: sp.0,
            token_index: start,
            matched: result.is_ok(),
            consumed,
            nesting,
        });
        (result.is_ok(), consumed)
    }
}

/// End-to-end convenience: lex `source` with the grammar's scanner, then
/// parse `rule_name` to EOF.
///
/// # Errors
/// Returns lexer/build errors or the parse error, stringified.
pub fn parse_text<H: Hooks>(
    grammar: &Grammar,
    analysis: &GrammarAnalysis,
    source: &str,
    rule_name: &str,
    hooks: H,
) -> Result<(ParseTree, ParseStats), String> {
    let scanner = grammar.lexer.build().map_err(|e| e.to_string())?;
    let tokens = scanner.tokenize(source).map_err(|e| e.to_string())?;
    let mut parser = Parser::new(grammar, analysis, TokenStream::new(tokens), hooks);
    let tree = parser.parse_to_eof(rule_name).map_err(|e| e.to_string())?;
    Ok((tree, parser.stats().clone()))
}

/// Like [`parse_text`], but streams every runtime event into `sink`
/// (`llstar profile` uses this to trace a parse).
///
/// # Errors
/// As [`parse_text`]; the sink receives all events emitted before a
/// failure.
pub fn parse_text_traced<H: Hooks>(
    grammar: &Grammar,
    analysis: &GrammarAnalysis,
    source: &str,
    rule_name: &str,
    hooks: H,
    sink: &mut dyn TraceSink,
) -> Result<(ParseTree, ParseStats), String> {
    let scanner = grammar.lexer.build().map_err(|e| e.to_string())?;
    let tokens = scanner.tokenize(source).map_err(|e| e.to_string())?;
    let mut parser = Parser::new(grammar, analysis, TokenStream::new(tokens), hooks);
    parser.set_trace_sink(sink);
    let tree = parser.parse_to_eof(rule_name).map_err(|e| e.to_string())?;
    Ok((tree, parser.stats().clone()))
}

/// Like [`parse_text`], but with error recovery enabled: returns the
/// (possibly repaired) tree together with every syntax error recorded,
/// instead of failing on the first one. An `Err` still occurs for lexer
/// failures, for hard aborts (infinite loops, failed predicates), or
/// when more than `max_errors` errors are found.
///
/// # Errors
/// As [`parse_text`] for non-recoverable failures.
pub fn parse_text_recovering<H: Hooks>(
    grammar: &Grammar,
    analysis: &GrammarAnalysis,
    source: &str,
    rule_name: &str,
    hooks: H,
    max_errors: usize,
) -> Result<(ParseTree, Vec<ParseError>, ParseStats), String> {
    let scanner = grammar.lexer.build().map_err(|e| e.to_string())?;
    let tokens = scanner.tokenize(source).map_err(|e| e.to_string())?;
    let mut parser = Parser::new(grammar, analysis, TokenStream::new(tokens), hooks);
    parser.enable_recovery(max_errors);
    let tree = parser.parse_to_eof(rule_name).map_err(|e| e.to_string())?;
    let errors = parser.take_errors();
    Ok((tree, errors, parser.stats().clone()))
}

/// [`parse_text_recovering`] with every runtime event streamed into
/// `sink` (recovery emits [`TraceEvent::Recover`]/[`TraceEvent::SyncSkip`]/
/// [`TraceEvent::TokenInserted`]/[`TraceEvent::TokenDeleted`]).
///
/// # Errors
/// As [`parse_text_recovering`].
pub fn parse_text_recovering_traced<H: Hooks>(
    grammar: &Grammar,
    analysis: &GrammarAnalysis,
    source: &str,
    rule_name: &str,
    hooks: H,
    max_errors: usize,
    sink: &mut dyn TraceSink,
) -> Result<(ParseTree, Vec<ParseError>, ParseStats), String> {
    let scanner = grammar.lexer.build().map_err(|e| e.to_string())?;
    let tokens = scanner.tokenize(source).map_err(|e| e.to_string())?;
    let mut parser = Parser::new(grammar, analysis, TokenStream::new(tokens), hooks);
    parser.enable_recovery(max_errors);
    parser.set_trace_sink(sink);
    let tree = parser.parse_to_eof(rule_name).map_err(|e| e.to_string())?;
    let errors = parser.take_errors();
    Ok((tree, errors, parser.stats().clone()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hooks::{MapHooks, NopHooks};
    use llstar_core::analyze;
    use llstar_grammar::{apply_peg_mode, parse_grammar};

    fn setup(src: &str) -> (Grammar, GrammarAnalysis) {
        let g = apply_peg_mode(parse_grammar(src).unwrap());
        let a = analyze(&g);
        (g, a)
    }

    fn parse_ok(src: &str, input: &str, rule: &str) -> (ParseTree, ParseStats) {
        let (g, a) = setup(src);
        parse_text(&g, &a, input, rule, NopHooks).unwrap()
    }

    fn parse_err(src: &str, input: &str, rule: &str) -> String {
        let (g, a) = setup(src);
        parse_text(&g, &a, input, rule, NopHooks).unwrap_err()
    }

    const FIG1: &str = r#"
        grammar F1;
        s : ID | ID '=' expr | 'unsigned'* 'int' ID | 'unsigned'* ID ID ;
        expr : INT ;
        ID : [a-zA-Z_] [a-zA-Z0-9_]* ;
        INT : [0-9]+ ;
        WS : [ \t\r\n]+ -> skip ;
    "#;

    #[test]
    fn figure1_all_alternatives_parse() {
        for (input, expected_alt) in [
            ("x", 1),
            ("x = 42", 2),
            ("unsigned unsigned int x", 3),
            ("unsigned T y", 4),
            ("T y", 4),
            ("int x", 3),
        ] {
            let (g, a) = setup(FIG1);
            let (tree, _) = parse_text(&g, &a, input, "s", NopHooks).unwrap();
            match tree {
                ParseTree::Rule { alt, .. } => {
                    assert_eq!(alt, expected_alt, "input {input:?}")
                }
                _ => panic!("expected rule node"),
            }
        }
    }

    #[test]
    fn figure1_minimal_lookahead_per_input() {
        // `int x` must be decided with k = 1 (immediate alt 3).
        let (_, stats) = parse_ok(FIG1, "int x", "s");
        assert_eq!(stats.max_lookahead(), 1);
        // `T x` requires k = 2.
        let (_, stats) = parse_ok(FIG1, "T x", "s");
        assert_eq!(stats.max_lookahead(), 2);
        // `unsigned unsigned unsigned int x` scans past the unsigneds and
        // decides upon the distinguishing `int`, the 4th token: k = 4.
        let (_, stats) = parse_ok(FIG1, "unsigned unsigned unsigned int x", "s");
        assert_eq!(stats.max_lookahead(), 4);
    }

    #[test]
    fn figure2_backtracks_only_on_minus_minus() {
        let src = r#"
            grammar F2;
            options { backtrack = true; m = 1; }
            t : '-'* ID | expr ;
            expr : INT | '-' expr ;
            ID : [a-z]+ ;
            INT : [0-9]+ ;
            WS : [ ]+ -> skip ;
        "#;
        // Single '-' prefix: no backtracking.
        let (_, stats) = parse_ok(src, "- 5", "t");
        assert_eq!(stats.total_backtrack_events(), 0, "k<=2 decides without speculation");
        let (_, stats) = parse_ok(src, "x", "t");
        assert_eq!(stats.total_backtrack_events(), 0);
        // '--' prefix forces a speculative parse.
        let (tree, stats) = parse_ok(src, "- - x", "t");
        assert!(stats.total_backtrack_events() > 0, "'--' must trigger backtracking");
        match tree {
            ParseTree::Rule { alt, .. } => assert_eq!(alt, 1),
            _ => unreachable!(),
        }
        let (tree, _) = parse_ok(src, "- - 7", "t");
        match tree {
            ParseTree::Rule { alt, .. } => assert_eq!(alt, 2),
            _ => unreachable!(),
        }
    }

    #[test]
    fn cyclic_lookahead_parses_deep_input() {
        let src = "grammar C; a : b A+ X | c A+ Y ; b : ; c : ; A:'a'; X:'x'; Y:'y';";
        let (tree, stats) = parse_ok(src, "aaaaaaaay", "a");
        match tree {
            ParseTree::Rule { alt, .. } => assert_eq!(alt, 2),
            _ => unreachable!(),
        }
        assert_eq!(stats.max_lookahead(), 9, "scanned to the distinguishing y");
        assert_eq!(stats.total_backtrack_events(), 0, "cyclic DFA, no speculation");
    }

    #[test]
    fn ebnf_loops_and_options() {
        let src = "grammar E; s : A? B* C+ ; A:'a'; B:'b'; C:'c'; WS:[ ]+ -> skip;";
        let (tree, _) = parse_ok(src, "a b b c c c", "s");
        assert_eq!(tree.token_count(), 6);
        let (tree, _) = parse_ok(src, "c", "s");
        assert_eq!(tree.token_count(), 1);
        let err = parse_err(src, "a b", "s");
        assert!(err.contains("no viable alternative") || err.contains("expected"), "{err}");
    }

    #[test]
    fn nested_rules_build_trees() {
        let src = r#"
            grammar N;
            stat : ID '=' expr ';' ;
            expr : term ('+' term)* ;
            term : ID | INT ;
            ID : [a-z]+ ;
            INT : [0-9]+ ;
            WS : [ ]+ -> skip ;
        "#;
        let (g, a) = setup(src);
        let (tree, _) = parse_text(&g, &a, "x = y + 1 ;", "stat", NopHooks).unwrap();
        let sexpr = tree.to_sexpr(&g, "x = y + 1 ;");
        assert_eq!(sexpr, "(stat \"x\" \"=\" (expr (term \"y\") \"+\" (term \"1\")) \";\")");
    }

    #[test]
    fn semantic_predicates_direct_the_parse() {
        // The paper's type-name predicate (Section 4.2).
        let src = r#"
            grammar T;
            s : {isTypeName}? ID ID ';' | ID '=' INT ';' ;
            ID : [a-zA-Z_]+ ;
            INT : [0-9]+ ;
            WS : [ ]+ -> skip ;
        "#;
        let (g, a) = setup(src);
        // With the predicate true, `T x ;` is a declaration.
        let mut hooks = MapHooks::new();
        hooks.on_pred("isTypeName", |_| true);
        let (tree, _) = parse_text(&g, &a, "T x ;", "s", hooks).unwrap();
        match tree {
            ParseTree::Rule { alt, .. } => assert_eq!(alt, 1),
            _ => unreachable!(),
        }
        // With it false, alt 1 is not viable; `x = 3 ;` takes alt 2.
        let mut hooks = MapHooks::new();
        hooks.on_pred("isTypeName", |_| false);
        let (tree, _) = parse_text(&g, &a, "x = 3 ;", "s", hooks).unwrap();
        match tree {
            ParseTree::Rule { alt, .. } => assert_eq!(alt, 2),
            _ => unreachable!(),
        }
    }

    #[test]
    fn actions_run_in_order_but_not_while_speculating() {
        let src = r#"
            grammar A;
            options { backtrack = true; }
            s : x Y | x Z ;
            x : {regular}? {act} {{always}} X ;
            X : 'x' ; Y : 'y' ; Z : 'z' ;
            WS : [ ]+ -> skip ;
        "#;
        let (g, a) = setup(src);
        let scanner = g.lexer.build().unwrap();
        let toks = scanner.tokenize("x z").unwrap();
        let mut parser = Parser::new(&g, &a, TokenStream::new(toks), MapHooks::new());
        parser.parse_to_eof("s").unwrap();
        let log = &parser.hooks().action_log;
        // Decision s is LL(2) here (x Y vs x Z share only x), so whether
        // speculation happened depends on the DFA; the invariant we check:
        // {act} never runs more often than {{always}}, and both ran for
        // the real parse.
        let acts = log.iter().filter(|s| s.as_str() == "act").count();
        let always = log.iter().filter(|s| s.as_str() == "always").count();
        assert_eq!(acts, 1, "{log:?}");
        assert!(always >= acts, "{log:?}");
    }

    #[test]
    fn always_actions_run_during_speculation() {
        let src = r#"
            grammar AA;
            options { backtrack = true; m = 1; }
            t : '-'* x | expr ;
            x : {{spec_act}} ID ;
            expr : INT | '-' expr ;
            ID : [a-z]+ ;
            INT : [0-9]+ ;
            WS : [ ]+ -> skip ;
        "#;
        let (g, a) = setup(src);
        let scanner = g.lexer.build().unwrap();
        let toks = scanner.tokenize("- - q").unwrap();
        let mut parser = Parser::new(&g, &a, TokenStream::new(toks), MapHooks::new());
        parser.parse_to_eof("t").unwrap();
        let always = parser.hooks().action_log.iter().filter(|s| s.as_str() == "spec_act").count();
        assert!(always >= 2, "once speculatively, once for real: {:?}", parser.hooks().action_log);
    }

    #[test]
    fn error_reports_deepest_token() {
        // Section 4.4: A → a+b | a+c on input "aaaaad" should complain
        // about 'd', not the first 'a'.
        let src = "grammar E; s : A+ B | A+ C ; A:'a'; B:'b'; C:'c'; D:'d';";
        let (g, a) = setup(src);
        let err = parse_text(&g, &a, "aaaaad", "s", NopHooks).unwrap_err();
        assert!(err.contains("1:6"), "error should point at the d (col 6): {err}");
    }

    #[test]
    fn eof_required_by_parse_to_eof() {
        let src = "grammar P; s : A ; A : 'a' ;";
        let err = parse_err(src, "aa", "s");
        assert!(err.contains("expected EOF"), "{err}");
    }

    #[test]
    fn memoization_counts_hits() {
        // PEG mode with shared prefixes: speculation should hit the memo.
        let src = r#"
            grammar M;
            options { backtrack = true; }
            s : e '!' | e '?' | e ';' ;
            e : ID '(' e ')' | ID ;
            ID : [a-z]+ ;
            WS : [ ]+ -> skip ;
        "#;
        let (g, a) = setup(src);
        let scanner = g.lexer.build().unwrap();
        let input = "f ( g ( h ) ) ;";
        let toks = scanner.tokenize(input).unwrap();
        let mut parser = Parser::new(&g, &a, TokenStream::new(toks.clone()), NopHooks);
        parser.parse_to_eof("s").unwrap();
        let with_memo = parser.stats().clone();
        assert!(with_memo.memo_hits > 0, "expected memo hits: {with_memo:?}");
    }

    #[test]
    fn stats_track_decision_coverage() {
        let (_, stats) = parse_ok(FIG1, "x = 1", "s");
        assert!(stats.decisions_covered() >= 1);
        assert!(stats.total_events() >= 1);
        assert!(stats.avg_lookahead() >= 1.0);
    }

    #[test]
    #[should_panic(expected = "unknown start rule")]
    fn unknown_start_rule_panics() {
        let (g, a) = setup("grammar U; s : A ; A:'a';");
        let scanner = g.lexer.build().unwrap();
        let toks = scanner.tokenize("a").unwrap();
        let mut parser = Parser::new(&g, &a, TokenStream::new(toks), NopHooks);
        let _ = parser.parse("nope");
    }

    /// A star loop over a nullable body must terminate cleanly (either
    /// by exiting the loop or with an explicit error), never hang.
    #[test]
    fn nullable_loop_body_terminates() {
        let src = "grammar Z; s : (A?)* B ; A:'a'; B:'b'; WS:[ ]+ -> skip;";
        let (g, a) = setup(src);
        for input in ["b", "a b", "a a b"] {
            match parse_text(&g, &a, input, "s", NopHooks) {
                Ok((tree, _)) => assert!(tree.token_count() >= 1, "{input}"),
                Err(e) => assert!(
                    e.contains("loop") || e.contains("viable") || e.contains("expected"),
                    "{input}: {e}"
                ),
            }
        }
    }

    /// Parsing twice from the same parser continues where the first
    /// parse stopped (statement-at-a-time usage).
    #[test]
    fn sequential_parses_share_the_stream() {
        let src = "grammar Q; stat : ID '=' INT ';' ; ID:[a-z]+; INT:[0-9]+; WS:[ ]+ -> skip;";
        let (g, a) = setup(src);
        let scanner = g.lexer.build().unwrap();
        let toks = scanner.tokenize("a = 1 ; b = 2 ;").unwrap();
        let mut parser = Parser::new(&g, &a, TokenStream::new(toks), NopHooks);
        let t1 = parser.parse("stat").unwrap();
        let t2 = parser.parse("stat").unwrap();
        assert_eq!(t1.token_count(), 4);
        assert_eq!(t2.token_count(), 4);
        assert!(parser.parse("stat").is_err(), "stream exhausted");
    }

    /// into_hooks returns embedder state after the parse.
    #[test]
    fn into_hooks_recovers_state() {
        let src = "grammar H; s : {note} A ; A:'a';";
        let (g, a) = setup(src);
        let scanner = g.lexer.build().unwrap();
        let toks = scanner.tokenize("a").unwrap();
        let mut parser = Parser::new(&g, &a, TokenStream::new(toks), MapHooks::new());
        parser.parse_to_eof("s").unwrap();
        let hooks = parser.into_hooks();
        assert_eq!(hooks.action_log, vec!["note"]);
    }

    #[test]
    fn trace_events_reconstruct_stats() {
        use crate::trace::RingSink;
        // A backtracking grammar: the trace must carry predictions,
        // backtrack enter/exit pairs, and memo traffic.
        let src = r#"
            grammar TR;
            options { backtrack = true; m = 1; }
            t : '-'* ID | expr ;
            expr : INT | '-' expr ;
            ID : [a-z]+ ;
            INT : [0-9]+ ;
            WS : [ ]+ -> skip ;
        "#;
        let (g, a) = setup(src);
        let mut sink = RingSink::unbounded();
        let (_, stats) = parse_text_traced(&g, &a, "- - x", "t", NopHooks, &mut sink).unwrap();
        let events: Vec<_> = sink.into_events();
        assert!(events.iter().any(|e| matches!(e, TraceEvent::PredictStart { .. })));
        assert!(events.iter().any(|e| matches!(e, TraceEvent::BacktrackEnter { .. })));
        assert!(events.iter().any(|e| matches!(e, TraceEvent::BacktrackExit { .. })));
        // The stats are exactly the fold of the event stream.
        let folded = ParseStats::from_events(a.atn.decisions.len(), &events);
        assert_eq!(folded, stats);
        // Enter/exit events pair up.
        let enters = events.iter().filter(|e| matches!(e, TraceEvent::BacktrackEnter { .. }));
        let exits = events.iter().filter(|e| matches!(e, TraceEvent::BacktrackExit { .. }));
        assert_eq!(enters.count(), exits.count());
    }

    #[test]
    fn trace_records_dfa_path_and_stats_match_untraced_run() {
        use crate::trace::RingSink;
        let (g, a) = setup(FIG1);
        let input = "unsigned unsigned int x";
        let mut sink = RingSink::unbounded();
        let (_, traced) = parse_text_traced(&g, &a, input, "s", NopHooks, &mut sink).unwrap();
        let (_, untraced) = parse_text(&g, &a, input, "s", NopHooks).unwrap();
        assert_eq!(traced, untraced, "tracing must not change the counters");
        let path = sink
            .events()
            .find_map(|e| match e {
                TraceEvent::PredictStop { path, .. } => Some(path.clone()),
                _ => None,
            })
            .expect("at least one prediction");
        assert_eq!(path[0], 0, "paths start at DFA state 0");
        assert!(path.len() >= 2, "the k=4 decision walks several states: {path:?}");
    }

    #[test]
    fn sempred_and_syntax_error_events_are_traced() {
        use crate::trace::RingSink;
        let src = r#"
            grammar TS;
            s : {isTypeName}? ID ID ';' | ID '=' INT ';' ;
            ID : [a-zA-Z_]+ ;
            INT : [0-9]+ ;
            WS : [ ]+ -> skip ;
        "#;
        let (g, a) = setup(src);
        let mut hooks = MapHooks::new();
        hooks.on_pred("isTypeName", |_| true);
        let mut sink = RingSink::unbounded();
        parse_text_traced(&g, &a, "T x ;", "s", hooks, &mut sink).unwrap();
        assert!(
            sink.events().any(|e| matches!(e, TraceEvent::Sempred { outcome: true, .. })),
            "sempred evaluation must be traced"
        );

        let mut sink = RingSink::unbounded();
        let err = parse_text_traced(&g, &a, "x = ;", "s", NopHooks, &mut sink);
        assert!(err.is_err());
        assert!(
            sink.events().any(|e| matches!(e, TraceEvent::SyntaxError { .. })),
            "the failure must appear in the trace"
        );
    }

    #[test]
    fn lexer_error_propagates() {
        let (g, a) = setup("grammar L; s : A ; A:'a';");
        let err = parse_text(&g, &a, "%", "s", NopHooks).unwrap_err();
        assert!(err.contains("no lexer rule"), "{err}");
    }

    const STMTS: &str = r#"
        grammar R;
        s : stat+ ;
        stat : ID '=' expr ';' ;
        expr : INT ;
        ID : [a-z]+ ;
        INT : [0-9]+ ;
        WS : [ ]+ -> skip ;
    "#;

    fn recover(src: &str, input: &str, rule: &str) -> (ParseTree, Vec<ParseError>, ParseStats) {
        let (g, a) = setup(src);
        parse_text_recovering(&g, &a, input, rule, NopHooks, 100).unwrap()
    }

    #[test]
    fn recovery_inserts_missing_token() {
        // `a 1 ;` — the `=` is missing; INT can follow it, so recovery
        // synthesizes the `=` without consuming input.
        let (g, a) = setup(STMTS);
        let (tree, errors, stats) =
            parse_text_recovering(&g, &a, "a 1 ; b = 2 ;", "s", NopHooks, 100).unwrap();
        assert_eq!(errors.len(), 1, "{errors:?}");
        assert_eq!(stats.tokens_inserted, 1);
        assert_eq!(tree.error_node_count(), 1);
        let sexpr = tree.to_sexpr(&g, "a 1 ; b = 2 ;");
        assert!(sexpr.contains("<missing '='>"), "{sexpr}");
        // The second statement parses normally after recovery.
        assert!(sexpr.contains("\"b\""), "{sexpr}");
    }

    #[test]
    fn recovery_deletes_extraneous_token() {
        // `a = = 1 ;` — the second `=` is extraneous; la(2) is the INT
        // the parser wants, so recovery deletes one token.
        let (tree, errors, stats) = recover(STMTS, "a = = 1 ;", "s");
        assert_eq!(errors.len(), 1, "{errors:?}");
        assert_eq!(stats.tokens_deleted, 1);
        assert_eq!(tree.error_node_count(), 1);
        assert!(errors[0].to_string().contains("expected"), "{}", errors[0]);
    }

    #[test]
    fn recovery_syncs_to_follow_set() {
        // `+ +` after `=` can be neither deleted (la(2) is another `+`)
        // nor bridged by a single insertion; recovery skips to expr's
        // dynamic follow (`;`) and returns a partial expr.
        let src = r#"
            grammar RS;
            s : stat+ ;
            stat : ID '=' expr ';' ;
            expr : INT ;
            ID : [a-z]+ ;
            INT : [0-9]+ ;
            PLUS : '+' ;
            WS : [ ]+ -> skip ;
        "#;
        let (tree, errors, stats) = recover(src, "a = + + 1 ; c = 2 ;", "s");
        assert_eq!(errors.len(), 1, "{errors:?}");
        assert_eq!(stats.tokens_skipped, 3, "`+ + 1` all land in the error node");
        assert_eq!(tree.error_node_count(), 1);
        // The trailing statement still parses.
        assert_eq!(tree.token_count(), 3 + 4, "a = ; plus c = 2 ;");
    }

    #[test]
    fn recovery_cascade_is_suppressed() {
        // `a = b ;` — `b` is in the resync set (an ID can start the next
        // stat), so expr returns empty, and the follow-up mismatch at `;`
        // silently deletes `b`: one reported error, not a cascade.
        let (tree, errors, stats) = recover(STMTS, "a = b ; c = 2 ;", "s");
        assert_eq!(errors.len(), 1, "cascades collapse to one report: {errors:?}");
        assert_eq!(stats.recoveries, 1);
        assert_eq!(stats.tokens_deleted, 1, "`b` is silently deleted");
        assert_eq!(tree.token_count(), 3 + 4);
    }

    #[test]
    fn recovery_collects_multiple_errors_in_one_pass() {
        let input = "a 1 ; b = ; c = x ; d = 4 ;";
        let (g, a) = setup(STMTS);
        let (tree, errors, stats) =
            parse_text_recovering(&g, &a, input, "s", NopHooks, 100).unwrap();
        assert_eq!(errors.len(), 3, "{errors:?}");
        // Two insertions, plus a sync-return and a silent deletion for
        // the third corruption site.
        assert_eq!(tree.error_node_count(), 4);
        assert_eq!(stats.recoveries, 3);
        // Errors arrive in input order with correct positions.
        let cols: Vec<u32> = errors.iter().map(|e| e.token.col).collect();
        let mut sorted = cols.clone();
        sorted.sort_unstable();
        assert_eq!(cols, sorted, "errors must be reported in input order");
        // The last statement is intact.
        let sexpr = tree.to_sexpr(&g, input);
        assert!(sexpr.contains("\"d\""), "{sexpr}");
    }

    #[test]
    fn clean_input_identical_with_recovery_enabled() {
        let input = "a = 1 ; b = 2 ;";
        let (g, a) = setup(STMTS);
        let (strict_tree, strict_stats) = parse_text(&g, &a, input, "s", NopHooks).unwrap();
        let (tree, errors, stats) =
            parse_text_recovering(&g, &a, input, "s", NopHooks, 100).unwrap();
        assert!(errors.is_empty());
        assert_eq!(tree, strict_tree, "recovery must not perturb clean parses");
        assert_eq!(stats, strict_stats, "recovery must not perturb clean stats");
    }

    #[test]
    fn recovery_caps_at_max_errors() {
        let input = "a 1 ; b = ; c = x ; d = 4 ;";
        let (g, a) = setup(STMTS);
        let err = parse_text_recovering(&g, &a, input, "s", NopHooks, 1).unwrap_err();
        assert!(err.contains("expected"), "{err}");
        // max_errors = 0 behaves like the strict engine.
        assert!(parse_text_recovering(&g, &a, input, "s", NopHooks, 0).is_err());
    }

    #[test]
    fn no_viable_recovery_skips_to_viable_token() {
        let src = r#"
            grammar NV;
            s : stat+ ;
            stat : ID '=' INT ';' | '!' ID ';' ;
            ID : [a-z]+ ;
            INT : [0-9]+ ;
            WS : [ ]+ -> skip ;
        "#;
        // `= 1 ;` matches no alternative of stat; recovery consumes up to
        // the `!` (which can start a stat) and retries the decision.
        let (tree, errors, _) = recover(src, "= 1 ; ! x ;", "s");
        assert_eq!(errors.len(), 1, "{errors:?}");
        assert!(
            matches!(&errors[0].kind, ParseErrorKind::NoViableAlternative { expected, .. }
                if !expected.is_empty()),
            "{errors:?}"
        );
        // The skipped tokens land in an error node inside the retried
        // stat, which then matches `! x ;` normally.
        assert_eq!(tree.error_node_count(), 1);
        assert_eq!(tree.token_count(), 3, "! x ; survives");
    }

    #[test]
    fn eof_trailing_junk_recovered() {
        let (tree, errors, stats) = recover("grammar P; s : A ; A : 'a' ;", "aa", "s");
        assert_eq!(errors.len(), 1);
        assert!(
            matches!(&errors[0].kind, ParseErrorKind::Mismatch { expected_names, .. }
                if expected_names == &["EOF".to_string()]),
            "{errors:?}"
        );
        assert_eq!(tree.error_node_count(), 1, "trailing junk lands in an error node");
        assert_eq!(stats.tokens_skipped, 1);
    }

    #[test]
    fn recovery_never_engages_during_speculation() {
        let src = r#"
            grammar F2;
            options { backtrack = true; m = 1; }
            t : '-'* ID | expr ;
            expr : INT | '-' expr ;
            ID : [a-z]+ ;
            INT : [0-9]+ ;
            WS : [ ]+ -> skip ;
        "#;
        let (g, a) = setup(src);
        let (strict_tree, _) = parse_text(&g, &a, "- - x", "t", NopHooks).unwrap();
        let (tree, errors, stats) =
            parse_text_recovering(&g, &a, "- - x", "t", NopHooks, 100).unwrap();
        assert!(errors.is_empty(), "speculative failures are not user errors: {errors:?}");
        assert_eq!(tree, strict_tree);
        assert!(stats.total_backtrack_events() > 0, "the input still backtracks");
        assert_eq!(stats.recoveries, 0);
    }

    #[test]
    fn recovery_trace_events_fold_into_stats() {
        use crate::trace::RingSink;
        let (g, a) = setup(STMTS);
        let input = "a 1 ; b = ; c = x ; d = 4 ;";
        let mut sink = RingSink::unbounded();
        let (_, errors, stats) =
            parse_text_recovering_traced(&g, &a, input, "s", NopHooks, 100, &mut sink).unwrap();
        let events: Vec<_> = sink.into_events();
        assert_eq!(
            events.iter().filter(|e| matches!(e, TraceEvent::Recover { .. })).count(),
            errors.len()
        );
        let folded = ParseStats::from_events(a.atn.decisions.len(), &events);
        assert_eq!(folded, stats, "stats stay a pure fold of the event stream");
    }

    #[test]
    fn recovered_errors_render_diagnostics() {
        use crate::diagnostics::{diagnostics_jsonl, Diagnostic};
        let (g, a) = setup(STMTS);
        let input = "a 1 ; b = ; c = x ; d = 4 ;";
        let (_, errors, _) = parse_text_recovering(&g, &a, input, "s", NopHooks, 100).unwrap();
        let diags = Diagnostic::from_errors(&g, &errors);
        assert_eq!(diags.len(), 3);
        let jsonl = diagnostics_jsonl(&diags);
        assert_eq!(jsonl.lines().count(), 4, "schema header + one line per diagnostic");
        for line in jsonl.lines().skip(1) {
            assert!(line.starts_with("{\"type\":\"diagnostic\",\"kind\":"), "{line}");
        }
        let rendered = diags[0].render(input, "input.txt");
        assert!(rendered.contains("--> input.txt:1:"), "{rendered}");
        assert!(rendered.contains('^'), "{rendered}");
    }

    #[test]
    fn bail_strategy_restores_strict_semantics() {
        use crate::recovery::BailErrorStrategy;
        let (g, a) = setup(STMTS);
        let scanner = g.lexer.build().unwrap();
        let toks = scanner.tokenize("a 1 ;").unwrap();
        let mut parser = Parser::new(&g, &a, TokenStream::new(toks), NopHooks);
        parser.enable_recovery(100);
        parser.set_error_strategy(Box::new(BailErrorStrategy));
        assert!(parser.parse_to_eof("s").is_err());
    }
}
