//! Re-entrant parse sessions: build the scanner and parser once, then
//! parse many inputs back to back. [`ParseSession`] keeps the lexer
//! DFA, the parser's memo-table allocations, and all configuration
//! (dispatch mode, memoization, recovery, trace sink) warm across
//! inputs via [`Parser::reset`] — the entry point the gauntlet's
//! differential oracle and the bench harness drive when they walk a
//! corpus through one engine configuration.

use crate::error::ParseError;
use crate::hooks::Hooks;
use crate::metrics::MetricsSnapshot;
use crate::parser::Parser;
use crate::stats::ParseStats;
use crate::stream::TokenStream;
use crate::tree::ParseTree;
use llstar_core::GrammarAnalysis;
use llstar_grammar::Grammar;
use llstar_lexer::{LexBuildError, LexError, Scanner, Token};
use std::fmt;

/// A lex or parse failure from [`ParseSession::parse_to_eof`].
#[derive(Debug)]
pub enum SessionError {
    /// The input failed to tokenize.
    Lex(LexError),
    /// The token stream failed to parse (or had trailing input).
    Parse(ParseError),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Lex(e) => write!(f, "lex error: {e}"),
            SessionError::Parse(e) => write!(f, "parse error: {e}"),
        }
    }
}

impl std::error::Error for SessionError {}

/// A long-lived parsing pipeline for one `(grammar, start rule)` pair:
/// scanner built once, parser state recycled between inputs.
pub struct ParseSession<'g, H: Hooks> {
    scanner: Scanner,
    parser: Parser<'g, H>,
    start_rule: String,
    parses: u64,
    /// Metric counters accumulated across every input this session has
    /// parsed (the per-parse counters in the parser reset each input;
    /// this is where they add up), plus wall-clock parse latency.
    metrics: MetricsSnapshot,
}

impl<'g, H: Hooks> ParseSession<'g, H> {
    /// Builds the scanner and parser for `start_rule`.
    ///
    /// # Errors
    /// Returns the lexer-construction error if the grammar's lexer
    /// cannot be built.
    ///
    /// # Panics
    /// Panics if `start_rule` is not a rule of the grammar (a caller
    /// bug, matching [`Parser::parse`]).
    pub fn new(
        grammar: &'g Grammar,
        analysis: &'g GrammarAnalysis,
        start_rule: &str,
        hooks: H,
    ) -> Result<Self, LexBuildError> {
        assert!(grammar.rule_by_name(start_rule).is_some(), "unknown start rule {start_rule:?}");
        let scanner = grammar.lexer.build()?;
        let parser =
            Parser::new(grammar, analysis, TokenStream::new(vec![Token::eof(0, 1, 1)]), hooks);
        let metrics = MetricsSnapshot::empty(llstar_core::grammar_fingerprint(grammar));
        Ok(ParseSession { scanner, parser, start_rule: start_rule.to_string(), parses: 0, metrics })
    }

    /// Lexes `source` and parses it to EOF, recycling the parser state
    /// from the previous input.
    ///
    /// # Errors
    /// Returns [`SessionError::Lex`] when tokenization fails and
    /// [`SessionError::Parse`] when parsing does.
    pub fn parse_to_eof(&mut self, source: &str) -> Result<ParseTree, SessionError> {
        let tokens = self.scanner.tokenize(source).map_err(SessionError::Lex)?;
        self.parser.reset(TokenStream::new(tokens));
        self.parses += 1;
        let start = self.start_rule.clone();
        let started = std::time::Instant::now();
        let result = self.parser.parse_to_eof(&start).map_err(SessionError::Parse);
        if self.parser.metrics().enabled() {
            self.metrics.merge(&self.parser.metrics_snapshot());
            self.metrics.record_latency(started.elapsed().as_micros() as u64);
        }
        result
    }

    /// The underlying parser, for configuration (dispatch mode,
    /// memoization, recovery, trace sink) and post-parse inspection.
    pub fn parser(&mut self) -> &mut Parser<'g, H> {
        &mut self.parser
    }

    /// Statistics from the most recent parse.
    pub fn stats(&self) -> &ParseStats {
        self.parser.stats()
    }

    /// How many inputs this session has parsed.
    pub fn parses(&self) -> u64 {
        self.parses
    }

    /// Metric counters accumulated over every input parsed so far
    /// (per-parse counters from [`Parser::metrics`] reset each input;
    /// this snapshot is their session-lifetime sum, with wall-clock
    /// latency recorded per parse).
    pub fn metrics(&self) -> &MetricsSnapshot {
        &self.metrics
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use crate::hooks::NopHooks;
    use llstar_core::analyze;
    use llstar_grammar::{apply_peg_mode, parse_grammar};

    const DEMO: &str = r#"
    grammar Demo;
    s : stmt* EOF ;
    stmt : ID '=' expr ';' ;
    expr : term ('+' term)* ;
    term : ID | INT ;
    ID : [a-z]+ ;
    INT : [0-9]+ ;
    WS : [ \t\r\n]+ -> skip ;
    "#;

    fn setup() -> (Grammar, GrammarAnalysis) {
        let g = apply_peg_mode(parse_grammar(DEMO).expect("grammar"));
        let a = analyze(&g);
        (g, a)
    }

    fn fresh_parse(g: &Grammar, a: &GrammarAnalysis, input: &str) -> ParseTree {
        let scanner = g.lexer.build().expect("lexer");
        let tokens = TokenStream::new(scanner.tokenize(input).expect("lexes"));
        let mut parser = Parser::new(g, a, tokens, NopHooks);
        parser.parse_to_eof("s").expect("parses")
    }

    #[test]
    fn reparses_match_fresh_parsers() {
        let (g, a) = setup();
        let mut session = ParseSession::new(&g, &a, "s", NopHooks).expect("session");
        for input in ["a = 1;", "b = a + 2;\nc = b + b + 3;", "", "x = y;"] {
            let via_session = session.parse_to_eof(input).expect("session parses");
            let fresh = fresh_parse(&g, &a, input);
            assert_eq!(
                format!("{via_session:?}"),
                format!("{fresh:?}"),
                "session tree differs from fresh parser on {input:?}"
            );
        }
        assert_eq!(session.parses(), 4);
    }

    #[test]
    fn stats_reflect_only_latest_parse() {
        let (g, a) = setup();
        let mut session = ParseSession::new(&g, &a, "s", NopHooks).expect("session");
        session.parse_to_eof("a = 1; b = 2; c = 3;").expect("parses");
        let big: u64 = session.stats().total_events();
        session.parse_to_eof("a = 1;").expect("parses");
        let small = session.stats().total_events();
        assert!(small < big, "stats must reset between parses: {small} !< {big}");
    }

    #[test]
    fn reuse_fully_resets_per_parse_state() {
        // Regression guard for [`Parser::reset`]: every per-parse
        // observability surface — stats, trace stream, metric counters
        // (and therefore the coverage fold, which is a pure function of
        // the trace) — must come out of a recycled session identical to
        // a fresh parser's, with zero carry-over between inputs.
        let (g, a) = setup();
        let input = "a = b + 1;\nc = a + a + 2;";

        // Reference: one fresh parser over `input`.
        let scanner = g.lexer.build().expect("lexer");
        let mut fresh_sink = crate::trace::RingSink::unbounded();
        let tokens = TokenStream::new(scanner.tokenize(input).expect("lexes"));
        let mut fresh = Parser::new(&g, &a, tokens, NopHooks);
        fresh.set_trace_sink(&mut fresh_sink);
        fresh.parse_to_eof("s").expect("fresh parses");
        let fresh_events = fresh.stats().total_events();
        let fresh_metrics = fresh.metrics_snapshot();
        let fresh_json = fresh_metrics.to_json("session", false);
        drop(fresh);
        let fresh_trace = fresh_sink.into_events();

        // Session: the same input parsed twice through recycled state.
        let mut session_sink = crate::trace::RingSink::unbounded();
        let mut session = ParseSession::new(&g, &a, "s", NopHooks).expect("session");
        session.parser().set_trace_sink(&mut session_sink);
        let mut per_parse = Vec::new();
        for round in 0..2 {
            session.parse_to_eof(input).unwrap_or_else(|e| panic!("round {round}: {e}"));
            assert_eq!(
                session.stats().total_events(),
                fresh_events,
                "round {round}: stats carried over from the previous parse"
            );
            per_parse.push(session.parser().metrics_snapshot().to_json("session", false));
        }
        assert_eq!(per_parse[0], fresh_json, "first session parse differs from a fresh parser");
        assert_eq!(per_parse[0], per_parse[1], "metric counters carried over between inputs");

        // The session-level accumulator is the one place totals are
        // allowed to grow: exactly the fresh snapshot folded in twice.
        let mut doubled = MetricsSnapshot::empty(fresh_metrics.fingerprint);
        doubled.merge(&fresh_metrics);
        doubled.merge(&fresh_metrics);
        assert_eq!(
            session.metrics().to_json("session", false),
            doubled.to_json("session", false),
            "session accumulator is not the sum of its parses"
        );

        // Both trace windows must replay the fresh parser's stream
        // exactly (this is also what pins the coverage fold, which is
        // derived from the trace).
        drop(session);
        let events = session_sink.into_events();
        assert_eq!(events.len(), fresh_trace.len() * 2, "trace stream length diverged");
        assert_eq!(&events[..fresh_trace.len()], &fresh_trace[..], "first trace window diverged");
        assert_eq!(&events[fresh_trace.len()..], &fresh_trace[..], "trace state carried over");
    }

    #[test]
    fn lex_and_parse_errors_are_distinguished() {
        let (g, a) = setup();
        let mut session = ParseSession::new(&g, &a, "s", NopHooks).expect("session");
        assert!(matches!(session.parse_to_eof("a = ?;"), Err(SessionError::Lex(_))));
        assert!(matches!(session.parse_to_eof("a = ;"), Err(SessionError::Parse(_))));
        // The session stays usable after both failure modes.
        session.parse_to_eof("a = 1;").expect("recovers");
    }
}
