//! Re-entrant parse sessions: build the scanner and parser once, then
//! parse many inputs back to back. [`ParseSession`] keeps the lexer
//! DFA, the parser's memo-table allocations, and all configuration
//! (dispatch mode, memoization, recovery, trace sink) warm across
//! inputs via [`Parser::reset`] — the entry point the gauntlet's
//! differential oracle and the bench harness drive when they walk a
//! corpus through one engine configuration.

use crate::error::ParseError;
use crate::hooks::Hooks;
use crate::parser::Parser;
use crate::stats::ParseStats;
use crate::stream::TokenStream;
use crate::tree::ParseTree;
use llstar_core::GrammarAnalysis;
use llstar_grammar::Grammar;
use llstar_lexer::{LexBuildError, LexError, Scanner, Token};
use std::fmt;

/// A lex or parse failure from [`ParseSession::parse_to_eof`].
#[derive(Debug)]
pub enum SessionError {
    /// The input failed to tokenize.
    Lex(LexError),
    /// The token stream failed to parse (or had trailing input).
    Parse(ParseError),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Lex(e) => write!(f, "lex error: {e}"),
            SessionError::Parse(e) => write!(f, "parse error: {e}"),
        }
    }
}

impl std::error::Error for SessionError {}

/// A long-lived parsing pipeline for one `(grammar, start rule)` pair:
/// scanner built once, parser state recycled between inputs.
pub struct ParseSession<'g, H: Hooks> {
    scanner: Scanner,
    parser: Parser<'g, H>,
    start_rule: String,
    parses: u64,
}

impl<'g, H: Hooks> ParseSession<'g, H> {
    /// Builds the scanner and parser for `start_rule`.
    ///
    /// # Errors
    /// Returns the lexer-construction error if the grammar's lexer
    /// cannot be built.
    ///
    /// # Panics
    /// Panics if `start_rule` is not a rule of the grammar (a caller
    /// bug, matching [`Parser::parse`]).
    pub fn new(
        grammar: &'g Grammar,
        analysis: &'g GrammarAnalysis,
        start_rule: &str,
        hooks: H,
    ) -> Result<Self, LexBuildError> {
        assert!(grammar.rule_by_name(start_rule).is_some(), "unknown start rule {start_rule:?}");
        let scanner = grammar.lexer.build()?;
        let parser =
            Parser::new(grammar, analysis, TokenStream::new(vec![Token::eof(0, 1, 1)]), hooks);
        Ok(ParseSession { scanner, parser, start_rule: start_rule.to_string(), parses: 0 })
    }

    /// Lexes `source` and parses it to EOF, recycling the parser state
    /// from the previous input.
    ///
    /// # Errors
    /// Returns [`SessionError::Lex`] when tokenization fails and
    /// [`SessionError::Parse`] when parsing does.
    pub fn parse_to_eof(&mut self, source: &str) -> Result<ParseTree, SessionError> {
        let tokens = self.scanner.tokenize(source).map_err(SessionError::Lex)?;
        self.parser.reset(TokenStream::new(tokens));
        self.parses += 1;
        let start = self.start_rule.clone();
        self.parser.parse_to_eof(&start).map_err(SessionError::Parse)
    }

    /// The underlying parser, for configuration (dispatch mode,
    /// memoization, recovery, trace sink) and post-parse inspection.
    pub fn parser(&mut self) -> &mut Parser<'g, H> {
        &mut self.parser
    }

    /// Statistics from the most recent parse.
    pub fn stats(&self) -> &ParseStats {
        self.parser.stats()
    }

    /// How many inputs this session has parsed.
    pub fn parses(&self) -> u64 {
        self.parses
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use crate::hooks::NopHooks;
    use llstar_core::analyze;
    use llstar_grammar::{apply_peg_mode, parse_grammar};

    const DEMO: &str = r#"
    grammar Demo;
    s : stmt* EOF ;
    stmt : ID '=' expr ';' ;
    expr : term ('+' term)* ;
    term : ID | INT ;
    ID : [a-z]+ ;
    INT : [0-9]+ ;
    WS : [ \t\r\n]+ -> skip ;
    "#;

    fn setup() -> (Grammar, GrammarAnalysis) {
        let g = apply_peg_mode(parse_grammar(DEMO).expect("grammar"));
        let a = analyze(&g);
        (g, a)
    }

    fn fresh_parse(g: &Grammar, a: &GrammarAnalysis, input: &str) -> ParseTree {
        let scanner = g.lexer.build().expect("lexer");
        let tokens = TokenStream::new(scanner.tokenize(input).expect("lexes"));
        let mut parser = Parser::new(g, a, tokens, NopHooks);
        parser.parse_to_eof("s").expect("parses")
    }

    #[test]
    fn reparses_match_fresh_parsers() {
        let (g, a) = setup();
        let mut session = ParseSession::new(&g, &a, "s", NopHooks).expect("session");
        for input in ["a = 1;", "b = a + 2;\nc = b + b + 3;", "", "x = y;"] {
            let via_session = session.parse_to_eof(input).expect("session parses");
            let fresh = fresh_parse(&g, &a, input);
            assert_eq!(
                format!("{via_session:?}"),
                format!("{fresh:?}"),
                "session tree differs from fresh parser on {input:?}"
            );
        }
        assert_eq!(session.parses(), 4);
    }

    #[test]
    fn stats_reflect_only_latest_parse() {
        let (g, a) = setup();
        let mut session = ParseSession::new(&g, &a, "s", NopHooks).expect("session");
        session.parse_to_eof("a = 1; b = 2; c = 3;").expect("parses");
        let big: u64 = session.stats().total_events();
        session.parse_to_eof("a = 1;").expect("parses");
        let small = session.stats().total_events();
        assert!(small < big, "stats must reset between parses: {small} !< {big}");
    }

    #[test]
    fn lex_and_parse_errors_are_distinguished() {
        let (g, a) = setup();
        let mut session = ParseSession::new(&g, &a, "s", NopHooks).expect("session");
        assert!(matches!(session.parse_to_eof("a = ?;"), Err(SessionError::Lex(_))));
        assert!(matches!(session.parse_to_eof("a = ;"), Err(SessionError::Parse(_))));
        // The session stays usable after both failure modes.
        session.parse_to_eof("a = 1;").expect("recovers");
    }
}
