//! Parse-tree walking: a listener-style walker (like ANTLR's tree
//! listeners) plus small query helpers, so embedders do not hand-roll
//! recursion for every analysis over a [`ParseTree`].

use crate::tree::ParseTree;
use llstar_grammar::RuleId;
use llstar_lexer::Token;

/// Callbacks fired by [`walk`] in depth-first order.
pub trait TreeListener {
    /// Called before a rule node's children.
    fn enter_rule(&mut self, rule: RuleId, alt: u16) {
        let _ = (rule, alt);
    }
    /// Called after a rule node's children.
    fn exit_rule(&mut self, rule: RuleId, alt: u16) {
        let _ = (rule, alt);
    }
    /// Called for each token leaf.
    fn visit_token(&mut self, token: Token) {
        let _ = token;
    }
    /// Called for each error node recorded by recovery.
    fn visit_error(&mut self, tokens: &[Token]) {
        let _ = tokens;
    }
}

/// Walks `tree` depth-first, firing `listener` callbacks.
pub fn walk<L: TreeListener>(tree: &ParseTree, listener: &mut L) {
    match tree {
        ParseTree::Token(tok) => listener.visit_token(*tok),
        ParseTree::Error { tokens, .. } => listener.visit_error(tokens),
        ParseTree::Rule { rule, alt, children } => {
            listener.enter_rule(*rule, *alt);
            for child in children {
                walk(child, listener);
            }
            listener.exit_rule(*rule, *alt);
        }
    }
}

/// Collects references to every node for rule `rule`, in document order.
pub fn find_rule_nodes(tree: &ParseTree, rule: RuleId) -> Vec<&ParseTree> {
    let mut out = Vec::new();
    fn go<'t>(t: &'t ParseTree, rule: RuleId, out: &mut Vec<&'t ParseTree>) {
        if let ParseTree::Rule { rule: r, children, .. } = t {
            if *r == rule {
                out.push(t);
            }
            for c in children {
                go(c, rule, out);
            }
        }
    }
    go(tree, rule, &mut out);
    out
}

/// The source text covered by the tree: the concatenated token slices
/// separated by single spaces (token spans are exact; whitespace between
/// them is normalized).
pub fn covered_text(tree: &ParseTree, source: &str) -> String {
    tree.leaves()
        .into_iter()
        .map(|t| t.text(source))
        .filter(|s| !s.is_empty())
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hooks::NopHooks;
    use crate::parser::parse_text;
    use llstar_core::analyze;
    use llstar_grammar::parse_grammar;

    const SRC: &str = r#"
        grammar W;
        stat : ID '=' expr ';' ;
        expr : term ('+' term)* ;
        term : ID | INT ;
        ID : [a-z]+ ;
        INT : [0-9]+ ;
        WS : [ ]+ -> skip ;
    "#;

    fn tree() -> (llstar_grammar::Grammar, ParseTree, &'static str) {
        let g = parse_grammar(SRC).unwrap();
        let a = analyze(&g);
        let input = "x = y + 1 + z ;";
        let (t, _) = parse_text(&g, &a, input, "stat", NopHooks).unwrap();
        (g, t, input)
    }

    #[test]
    fn walker_fires_in_document_order() {
        #[derive(Default)]
        struct Log(Vec<String>);
        impl TreeListener for Log {
            fn enter_rule(&mut self, rule: RuleId, _alt: u16) {
                self.0.push(format!("enter {}", rule.0));
            }
            fn exit_rule(&mut self, rule: RuleId, _alt: u16) {
                self.0.push(format!("exit {}", rule.0));
            }
            fn visit_token(&mut self, _t: Token) {
                self.0.push("tok".into());
            }
        }
        let (_, t, _) = tree();
        let mut log = Log::default();
        walk(&t, &mut log);
        assert_eq!(log.0.first().map(String::as_str), Some("enter 0"));
        assert_eq!(log.0.last().map(String::as_str), Some("exit 0"));
        let tokens = log.0.iter().filter(|s| s.as_str() == "tok").count();
        assert_eq!(tokens, 8, "{:?}", log.0);
        // Balanced enter/exit.
        let enters = log.0.iter().filter(|s| s.starts_with("enter")).count();
        let exits = log.0.iter().filter(|s| s.starts_with("exit")).count();
        assert_eq!(enters, exits);
    }

    #[test]
    fn find_rule_nodes_returns_document_order() {
        let (g, t, src) = tree();
        let term = g.rule_id("term").unwrap();
        let terms = find_rule_nodes(&t, term);
        assert_eq!(terms.len(), 3);
        let texts: Vec<String> = terms.iter().map(|n| covered_text(n, src)).collect();
        assert_eq!(texts, vec!["y", "1", "z"]);
    }

    #[test]
    fn covered_text_reconstructs_tokens() {
        let (_, t, src) = tree();
        assert_eq!(covered_text(&t, src), "x = y + 1 + z ;");
    }
}
