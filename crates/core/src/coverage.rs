//! Corpus coverage maps: which alternatives, DFA states, and edges a
//! test corpus actually exercises, and where prediction effort goes.
//!
//! A [`CoverageMap`] is shaped purely by the grammar and its analysis
//! (so maps from different runs are mergeable cell-by-cell) and keyed by
//! the grammar fingerprint (so maps from *different* grammars refuse to
//! merge). It records, per parse at speculation depth zero:
//!
//! * per-rule-alternative completion counts,
//! * per-decision DFA state-visit and edge-traversal counts,
//! * per-decision lookahead-depth histograms,
//! * per-decision prediction / backtrack totals and memo hit/miss
//!   attribution (memo traffic is charged to the innermost in-flight
//!   prediction).
//!
//! The map is deliberately free of wall-clock data: the JSON rendering
//! is byte-deterministic, which is what lets the interpreted and
//! generated engines be parity-tested against each other. Hotspot *time*
//! columns come from an optional per-decision nanosecond table measured
//! by the live runtime and joined in at render time only.
//!
//! The fold that fills a map from a `TraceEvent` stream lives in
//! `llstar-runtime` (`CoverageSink`); generated parsers bump the same
//! counters directly and render the same JSON byte-for-byte.

use crate::analysis::GrammarAnalysis;
use crate::atn::DecisionId;
use crate::json::Json;
use crate::schema::{check_schema_field, COVERAGE_SCHEMA_VERSION};
use crate::serialize::grammar_fingerprint;
use llstar_grammar::{alt_to_string, Grammar};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Coverage counters for one parsing decision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecisionCoverage {
    /// Visit counts per DFA state (indexed by `DfaStateId`), counting
    /// the start state once per successful prediction.
    pub states: Vec<u64>,
    /// The decision's distinct `(from, to)` DFA edges, sorted. Multiple
    /// token labels between the same state pair collapse into one edge:
    /// traversal counts are about *paths*, not vocabulary.
    pub edge_list: Vec<(u32, u32)>,
    /// Traversal counts parallel to [`edge_list`](Self::edge_list).
    pub edge_hits: Vec<u64>,
    /// Lookahead-depth histogram: `depth → number of predictions` that
    /// needed exactly `depth` tokens (speculation included, matching the
    /// `lookahead` field of `predict-stop` trace events).
    pub lookahead: BTreeMap<u64, u64>,
    /// Successful predictions at speculation depth zero.
    pub predictions: u64,
    /// Predictions (of those) that fell over to backtracking.
    pub backtracks: u64,
    /// Memo-table hits attributed to this decision.
    pub memo_hits: u64,
    /// Memo-table misses (writes) attributed to this decision.
    pub memo_misses: u64,
}

impl DecisionCoverage {
    fn empty_like(states: usize, edge_list: Vec<(u32, u32)>) -> Self {
        DecisionCoverage {
            states: vec![0; states],
            edge_hits: vec![0; edge_list.len()],
            edge_list,
            lookahead: BTreeMap::new(),
            predictions: 0,
            backtracks: 0,
            memo_hits: 0,
            memo_misses: 0,
        }
    }

    /// Index of `(from, to)` in the sorted edge list.
    pub fn edge_index(&self, from: u32, to: u32) -> Option<usize> {
        self.edge_list.binary_search(&(from, to)).ok()
    }

    /// Records a successful prediction's DFA path (`path[0]` is the
    /// start state) plus its effective lookahead depth.
    pub fn record_path(&mut self, path: &[u32], lookahead: u64, backtracked: bool) {
        for &s in path {
            if let Some(slot) = self.states.get_mut(s as usize) {
                *slot += 1;
            }
        }
        for w in path.windows(2) {
            if let Some(i) = self.edge_index(w[0], w[1]) {
                self.edge_hits[i] += 1;
            }
        }
        *self.lookahead.entry(lookahead).or_insert(0) += 1;
        self.predictions += 1;
        if backtracked {
            self.backtracks += 1;
        }
    }

    /// The `p`-th percentile (0–100) of the lookahead histogram: the
    /// smallest depth at which `p`% of predictions have completed.
    /// `None` for an empty histogram. Integer arithmetic, so the value
    /// is byte-deterministic.
    pub fn lookahead_percentile(&self, p: u64) -> Option<u64> {
        let total: u64 = self.lookahead.values().sum();
        if total == 0 {
            return None;
        }
        let mut cum = 0u64;
        for (&depth, &count) in &self.lookahead {
            cum += count;
            if cum * 100 >= total * p {
                return Some(depth);
            }
        }
        self.lookahead.keys().next_back().copied()
    }
}

/// A mergeable, grammar-fingerprinted coverage map. See the module docs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoverageMap {
    /// [`grammar_fingerprint`] of the grammar the map was collected for.
    pub fingerprint: u64,
    /// Number of corpus inputs merged into this map.
    pub files: u64,
    /// Per-rule alternative completion counts, indexed by [`RuleId`];
    /// inner vectors are indexed by zero-based alternative.
    pub rules: Vec<Vec<u64>>,
    /// Per-decision counters, indexed by [`DecisionId`] (synthetic
    /// predicate-fragment decisions included so the shape matches the
    /// analysis; they stay zero because speculation is never counted).
    pub decisions: Vec<DecisionCoverage>,
    /// Memo hits observed while no prediction was in flight (body-level
    /// predicate gates in PEG mode).
    pub unattributed_memo_hits: u64,
    /// Memo misses observed while no prediction was in flight.
    pub unattributed_memo_misses: u64,
}

impl CoverageMap {
    /// An all-zero map shaped for `grammar` + `analysis`.
    pub fn for_grammar(grammar: &Grammar, analysis: &GrammarAnalysis) -> CoverageMap {
        let rules = grammar.rules.iter().map(|r| vec![0u64; r.alts.len()]).collect();
        let decisions = analysis
            .decisions
            .iter()
            .map(|d| {
                let mut edges: Vec<(u32, u32)> = Vec::new();
                for (from, st) in d.dfa.states.iter().enumerate() {
                    for &(_, to) in &st.edges {
                        edges.push((from as u32, to as u32));
                    }
                }
                edges.sort_unstable();
                edges.dedup();
                DecisionCoverage::empty_like(d.dfa.states.len(), edges)
            })
            .collect();
        CoverageMap {
            fingerprint: grammar_fingerprint(grammar),
            files: 0,
            rules,
            decisions,
            unattributed_memo_hits: 0,
            unattributed_memo_misses: 0,
        }
    }

    /// Records the completion of rule `rule` via 1-based alternative
    /// `alt` (`0` for single-alternative rules and for error-recovery
    /// returns that never chose an alternative — the latter are not
    /// counted).
    pub fn record_rule(&mut self, rule: usize, alt: u16) {
        let Some(counts) = self.rules.get_mut(rule) else { return };
        let idx = if counts.len() == 1 {
            0
        } else if alt >= 1 {
            alt as usize - 1
        } else {
            return;
        };
        if let Some(slot) = counts.get_mut(idx) {
            *slot += 1;
        }
    }

    /// Adds `other` into `self`, cell by cell.
    ///
    /// # Errors
    /// When the fingerprints differ (maps from different grammars) or
    /// the shapes disagree (same fingerprint but different analysis —
    /// should be impossible, reported rather than silently miscounted).
    pub fn merge(&mut self, other: &CoverageMap) -> Result<(), String> {
        if self.fingerprint != other.fingerprint {
            return Err(format!(
                "coverage maps belong to different grammars (fingerprint {:016x} vs {:016x})",
                self.fingerprint, other.fingerprint
            ));
        }
        if self.rules.len() != other.rules.len() || self.decisions.len() != other.decisions.len() {
            return Err("coverage maps have different shapes".into());
        }
        self.files += other.files;
        for (mine, theirs) in self.rules.iter_mut().zip(&other.rules) {
            if mine.len() != theirs.len() {
                return Err("coverage maps have different rule shapes".into());
            }
            for (a, b) in mine.iter_mut().zip(theirs) {
                *a += b;
            }
        }
        for (mine, theirs) in self.decisions.iter_mut().zip(&other.decisions) {
            if mine.states.len() != theirs.states.len() || mine.edge_list != theirs.edge_list {
                return Err("coverage maps have different decision shapes".into());
            }
            for (a, b) in mine.states.iter_mut().zip(&theirs.states) {
                *a += b;
            }
            for (a, b) in mine.edge_hits.iter_mut().zip(&theirs.edge_hits) {
                *a += b;
            }
            for (&depth, &count) in &theirs.lookahead {
                *mine.lookahead.entry(depth).or_insert(0) += count;
            }
            mine.predictions += theirs.predictions;
            mine.backtracks += theirs.backtracks;
            mine.memo_hits += theirs.memo_hits;
            mine.memo_misses += theirs.memo_misses;
        }
        self.unattributed_memo_hits += other.unattributed_memo_hits;
        self.unattributed_memo_misses += other.unattributed_memo_misses;
        Ok(())
    }

    /// Zero-based `(rule, alt)` pairs whose alternative never completed
    /// a non-speculative parse.
    pub fn uncovered_alts(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for (rule, counts) in self.rules.iter().enumerate() {
            for (alt, &count) in counts.iter().enumerate() {
                if count == 0 {
                    out.push((rule, alt));
                }
            }
        }
        out
    }

    /// `(decision, from, to)` DFA edges never traversed by a successful
    /// non-speculative prediction. Synthetic (predicate-fragment)
    /// decisions are skipped: speculation is never counted, so their
    /// edges are dead by construction.
    pub fn dead_edges(&self, analysis: &GrammarAnalysis) -> Vec<(DecisionId, u32, u32)> {
        let mut out = Vec::new();
        for (d, cov) in self.decisions.iter().enumerate() {
            if !analysis.atn.decisions[d].is_grammar_decision() {
                continue;
            }
            for (i, &(from, to)) in cov.edge_list.iter().enumerate() {
                if cov.edge_hits[i] == 0 {
                    out.push((DecisionId(d as u32), from, to));
                }
            }
        }
        out
    }

    /// The stable JSON rendering. One document; byte-deterministic
    /// (generated parsers emit the identical bytes — parity-tested).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"type\":\"coverage\",\"schema\":{},\"fingerprint\":{},\"files\":{},\"rules\":[",
            COVERAGE_SCHEMA_VERSION, self.fingerprint, self.files
        );
        for (i, counts) in self.rules.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('[');
            for (j, c) in counts.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{c}");
            }
            out.push(']');
        }
        out.push_str("],\"decisions\":[");
        for (i, d) in self.decisions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"states\":[");
            for (j, c) in d.states.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{c}");
            }
            out.push_str("],\"edges\":[");
            for (j, (&(from, to), &hits)) in d.edge_list.iter().zip(&d.edge_hits).enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[{from},{to},{hits}]");
            }
            out.push_str("],\"lookahead\":[");
            for (j, (&depth, &count)) in d.lookahead.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[{depth},{count}]");
            }
            let _ = write!(
                out,
                "],\"predictions\":{},\"backtracks\":{},\"memo\":[{},{}]}}",
                d.predictions, d.backtracks, d.memo_hits, d.memo_misses
            );
        }
        let _ = write!(
            out,
            "],\"memo-unattributed\":[{},{}]}}",
            self.unattributed_memo_hits, self.unattributed_memo_misses
        );
        out
    }

    /// Parses a map back from its [`to_json`](Self::to_json) rendering.
    ///
    /// # Errors
    /// On a non-coverage document, an unsupported `"schema"` version, or
    /// structural mismatches.
    pub fn from_json(value: &Json) -> Result<CoverageMap, String> {
        if value.get("type").and_then(Json::as_str) != Some("coverage") {
            return Err("not a coverage document".into());
        }
        check_schema_field(value, "coverage", COVERAGE_SCHEMA_VERSION)?;
        let field = |k: &str| value.get(k).and_then(Json::as_u64).ok_or(format!("missing {k:?}"));
        let fingerprint = field("fingerprint")?;
        let files = field("files")?;
        let rules = value
            .get("rules")
            .and_then(Json::as_array)
            .ok_or("missing \"rules\"")?
            .iter()
            .map(|r| {
                r.as_array()
                    .ok_or("rule entry is not an array")?
                    .iter()
                    .map(|c| c.as_u64().ok_or_else(|| "non-numeric alt count".to_string()))
                    .collect::<Result<Vec<u64>, String>>()
            })
            .collect::<Result<Vec<_>, String>>()?;
        let mut decisions = Vec::new();
        for d in value.get("decisions").and_then(Json::as_array).ok_or("missing \"decisions\"")? {
            let nums = |k: &str| -> Result<Vec<u64>, String> {
                d.get(k)
                    .and_then(Json::as_array)
                    .ok_or(format!("missing decision {k:?}"))?
                    .iter()
                    .map(|c| c.as_u64().ok_or_else(|| format!("non-numeric {k}")))
                    .collect()
            };
            let states = nums("states")?;
            let mut edge_list = Vec::new();
            let mut edge_hits = Vec::new();
            for e in d.get("edges").and_then(Json::as_array).ok_or("missing \"edges\"")? {
                match e.as_array() {
                    Some([f, t, c]) => {
                        let (f, t, c) = (
                            f.as_u64().ok_or("bad edge")?,
                            t.as_u64().ok_or("bad edge")?,
                            c.as_u64().ok_or("bad edge")?,
                        );
                        edge_list.push((f as u32, t as u32));
                        edge_hits.push(c);
                    }
                    _ => return Err("edge entry is not a [from,to,count] triple".into()),
                }
            }
            let mut lookahead = BTreeMap::new();
            for e in d.get("lookahead").and_then(Json::as_array).ok_or("missing \"lookahead\"")? {
                match e.as_array() {
                    Some([k, v]) => {
                        lookahead.insert(
                            k.as_u64().ok_or("bad histogram entry")?,
                            v.as_u64().ok_or("bad histogram entry")?,
                        );
                    }
                    _ => return Err("histogram entry is not a [depth,count] pair".into()),
                }
            }
            let dnum = |k: &str| d.get(k).and_then(Json::as_u64).ok_or(format!("missing {k:?}"));
            let memo = d.get("memo").and_then(Json::as_array).ok_or("missing \"memo\"")?;
            let (memo_hits, memo_misses) = match memo {
                [h, m] => (h.as_u64().ok_or("bad memo pair")?, m.as_u64().ok_or("bad memo pair")?),
                _ => return Err("\"memo\" is not a [hits,misses] pair".into()),
            };
            decisions.push(DecisionCoverage {
                states,
                edge_list,
                edge_hits,
                lookahead,
                predictions: dnum("predictions")?,
                backtracks: dnum("backtracks")?,
                memo_hits,
                memo_misses,
            });
        }
        let un = value
            .get("memo-unattributed")
            .and_then(Json::as_array)
            .ok_or("missing \"memo-unattributed\"")?;
        let (unattributed_memo_hits, unattributed_memo_misses) = match un {
            [h, m] => (h.as_u64().ok_or("bad memo pair")?, m.as_u64().ok_or("bad memo pair")?),
            _ => return Err("\"memo-unattributed\" is not a [hits,misses] pair".into()),
        };
        Ok(CoverageMap {
            fingerprint,
            files,
            rules,
            decisions,
            unattributed_memo_hits,
            unattributed_memo_misses,
        })
    }

    /// The annotated-grammar text report: every rule with per-alternative
    /// hit counts (uncovered alternatives flagged), then the dead-edge
    /// list.
    pub fn annotated_report(&self, grammar: &Grammar, analysis: &GrammarAnalysis) -> String {
        let mut out = String::new();
        let total_alts: usize = self.rules.iter().map(Vec::len).sum();
        let uncovered = self.uncovered_alts();
        let _ = writeln!(
            out,
            "grammar {}: {} file(s), {}/{} alternatives covered",
            grammar.name,
            self.files,
            total_alts - uncovered.len(),
            total_alts
        );
        for (rule, counts) in grammar.rules.iter().zip(&self.rules) {
            let _ = writeln!(out, "{} :", rule.name);
            for (i, (alt, &count)) in rule.alts.iter().zip(counts).enumerate() {
                let text = alt_to_string(grammar, alt);
                let sep = if i == 0 { ' ' } else { '|' };
                if count == 0 {
                    let _ = writeln!(out, "      {sep} {text:<40} // UNCOVERED");
                } else {
                    let _ = writeln!(out, "      {sep} {text:<40} // x{count}");
                }
            }
            let _ = writeln!(out, "      ;");
        }
        let dead = self.dead_edges(analysis);
        if dead.is_empty() {
            let _ = writeln!(out, "dead DFA edges: none");
        } else {
            let _ = writeln!(out, "dead DFA edges ({}):", dead.len());
            for (d, from, to) in dead {
                let rule = analysis.atn.decisions[d.index()].rule;
                let _ = writeln!(
                    out,
                    "  d{} (rule {}): s{from} -> s{to} never traversed",
                    d.0,
                    grammar.rules[rule.index()].name
                );
            }
        }
        out
    }

    /// The per-decision hotspot table. `nanos` is an optional
    /// per-decision prediction-time table (indexed by `DecisionId`) from
    /// a live run; without it (JSONL replay) the time columns render as
    /// `-` and rows sort by prediction count instead.
    pub fn hotspot_table(
        &self,
        grammar: &Grammar,
        analysis: &GrammarAnalysis,
        nanos: Option<&[u64]>,
    ) -> String {
        let total_nanos: u64 = nanos.map(|n| n.iter().sum()).unwrap_or(0);
        let mut rows: Vec<usize> = (0..self.decisions.len())
            .filter(|&d| analysis.atn.decisions[d].is_grammar_decision())
            .filter(|&d| {
                self.decisions[d].predictions > 0
                    || nanos.is_some_and(|n| n.get(d).is_some_and(|&t| t > 0))
            })
            .collect();
        rows.sort_by_key(|&d| {
            let time = nanos.and_then(|n| n.get(d).copied()).unwrap_or(0);
            (std::cmp::Reverse(time), std::cmp::Reverse(self.decisions[d].predictions), d)
        });

        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<10} {:<14} {:>11} {:>9} {:>6} {:>6} {:>6} {:>6} {:>12}",
            "decision", "rule", "predictions", "time", "share", "p50", "p99", "bt%", "memo h/m"
        );
        for d in rows {
            let cov = &self.decisions[d];
            let dec = &analysis.atn.decisions[d];
            let rule = &grammar.rules[dec.rule.index()].name;
            let (time, share) = match nanos.and_then(|n| n.get(d).copied()) {
                Some(t) if total_nanos > 0 => (
                    format!("{:.2}ms", t as f64 / 1e6),
                    format!("{:.1}%", t as f64 * 100.0 / total_nanos as f64),
                ),
                _ => ("-".to_string(), "-".to_string()),
            };
            let p50 = cov.lookahead_percentile(50).map_or("-".into(), |k| k.to_string());
            let p99 = cov.lookahead_percentile(99).map_or("-".into(), |k| k.to_string());
            let bt = if cov.predictions > 0 {
                format!("{:.1}", cov.backtracks as f64 * 100.0 / cov.predictions as f64)
            } else {
                "-".into()
            };
            let _ = writeln!(
                out,
                "{:<10} {:<14} {:>11} {:>9} {:>6} {:>6} {:>6} {:>6} {:>12}",
                format!("d{}", d),
                rule,
                cov.predictions,
                time,
                share,
                p50,
                p99,
                bt,
                format!("{}/{}", cov.memo_hits, cov.memo_misses)
            );
        }
        if self.unattributed_memo_hits + self.unattributed_memo_misses > 0 {
            let _ = writeln!(
                out,
                "{:<10} {:<14} {:>11} {:>9} {:>6} {:>6} {:>6} {:>6} {:>12}",
                "(gates)",
                "-",
                "-",
                "-",
                "-",
                "-",
                "-",
                "-",
                format!("{}/{}", self.unattributed_memo_hits, self.unattributed_memo_misses)
            );
        }
        out
    }

    /// A one-line summary for CLI output.
    pub fn summary(&self, grammar: &Grammar) -> String {
        let total_alts: usize = self.rules.iter().map(Vec::len).sum();
        let uncovered = self.uncovered_alts().len();
        let predictions: u64 = self.decisions.iter().map(|d| d.predictions).sum();
        format!(
            "{}: {} file(s), {}/{} alternatives covered, {} predictions",
            grammar.name,
            self.files,
            total_alts - uncovered,
            total_alts,
            predictions
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;
    use llstar_grammar::parse_grammar;

    fn demo() -> (Grammar, GrammarAnalysis) {
        let g = parse_grammar(
            r#"
            grammar Demo;
            s : ID | ID '=' expr ;
            expr : INT ;
            ID : [a-z]+ ;
            INT : [0-9]+ ;
            WS : [ ]+ -> skip ;
            "#,
        )
        .expect("grammar");
        let a = analyze(&g);
        (g, a)
    }

    #[test]
    fn shape_follows_grammar_and_analysis() {
        let (g, a) = demo();
        let map = CoverageMap::for_grammar(&g, &a);
        assert_eq!(map.rules.len(), g.rules.len());
        assert_eq!(map.rules[0].len(), 2);
        assert_eq!(map.decisions.len(), a.decisions.len());
        assert_eq!(map.fingerprint, grammar_fingerprint(&g));
        // Everything starts uncovered.
        assert_eq!(map.uncovered_alts().len(), 3);
        assert!(!map.dead_edges(&a).is_empty());
    }

    #[test]
    fn json_round_trips_byte_identically() {
        let (g, a) = demo();
        let mut map = CoverageMap::for_grammar(&g, &a);
        map.files = 2;
        map.record_rule(0, 2);
        map.record_rule(1, 0);
        map.decisions[0].record_path(&[0, 1, 2], 2, true);
        map.decisions[0].memo_hits = 3;
        map.unattributed_memo_misses = 1;
        let json = map.to_json();
        let parsed =
            CoverageMap::from_json(&Json::parse(&json).expect("valid json")).expect("parses");
        assert_eq!(parsed, map);
        assert_eq!(parsed.to_json(), json, "re-render is byte-identical");
    }

    #[test]
    fn from_json_rejects_wrong_schema_version() {
        let (g, a) = demo();
        let json = CoverageMap::for_grammar(&g, &a).to_json();
        let bumped = json.replacen("\"schema\":1", "\"schema\":99", 1);
        let err = CoverageMap::from_json(&Json::parse(&bumped).unwrap()).unwrap_err();
        assert!(err.contains("version 99"), "{err}");
    }

    #[test]
    fn merge_sums_and_rejects_foreign_maps() {
        let (g, a) = demo();
        let mut left = CoverageMap::for_grammar(&g, &a);
        let mut right = CoverageMap::for_grammar(&g, &a);
        left.files = 1;
        right.files = 2;
        left.record_rule(0, 1);
        right.record_rule(0, 1);
        right.record_rule(0, 2);
        left.decisions[0].record_path(&[0, 1], 1, false);
        right.decisions[0].record_path(&[0, 1], 3, true);
        left.merge(&right).expect("same grammar merges");
        assert_eq!(left.files, 3);
        assert_eq!(left.rules[0], vec![2, 1]);
        assert_eq!(left.decisions[0].predictions, 2);
        assert_eq!(left.decisions[0].backtracks, 1);
        assert_eq!(left.decisions[0].lookahead.get(&1), Some(&1));
        assert_eq!(left.decisions[0].lookahead.get(&3), Some(&1));

        let other_g =
            parse_grammar("grammar Other;\ns : ID ;\nID : [a-z]+ ;\nWS : [ ]+ -> skip ;\n")
                .unwrap();
        let other_a = analyze(&other_g);
        let foreign = CoverageMap::for_grammar(&other_g, &other_a);
        let err = left.merge(&foreign).unwrap_err();
        assert!(err.contains("different grammars"), "{err}");
    }

    #[test]
    fn record_rule_indexing() {
        let (g, a) = demo();
        let mut map = CoverageMap::for_grammar(&g, &a);
        map.record_rule(0, 1); // multi-alt rule, 1-based alt
        map.record_rule(0, 0); // recovery return without an alt: ignored
        map.record_rule(1, 0); // single-alt rule completes as alt 0
        map.record_rule(9, 1); // out of range: ignored
        assert_eq!(map.rules[0], vec![1, 0]);
        assert_eq!(map.rules[1], vec![1]);
    }

    #[test]
    fn percentiles_are_integer_deterministic() {
        let (g, a) = demo();
        let mut map = CoverageMap::for_grammar(&g, &a);
        for (depth, n) in [(1u64, 98u64), (2, 1), (7, 1)] {
            map.decisions[0].lookahead.insert(depth, n);
        }
        assert_eq!(map.decisions[0].lookahead_percentile(50), Some(1));
        assert_eq!(map.decisions[0].lookahead_percentile(99), Some(2));
        assert_eq!(map.decisions[0].lookahead_percentile(100), Some(7));
        assert_eq!(DecisionCoverage::empty_like(1, Vec::new()).lookahead_percentile(50), None);
    }

    #[test]
    fn reports_name_uncovered_alts_and_dead_edges() {
        let (g, a) = demo();
        let mut map = CoverageMap::for_grammar(&g, &a);
        map.files = 1;
        map.record_rule(0, 1);
        let report = map.annotated_report(&g, &a);
        assert!(report.contains("UNCOVERED"), "{report}");
        assert!(report.contains("never traversed"), "{report}");
        let table = map.hotspot_table(&g, &a, None);
        assert!(table.contains("decision"), "{table}");
    }
}
