//! Augmented transition networks (Section 5.1).
//!
//! The grammar is converted to an ATN *M_G = (Q, Σ, Δ, E, F)* per Figure 7:
//! one submachine per nonterminal with entry state `p_A` and stop state
//! `p'_A`, ε edges to per-production left-edge states, terminal edges,
//! nonterminal ("call") edges that record a follow state, predicate edges,
//! and action edges. EBNF subrules become nested decision states; loops
//! become cycles, exactly as ANTLR's analysis expects.

use llstar_grammar::{ActionId, Alt, Block, Ebnf, Element, Grammar, PredId, RuleId, SynPredId};
use llstar_lexer::TokenType;
use std::fmt;

/// Index of an ATN state within [`Atn::states`].
pub type AtnStateId = usize;

/// Index of a parsing decision within [`Atn::decisions`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DecisionId(pub u32);

impl DecisionId {
    /// Dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for DecisionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}", self.0)
    }
}

/// An edge label in the ATN.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AtnEdge {
    /// ε transition.
    Epsilon,
    /// Terminal transition.
    Token(TokenType),
    /// Nonterminal invocation: control enters `rule`'s submachine and
    /// resumes at `follow` when its stop state is reached.
    Rule {
        /// The invoked rule.
        rule: RuleId,
        /// The state pushed on the call stack.
        follow: AtnStateId,
    },
    /// Semantic predicate gate.
    Pred(PredId),
    /// Syntactic predicate gate (erased to a speculation-launching
    /// semantic predicate at parse time, Section 4.1).
    SynPred(SynPredId),
    /// Negated syntactic predicate gate (Ford's PEG not-predicate):
    /// passable only when the fragment does *not* match.
    NotSynPred(SynPredId),
    /// Embedded action (mutator); `always` actions run during speculation.
    Action(ActionId, bool),
}

/// What role an ATN state plays (for rendering and decision bookkeeping).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StateKind {
    /// Ordinary state.
    Basic,
    /// Submachine entry `p_A`.
    RuleEntry,
    /// Submachine stop `p'_A`.
    RuleStop,
    /// A decision state: its outgoing ε edges are the numbered
    /// alternatives of decision `DecisionId`.
    Decision(DecisionId),
}

/// One ATN state.
#[derive(Debug, Clone)]
pub struct AtnState {
    /// Outgoing edges. For decision states, edge order is alternative
    /// order (alternative *i* is edge *i−1*).
    pub edges: Vec<(AtnEdge, AtnStateId)>,
    /// The rule whose submachine owns this state.
    pub rule: RuleId,
    /// The state's role.
    pub kind: StateKind,
}

/// What grammar construct a decision belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecisionKind {
    /// Choice among a rule's productions.
    RuleAlts,
    /// Choice among a plain `( … )` block's alternatives.
    Block,
    /// `( … )?` — last alternative is "skip".
    Optional,
    /// `( … )*` loop entry — last alternative is "exit".
    Star,
    /// `( … )+` loop-back — last alternative is "exit".
    PlusLoop,
    /// Choice among a syntactic-predicate fragment's productions (these
    /// exist so speculative parses can be interpreted; they are not
    /// counted in grammar statistics).
    SynPredAlts,
}

/// Metadata for one parsing decision.
#[derive(Debug, Clone)]
pub struct Decision {
    /// The decision number.
    pub id: DecisionId,
    /// The decision state in the ATN.
    pub state: AtnStateId,
    /// The rule containing the decision.
    pub rule: RuleId,
    /// The construct kind.
    pub kind: DecisionKind,
    /// `true` for decisions living inside syntactic-predicate fragments
    /// (duplicates of real grammar decisions, used only by speculation).
    pub synthetic: bool,
}

impl Decision {
    /// Whether this decision counts toward grammar statistics (synthetic
    /// synpred-fragment decisions do not).
    pub fn is_grammar_decision(&self) -> bool {
        !self.synthetic && !matches!(self.kind, DecisionKind::SynPredAlts)
    }
}

/// The augmented transition network for a grammar.
#[derive(Debug, Clone)]
pub struct Atn {
    /// All states.
    pub states: Vec<AtnState>,
    /// Entry state `p_A` per rule.
    pub rule_entry: Vec<AtnStateId>,
    /// Stop state `p'_A` per rule.
    pub rule_stop: Vec<AtnStateId>,
    /// All decisions, in creation order.
    pub decisions: Vec<Decision>,
    /// For each rule *A*, the follow states of every `Rule` edge that
    /// invokes *A* (used by closure when the stack is empty).
    pub rule_followers: Vec<Vec<AtnStateId>>,
    /// Entry state per syntactic-predicate fragment (the fragment behaves
    /// like an anonymous rule; the runtime speculates from here).
    pub synpred_entry: Vec<AtnStateId>,
    /// Stop state per syntactic-predicate fragment.
    pub synpred_stop: Vec<AtnStateId>,
    /// A synthetic state with a single `Token(EOF)` edge, used as the
    /// continuation of rules that no other rule invokes (the start rule's
    /// follow is end-of-file).
    pub eof_follow: AtnStateId,
    /// A synthetic state with an edge on *every* token type, used as the
    /// continuation of syntactic-predicate fragments: once a fragment has
    /// matched, anything at all may follow, so exit branches of decisions
    /// inside fragments must stay viable on any next token.
    pub any_follow: AtnStateId,
    /// `(from, to)` per `Token` edge created while building rule bodies
    /// and syntactic-predicate fragments, in creation order. Creation
    /// order equals grammar-AST traversal order — the same invariant the
    /// code generator's decision cursor relies on — so codegen can walk
    /// this list to attach per-match-site recovery sets.
    pub token_sites: Vec<(AtnStateId, AtnStateId)>,
    /// The follow state per `Rule` edge created while building rule
    /// bodies and fragments, in creation order (mirrors `token_sites`;
    /// codegen uses it to push the caller's continuation onto the
    /// runtime resynchronization stack).
    pub call_sites: Vec<AtnStateId>,
}

impl Atn {
    /// Builds the ATN for `grammar` (Figure 7).
    pub fn from_grammar(grammar: &Grammar) -> Atn {
        Builder::new(grammar).build()
    }

    /// The decision whose decision state is `state`, if any.
    pub fn decision_at(&self, state: AtnStateId) -> Option<&Decision> {
        match self.states[state].kind {
            StateKind::Decision(id) => Some(&self.decisions[id.index()]),
            _ => None,
        }
    }

    /// Whether `state` is some rule's stop state.
    pub fn is_stop_state(&self, state: AtnStateId) -> bool {
        self.states[state].kind == StateKind::RuleStop
    }

    /// Whether `state` is the stop state of a syntactic-predicate
    /// fragment (whose continuation is the any-token wildcard).
    pub fn is_fragment_stop(&self, state: AtnStateId) -> bool {
        self.synpred_stop.binary_search(&state).is_ok()
    }

    /// Number of alternatives of decision `id`.
    pub fn alt_count(&self, id: DecisionId) -> usize {
        self.states[self.decisions[id.index()].state].edges.len()
    }

    /// Renders the ATN in Graphviz dot format (for debugging and the
    /// Figure 6 test).
    pub fn to_dot(&self, grammar: &Grammar) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("digraph atn {\n  rankdir=LR;\n");
        for (i, st) in self.states.iter().enumerate() {
            let shape = match st.kind {
                StateKind::RuleStop => "doublecircle",
                StateKind::Decision(_) => "diamond",
                _ => "circle",
            };
            let _ = writeln!(
                out,
                "  p{i} [shape={shape},label=\"p{i}\\n{}\"];",
                grammar.rule(st.rule).name
            );
            for (edge, target) in &st.edges {
                let label = match edge {
                    AtnEdge::Epsilon => "ε".to_string(),
                    AtnEdge::Token(t) => grammar.vocab.display_name(*t),
                    AtnEdge::Rule { rule, .. } => grammar.rule(*rule).name.clone(),
                    AtnEdge::Pred(p) => format!("{{{}}}?", grammar.sempred_text(*p)),
                    AtnEdge::SynPred(sp) => format!("synpred{}=>", sp.0),
                    AtnEdge::NotSynPred(sp) => format!("!synpred{}=>", sp.0),
                    AtnEdge::Action(..) => "{…}".to_string(),
                };
                let _ = writeln!(out, "  p{i} -> p{target} [label=\"{label}\"];");
            }
        }
        out.push_str("}\n");
        out
    }
}

struct Builder<'g> {
    grammar: &'g Grammar,
    states: Vec<AtnState>,
    decisions: Vec<Decision>,
    rule_entry: Vec<AtnStateId>,
    rule_stop: Vec<AtnStateId>,
    synpred_entry: Vec<AtnStateId>,
    synpred_stop: Vec<AtnStateId>,
    token_sites: Vec<(AtnStateId, AtnStateId)>,
    call_sites: Vec<AtnStateId>,
    current_rule: RuleId,
    in_fragment: bool,
}

impl<'g> Builder<'g> {
    fn new(grammar: &'g Grammar) -> Self {
        Builder {
            grammar,
            states: Vec::new(),
            decisions: Vec::new(),
            rule_entry: Vec::new(),
            rule_stop: Vec::new(),
            synpred_entry: Vec::new(),
            synpred_stop: Vec::new(),
            token_sites: Vec::new(),
            call_sites: Vec::new(),
            current_rule: RuleId(0),
            in_fragment: false,
        }
    }

    fn add_state(&mut self, kind: StateKind) -> AtnStateId {
        self.states.push(AtnState { edges: Vec::new(), rule: self.current_rule, kind });
        self.states.len() - 1
    }

    fn add_edge(&mut self, from: AtnStateId, edge: AtnEdge, to: AtnStateId) {
        self.states[from].edges.push((edge, to));
    }

    fn new_decision(&mut self, state: AtnStateId, kind: DecisionKind) {
        let id = DecisionId(self.decisions.len() as u32);
        self.states[state].kind = StateKind::Decision(id);
        self.decisions.push(Decision {
            id,
            state,
            rule: self.current_rule,
            kind,
            synthetic: self.in_fragment,
        });
    }

    fn build(mut self) -> Atn {
        // Reserve entry/stop pairs for every rule first so Rule edges can
        // target them during body construction.
        for rule in &self.grammar.rules {
            self.current_rule = rule.id;
            let entry = self.add_state(StateKind::RuleEntry);
            let stop = self.add_state(StateKind::RuleStop);
            self.rule_entry.push(entry);
            self.rule_stop.push(stop);
        }
        for rule in &self.grammar.rules {
            self.current_rule = rule.id;
            let entry = self.rule_entry[rule.id.index()];
            let stop = self.rule_stop[rule.id.index()];
            self.build_alternatives(entry, stop, &rule.alts, DecisionKind::RuleAlts);
        }
        // Syntactic-predicate fragments become anonymous submachines so
        // both the analysis (if it ever chases them) and the speculative
        // runtime can execute them. They are attributed to rule 0 for
        // rendering purposes only.
        self.current_rule = RuleId(0);
        self.in_fragment = true;
        for i in 0..self.grammar.synpreds.len() {
            let frag: &Alt = &self.grammar.synpreds[i];
            let entry = self.add_state(StateKind::RuleEntry);
            let stop = self.add_state(StateKind::RuleStop);
            let alts = vec![frag.clone()];
            self.build_alternatives(entry, stop, &alts, DecisionKind::SynPredAlts);
            self.synpred_entry.push(entry);
            self.synpred_stop.push(stop);
        }
        self.in_fragment = false;
        // Synthetic EOF continuation for otherwise-unreferenced rules.
        let eof_follow = self.add_state(StateKind::Basic);
        let eof_sink = self.add_state(StateKind::Basic);
        self.add_edge(eof_follow, AtnEdge::Token(TokenType::EOF), eof_sink);
        // Wildcard continuation for syntactic-predicate fragments.
        let any_follow = self.add_state(StateKind::Basic);
        let any_sink = self.add_state(StateKind::Basic);
        self.add_edge(any_follow, AtnEdge::Token(TokenType::EOF), any_sink);
        for t in self.grammar.vocab.token_types() {
            self.add_edge(any_follow, AtnEdge::Token(t), any_sink);
        }

        // Collect Rule-edge followers per rule.
        let mut rule_followers: Vec<Vec<AtnStateId>> = vec![Vec::new(); self.grammar.rules.len()];
        for st in &self.states {
            for (edge, _) in &st.edges {
                if let AtnEdge::Rule { rule, follow } = edge {
                    rule_followers[rule.index()].push(*follow);
                }
            }
        }
        for followers in rule_followers.iter_mut() {
            // Any rule may serve as a parse entry point, so end-of-file
            // is always a possible continuation in addition to the real
            // call sites.
            followers.push(eof_follow);
            followers.sort_unstable();
            followers.dedup();
        }

        Atn {
            states: self.states,
            rule_entry: self.rule_entry,
            rule_stop: self.rule_stop,
            decisions: self.decisions,
            rule_followers,
            synpred_entry: self.synpred_entry,
            synpred_stop: self.synpred_stop,
            eof_follow,
            any_follow,
            token_sites: self.token_sites,
            call_sites: self.call_sites,
        }
    }

    /// Wires `entry` through each alternative to `stop`. Multi-alternative
    /// sets make `entry` a decision state of the given kind.
    fn build_alternatives(
        &mut self,
        entry: AtnStateId,
        stop: AtnStateId,
        alts: &[Alt],
        kind: DecisionKind,
    ) {
        if alts.len() > 1 {
            self.new_decision(entry, kind);
        }
        for alt in alts {
            let left = self.add_state(StateKind::Basic);
            self.add_edge(entry, AtnEdge::Epsilon, left);
            let end = self.build_sequence(left, &alt.elements);
            self.add_edge(end, AtnEdge::Epsilon, stop);
        }
    }

    /// Builds the chain of states for `elements` starting at `start`;
    /// returns the final state of the chain.
    fn build_sequence(&mut self, start: AtnStateId, elements: &[Element]) -> AtnStateId {
        let mut current = start;
        for elem in elements {
            current = self.build_element(current, elem);
        }
        current
    }

    fn build_element(&mut self, from: AtnStateId, elem: &Element) -> AtnStateId {
        match elem {
            Element::Token(t) => {
                let next = self.add_state(StateKind::Basic);
                self.add_edge(from, AtnEdge::Token(*t), next);
                self.token_sites.push((from, next));
                next
            }
            Element::Rule(r) => {
                let next = self.add_state(StateKind::Basic);
                let entry = self.rule_entry[r.index()];
                self.add_edge(from, AtnEdge::Rule { rule: *r, follow: next }, entry);
                self.call_sites.push(next);
                next
            }
            Element::SemPred(p) => {
                let next = self.add_state(StateKind::Basic);
                self.add_edge(from, AtnEdge::Pred(*p), next);
                next
            }
            Element::SynPred(sp) => {
                let next = self.add_state(StateKind::Basic);
                self.add_edge(from, AtnEdge::SynPred(*sp), next);
                next
            }
            Element::NotSynPred(sp) => {
                let next = self.add_state(StateKind::Basic);
                self.add_edge(from, AtnEdge::NotSynPred(*sp), next);
                next
            }
            Element::Action { id, always } => {
                let next = self.add_state(StateKind::Basic);
                self.add_edge(from, AtnEdge::Action(*id, *always), next);
                next
            }
            Element::Block(block) => self.build_block(from, block),
        }
    }

    fn build_block(&mut self, from: AtnStateId, block: &Block) -> AtnStateId {
        match block.ebnf {
            Ebnf::None => {
                let end = self.add_state(StateKind::Basic);
                if block.alts.len() > 1 {
                    // `from` may already carry edges (mid-sequence), so
                    // introduce a fresh decision state.
                    let decision = self.add_state(StateKind::Basic);
                    self.add_edge(from, AtnEdge::Epsilon, decision);
                    self.new_decision(decision, DecisionKind::Block);
                    for alt in &block.alts {
                        let left = self.add_state(StateKind::Basic);
                        self.add_edge(decision, AtnEdge::Epsilon, left);
                        let alt_end = self.build_sequence(left, &alt.elements);
                        self.add_edge(alt_end, AtnEdge::Epsilon, end);
                    }
                } else {
                    let alt = block.alts.first().expect("blocks have at least one alt");
                    let alt_end = self.build_sequence(from, &alt.elements);
                    self.add_edge(alt_end, AtnEdge::Epsilon, end);
                }
                end
            }
            Ebnf::Optional => {
                // Decision alternatives: each body alternative, then
                // "skip" (greedy: body preferred).
                let decision = self.add_state(StateKind::Basic);
                self.add_edge(from, AtnEdge::Epsilon, decision);
                self.new_decision(decision, DecisionKind::Optional);
                let end = self.add_state(StateKind::Basic);
                for alt in &block.alts {
                    let left = self.add_state(StateKind::Basic);
                    self.add_edge(decision, AtnEdge::Epsilon, left);
                    let alt_end = self.build_sequence(left, &alt.elements);
                    self.add_edge(alt_end, AtnEdge::Epsilon, end);
                }
                self.add_edge(decision, AtnEdge::Epsilon, end);
                end
            }
            Ebnf::Star => {
                // Loop-entry decision: body alternatives re-enter the
                // decision; final alternative exits.
                let decision = self.add_state(StateKind::Basic);
                self.add_edge(from, AtnEdge::Epsilon, decision);
                self.new_decision(decision, DecisionKind::Star);
                let end = self.add_state(StateKind::Basic);
                for alt in &block.alts {
                    let left = self.add_state(StateKind::Basic);
                    self.add_edge(decision, AtnEdge::Epsilon, left);
                    let alt_end = self.build_sequence(left, &alt.elements);
                    self.add_edge(alt_end, AtnEdge::Epsilon, decision);
                }
                self.add_edge(decision, AtnEdge::Epsilon, end);
                end
            }
            Ebnf::Plus => {
                // First iteration is unconditional; the loop-back state is
                // the decision (alternatives: repeat…, exit).
                let body_entry = self.add_state(StateKind::Basic);
                self.add_edge(from, AtnEdge::Epsilon, body_entry);
                let loopback = self.add_state(StateKind::Basic);
                let end = self.add_state(StateKind::Basic);
                // Entry block: if multiple alternatives, the first
                // iteration needs its own decision.
                if block.alts.len() > 1 {
                    self.new_decision(body_entry, DecisionKind::Block);
                }
                for alt in &block.alts {
                    let left = self.add_state(StateKind::Basic);
                    self.add_edge(body_entry, AtnEdge::Epsilon, left);
                    let alt_end = self.build_sequence(left, &alt.elements);
                    self.add_edge(alt_end, AtnEdge::Epsilon, loopback);
                }
                self.new_decision(loopback, DecisionKind::PlusLoop);
                // Loop-back alternatives: re-run the body, or exit.
                self.add_edge(loopback, AtnEdge::Epsilon, body_entry);
                self.add_edge(loopback, AtnEdge::Epsilon, end);
                end
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llstar_grammar::parse_grammar;

    /// Figure 6: ATN for S → Ac | Ad, A → aA | b.
    #[test]
    fn figure6_structure() {
        let g =
            parse_grammar("grammar F6; s : a C | a D ; a : A a | B ; A:'a'; B:'b'; C:'c'; D:'d';")
                .unwrap();
        let atn = Atn::from_grammar(&g);
        // Two decisions: s (2 alts) and a (2 alts).
        let grammar_decisions: Vec<_> =
            atn.decisions.iter().filter(|d| d.is_grammar_decision()).collect();
        assert_eq!(grammar_decisions.len(), 2);
        // Rule entries are decision states with 2 alternatives each.
        for rule in &g.rules {
            let entry = atn.rule_entry[rule.id.index()];
            assert!(matches!(atn.states[entry].kind, StateKind::Decision(_)));
            assert_eq!(atn.states[entry].edges.len(), 2);
        }
        // Rule `a` is invoked twice from s and once from itself -> three
        // distinct follow states, plus the universal EOF continuation.
        let a = g.rule_id("a").unwrap();
        assert_eq!(atn.rule_followers[a.index()].len(), 4);
        assert!(atn.rule_followers[a.index()].contains(&atn.eof_follow));
        // Rule `s` is never invoked -> only the EOF continuation.
        let s = g.rule_id("s").unwrap();
        assert_eq!(atn.rule_followers[s.index()], vec![atn.eof_follow]);
    }

    #[test]
    fn single_alt_rule_has_no_decision() {
        let g = parse_grammar("grammar G; s : A B ; A:'a'; B:'b';").unwrap();
        let atn = Atn::from_grammar(&g);
        assert!(atn.decisions.is_empty());
        // entry -ε-> left -A-> . -B-> . -ε-> stop
        let entry = atn.rule_entry[0];
        assert_eq!(atn.states[entry].kind, StateKind::RuleEntry);
    }

    #[test]
    fn ebnf_operators_create_decisions() {
        let g = parse_grammar("grammar G; s : A? B* C+ (D|E) ; A:'a'; B:'b'; C:'c'; D:'d'; E:'e';")
            .unwrap();
        let atn = Atn::from_grammar(&g);
        let kinds: Vec<DecisionKind> = atn.decisions.iter().map(|d| d.kind).collect();
        assert_eq!(
            kinds,
            vec![
                DecisionKind::Optional,
                DecisionKind::Star,
                DecisionKind::PlusLoop,
                DecisionKind::Block
            ]
        );
    }

    #[test]
    fn star_loop_cycles_back_to_decision() {
        let g = parse_grammar("grammar G; s : A* B ; A:'a'; B:'b';").unwrap();
        let atn = Atn::from_grammar(&g);
        let d = &atn.decisions[0];
        assert_eq!(d.kind, DecisionKind::Star);
        // Follow the body alternative: it must come back to the decision.
        let (_, body_left) = atn.states[d.state].edges[0].clone();
        let (edge, after_a) = atn.states[body_left].edges[0].clone();
        assert!(matches!(edge, AtnEdge::Token(_)));
        let (back_edge, back_target) = atn.states[after_a].edges[0].clone();
        assert_eq!(back_edge, AtnEdge::Epsilon);
        assert_eq!(back_target, d.state, "loop body returns to the decision state");
    }

    #[test]
    fn plus_loop_runs_body_then_decides() {
        let g = parse_grammar("grammar G; s : A+ ; A:'a';").unwrap();
        let atn = Atn::from_grammar(&g);
        assert_eq!(atn.decisions.len(), 1);
        assert_eq!(atn.decisions[0].kind, DecisionKind::PlusLoop);
        // The loop-back decision has two alternatives: repeat and exit.
        assert_eq!(atn.states[atn.decisions[0].state].edges.len(), 2);
    }

    #[test]
    fn rule_edges_record_follow_states() {
        let g = parse_grammar("grammar G; s : x B ; x : A ; A:'a'; B:'b';").unwrap();
        let atn = Atn::from_grammar(&g);
        let x = g.rule_id("x").unwrap();
        let mut found = false;
        for st in &atn.states {
            for (edge, target) in &st.edges {
                if let AtnEdge::Rule { rule, follow } = edge {
                    assert_eq!(*rule, x);
                    assert_eq!(*target, atn.rule_entry[x.index()]);
                    assert!(atn.rule_followers[x.index()].contains(follow));
                    found = true;
                }
            }
        }
        assert!(found, "expected a Rule edge for x");
    }

    #[test]
    fn predicates_and_actions_become_edges() {
        let g = parse_grammar("grammar G; s : {p}? A {act()} | (B)=> B ; A:'a'; B:'b';").unwrap();
        let atn = Atn::from_grammar(&g);
        let mut saw = (false, false, false);
        for st in &atn.states {
            for (edge, _) in &st.edges {
                match edge {
                    AtnEdge::Pred(_) => saw.0 = true,
                    AtnEdge::Action(_, false) => saw.1 = true,
                    AtnEdge::SynPred(_) => saw.2 = true,
                    _ => {}
                }
            }
        }
        assert_eq!(saw, (true, true, true), "pred/action/synpred edges present");
        // The synpred fragment has its own submachine.
        assert_eq!(atn.synpred_entry.len(), 1);
        assert_eq!(atn.synpred_stop.len(), 1);
    }

    #[test]
    fn dot_rendering_mentions_tokens() {
        let g = parse_grammar("grammar G; s : A | B ; A:'a'; B:'b';").unwrap();
        let atn = Atn::from_grammar(&g);
        let dot = atn.to_dot(&g);
        assert!(dot.contains("digraph atn"));
        assert!(dot.contains("label=\"A\""), "{dot}");
    }

    #[test]
    fn alt_count_matches_grammar() {
        let g = parse_grammar("grammar G; s : A | B | C ; A:'a'; B:'b'; C:'c';").unwrap();
        let atn = Atn::from_grammar(&g);
        assert_eq!(atn.alt_count(atn.decisions[0].id), 3);
    }
}
