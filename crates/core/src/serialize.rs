//! Serialization of analysis results, so a grammar can be analyzed once
//! and its lookahead DFAs shipped/loaded without re-running the subset
//! construction — the same role the serialized decision DFAs embedded in
//! ANTLR's generated parsers play.
//!
//! The format is a small line-oriented text format (no external
//! dependencies). The ATN is *not* stored: it is rebuilt
//! deterministically from the grammar at load time; an FNV-1a hash of the
//! grammar's canonical rendering (which includes the `options { … }`
//! block) guards against loading DFAs for a different grammar, and the
//! result-affecting `AnalysisOptions` the analysis ran under are recorded
//! in the header so loaders can tell whether they match the options they
//! would analyze with (`threads` is deliberately excluded — thread count
//! never changes results).

use crate::analysis::{AnalysisOptions, AnalysisWarning, DecisionAnalysis, GrammarAnalysis};
use crate::atn::{Atn, DecisionId};
use crate::config::PredSource;
use crate::dfa::{DfaState, LookaheadDfa};
use crate::metrics::{DecisionMetrics, FallbackReason};
use llstar_grammar::{Grammar, PredId, SynPredId};
use llstar_lexer::TokenType;
use std::fmt;
use std::fmt::Write as _;
use std::time::Duration;

/// Error from [`deserialize_analysis`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SerializeError {
    /// 1-based line of the problem. Unexpected-EOF errors point one past
    /// the last line, so this is always ≥ 1.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for SerializeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "analysis deserialization failed at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for SerializeError {}

/// Current format header. v2 added the mandatory per-decision `metrics`
/// line; v1 files are rejected (an invalid-cache miss, so the cache
/// layer transparently rebuilds them).
const HEADER: &str = "llstar-analysis v2";

/// FNV-1a over the grammar's canonical rendering: cheap integrity check
/// that serialized DFAs belong to this grammar.
pub fn grammar_fingerprint(grammar: &Grammar) -> u64 {
    let text = llstar_grammar::grammar_to_string(grammar);
    let mut hash: u64 = 0xcbf29ce484222325;
    for b in text.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

/// Extracts the grammar fingerprint recorded in serialized-analysis
/// `text` without deserializing the rest. `None` when the header or
/// fingerprint line is missing/malformed — the cache layer uses this to
/// distinguish "stale: grammar changed" from "corrupt file".
pub fn serialized_fingerprint(text: &str) -> Option<u64> {
    let mut lines = text.lines().map(str::trim).filter(|l| !l.is_empty());
    if lines.next()? != HEADER {
        return None;
    }
    let fp = lines.next()?.strip_prefix("fingerprint ")?;
    u64::from_str_radix(fp, 16).ok()
}

fn pred_to_text(p: PredSource) -> String {
    match p {
        PredSource::Sem(id) => format!("sem{}", id.0),
        PredSource::Syn(id) => format!("syn{}", id.0),
        PredSource::NotSyn(id) => format!("nsyn{}", id.0),
    }
}

fn pred_from_text(s: &str, line: usize) -> Result<PredSource, SerializeError> {
    let err = |m: String| SerializeError { line, message: m };
    if let Some(rest) = s.strip_prefix("nsyn") {
        return Ok(PredSource::NotSyn(SynPredId(
            rest.parse().map_err(|_| err(format!("bad predicate id {s:?}")))?,
        )));
    }
    if let Some(rest) = s.strip_prefix("syn") {
        return Ok(PredSource::Syn(SynPredId(
            rest.parse().map_err(|_| err(format!("bad predicate id {s:?}")))?,
        )));
    }
    if let Some(rest) = s.strip_prefix("sem") {
        return Ok(PredSource::Sem(PredId(
            rest.parse().map_err(|_| err(format!("bad predicate id {s:?}")))?,
        )));
    }
    Err(err(format!("unknown predicate kind {s:?}")))
}

fn warning_to_text(w: &AnalysisWarning) -> String {
    match w {
        AnalysisWarning::Ambiguity { alts, resolved_to } => {
            format!("ambiguity {} -> {resolved_to}", join(alts))
        }
        AnalysisWarning::RecursionOverflow { alts } => format!("overflow {}", join(alts)),
        AnalysisWarning::NonLlRegularFallback => "non-ll-regular".to_string(),
        AnalysisWarning::StateLimit => "state-limit".to_string(),
        AnalysisWarning::DeadAlternative { alt } => format!("dead {alt}"),
    }
}

fn join(alts: &[u16]) -> String {
    alts.iter().map(|a| a.to_string()).collect::<Vec<_>>().join(",")
}

fn parse_alts(s: &str, line: usize) -> Result<Vec<u16>, SerializeError> {
    s.split(',')
        .filter(|p| !p.is_empty())
        .map(|p| {
            p.parse().map_err(|_| SerializeError {
                line,
                message: format!("bad alternative list {s:?}"),
            })
        })
        .collect()
}

fn warning_from_text(s: &str, line: usize) -> Result<AnalysisWarning, SerializeError> {
    let err = |m: String| SerializeError { line, message: m };
    let mut parts = s.split_whitespace();
    match parts.next() {
        Some("ambiguity") => {
            let alts = parse_alts(parts.next().unwrap_or(""), line)?;
            let arrow = parts.next();
            if arrow != Some("->") {
                return Err(err("expected '->' in ambiguity warning".into()));
            }
            let resolved_to = parts
                .next()
                .and_then(|p| p.parse().ok())
                .ok_or_else(|| err("missing resolved alternative".into()))?;
            Ok(AnalysisWarning::Ambiguity { alts, resolved_to })
        }
        Some("overflow") => Ok(AnalysisWarning::RecursionOverflow {
            alts: parse_alts(parts.next().unwrap_or(""), line)?,
        }),
        Some("non-ll-regular") => Ok(AnalysisWarning::NonLlRegularFallback),
        Some("state-limit") => Ok(AnalysisWarning::StateLimit),
        Some("dead") => {
            let alt = parts
                .next()
                .and_then(|p| p.parse().ok())
                .ok_or_else(|| err("missing dead alternative".into()))?;
            Ok(AnalysisWarning::DeadAlternative { alt })
        }
        other => Err(err(format!("unknown warning {other:?}"))),
    }
}

fn metrics_to_text(m: &DecisionMetrics) -> String {
    let mut out = String::from("metrics");
    for (name, value) in m.fields() {
        let _ = write!(out, " {name}={value}");
    }
    let _ = write!(out, " fallback={}", m.fallback.map_or("-", FallbackReason::as_str));
    out
}

fn metrics_from_text(s: &str, line: usize) -> Result<DecisionMetrics, SerializeError> {
    let err = |m: String| SerializeError { line, message: m };
    let mut metrics = DecisionMetrics::default();
    for field in s.split_whitespace() {
        let (key, value) =
            field.split_once('=').ok_or_else(|| err(format!("malformed metric {field:?}")))?;
        if key == "fallback" {
            metrics.fallback = if value == "-" {
                None
            } else {
                Some(
                    FallbackReason::from_name(value)
                        .ok_or_else(|| err(format!("bad fallback {value:?}")))?,
                )
            };
        } else {
            let parsed = value.parse().map_err(|_| err(format!("bad metric value {value:?}")))?;
            if !metrics.set_field(key, parsed) {
                return Err(err(format!("unknown metric {key:?}")));
            }
        }
    }
    Ok(metrics)
}

fn options_to_text(o: &AnalysisOptions) -> String {
    let k = o.max_k.map_or("-".to_string(), |k| k.to_string());
    format!(
        "options m={} k={k} max-states={} minimize={}",
        o.rec_depth_m.max(1),
        o.max_dfa_states,
        o.minimize
    )
}

fn options_from_text(s: &str, line: usize) -> Result<AnalysisOptions, SerializeError> {
    let err = |m: String| SerializeError { line, message: m };
    let mut options = AnalysisOptions::default();
    for field in s.split_whitespace() {
        let (key, value) =
            field.split_once('=').ok_or_else(|| err(format!("malformed option {field:?}")))?;
        match key {
            "m" => {
                options.rec_depth_m = value.parse().map_err(|_| err(format!("bad m {value:?}")))?;
            }
            "k" => {
                options.max_k = if value == "-" {
                    None
                } else {
                    Some(value.parse().map_err(|_| err(format!("bad k {value:?}")))?)
                };
            }
            "max-states" => {
                options.max_dfa_states =
                    value.parse().map_err(|_| err(format!("bad max-states {value:?}")))?;
            }
            "minimize" => {
                options.minimize =
                    value.parse().map_err(|_| err(format!("bad minimize {value:?}")))?;
            }
            other => return Err(err(format!("unknown option {other:?}"))),
        }
    }
    Ok(options)
}

/// Serializes an analysis (DFAs + warnings) to the text format.
pub fn serialize_analysis(grammar: &Grammar, analysis: &GrammarAnalysis) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{HEADER}");
    let _ = writeln!(out, "fingerprint {:016x}", grammar_fingerprint(grammar));
    let _ = writeln!(out, "{}", options_to_text(&analysis.options));
    let _ = writeln!(out, "decisions {}", analysis.decisions.len());
    for d in &analysis.decisions {
        let _ = writeln!(out, "decision {} states {}", d.decision.0, d.dfa.states.len());
        let _ = writeln!(out, "{}", metrics_to_text(&d.metrics));
        for st in &d.dfa.states {
            let accept = st.accept.map_or("-".to_string(), |a| a.to_string());
            let default = st.default_alt.map_or("-".to_string(), |a| a.to_string());
            let edges: Vec<String> =
                st.edges.iter().map(|(t, target)| format!("{}:{target}", t.0)).collect();
            let preds: Vec<String> =
                st.preds.iter().map(|(p, alt)| format!("{}:{alt}", pred_to_text(*p))).collect();
            let _ = writeln!(
                out,
                "state accept={accept} default={default} edges={} preds={}",
                edges.join(","),
                preds.join(",")
            );
        }
        for w in &d.warnings {
            let _ = writeln!(out, "warning {}", warning_to_text(w));
        }
        let _ = writeln!(out, "end");
    }
    out
}

/// Rebuilds a [`GrammarAnalysis`] from text produced by
/// [`serialize_analysis`]. The ATN is reconstructed from `grammar`; the
/// fingerprint must match. The [`AnalysisOptions`] recorded in the header
/// are restored into the result's `options` field — callers that would
/// have analyzed under different options must check
/// [`AnalysisOptions::same_results`] themselves (the cache layer does,
/// and treats a mismatch as a stale cache).
///
/// # Errors
/// Returns [`SerializeError`] on version/fingerprint mismatch or
/// malformed content.
pub fn deserialize_analysis(
    grammar: &Grammar,
    text: &str,
) -> Result<GrammarAnalysis, SerializeError> {
    let err = |line: usize, m: String| SerializeError { line, message: m };
    // Where unexpected-EOF errors point: one past the last line, so every
    // diagnosis (including truncation) names a concrete 1-based line.
    let eof = text.lines().count() + 1;
    let mut lines = text.lines().enumerate().map(|(i, l)| (i + 1, l.trim()));
    let mut next_line =
        move || -> Option<(usize, &str)> { lines.by_ref().find(|(_, l)| !l.is_empty()) };

    let (ln, header) = next_line().ok_or_else(|| err(eof, "empty input".into()))?;
    if header != HEADER {
        return Err(err(ln, format!("unsupported header {header:?}")));
    }
    let (ln, fp_line) = next_line().ok_or_else(|| err(eof, "missing fingerprint".into()))?;
    let fp = fp_line
        .strip_prefix("fingerprint ")
        .and_then(|h| u64::from_str_radix(h, 16).ok())
        .ok_or_else(|| err(ln, "malformed fingerprint line".into()))?;
    if fp != grammar_fingerprint(grammar) {
        return Err(err(
            ln,
            "fingerprint mismatch: serialized DFAs belong to a different grammar".into(),
        ));
    }

    let (ln, opt_line) = next_line().ok_or_else(|| err(eof, "missing options".into()))?;
    let options = options_from_text(
        opt_line
            .strip_prefix("options ")
            .ok_or_else(|| err(ln, "malformed options line".into()))?,
        ln,
    )?;

    let (ln, count_line) = next_line().ok_or_else(|| err(eof, "missing decision count".into()))?;
    let count: usize = count_line
        .strip_prefix("decisions ")
        .and_then(|n| n.parse().ok())
        .ok_or_else(|| err(ln, "malformed decision count".into()))?;

    let atn = Atn::from_grammar(grammar);
    if atn.decisions.len() != count {
        return Err(err(
            ln,
            format!(
                "decision count mismatch: grammar has {}, file has {count}",
                atn.decisions.len()
            ),
        ));
    }

    let mut decisions: Vec<DecisionAnalysis> = Vec::with_capacity(count);
    for expected in 0..count {
        let (ln, dline) = next_line().ok_or_else(|| err(eof, "truncated file".into()))?;
        let rest = dline
            .strip_prefix("decision ")
            .ok_or_else(|| err(ln, format!("expected 'decision', found {dline:?}")))?;
        let mut parts = rest.split_whitespace();
        let id: u32 = parts
            .next()
            .and_then(|p| p.parse().ok())
            .ok_or_else(|| err(ln, "missing decision id".into()))?;
        if id as usize != expected {
            return Err(err(ln, format!("out-of-order decision {id} (expected {expected})")));
        }
        let nstates: usize = parts
            .nth(1)
            .and_then(|p| p.parse().ok())
            .ok_or_else(|| err(ln, "missing state count".into()))?;

        let (ln, mline) = next_line().ok_or_else(|| err(eof, "missing metrics".into()))?;
        let metrics = metrics_from_text(
            mline
                .strip_prefix("metrics")
                .ok_or_else(|| err(ln, format!("expected 'metrics', found {mline:?}")))?,
            ln,
        )?;

        let mut states = Vec::with_capacity(nstates);
        for _ in 0..nstates {
            let (ln, sline) = next_line().ok_or_else(|| err(eof, "truncated state list".into()))?;
            let rest = sline
                .strip_prefix("state ")
                .ok_or_else(|| err(ln, format!("expected 'state', found {sline:?}")))?;
            let mut st = DfaState::default();
            for field in rest.split_whitespace() {
                let (key, value) = field
                    .split_once('=')
                    .ok_or_else(|| err(ln, format!("malformed field {field:?}")))?;
                match key {
                    "accept" => {
                        if value != "-" {
                            st.accept = Some(
                                value
                                    .parse()
                                    .map_err(|_| err(ln, format!("bad accept {value:?}")))?,
                            );
                        }
                    }
                    "default" => {
                        if value != "-" {
                            st.default_alt = Some(
                                value
                                    .parse()
                                    .map_err(|_| err(ln, format!("bad default {value:?}")))?,
                            );
                        }
                    }
                    "edges" => {
                        for pair in value.split(',').filter(|p| !p.is_empty()) {
                            let (t, target) = pair
                                .split_once(':')
                                .ok_or_else(|| err(ln, format!("bad edge {pair:?}")))?;
                            st.edges.push((
                                TokenType(
                                    t.parse().map_err(|_| err(ln, format!("bad token {t:?}")))?,
                                ),
                                target
                                    .parse()
                                    .map_err(|_| err(ln, format!("bad target {target:?}")))?,
                            ));
                        }
                    }
                    "preds" => {
                        for pair in value.split(',').filter(|p| !p.is_empty()) {
                            let (p, alt) = pair
                                .split_once(':')
                                .ok_or_else(|| err(ln, format!("bad pred {pair:?}")))?;
                            st.preds.push((
                                pred_from_text(p, ln)?,
                                alt.parse()
                                    .map_err(|_| err(ln, format!("bad pred alt {alt:?}")))?,
                            ));
                        }
                    }
                    other => return Err(err(ln, format!("unknown field {other:?}"))),
                }
            }
            states.push(st);
        }
        if states.is_empty() {
            return Err(err(ln, "decision with no states".into()));
        }
        // Bounds-check edges.
        for st in &states {
            for &(_, target) in &st.edges {
                if target >= states.len() {
                    return Err(err(ln, format!("edge target {target} out of range")));
                }
            }
        }
        let mut warnings = Vec::new();
        loop {
            let (ln, wline) = next_line().ok_or_else(|| err(eof, "truncated decision".into()))?;
            if wline == "end" {
                break;
            }
            let rest = wline
                .strip_prefix("warning ")
                .ok_or_else(|| err(ln, format!("expected warning/end, found {wline:?}")))?;
            warnings.push(warning_from_text(rest, ln)?);
        }
        decisions.push(DecisionAnalysis {
            decision: DecisionId(id),
            dfa: LookaheadDfa { decision: DecisionId(id), states },
            warnings,
            metrics,
            elapsed: Duration::ZERO,
        });
    }
    let recovery = crate::recovery::RecoverySets::compute(grammar, &atn);
    // Like the recovery sets, compiled prediction tables are derived
    // data: relowered from the deserialized DFAs so cache loads carry
    // them without widening the serialized format.
    let tables = crate::compiled::CompiledTables::lower(
        grammar.vocab.len(),
        decisions.iter().map(|d| &d.dfa),
    );
    Ok(GrammarAnalysis {
        atn,
        decisions,
        recovery,
        tables,
        elapsed: Duration::ZERO,
        from_cache: true,
        options,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;
    use llstar_grammar::{apply_peg_mode, parse_grammar};

    fn grammar() -> Grammar {
        apply_peg_mode(
            parse_grammar(
                r#"
                grammar S;
                options { backtrack = true; m = 1; }
                s : ID | ID '=' expr | 'unsigned'* 'int' ID | 'unsigned'* ID ID ;
                t : '-'* ID | expr ;
                u : {p}? A | {q}? A ;
                expr : INT | '-' expr ;
                A : 'a' ;
                ID : [a-zA-Z_]+ ;
                INT : [0-9]+ ;
                WS : [ ]+ -> skip ;
                "#,
            )
            .unwrap(),
        )
    }

    #[test]
    fn round_trip_preserves_everything() {
        let g = grammar();
        let a = analyze(&g);
        let text = serialize_analysis(&g, &a);
        let b = deserialize_analysis(&g, &text).unwrap();
        assert_eq!(a.decisions.len(), b.decisions.len());
        for (da, db) in a.decisions.iter().zip(&b.decisions) {
            assert_eq!(da.warnings, db.warnings);
            assert_eq!(da.metrics, db.metrics, "cached analyses report their original cost");
            assert_eq!(da.dfa.states.len(), db.dfa.states.len());
            for (sa, sb) in da.dfa.states.iter().zip(&db.dfa.states) {
                assert_eq!(sa.accept, sb.accept);
                assert_eq!(sa.default_alt, sb.default_alt);
                assert_eq!(sa.edges, sb.edges);
                assert_eq!(sa.preds, sb.preds);
            }
        }
    }

    #[test]
    fn loaded_analysis_parses_like_the_original() {
        // (The runtime crate depends on core, so the parse-equivalence
        // check lives in the workspace integration tests; here we verify
        // classification equivalence.)
        let g = grammar();
        let a = analyze(&g);
        let text = serialize_analysis(&g, &a);
        let b = deserialize_analysis(&g, &text).unwrap();
        for (da, db) in a.decisions.iter().zip(&b.decisions) {
            assert_eq!(da.dfa.classify(), db.dfa.classify());
        }
    }

    #[test]
    fn loaded_analysis_carries_compiled_tables() {
        let g = grammar();
        let a = analyze(&g);
        let text = serialize_analysis(&g, &a);
        let b = deserialize_analysis(&g, &text).unwrap();
        assert!(b.tables.enabled(), "cache loads must relower prediction tables");
        assert_eq!(a.tables.classes(), b.tables.classes());
        assert_eq!(a.tables.dfas().len(), b.tables.dfas().len());
        for (ta, tb) in a.tables.dfas().iter().zip(b.tables.dfas()) {
            assert_eq!(ta.num_states, tb.num_states);
            assert_eq!(ta.table, tb.table);
            assert_eq!(ta.accept, tb.accept);
            assert_eq!(ta.default_alt, tb.default_alt);
            assert_eq!(ta.preds, tb.preds);
        }
    }

    #[test]
    fn fingerprint_mismatch_is_rejected() {
        let g = grammar();
        let a = analyze(&g);
        let text = serialize_analysis(&g, &a);
        let other =
            apply_peg_mode(parse_grammar("grammar O; s : A | B ; A : 'a' ; B : 'b' ;").unwrap());
        let e = deserialize_analysis(&other, &text).unwrap_err();
        assert!(e.message.contains("fingerprint mismatch"), "{e}");
    }

    #[test]
    fn corrupted_inputs_error_cleanly() {
        let g = grammar();
        let a = analyze(&g);
        let text = serialize_analysis(&g, &a);
        for corrupt in [
            "".to_string(),
            "nonsense".to_string(),
            text.replace(HEADER, "llstar-analysis v9"),
            text.replace("decisions ", "decisions 9"),
            text.lines().take(8).collect::<Vec<_>>().join("\n"),
            text.replace("accept=", "wat="),
            text.replace("metrics builds=", "metrics wat="),
        ] {
            assert!(deserialize_analysis(&g, &corrupt).is_err(), "accepted: {corrupt:.80}");
        }
    }

    #[test]
    fn edge_targets_are_bounds_checked() {
        let g = grammar();
        let a = analyze(&g);
        let text = serialize_analysis(&g, &a);
        // Blow up a target index.
        let corrupt = text.replacen(":1 ", ":9999 ", 1).replacen(":1\n", ":9999\n", 1);
        if corrupt != text {
            assert!(deserialize_analysis(&g, &corrupt).is_err());
        }
    }

    #[test]
    fn fingerprint_is_stable_and_discriminating() {
        let g1 = grammar();
        let g2 = grammar();
        assert_eq!(grammar_fingerprint(&g1), grammar_fingerprint(&g2));
        let other = parse_grammar("grammar S; s : A ; A : 'a' ;").unwrap();
        assert_ne!(grammar_fingerprint(&g1), grammar_fingerprint(&other));
    }
}
