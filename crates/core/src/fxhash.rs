//! A dependency-free FxHash-style hasher for hash maps whose keys are
//! small integers or short tuples.
//!
//! `std`'s default SipHash is DoS-resistant but costs tens of cycles per
//! key; the maps inside the analysis pipeline (configuration-set
//! interning, call-stack interning) hash trusted, internally-generated
//! keys millions of times per grammar, so the multiply-rotate scheme
//! rustc itself uses for exactly this workload is the right trade. The
//! hasher is deterministic (no random seed), which also removes a source
//! of run-to-run variance from the analysis hot path.
//!
//! Only lookups and inserts may go through these maps on paths that
//! produce output: iteration order is unspecified (as with any
//! `HashMap`), so code whose byte output depends on ordering must sort,
//! exactly as before.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// The Fowler-style multiply-rotate constant FxHash uses (the golden
/// ratio in 64-bit fixed point).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, deterministic, non-cryptographic hasher (rustc's FxHash
/// scheme: rotate, xor, multiply per word).
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            let mut word = [0u8; 8];
            word.copy_from_slice(&bytes[..8]);
            self.add_to_hash(u64::from_le_bytes(word));
            bytes = &bytes[8..];
        }
        if !bytes.is_empty() {
            let mut word = [0u8; 8];
            word[..bytes.len()].copy_from_slice(bytes);
            self.add_to_hash(u64::from_le_bytes(word) ^ bytes.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed through [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed through [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let hash = |bytes: &[u8]| {
            let mut h = FxHasher::default();
            h.write(bytes);
            h.finish()
        };
        assert_eq!(hash(b"decision"), hash(b"decision"));
        assert_ne!(hash(b"decision"), hash(b"decisioN"));
        assert_ne!(hash(b""), hash(b"\0"), "length participates in the tail word");
    }

    #[test]
    fn integer_writes_differ_from_zero_state() {
        let mut a = FxHasher::default();
        a.write_u64(7);
        let mut b = FxHasher::default();
        b.write_u64(8);
        assert_ne!(a.finish(), b.finish());
        assert_eq!(FxHasher::default().finish(), 0, "empty hasher is the zero state");
    }

    #[test]
    fn map_and_set_round_trip() {
        let mut m: FxHashMap<(usize, u32), usize> = FxHashMap::default();
        for i in 0..1000usize {
            m.insert((i, (i * 3) as u32), i);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(&(41, 123)), Some(&41));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        s.insert(9);
        assert!(s.contains(&9) && !s.contains(&10));
    }
}
