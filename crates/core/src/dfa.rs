//! Lookahead DFA (Definition 4): DFA augmented with predicate transitions
//! and accept states that yield predicted production numbers.

use crate::atn::DecisionId;
use crate::config::PredSource;
use llstar_grammar::Grammar;
use llstar_lexer::TokenType;
use std::fmt::Write as _;

/// Index of a DFA state within [`LookaheadDfa::states`].
pub type DfaStateId = usize;

/// One lookahead-DFA state.
#[derive(Debug, Clone, Default)]
pub struct DfaState {
    /// Terminal transitions `(token, target)`. At most one per token.
    pub edges: Vec<(TokenType, DfaStateId)>,
    /// Predicate transitions to accept decisions, in evaluation order:
    /// `(predicate, predicted alternative)`.
    pub preds: Vec<(PredSource, u16)>,
    /// The alternative predicted when no predicate transition fires
    /// (PEG-mode "else" branch).
    pub default_alt: Option<u16>,
    /// If `Some(i)`, this is the accept state *f_i*: predict alternative
    /// `i` unconditionally.
    pub accept: Option<u16>,
}

impl DfaState {
    /// Whether the state terminates prediction (accept, predicates, or a
    /// default alternative).
    pub fn is_terminal(&self) -> bool {
        self.accept.is_some() || !self.preds.is_empty() || self.default_alt.is_some()
    }

    /// The target for `token`, if a transition exists.
    pub fn target(&self, token: TokenType) -> Option<DfaStateId> {
        self.edges.iter().find(|&&(t, _)| t == token).map(|&(_, s)| s)
    }
}

/// How a decision's DFA resolves it, for the evaluation's Table 1
/// classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DecisionClass {
    /// Acyclic DFA without syntactic-predicate edges: a fixed LL(k)
    /// decision with the given k.
    Fixed {
        /// The maximum lookahead depth.
        k: u32,
    },
    /// Cyclic DFA without syntactic-predicate edges: arbitrary regular
    /// lookahead.
    Cyclic,
    /// The DFA contains syntactic-predicate edges: the decision may
    /// backtrack at parse time.
    Backtrack,
}

impl std::fmt::Display for DecisionClass {
    /// The spelling shared by the profile table and the JSONL exports:
    /// `LL(k)`, `cyclic`, or `backtrack`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecisionClass::Fixed { k } => write!(f, "LL({k})"),
            DecisionClass::Cyclic => f.write_str("cyclic"),
            DecisionClass::Backtrack => f.write_str("backtrack"),
        }
    }
}

/// A lookahead DFA for one parsing decision.
#[derive(Debug, Clone)]
pub struct LookaheadDfa {
    /// The decision this DFA predicts.
    pub decision: DecisionId,
    /// States; index 0 is the start state *D₀*.
    pub states: Vec<DfaState>,
}

impl LookaheadDfa {
    /// Creates a DFA with a single (start) state.
    pub fn new(decision: DecisionId) -> Self {
        LookaheadDfa { decision, states: vec![DfaState::default()] }
    }

    /// Whether the DFA's transition graph has a cycle (ignoring predicate
    /// edges, which never form cycles).
    pub fn is_cyclic(&self) -> bool {
        #[derive(Clone, Copy, PartialEq)]
        enum Mark {
            White,
            Grey,
            Black,
        }
        let mut marks = vec![Mark::White; self.states.len()];
        // Iterative DFS with a grey set.
        fn dfs(dfa: &LookaheadDfa, v: DfaStateId, marks: &mut [Mark]) -> bool {
            marks[v] = Mark::Grey;
            for &(_, t) in &dfa.states[v].edges {
                match marks[t] {
                    Mark::Grey => return true,
                    Mark::White => {
                        if dfs(dfa, t, marks) {
                            return true;
                        }
                    }
                    Mark::Black => {}
                }
            }
            marks[v] = Mark::Black;
            false
        }
        dfs(self, 0, &mut marks)
    }

    /// Whether any predicate edge launches a speculative parse.
    pub fn uses_backtrack(&self) -> bool {
        self.states
            .iter()
            .flat_map(|s| &s.preds)
            .any(|(p, _)| matches!(p, PredSource::Syn(_) | PredSource::NotSyn(_)))
    }

    /// Whether any predicate edge is a semantic predicate.
    pub fn uses_sempreds(&self) -> bool {
        self.states.iter().flat_map(|s| &s.preds).any(|(p, _)| matches!(p, PredSource::Sem(_)))
    }

    /// Maximum lookahead depth: the longest token-edge path from the start
    /// state to a terminal state. `None` when the DFA is cyclic
    /// (unbounded lookahead).
    pub fn max_lookahead(&self) -> Option<u32> {
        if self.is_cyclic() {
            return None;
        }
        // Longest path in a DAG by memoized DFS. Depth of a terminal-only
        // state is 0; each token edge adds 1.
        fn depth(dfa: &LookaheadDfa, v: DfaStateId, memo: &mut [Option<u32>]) -> u32 {
            if let Some(d) = memo[v] {
                return d;
            }
            let mut best = 0;
            for &(_, t) in &dfa.states[v].edges {
                best = best.max(1 + depth(dfa, t, memo));
            }
            memo[v] = Some(best);
            best
        }
        let mut memo = vec![None; self.states.len()];
        Some(depth(self, 0, &mut memo))
    }

    /// Table 1 classification of this decision.
    pub fn classify(&self) -> DecisionClass {
        if self.uses_backtrack() {
            DecisionClass::Backtrack
        } else {
            match self.max_lookahead() {
                Some(k) => DecisionClass::Fixed { k: k.max(1) },
                None => DecisionClass::Cyclic,
            }
        }
    }

    /// The set of alternatives some state of the DFA can predict.
    pub fn predictable_alts(&self) -> Vec<u16> {
        let mut alts: Vec<u16> = self
            .states
            .iter()
            .flat_map(|s| {
                s.accept.into_iter().chain(s.preds.iter().map(|&(_, a)| a)).chain(s.default_alt)
            })
            .collect();
        alts.sort_unstable();
        alts.dedup();
        alts
    }

    /// Renders the DFA as readable text using grammar token names, in the
    /// style of the paper's figures (`s1 -ID-> s2`, `s2 => 3`).
    pub fn to_pretty(&self, grammar: &Grammar) -> String {
        let mut out = String::new();
        for (i, st) in self.states.iter().enumerate() {
            if let Some(alt) = st.accept {
                let _ = writeln!(out, "s{i} => predict alt {alt}");
                continue;
            }
            for &(tok, target) in &st.edges {
                let _ = writeln!(out, "s{i} -{}-> s{target}", grammar.vocab.display_name(tok));
            }
            for &(pred, alt) in &st.preds {
                let label = match pred {
                    PredSource::Sem(p) => format!("{{{}}}?", grammar.sempred_text(p)),
                    PredSource::Syn(sp) => format!("synpred{}", sp.0),
                    PredSource::NotSyn(sp) => format!("!synpred{}", sp.0),
                };
                let _ = writeln!(out, "s{i} -{label}-> predict alt {alt}");
            }
            if let Some(alt) = st.default_alt {
                let _ = writeln!(out, "s{i} -else-> predict alt {alt}");
            }
        }
        out
    }

    /// Renders the DFA in Graphviz dot format.
    pub fn to_dot(&self, grammar: &Grammar) -> String {
        let mut out = String::from("digraph dfa {\n  rankdir=LR;\n");
        for (i, st) in self.states.iter().enumerate() {
            match st.accept {
                Some(alt) => {
                    let _ = writeln!(out, "  s{i} [shape=doublecircle,label=\"s{i}\\n=>{alt}\"];");
                }
                None => {
                    let _ = writeln!(out, "  s{i} [shape=circle,label=\"s{i}\"];");
                }
            }
            for &(tok, target) in &st.edges {
                let _ = writeln!(
                    out,
                    "  s{i} -> s{target} [label=\"{}\"];",
                    grammar.vocab.display_name(tok)
                );
            }
            for (j, &(pred, alt)) in st.preds.iter().enumerate() {
                let label = match pred {
                    PredSource::Sem(p) => format!("{{{}}}?", grammar.sempred_text(p)),
                    PredSource::Syn(sp) => format!("synpred{}", sp.0),
                    PredSource::NotSyn(sp) => format!("!synpred{}", sp.0),
                };
                let _ = writeln!(out, "  f{i}_{j} [shape=doublecircle,label=\"=>{alt}\"];");
                let _ = writeln!(out, "  s{i} -> f{i}_{j} [label=\"{label}\",style=dashed];");
            }
            if let Some(alt) = st.default_alt {
                let _ = writeln!(out, "  fd{i} [shape=doublecircle,label=\"=>{alt}\"];");
                let _ = writeln!(out, "  s{i} -> fd{i} [label=\"else\",style=dashed];");
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llstar_grammar::parse_grammar;

    fn accept(alt: u16) -> DfaState {
        DfaState { accept: Some(alt), ..Default::default() }
    }

    fn chain_dfa() -> LookaheadDfa {
        // s0 -t1-> s1 -t2-> accept(1); s0 -t3-> accept(2)
        let mut dfa = LookaheadDfa::new(DecisionId(0));
        dfa.states[0].edges.push((TokenType(1), 1));
        dfa.states[0].edges.push((TokenType(3), 2));
        dfa.states.push(DfaState { edges: vec![(TokenType(2), 3)], ..Default::default() });
        dfa.states.push(accept(2));
        dfa.states.push(accept(1));
        dfa
    }

    #[test]
    fn acyclic_classification_and_depth() {
        let dfa = chain_dfa();
        assert!(!dfa.is_cyclic());
        assert_eq!(dfa.max_lookahead(), Some(2));
        assert_eq!(dfa.classify(), DecisionClass::Fixed { k: 2 });
        assert_eq!(dfa.predictable_alts(), vec![1, 2]);
    }

    #[test]
    fn cyclic_detection() {
        let mut dfa = chain_dfa();
        // Add a back edge s1 -> s0.
        dfa.states[1].edges.push((TokenType(9), 0));
        assert!(dfa.is_cyclic());
        assert_eq!(dfa.max_lookahead(), None);
        assert_eq!(dfa.classify(), DecisionClass::Cyclic);
    }

    #[test]
    fn backtrack_classification() {
        let mut dfa = chain_dfa();
        dfa.states[1].preds.push((PredSource::Syn(llstar_grammar::SynPredId(0)), 1));
        assert!(dfa.uses_backtrack());
        assert_eq!(dfa.classify(), DecisionClass::Backtrack);
    }

    #[test]
    fn sempred_stays_fixed_class() {
        let mut dfa = chain_dfa();
        dfa.states[1].preds.push((PredSource::Sem(llstar_grammar::PredId(0)), 1));
        assert!(dfa.uses_sempreds());
        assert!(!dfa.uses_backtrack());
        assert_eq!(dfa.classify(), DecisionClass::Fixed { k: 2 });
    }

    #[test]
    fn terminal_states() {
        assert!(accept(1).is_terminal());
        assert!(!DfaState::default().is_terminal());
        let with_default = DfaState { default_alt: Some(2), ..Default::default() };
        assert!(with_default.is_terminal());
    }

    #[test]
    fn target_lookup() {
        let dfa = chain_dfa();
        assert_eq!(dfa.states[0].target(TokenType(1)), Some(1));
        assert_eq!(dfa.states[0].target(TokenType(3)), Some(2));
        assert_eq!(dfa.states[0].target(TokenType(8)), None);
    }

    #[test]
    fn pretty_and_dot_render() {
        let g = parse_grammar("grammar G; s : A | B ; A:'a'; B:'b';").unwrap();
        let dfa = chain_dfa();
        let pretty = dfa.to_pretty(&g);
        assert!(pretty.contains("=> predict alt 2"), "{pretty}");
        let dot = dfa.to_dot(&g);
        assert!(dot.contains("doublecircle"), "{dot}");
    }

    #[test]
    fn single_state_dfa_has_depth_zero() {
        let mut dfa = LookaheadDfa::new(DecisionId(1));
        dfa.states[0].accept = Some(1);
        assert_eq!(dfa.max_lookahead(), Some(0));
        assert_eq!(dfa.classify(), DecisionClass::Fixed { k: 1 });
    }
}

// ---------------------------------------------------------------------------
// Minimization
// ---------------------------------------------------------------------------

impl LookaheadDfa {
    /// Returns an equivalent DFA with states merged by Moore partition
    /// refinement (the paper cites Charles's minimal-DFA representation
    /// of lookahead as prior art; ANTLR minimizes its decision DFAs the
    /// same way).
    ///
    /// Predictions are preserved exactly: accept alternatives, predicate
    /// transition lists (order included), and default alternatives all
    /// participate in the initial partition.
    pub fn minimized(&self) -> LookaheadDfa {
        use std::collections::BTreeMap;
        let n = self.states.len();
        if n <= 1 {
            return self.clone();
        }
        // Initial partition: by terminal behaviour.
        type TerminalSig = (Option<u16>, Vec<(PredSource, u16)>, Option<u16>);
        let signature =
            |s: &DfaState| -> TerminalSig { (s.accept, s.preds.clone(), s.default_alt) };
        let mut class_of: Vec<usize> = Vec::with_capacity(n);
        {
            let mut sig_to_class: BTreeMap<TerminalSig, usize> = BTreeMap::new();
            for st in &self.states {
                let next_class = sig_to_class.len();
                let class = *sig_to_class.entry(signature(st)).or_insert(next_class);
                class_of.push(class);
            }
        }
        // Refine until stable: two states stay together only if they
        // agree, per token, on the class of the target (or both lack the
        // edge).
        loop {
            let mut sig_to_class: BTreeMap<(usize, Vec<(u32, usize)>), usize> = BTreeMap::new();
            let mut next: Vec<usize> = Vec::with_capacity(n);
            for (i, st) in self.states.iter().enumerate() {
                let mut moves: Vec<(u32, usize)> =
                    st.edges.iter().map(|&(t, target)| (t.0, class_of[target])).collect();
                moves.sort_unstable();
                let key = (class_of[i], moves);
                let fresh = sig_to_class.len();
                next.push(*sig_to_class.entry(key).or_insert(fresh));
            }
            if next == class_of {
                break;
            }
            class_of = next;
        }
        // Build the quotient, renumbering so the start state is 0.
        let class_count = class_of.iter().max().copied().unwrap_or(0) + 1;
        let mut order: Vec<usize> = vec![usize::MAX; class_count];
        let mut new_states: Vec<DfaState> = Vec::new();
        // BFS from the start to keep only reachable classes.
        let mut queue = vec![0usize];
        order[class_of[0]] = 0;
        new_states.push(DfaState::default());
        let mut head = 0;
        while head < queue.len() {
            let rep = queue[head];
            head += 1;
            let new_id = order[class_of[rep]];
            let st = &self.states[rep];
            let mut edges: Vec<(TokenType, DfaStateId)> = Vec::new();
            for &(t, target) in &st.edges {
                let tc = class_of[target];
                let nid = if order[tc] == usize::MAX {
                    let nid = new_states.len();
                    order[tc] = nid;
                    new_states.push(DfaState::default());
                    queue.push(target);
                    nid
                } else {
                    order[tc]
                };
                edges.push((t, nid));
            }
            new_states[new_id] = DfaState {
                edges,
                preds: st.preds.clone(),
                default_alt: st.default_alt,
                accept: st.accept,
            };
        }
        LookaheadDfa { decision: self.decision, states: new_states }
    }
}

#[cfg(test)]
mod minimize_tests {
    use super::*;
    use llstar_grammar::SynPredId;

    fn accept(alt: u16) -> DfaState {
        DfaState { accept: Some(alt), ..Default::default() }
    }

    #[test]
    fn merges_equivalent_states() {
        // s0 -a-> s1 -c-> f1 ; s0 -b-> s2 -c-> f1  with s1 ≡ s2.
        let mut dfa = LookaheadDfa::new(DecisionId(0));
        dfa.states[0].edges = vec![(TokenType(1), 1), (TokenType(2), 2)];
        dfa.states.push(DfaState { edges: vec![(TokenType(3), 3)], ..Default::default() });
        dfa.states.push(DfaState { edges: vec![(TokenType(3), 3)], ..Default::default() });
        dfa.states.push(accept(1));
        let min = dfa.minimized();
        assert_eq!(min.states.len(), 3, "s1 and s2 merge: {min:?}");
        // Behaviour preserved.
        let s = min.states[0].target(TokenType(1)).unwrap();
        let f = min.states[s].target(TokenType(3)).unwrap();
        assert_eq!(min.states[f].accept, Some(1));
        assert_eq!(min.states[0].target(TokenType(1)), min.states[0].target(TokenType(2)));
    }

    #[test]
    fn distinct_accepts_stay_separate() {
        let mut dfa = LookaheadDfa::new(DecisionId(0));
        dfa.states[0].edges = vec![(TokenType(1), 1), (TokenType(2), 2)];
        dfa.states.push(accept(1));
        dfa.states.push(accept(2));
        let min = dfa.minimized();
        assert_eq!(min.states.len(), 3);
    }

    #[test]
    fn predicate_states_compare_by_pred_list() {
        let mut dfa = LookaheadDfa::new(DecisionId(0));
        dfa.states[0].edges = vec![(TokenType(1), 1), (TokenType(2), 2)];
        let p1 = DfaState {
            preds: vec![(PredSource::Syn(SynPredId(0)), 1)],
            default_alt: Some(2),
            ..Default::default()
        };
        let p2 = DfaState {
            preds: vec![(PredSource::Syn(SynPredId(1)), 1)],
            default_alt: Some(2),
            ..Default::default()
        };
        dfa.states.push(p1.clone());
        dfa.states.push(p2);
        let min = dfa.minimized();
        assert_eq!(min.states.len(), 3, "different predicates must not merge");
        // And identical pred states do merge:
        let mut dfa2 = LookaheadDfa::new(DecisionId(0));
        dfa2.states[0].edges = vec![(TokenType(1), 1), (TokenType(2), 2)];
        dfa2.states.push(p1.clone());
        dfa2.states.push(p1);
        assert_eq!(dfa2.minimized().states.len(), 2);
    }

    #[test]
    fn unreachable_states_are_dropped() {
        let mut dfa = LookaheadDfa::new(DecisionId(0));
        dfa.states[0].edges = vec![(TokenType(1), 1)];
        dfa.states.push(accept(1));
        dfa.states.push(accept(2)); // unreachable
        let min = dfa.minimized();
        assert_eq!(min.states.len(), 2);
    }

    /// Random DFAs: the minimized machine must agree with the original
    /// on every input walk (predict the same alternative or fail at the
    /// same depth).
    #[test]
    fn random_dfas_minimize_equivalently() {
        let mut seed = 0xabcdu64;
        let mut next = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (seed >> 33) as usize
        };
        for _case in 0..200 {
            // Build a random DFA over 3 tokens with up to 8 states.
            let n = 2 + next() % 7;
            let mut dfa = LookaheadDfa::new(DecisionId(0));
            dfa.states.resize_with(n, DfaState::default);
            for i in 0..n {
                if next() % 3 == 0 {
                    dfa.states[i].accept = Some((next() % 3 + 1) as u16);
                    continue;
                }
                for t in 1..=3u32 {
                    if next() % 2 == 0 {
                        let target = next() % n;
                        dfa.states[i].edges.push((TokenType(t), target));
                    }
                }
                if dfa.states[i].edges.is_empty() {
                    dfa.states[i].accept = Some((next() % 3 + 1) as u16);
                }
            }
            let min = dfa.minimized();
            assert!(min.states.len() <= dfa.states.len());
            // Compare behaviour on random token walks.
            for _walk in 0..50 {
                let tokens: Vec<TokenType> =
                    (0..8).map(|_| TokenType((next() % 3 + 1) as u32)).collect();
                let run = |d: &LookaheadDfa| -> (Option<u16>, usize) {
                    let mut s = 0usize;
                    for (i, &t) in tokens.iter().enumerate() {
                        if let Some(alt) = d.states[s].accept {
                            return (Some(alt), i);
                        }
                        match d.states[s].target(t) {
                            Some(nxt) => s = nxt,
                            None => return (None, i),
                        }
                    }
                    (d.states[s].accept, tokens.len())
                };
                assert_eq!(run(&dfa), run(&min), "walk diverged: {dfa:?} vs {min:?}");
            }
        }
    }

    #[test]
    fn cyclic_dfa_minimizes_and_keeps_cycle() {
        // Figure-1-like: two states looping on 'unsigned' that are
        // behaviourally identical collapse into one self-loop.
        let mut dfa = LookaheadDfa::new(DecisionId(0));
        let u = TokenType(5);
        let i = TokenType(6);
        dfa.states[0].edges = vec![(u, 1)];
        dfa.states.push(DfaState { edges: vec![(u, 2), (i, 3)], ..Default::default() });
        dfa.states.push(DfaState { edges: vec![(u, 1), (i, 3)], ..Default::default() });
        dfa.states.push(accept(3));
        let min = dfa.minimized();
        assert!(min.is_cyclic());
        assert!(min.states.len() < dfa.states.len(), "{min:?}");
        let s = min.states[0].target(u).unwrap();
        assert_eq!(min.states[s].target(u), Some(s), "self-loop after merging");
    }
}
