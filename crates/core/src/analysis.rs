//! The LL(*) grammar analysis algorithm (Section 5): a modified subset
//! construction over ATN configurations that builds one lookahead DFA per
//! parsing decision.
//!
//! Key elements, mapped to the paper:
//! * `createDFA` (Algorithm 8) → `DfaBuilder::build`
//! * `closure` (Algorithm 9) → `DfaBuilder::closure`
//! * `resolve` / `resolveWithPreds` (Algorithms 10/11) → `DfaBuilder::resolve`
//! * recursion-depth bound `m` and the `LikelyNonLLRegular` abort
//!   (Sections 5.3–5.4) → [`AnalysisWarning::NonLlRegularFallback`] plus
//!   the LL(1) fallback.

use crate::atn::{Atn, AtnEdge, Decision, DecisionId};
use crate::compiled::CompiledTables;
use crate::config::{Config, PredSource, StackArena, StackId};
use crate::dfa::{DfaState, DfaStateId, LookaheadDfa};
use crate::fxhash::FxHashMap;
use crate::metrics::{DecisionMetrics, FallbackReason};
use crate::recovery::RecoverySets;
use llstar_grammar::Grammar;
use llstar_lexer::TokenType;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Warnings produced while analyzing a decision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnalysisWarning {
    /// The grammar is ambiguous at this decision; the conflict was
    /// resolved in favour of the lowest-numbered alternative.
    Ambiguity {
        /// The conflicting alternatives.
        alts: Vec<u16>,
        /// The surviving alternative.
        resolved_to: u16,
    },
    /// Recursion exceeded depth `m`; analysis terminated lookahead early
    /// and resolved by precedence (or predicates).
    RecursionOverflow {
        /// Alternatives still viable at the overflow point.
        alts: Vec<u16>,
    },
    /// Recursion was detected in more than one alternative; the decision
    /// is likely not LL-regular, and analysis fell back to LL(1).
    NonLlRegularFallback,
    /// DFA construction exceeded the state budget; fell back to LL(1).
    StateLimit,
    /// An alternative can never be predicted by the final DFA (dead
    /// production).
    DeadAlternative {
        /// The unreachable alternative.
        alt: u16,
    },
}

/// Analysis output for one decision.
#[derive(Debug, Clone)]
pub struct DecisionAnalysis {
    /// Which decision this is.
    pub decision: DecisionId,
    /// The lookahead DFA driving the decision.
    pub dfa: LookaheadDfa,
    /// Warnings encountered.
    pub warnings: Vec<AnalysisWarning>,
    /// Construction cost counters. Deterministic, and serialized with the
    /// cache — a cache-loaded analysis still reports its original cost.
    pub metrics: DecisionMetrics,
    /// Wall-clock time spent on this decision's subset construction
    /// (zero when the analysis was loaded from a cache; timing is
    /// display-only and never serialized).
    pub elapsed: Duration,
}

/// Whole-grammar analysis output.
#[derive(Debug)]
pub struct GrammarAnalysis {
    /// The ATN the analysis ran over.
    pub atn: Atn,
    /// Per-decision results, indexed by [`DecisionId`].
    pub decisions: Vec<DecisionAnalysis>,
    /// Expected-token and resynchronization sets for error recovery,
    /// recomputed from the ATN on every construction path (including
    /// cache loads — like the ATN itself, they are never serialized).
    pub recovery: RecoverySets,
    /// Compiled prediction tables (token equivalence classes + dense or
    /// row-displaced transition tables), lowered from the decision DFAs
    /// on every construction path — including cache loads — and never
    /// serialized, like [`RecoverySets`].
    pub tables: CompiledTables,
    /// Wall-clock time spent analyzing (grammar → DFAs). For cache loads
    /// this is the deserialization time, not a subset-construction time.
    pub elapsed: Duration,
    /// Whether this analysis was deserialized (cache/`--dfa` load) rather
    /// than computed by subset construction.
    pub from_cache: bool,
    /// The options the analysis was produced under. For cache loads these
    /// are the options recorded in the serialized file (with `threads`
    /// reset to the default, since thread count never affects results);
    /// the cache layer compares them against the caller's request.
    pub options: AnalysisOptions,
}

impl GrammarAnalysis {
    /// The analysis result for `id`.
    pub fn decision(&self, id: DecisionId) -> &DecisionAnalysis {
        &self.decisions[id.index()]
    }

    /// Construction cost summed over every decision.
    pub fn total_metrics(&self) -> DecisionMetrics {
        let mut total = DecisionMetrics::default();
        for d in &self.decisions {
            total.absorb(&d.metrics);
        }
        // A sum has no single fallback reason; per-decision metrics do.
        total.fallback = None;
        total
    }
}

/// Tunable analysis limits.
#[derive(Debug, Clone)]
pub struct AnalysisOptions {
    /// Recursion-depth bound `m` (Section 5.3). Values below 1 are
    /// clamped to 1.
    pub rec_depth_m: u32,
    /// Force terminal resolution once lookahead reaches this depth
    /// (the "fixed-k" mode; `None` = unbounded LL(*)).
    pub max_k: Option<u32>,
    /// Per-decision DFA state budget before falling back to LL(1).
    pub max_dfa_states: usize,
    /// Minimize each lookahead DFA after construction (Moore partition
    /// refinement; behaviour-preserving).
    pub minimize: bool,
    /// Worker threads for per-decision DFA construction: `0` uses the
    /// machine's available parallelism, `1` is the sequential path.
    /// Results are assembled in [`DecisionId`] order, so every thread
    /// count produces identical output (see `tests/analysis_determinism`).
    pub threads: usize,
}

impl Default for AnalysisOptions {
    fn default() -> Self {
        AnalysisOptions {
            rec_depth_m: 1,
            max_k: None,
            max_dfa_states: 4096,
            minimize: true,
            threads: 0,
        }
    }
}

impl AnalysisOptions {
    /// Options derived from a grammar's `options { … }` section.
    pub fn from_grammar(grammar: &Grammar) -> Self {
        AnalysisOptions {
            rec_depth_m: grammar.options.rec_depth_m.max(1),
            max_k: grammar.options.max_k,
            ..Default::default()
        }
    }

    /// Whether analyses run under `self` and `other` produce identical
    /// results. Every limit that shapes the DFAs participates; `threads`
    /// does not (parallel and sequential runs are byte-identical, see
    /// `tests/analysis_determinism`).
    pub fn same_results(&self, other: &AnalysisOptions) -> bool {
        self.rec_depth_m.max(1) == other.rec_depth_m.max(1)
            && self.max_k == other.max_k
            && self.max_dfa_states == other.max_dfa_states
            && self.minimize == other.minimize
    }
}

/// Analyzes every decision of `grammar`, producing lookahead DFAs.
pub fn analyze(grammar: &Grammar) -> GrammarAnalysis {
    analyze_with(grammar, &AnalysisOptions::from_grammar(grammar))
}

/// [`analyze`] with explicit limits.
pub fn analyze_with(grammar: &Grammar, options: &AnalysisOptions) -> GrammarAnalysis {
    let start = Instant::now();
    let atn = Atn::from_grammar(grammar);
    let threads = effective_threads(options.threads, atn.decisions.len());
    let decisions: Vec<DecisionAnalysis> = if threads <= 1 {
        atn.decisions.iter().map(|d| analyze_decision(grammar, &atn, d, options)).collect()
    } else {
        analyze_decisions_parallel(grammar, &atn, options, threads)
    };
    let recovery = RecoverySets::compute(grammar, &atn);
    let tables = CompiledTables::lower(grammar.vocab.len(), decisions.iter().map(|d| &d.dfa));
    GrammarAnalysis {
        atn,
        decisions,
        recovery,
        tables,
        elapsed: start.elapsed(),
        from_cache: false,
        options: options.clone(),
    }
}

/// Resolves the `threads` knob: `0` = available parallelism, and never
/// more workers than decisions.
fn effective_threads(requested: usize, decisions: usize) -> usize {
    let requested = if requested == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        requested
    };
    requested.min(decisions.max(1))
}

/// Fans the per-decision subset constructions out over `threads` scoped
/// workers. Decisions are claimed from a shared atomic cursor over a
/// **largest-first** schedule (see [`estimate_decision_work`]): handing
/// the most expensive decisions out first keeps a skewed grammar's one
/// giant decision from landing last and serializing the tail of the run.
/// Every result is written back into its [`DecisionId`] slot, so the
/// assembled vector — and therefore `serialize_analysis` output and
/// warning order — is byte-identical to the sequential path regardless
/// of claim order.
fn analyze_decisions_parallel(
    grammar: &Grammar,
    atn: &Atn,
    options: &AnalysisOptions,
    threads: usize,
) -> Vec<DecisionAnalysis> {
    let n = atn.decisions.len();
    // Largest estimated work first; ties broken by DecisionId so the
    // schedule itself is deterministic.
    let mut order: Vec<usize> = (0..n).collect();
    let work: Vec<usize> = (0..n).map(|i| estimate_decision_work(atn, &atn.decisions[i])).collect();
    order.sort_by(|&a, &b| work[b].cmp(&work[a]).then(a.cmp(&b)));
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut local: Vec<(usize, DecisionAnalysis)> = Vec::new();
                    loop {
                        let slot = cursor.fetch_add(1, Ordering::Relaxed);
                        if slot >= n {
                            break;
                        }
                        let i = order[slot];
                        let d = &atn.decisions[i];
                        local.push((i, analyze_decision(grammar, atn, d, options)));
                    }
                    local
                })
            })
            .collect();
        let mut slots: Vec<Option<DecisionAnalysis>> = (0..n).map(|_| None).collect();
        for worker in workers {
            for (i, analysis) in worker.join().expect("analysis worker panicked") {
                slots[i] = Some(analysis);
            }
        }
        slots.into_iter().map(|s| s.expect("every decision is claimed exactly once")).collect()
    })
}

/// Cheap proxy for a decision's subset-construction cost: the number of
/// ATN states reachable from the decision state, following `Rule` edges
/// into both the callee's submachine and the local follow state (the two
/// places closure goes). A BFS over the ATN is a few microseconds even
/// for large grammars — negligible next to the constructions it orders.
fn estimate_decision_work(atn: &Atn, decision: &Decision) -> usize {
    let mut seen = vec![false; atn.states.len()];
    let mut queue = vec![decision.state];
    seen[decision.state] = true;
    let mut count = 0usize;
    while let Some(s) = queue.pop() {
        count += 1;
        for (edge, target) in &atn.states[s].edges {
            let mut visit = |t: crate::atn::AtnStateId| {
                if !seen[t] {
                    seen[t] = true;
                    queue.push(t);
                }
            };
            if let AtnEdge::Rule { rule, follow } = edge {
                visit(atn.rule_entry[rule.index()]);
                visit(*follow);
            } else {
                visit(*target);
            }
        }
    }
    count
}

/// Analyzes a single decision, falling back to LL(1) on a
/// likely-non-LL-regular abort or state-budget exhaustion (Section 5.4).
pub fn analyze_decision(
    grammar: &Grammar,
    atn: &Atn,
    decision: &Decision,
    options: &AnalysisOptions,
) -> DecisionAnalysis {
    let start = Instant::now();
    let mut builder = DfaBuilder::new(grammar, atn, decision, options, true);
    match builder.build() {
        Ok(dfa) => {
            let dfa = if options.minimize { dfa.minimized() } else { dfa };
            let mut warnings = builder.warnings;
            note_dead_alternatives(atn, decision, &dfa, &mut warnings);
            DecisionAnalysis {
                decision: decision.id,
                dfa,
                warnings,
                metrics: builder.metrics,
                elapsed: start.elapsed(),
            }
        }
        Err(abort) => {
            // Fall back: LL(1) DFA with overflow-style resolution instead
            // of aborting.
            let ll1_options = AnalysisOptions { max_k: Some(1), ..options.clone() };
            let mut fb = DfaBuilder::new(grammar, atn, decision, &ll1_options, false);
            let dfa = fb.build().expect("LL(1) fallback cannot abort: aborts are disabled");
            let dfa = if options.minimize { dfa.minimized() } else { dfa };
            let mut warnings = vec![match abort {
                Abort::NonLlRegular => AnalysisWarning::NonLlRegularFallback,
                Abort::StateLimit => AnalysisWarning::StateLimit,
            }];
            warnings.extend(fb.warnings);
            note_dead_alternatives(atn, decision, &dfa, &mut warnings);
            // Total cost = aborted LL(*) attempt + fallback build.
            let mut metrics = builder.metrics;
            metrics.absorb(&fb.metrics);
            metrics.fallback = Some(match abort {
                Abort::NonLlRegular => FallbackReason::NonLlRegular,
                Abort::StateLimit => FallbackReason::StateLimit,
            });
            DecisionAnalysis {
                decision: decision.id,
                dfa,
                warnings,
                metrics,
                elapsed: start.elapsed(),
            }
        }
    }
}

fn note_dead_alternatives(
    atn: &Atn,
    decision: &Decision,
    dfa: &LookaheadDfa,
    warnings: &mut Vec<AnalysisWarning>,
) {
    let predictable = dfa.predictable_alts();
    let n = atn.alt_count(decision.id) as u16;
    for alt in 1..=n {
        if !predictable.contains(&alt) {
            warnings.push(AnalysisWarning::DeadAlternative { alt });
        }
    }
}

/// Reasons the full LL(*) construction gives up (Section 5.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Abort {
    NonLlRegular,
    StateLimit,
}

/// The closure working set for one DFA state under construction.
#[derive(Debug, Default)]
struct StateCtx {
    configs: BTreeSet<Config>,
    busy: BTreeSet<Config>,
    recursive_alts: BTreeSet<u16>,
    overflowed: bool,
    /// Whether predicates encountered during this closure are hoisted
    /// into configurations. Only the start-state closure captures
    /// predicates: those are the ones *visible* at the decision point
    /// (evaluable before any lookahead is consumed, Section 5.5). In
    /// deeper states, configurations keep the predicates they inherited
    /// from D0 through move().
    capture_preds: bool,
}

/// How `resolve` disposed of a state.
enum Resolution {
    /// Keep expanding the state with more lookahead.
    Continue,
    /// The state becomes an unconditional accept for one alternative.
    Accept(u16),
    /// The state becomes terminal with predicate transitions (and an
    /// optional default alternative).
    Predicated { preds: Vec<(PredSource, u16)>, default_alt: Option<u16> },
}

struct DfaBuilder<'a> {
    atn: &'a Atn,
    decision: &'a Decision,
    m: u32,
    max_k: Option<u32>,
    max_states: usize,
    /// Abort on recursion in >1 alternative (disabled in fallback mode).
    abort_on_multi_recursion: bool,
    stacks: StackArena,
    dfa: LookaheadDfa,
    /// Canonical config set (post-resolution) → DFA state. In fixed-k
    /// mode the lookahead depth joins the key: merging states across
    /// depths would close cycles and silently reintroduce unbounded
    /// lookahead.
    interned: FxHashMap<(Vec<Config>, u32), DfaStateId>,
    /// One shared accept state per alternative (the paper's `f_i`).
    accept_states: FxHashMap<u16, DfaStateId>,
    /// Configs per live (expandable) DFA state.
    state_configs: Vec<Option<Vec<Config>>>,
    state_depth: Vec<u32>,
    warnings: Vec<AnalysisWarning>,
    metrics: DecisionMetrics,
}

impl<'a> DfaBuilder<'a> {
    fn new(
        grammar: &'a Grammar,
        atn: &'a Atn,
        decision: &'a Decision,
        options: &AnalysisOptions,
        abort_on_multi_recursion: bool,
    ) -> Self {
        let _ = grammar;
        DfaBuilder {
            atn,
            decision,
            m: options.rec_depth_m.max(1),
            max_k: options.max_k,
            max_states: options.max_dfa_states,
            abort_on_multi_recursion,
            stacks: StackArena::new(),
            dfa: LookaheadDfa::new(decision.id),
            interned: FxHashMap::default(),
            accept_states: FxHashMap::default(),
            state_configs: vec![None],
            state_depth: vec![0],
            warnings: Vec::new(),
            metrics: DecisionMetrics::default(),
        }
    }

    /// Algorithm 8, `createDFA`.
    fn build(&mut self) -> Result<LookaheadDfa, Abort> {
        self.metrics.dfa_builds += 1;
        self.metrics.dfa_states += 1; // D0, created in `new`.
                                      // D0: closure over one configuration per alternative, seeded from
                                      // the decision state's ordered ε edges.
        let mut ctx = StateCtx { capture_preds: true, ..Default::default() };
        let decision_state = &self.atn.states[self.decision.state];
        let alt_targets: Vec<_> = decision_state.edges.iter().map(|(_, t)| *t).collect();
        for (i, target) in alt_targets.iter().enumerate() {
            self.closure(&mut ctx, Config::initial(*target, i as u16 + 1))?;
        }
        let mut work: Vec<DfaStateId> = Vec::new();
        match self.resolve(&mut ctx, 0) {
            Resolution::Continue => {
                let configs: Vec<Config> = ctx.configs.iter().copied().collect();
                self.interned.insert((configs.clone(), self.intern_depth(0)), 0);
                self.state_configs[0] = Some(configs);
                if single_alt(&ctx.configs).is_some() {
                    // Degenerate: everything predicts one alternative.
                    let alt = single_alt(&ctx.configs).expect("checked");
                    self.dfa.states[0].accept = Some(alt);
                } else {
                    work.push(0);
                }
            }
            Resolution::Accept(alt) => {
                self.dfa.states[0].accept = Some(alt);
            }
            Resolution::Predicated { preds, default_alt } => {
                self.dfa.states[0].preds = preds;
                self.dfa.states[0].default_alt = default_alt;
            }
        }

        while let Some(d) = work.pop() {
            let configs = self.state_configs[d].clone().expect("live state has configs");
            // T_D: tokens with outgoing edges from any configuration.
            let mut tokens: BTreeSet<TokenType> = BTreeSet::new();
            for c in &configs {
                for (edge, _) in &self.atn.states[c.state].edges {
                    if let AtnEdge::Token(t) = edge {
                        tokens.insert(*t);
                    }
                }
            }
            for token in tokens {
                let mut ctx = StateCtx::default();
                // move(D, a) then closure.
                for c in &configs {
                    for (edge, target) in &self.atn.states[c.state].edges {
                        if matches!(edge, AtnEdge::Token(t) if *t == token) {
                            self.closure(&mut ctx, Config { state: *target, ..*c })?;
                        }
                    }
                }
                if ctx.configs.is_empty() {
                    continue;
                }
                let depth = self.state_depth[d] + 1;
                let target = match self.resolve(&mut ctx, depth) {
                    Resolution::Accept(alt) => self.accept_state(alt),
                    Resolution::Predicated { preds, default_alt } => {
                        let canonical: Vec<Config> = ctx.configs.iter().copied().collect();
                        let key = (canonical, self.intern_depth(depth));
                        if let Some(&existing) = self.interned.get(&key) {
                            existing
                        } else {
                            let id = self.push_state(key, depth)?;
                            self.dfa.states[id].preds = preds;
                            self.dfa.states[id].default_alt = default_alt;
                            id
                        }
                    }
                    Resolution::Continue => {
                        if let Some(alt) = single_alt(&ctx.configs) {
                            self.accept_state(alt)
                        } else {
                            let canonical: Vec<Config> = ctx.configs.iter().copied().collect();
                            let key = (canonical, self.intern_depth(depth));
                            if let Some(&existing) = self.interned.get(&key) {
                                existing
                            } else {
                                let id = self.push_state(key, depth)?;
                                work.push(id);
                                id
                            }
                        }
                    }
                };
                self.metrics.dfa_edges += 1;
                self.dfa.states[d].edges.push((token, target));
            }
        }
        Ok(std::mem::replace(&mut self.dfa, LookaheadDfa::new(self.decision.id)))
    }

    /// The depth component of the intern key: real depth in fixed-k
    /// mode, 0 (merge freely) in unbounded LL(*) mode.
    fn intern_depth(&self, depth: u32) -> u32 {
        if self.max_k.is_some() {
            depth
        } else {
            0
        }
    }

    fn push_state(&mut self, key: (Vec<Config>, u32), depth: u32) -> Result<DfaStateId, Abort> {
        if self.dfa.states.len() >= self.max_states {
            return Err(Abort::StateLimit);
        }
        let id = self.dfa.states.len();
        self.metrics.dfa_states += 1;
        self.dfa.states.push(DfaState::default());
        self.state_configs.push(Some(key.0.clone()));
        self.interned.insert(key, id);
        self.state_depth.push(depth);
        Ok(id)
    }

    /// The shared accept state `f_alt`.
    fn accept_state(&mut self, alt: u16) -> DfaStateId {
        if let Some(&id) = self.accept_states.get(&alt) {
            return id;
        }
        let id = self.dfa.states.len();
        self.metrics.dfa_states += 1;
        self.dfa.states.push(DfaState { accept: Some(alt), ..Default::default() });
        self.state_configs.push(None);
        self.state_depth.push(u32::MAX);
        self.accept_states.insert(alt, id);
        id
    }

    /// Algorithm 9, `closure`.
    fn closure(&mut self, ctx: &mut StateCtx, c: Config) -> Result<(), Abort> {
        self.metrics.closure_calls += 1;
        if !ctx.busy.insert(c) {
            return Ok(());
        }
        if ctx.configs.insert(c) {
            self.metrics.configs_created += 1;
        }
        let state = &self.atn.states[c.state];

        if self.atn.is_stop_state(c.state) {
            if let Some((ret, rest)) = self.stacks.pop(c.stack) {
                self.closure(ctx, Config { state: ret, stack: rest, ..c })?;
            } else if self.atn.is_fragment_stop(c.state) {
                // End of a syntactic-predicate fragment: anything may
                // follow a successful speculative match.
                self.closure(
                    ctx,
                    Config {
                        state: self.atn.any_follow,
                        stack: StackId::EMPTY,
                        followed: true,
                        ..c
                    },
                )?;
            } else {
                // Empty stack: any caller could have invoked this rule;
                // chase every follow state (ε wildcard, Definition 6).
                let rule = state.rule;
                let followers = self.atn.rule_followers[rule.index()].clone();
                for follow in followers {
                    self.closure(
                        ctx,
                        Config { state: follow, stack: StackId::EMPTY, followed: true, ..c },
                    )?;
                }
            }
            return Ok(());
        }

        let edges = state.edges.clone();
        for (edge, target) in edges {
            match edge {
                AtnEdge::Token(_) => {}
                AtnEdge::Epsilon => {
                    self.closure(ctx, Config { state: target, ..c })?;
                }
                AtnEdge::Rule { follow, .. } => {
                    let depth = self.stacks.occurrences(c.stack, follow);
                    if depth == 1 {
                        ctx.recursive_alts.insert(c.alt);
                        if self.abort_on_multi_recursion && ctx.recursive_alts.len() > 1 {
                            return Err(Abort::NonLlRegular);
                        }
                    }
                    if depth >= self.m {
                        // Recursion overflow: stop pursuing this path.
                        self.metrics.recursion_overflows += 1;
                        ctx.overflowed = true;
                        continue;
                    }
                    let stack = self.stacks.push(c.stack, follow);
                    self.closure(ctx, Config { state: target, stack, ..c })?;
                }
                AtnEdge::Pred(p) => {
                    // Hoist the predicate only while still inside the
                    // decision's own derivation (Section 5.5); predicates
                    // reached through the FOLLOW wildcard gate other
                    // decisions.
                    let pred = if ctx.capture_preds && !c.followed {
                        c.pred.or(Some(PredSource::Sem(p)))
                    } else {
                        c.pred
                    };
                    self.closure(ctx, Config { state: target, pred, ..c })?;
                }
                AtnEdge::SynPred(sp) => {
                    let pred = if ctx.capture_preds && !c.followed {
                        c.pred.or(Some(PredSource::Syn(sp)))
                    } else {
                        c.pred
                    };
                    self.closure(ctx, Config { state: target, pred, ..c })?;
                }
                AtnEdge::NotSynPred(sp) => {
                    let pred = if ctx.capture_preds && !c.followed {
                        c.pred.or(Some(PredSource::NotSyn(sp)))
                    } else {
                        c.pred
                    };
                    self.closure(ctx, Config { state: target, pred, ..c })?;
                }
                AtnEdge::Action(..) => {
                    self.closure(ctx, Config { state: target, ..c })?;
                }
            }
        }
        Ok(())
    }

    /// Algorithms 10–11, `resolve` and `resolveWithPreds`, extended with
    /// the forced-termination cases (recursion overflow and the fixed-k
    /// depth limit).
    fn resolve(&mut self, ctx: &mut StateCtx, depth: u32) -> Resolution {
        // The paper's createDFA only resolves states reached by move();
        // the start state D0 is expanded unconditionally (conflicts
        // materialize, and are pruned, in its successors).
        if depth == 0 {
            return Resolution::Continue;
        }
        self.metrics.resolve_calls += 1;
        let conflicts = self.conflict_alts(ctx);
        let depth_limited = self.max_k.is_some_and(|k| depth >= k);
        let force = ctx.overflowed || depth_limited;

        if conflicts.is_empty() && !force {
            return Resolution::Continue;
        }

        let all_alts: BTreeSet<u16> = ctx.configs.iter().map(|c| c.alt).collect();
        if force && all_alts.len() == 1 {
            return Resolution::Accept(*all_alts.iter().next().expect("non-empty"));
        }

        // resolveWithPreds over every alternative still viable in the
        // state (the terminal state must dispose of all of them). One
        // predicate-free alternative may serve as the default branch.
        // Each alternative may contribute several predicates (ORed at
        // runtime: the first one that passes selects the alternative).
        // An alternative counts as predicated only if *every* one of its
        // configurations carries a predicate — an unpredicated
        // configuration means the alternative has a gate-free derivation
        // and must not be blocked behind predicates.
        let mut pred_for: BTreeMap<u16, BTreeSet<PredSource>> = BTreeMap::new();
        let mut gate_free: BTreeSet<u16> = BTreeSet::new();
        for c in &ctx.configs {
            match c.pred {
                Some(p) => {
                    pred_for.entry(c.alt).or_default().insert(p);
                }
                None => {
                    gate_free.insert(c.alt);
                }
            }
        }
        for alt in &gate_free {
            pred_for.remove(alt);
        }
        let unpredicated: Vec<u16> =
            all_alts.iter().copied().filter(|a| !pred_for.contains_key(a)).collect();
        if unpredicated.len() <= 1 && !pred_for.is_empty() {
            if ctx.overflowed {
                self.warnings.push(AnalysisWarning::RecursionOverflow { alts: to_vec(&all_alts) });
            }
            let preds: Vec<(PredSource, u16)> = all_alts
                .iter()
                .flat_map(|a| {
                    pred_for.get(a).into_iter().flat_map(|set| set.iter().map(|p| (*p, *a)))
                })
                .collect();
            self.metrics.pred_resolutions += 1;
            return Resolution::Predicated { preds, default_alt: unpredicated.first().copied() };
        }

        if force {
            // No predicates to arbitrate: resolve wholesale in favour of
            // the lowest-numbered alternative.
            let min = *all_alts.iter().next().expect("non-empty");
            if ctx.overflowed {
                self.warnings.push(AnalysisWarning::RecursionOverflow { alts: to_vec(&all_alts) });
            } else {
                self.warnings
                    .push(AnalysisWarning::Ambiguity { alts: to_vec(&all_alts), resolved_to: min });
            }
            return Resolution::Accept(min);
        }

        // Static ambiguity resolution: drop configurations belonging to
        // the higher-numbered conflicting alternatives and continue.
        let min = conflicts[0];
        self.warnings
            .push(AnalysisWarning::Ambiguity { alts: conflicts.clone(), resolved_to: min });
        let losers: BTreeSet<u16> = conflicts.iter().copied().filter(|&a| a != min).collect();
        ctx.configs.retain(|c| !losers.contains(&c.alt));
        Resolution::Continue
    }

    /// Definition 7: alternatives appearing in conflicting configurations
    /// (same ATN state, equivalent stacks, different alternatives).
    fn conflict_alts(&self, ctx: &StateCtx) -> Vec<u16> {
        let mut by_state: BTreeMap<usize, Vec<&Config>> = BTreeMap::new();
        for c in &ctx.configs {
            by_state.entry(c.state).or_default().push(c);
        }
        let mut conflict: BTreeSet<u16> = BTreeSet::new();
        for group in by_state.values() {
            if group.len() < 2 {
                continue;
            }
            for (i, a) in group.iter().enumerate() {
                for b in &group[i + 1..] {
                    if a.alt != b.alt && self.stacks.equivalent(a.stack, b.stack) {
                        conflict.insert(a.alt);
                        conflict.insert(b.alt);
                    }
                }
            }
        }
        conflict.into_iter().collect()
    }
}

fn single_alt(configs: &BTreeSet<Config>) -> Option<u16> {
    let mut alts = configs.iter().map(|c| c.alt);
    let first = alts.next()?;
    alts.all(|a| a == first).then_some(first)
}

fn to_vec(set: &BTreeSet<u16>) -> Vec<u16> {
    set.iter().copied().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfa::DecisionClass;
    use llstar_grammar::{apply_peg_mode, parse_grammar};

    fn analyze_src(src: &str) -> (Grammar, GrammarAnalysis) {
        let g = apply_peg_mode(parse_grammar(src).unwrap());
        let a = analyze(&g);
        (g, a)
    }

    fn rule_decision<'a>(g: &Grammar, a: &'a GrammarAnalysis, rule: &str) -> &'a DecisionAnalysis {
        let rid = g.rule_id(rule).unwrap();
        let d = a
            .atn
            .decisions
            .iter()
            .find(|d| d.rule == rid && d.kind == crate::atn::DecisionKind::RuleAlts)
            .unwrap();
        a.decision(d.id)
    }

    /// Figure 1: the LL(*) lookahead DFA for rule `s`.
    #[test]
    fn figure1_rule_s() {
        let (g, a) = analyze_src(
            r#"
            grammar F1;
            s : ID | ID '=' expr | 'unsigned'* 'int' ID | 'unsigned'* ID ID ;
            expr : INT ;
            ID : [a-zA-Z_] [a-zA-Z0-9_]* ;
            INT : [0-9]+ ;
            WS : [ \t\r\n]+ -> skip ;
            "#,
        );
        let d = rule_decision(&g, &a, "s");
        assert!(d.warnings.is_empty(), "{:?}", d.warnings);
        let dfa = &d.dfa;
        assert!(dfa.is_cyclic(), "unsigned* loop makes the DFA cyclic:\n{}", dfa.to_pretty(&g));
        assert_eq!(dfa.classify(), DecisionClass::Cyclic);

        let int_t = g.vocab.by_literal("int").unwrap();
        let uns_t = g.vocab.by_literal("unsigned").unwrap();
        let id_t = g.vocab.by_name("ID").unwrap();
        let eq_t = g.vocab.by_literal("=").unwrap();

        // k=1: 'int' immediately predicts alternative 3.
        let s0 = &dfa.states[0];
        let f3 = s0.target(int_t).unwrap();
        assert_eq!(dfa.states[f3].accept, Some(3));

        // k=2 after ID: '=' → alt 2, ID → alt 4, EOF → alt 1.
        let s_id = s0.target(id_t).unwrap();
        let after = &dfa.states[s_id];
        assert_eq!(dfa.states[after.target(eq_t).unwrap()].accept, Some(2));
        assert_eq!(dfa.states[after.target(id_t).unwrap()].accept, Some(4));
        assert_eq!(dfa.states[after.target(TokenType::EOF).unwrap()].accept, Some(1));

        // 'unsigned' loops: the unsigned-successor state loops on itself.
        let s_uns = s0.target(uns_t).unwrap();
        assert_eq!(
            dfa.states[s_uns].target(uns_t),
            Some(s_uns),
            "arbitrary lookahead over 'unsigned'*:\n{}",
            dfa.to_pretty(&g)
        );
        assert_eq!(dfa.states[dfa.states[s_uns].target(int_t).unwrap()].accept, Some(3));
        assert_eq!(dfa.states[dfa.states[s_uns].target(id_t).unwrap()].accept, Some(4));
    }

    /// Figure 2: PEG mode, recursion in one alternative, m = 1: match one
    /// '-', then fail over to backtracking.
    #[test]
    fn figure2_rule_t() {
        let (g, a) = analyze_src(
            r#"
            grammar F2;
            options { backtrack = true; m = 1; }
            t : '-'* ID | expr ;
            expr : INT | '-' expr ;
            ID : [a-z]+ ;
            INT : [0-9]+ ;
            WS : [ ]+ -> skip ;
            "#,
        );
        let d = rule_decision(&g, &a, "t");
        let dfa = &d.dfa;
        assert_eq!(dfa.classify(), DecisionClass::Backtrack, "\n{}", dfa.to_pretty(&g));

        let id_t = g.vocab.by_name("ID").unwrap();
        let int_t = g.vocab.by_name("INT").unwrap();
        let minus = g.vocab.by_literal("-").unwrap();

        // Immediate k=1 answers.
        let s0 = &dfa.states[0];
        assert_eq!(dfa.states[s0.target(id_t).unwrap()].accept, Some(1));
        assert_eq!(dfa.states[s0.target(int_t).unwrap()].accept, Some(2));

        // One '-': still deterministic lookahead.
        let s1 = s0.target(minus).unwrap();
        let s1st = &dfa.states[s1];
        assert_eq!(dfa.states[s1st.target(id_t).unwrap()].accept, Some(1));
        assert_eq!(dfa.states[s1st.target(int_t).unwrap()].accept, Some(2));

        // Two '-': recursion overflow (m = 1) → predicate transitions.
        let s2 = s1st.target(minus).unwrap();
        let s2st = &dfa.states[s2];
        assert!(
            !s2st.preds.is_empty(),
            "after '--' the DFA must fail over to backtracking:\n{}",
            dfa.to_pretty(&g)
        );
        assert!(matches!(s2st.preds[0].0, PredSource::Syn(_)));
        assert_eq!(s2st.preds[0].1, 1);
        assert_eq!(s2st.default_alt, Some(2));
        assert!(d.warnings.iter().any(|w| matches!(w, AnalysisWarning::RecursionOverflow { .. })));
    }

    /// Section 2's `a : b A+ X | c A+ Y` example: LL(*) but not LR(k);
    /// ANTLR builds a cyclic DFA quickly.
    #[test]
    fn cyclic_dfa_for_a_plus() {
        let (g, a) =
            analyze_src("grammar C; a : b A+ X | c A+ Y ; b : ; c : ; A:'a'; X:'x'; Y:'y';");
        let d = rule_decision(&g, &a, "a");
        let dfa = &d.dfa;
        assert!(d.warnings.is_empty(), "{:?}", d.warnings);
        assert_eq!(dfa.classify(), DecisionClass::Cyclic, "\n{}", dfa.to_pretty(&g));
        // Simulate: a^n x predicts 1, a^n y predicts 2, for growing n.
        let a_t = g.vocab.by_name("A").unwrap();
        let x_t = g.vocab.by_name("X").unwrap();
        let y_t = g.vocab.by_name("Y").unwrap();
        for n in 1..6 {
            let mut s = 0;
            for _ in 0..n {
                s = dfa.states[s].target(a_t).unwrap();
            }
            let fx = dfa.states[s].target(x_t).unwrap();
            assert_eq!(dfa.states[fx].accept, Some(1), "a^{n} x");
            let fy = dfa.states[s].target(y_t).unwrap();
            assert_eq!(dfa.states[fy].accept, Some(2), "a^{n} y");
        }
    }

    /// Section 5.2's ambiguity example: `A → (a|a) b` is ambiguous and
    /// resolves to alternative 1.
    #[test]
    fn ambiguous_subrule_resolves_to_lowest() {
        let g = parse_grammar("grammar Amb; s : (A | A) B ; A:'a'; B:'b';").unwrap();
        let a = analyze(&g);
        let d = &a.decisions[0];
        assert!(
            d.warnings.iter().any(|w| matches!(
                w,
                AnalysisWarning::Ambiguity { alts, resolved_to: 1 } if alts == &vec![1, 2]
            )),
            "{:?}",
            d.warnings
        );
        assert!(
            d.warnings.iter().any(|w| matches!(w, AnalysisWarning::DeadAlternative { alt: 2 })),
            "{:?}",
            d.warnings
        );
        // DFA: a → f1.
        let a_t = g.vocab.by_name("A").unwrap();
        let f = d.dfa.states[0].target(a_t).unwrap();
        assert_eq!(d.dfa.states[f].accept, Some(1));
    }

    /// Section 5.2's predicated variant: `A → ({p1}? a | {p2}? a) b`
    /// resolves at runtime with predicate transitions.
    #[test]
    fn predicates_resolve_ambiguity() {
        let g = parse_grammar("grammar P; s : ({p1}? A | {p2}? A) B ; A:'a'; B:'b';").unwrap();
        let a = analyze(&g);
        let d = &a.decisions[0];
        assert!(d.warnings.is_empty(), "{:?}", d.warnings);
        let a_t = g.vocab.by_name("A").unwrap();
        let s1 = d.dfa.states[0].target(a_t).unwrap();
        let st = &d.dfa.states[s1];
        assert_eq!(st.preds.len(), 2);
        assert!(matches!(st.preds[0], (PredSource::Sem(_), 1)));
        assert!(matches!(st.preds[1], (PredSource::Sem(_), 2)));
    }

    /// Figure 6 grammar `S → Ac|Ad, A → aA|b`: recursion in both
    /// alternatives aborts the full construction and falls back to LL(1).
    #[test]
    fn non_ll_regular_falls_back_to_ll1() {
        let g =
            parse_grammar("grammar N; s : a C | a D ; a : A a | B ; A:'a'; B:'b'; C:'c'; D:'d';")
                .unwrap();
        let a = analyze(&g);
        let d = rule_decision(&g, &a, "s");
        assert!(d.warnings.contains(&AnalysisWarning::NonLlRegularFallback), "{:?}", d.warnings);
        // The LL(1) fallback without predicates resolves to alt 1.
        assert_eq!(d.dfa.max_lookahead(), Some(1));
    }

    /// An LL(1) decision stays LL(1).
    #[test]
    fn ll1_decision() {
        let (g, a) = analyze_src("grammar L; s : A X | B Y ; A:'a'; B:'b'; X:'x'; Y:'y';");
        let d = rule_decision(&g, &a, "s");
        assert_eq!(d.dfa.classify(), DecisionClass::Fixed { k: 1 });
        assert!(d.warnings.is_empty());
    }

    /// LL(2) via common prefix.
    #[test]
    fn ll2_decision() {
        let (g, a) = analyze_src("grammar L2; s : A X | A Y ; A:'a'; X:'x'; Y:'y';");
        let d = rule_decision(&g, &a, "s");
        assert_eq!(d.dfa.classify(), DecisionClass::Fixed { k: 2 });
    }

    /// The bracket-matching approximation from Section 5: `A → '[' A ']'
    /// | id` is LL(1) even though the continuation language is
    /// context-free.
    #[test]
    fn regular_approximation_of_recursive_rule() {
        let (g, a) = analyze_src("grammar R; a : '[' a ']' | ID ; ID : [a-z]+ ;");
        let d = rule_decision(&g, &a, "a");
        assert_eq!(d.dfa.classify(), DecisionClass::Fixed { k: 1 }, "\n{}", d.dfa.to_pretty(&g));
        assert!(d.warnings.is_empty(), "{:?}", d.warnings);
    }

    /// Fixed-k mode (`options { k = 1; }`) forces depth-1 resolution.
    #[test]
    fn fixed_k_caps_lookahead() {
        let g = parse_grammar("grammar K; options { k = 1; } s : A X | A Y ; A:'a'; X:'x'; Y:'y';")
            .unwrap();
        let a = analyze(&g);
        let d = rule_decision(&g, &a, "s");
        assert_eq!(d.dfa.max_lookahead(), Some(1));
        // Forced resolution produces an ambiguity warning and a dead alt.
        assert!(
            d.warnings.iter().any(|w| matches!(w, AnalysisWarning::Ambiguity { .. })),
            "{:?}",
            d.warnings
        );
    }

    /// EOF distinguishes "end of rule" from more input.
    #[test]
    fn eof_lookahead_for_start_rule() {
        let (g, a) = analyze_src("grammar E; s : A | A A ; A:'a';");
        let d = rule_decision(&g, &a, "s");
        let a_t = g.vocab.by_name("A").unwrap();
        let s1 = d.dfa.states[0].target(a_t).unwrap();
        let f1 = d.dfa.states[s1].target(TokenType::EOF).unwrap();
        assert_eq!(d.dfa.states[f1].accept, Some(1));
        let f2 = d.dfa.states[s1].target(a_t).unwrap();
        assert_eq!(d.dfa.states[f2].accept, Some(2));
    }

    /// Optional/star/plus subrule decisions analyze too.
    #[test]
    fn ebnf_decisions_are_analyzed() {
        let (_, a) = analyze_src("grammar B; s : A? B* C+ D ; A:'a'; B:'b'; C:'c'; D:'d';");
        assert_eq!(a.decisions.len(), 3);
        for d in &a.decisions {
            assert!(d.warnings.is_empty(), "{:?}", d.warnings);
            assert_eq!(d.dfa.classify(), DecisionClass::Fixed { k: 1 });
        }
    }

    /// The `m` constant controls how far the DFA unwinds recursion
    /// before failing over to backtracking (Section 5.3): with m = 2 the
    /// Figure 2 DFA matches one more '-' deterministically than m = 1.
    #[test]
    fn m_parameter_extends_deterministic_prefix() {
        let depth_to_preds = |m: u32| -> usize {
            let src = format!(
                "grammar F; options {{ backtrack = true; m = {m}; }} \
                 t : '-'* ID | expr ; expr : INT | '-' expr ; \
                 ID : [a-z]+ ; INT : [0-9]+ ; WS : [ ]+ -> skip ;"
            );
            let g = apply_peg_mode(parse_grammar(&src).unwrap());
            let a = analyze(&g);
            let d = {
                let rid = g.rule_id("t").unwrap();
                let d = a
                    .atn
                    .decisions
                    .iter()
                    .find(|d| d.rule == rid && d.kind == crate::atn::DecisionKind::RuleAlts)
                    .unwrap();
                a.decision(d.id)
            };
            // Walk '-' edges from the start until a predicate state.
            let minus = g.vocab.by_literal("-").unwrap();
            let mut s = 0usize;
            let mut depth = 0usize;
            loop {
                let st = &d.dfa.states[s];
                if !st.preds.is_empty() {
                    return depth;
                }
                match st.target(minus) {
                    Some(t) => {
                        s = t;
                        depth += 1;
                    }
                    None => panic!("expected '-' edge or predicates at depth {depth}"),
                }
            }
        };
        let d1 = depth_to_preds(1);
        let d2 = depth_to_preds(2);
        let d3 = depth_to_preds(3);
        assert!(d2 > d1, "m=2 unwinds deeper than m=1: {d1} vs {d2}");
        assert!(d3 > d2, "m=3 deeper still: {d2} vs {d3}");
    }

    /// Section 5.5: predicates on the left edge of a *sub-rule* are
    /// hoisted into the outer decision (limited predicate discovery).
    #[test]
    fn predicates_hoist_through_rule_references() {
        let g =
            parse_grammar("grammar H; s : a | b ; a : {isA}? ID ; b : {isB}? ID ; ID : [a-z]+ ;")
                .unwrap();
        let a = analyze(&g);
        let d = rule_decision(&g, &a, "s");
        assert!(d.warnings.is_empty(), "{:?}", d.warnings);
        // Both alternatives reach the same ID with equivalent stacks —
        // only the hoisted predicates can resolve the conflict.
        let id_t = g.vocab.by_name("ID").unwrap();
        let s1 = d.dfa.states[0].target(id_t).unwrap();
        let st = &d.dfa.states[s1];
        assert_eq!(st.preds.len(), 2, "{}", d.dfa.to_pretty(&g));
        assert!(matches!(st.preds[0], (PredSource::Sem(_), 1)));
        assert!(matches!(st.preds[1], (PredSource::Sem(_), 2)));
    }

    /// No fixed k resolves `a : b A+ X | c A+ Y`, but cyclic LL(*) does —
    /// the Section 2 LPG anecdote as a unit test.
    #[test]
    fn no_fixed_k_resolves_the_cyclic_decision() {
        let src = "grammar C; a : b A+ X | c A+ Y ; b : ; c : ; A:'a'; X:'x'; Y:'y';";
        let g = parse_grammar(src).unwrap();
        for k in [1, 2, 4, 8] {
            let opts = AnalysisOptions { max_k: Some(k), ..Default::default() };
            let a = analyze_with(&g, &opts);
            let d = rule_decision(&g, &a, "a");
            assert!(
                d.warnings.iter().any(|w| matches!(w, AnalysisWarning::Ambiguity { .. })
                    || matches!(w, AnalysisWarning::DeadAlternative { .. })),
                "k={k}: fixed lookahead must fail to resolve: {:?}",
                d.warnings
            );
        }
        let a = analyze(&g);
        let d = rule_decision(&g, &a, "a");
        assert!(d.warnings.is_empty(), "cyclic LL(*) resolves cleanly: {:?}", d.warnings);
    }

    /// An alternative with several ε-reachable predicates gets OR
    /// semantics: any passing predicate selects it.
    #[test]
    fn multiple_predicates_per_alternative_are_ored() {
        let g = parse_grammar("grammar O; s : ({p1}? ID | {p2}? ID) | {p3}? ID ; ID : [a-z]+ ;")
            .unwrap();
        let a = analyze(&g);
        let d = rule_decision(&g, &a, "s");
        let id_t = g.vocab.by_name("ID").unwrap();
        let s1 = d.dfa.states[0].target(id_t).unwrap();
        let st = &d.dfa.states[s1];
        // Alternative 1 carries p1 and p2; alternative 2 carries p3.
        let alt1_preds = st.preds.iter().filter(|&&(_, a)| a == 1).count();
        let alt2_preds = st.preds.iter().filter(|&&(_, a)| a == 2).count();
        assert_eq!(alt1_preds, 2, "{}", d.dfa.to_pretty(&g));
        assert_eq!(alt2_preds, 1, "{}", d.dfa.to_pretty(&g));
    }

    /// Explicit EOF elements participate like any terminal.
    #[test]
    fn explicit_eof_element() {
        let (g, a) = analyze_src("grammar X; s : A EOF | A A EOF ; A:'a';");
        let d = rule_decision(&g, &a, "s");
        assert_eq!(d.dfa.classify(), DecisionClass::Fixed { k: 2 });
        let a_t = g.vocab.by_name("A").unwrap();
        let s1 = d.dfa.states[0].target(a_t).unwrap();
        assert!(d.dfa.states[s1].target(TokenType::EOF).is_some());
    }

    /// Analysis is fast enough to report timing.
    #[test]
    fn elapsed_is_recorded() {
        let (_, a) = analyze_src("grammar T; s : A | B ; A:'a'; B:'b';");
        assert!(a.elapsed.as_nanos() > 0);
    }

    /// Per-decision metrics count the construction work actually done.
    #[test]
    fn metrics_count_construction_work() {
        let (g, a) = analyze_src("grammar M; s : A X | A Y ; A:'a'; X:'x'; Y:'y';");
        let d = rule_decision(&g, &a, "s");
        let m = &d.metrics;
        assert_eq!(m.dfa_builds, 1);
        assert!(m.closure_calls > 0, "{m:?}");
        assert!(m.configs_created > 0, "{m:?}");
        // Construction-time states can exceed the minimized DFA, never
        // fall short of it.
        assert!(m.dfa_states as usize >= d.dfa.states.len(), "{m:?}");
        assert!(m.dfa_edges > 0, "{m:?}");
        assert!(m.resolve_calls > 0, "{m:?}");
        assert_eq!(m.fallback, None);
        assert_eq!(m.recursion_overflows, 0);

        let total = a.total_metrics();
        assert_eq!(total.dfa_builds, a.decisions.len() as u64);
        assert!(total.closure_calls >= m.closure_calls);
    }

    /// An LL(1) fallback is visible in the metrics: two builds, a reason.
    #[test]
    fn metrics_record_fallback_reason() {
        let g =
            parse_grammar("grammar N; s : a C | a D ; a : A a | B ; A:'a'; B:'b'; C:'c'; D:'d';")
                .unwrap();
        let a = analyze(&g);
        let d = rule_decision(&g, &a, "s");
        assert_eq!(d.metrics.fallback, Some(FallbackReason::NonLlRegular));
        assert_eq!(d.metrics.dfa_builds, 2, "aborted attempt + fallback build");
    }

    /// Metrics are deterministic: two identical runs agree exactly.
    #[test]
    fn metrics_are_deterministic() {
        let src = "grammar D2; options { backtrack = true; m = 1; } \
                   t : '-'* ID | expr ; expr : INT | '-' expr ; \
                   ID : [a-z]+ ; INT : [0-9]+ ; WS : [ ]+ -> skip ;";
        let (_, a1) = analyze_src(src);
        let (_, a2) = analyze_src(src);
        for (d1, d2) in a1.decisions.iter().zip(&a2.decisions) {
            assert_eq!(d1.metrics, d2.metrics, "decision {:?}", d1.decision);
        }
    }
}
