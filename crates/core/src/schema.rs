//! Schema versioning for the machine-readable observability outputs.
//!
//! Every JSONL stream the tool emits starts with a header line
//!
//! ```text
//! {"type":"schema","stream":"trace","version":2}
//! ```
//!
//! and every embedded JSON document (the coverage report) carries a
//! `"schema"` field. Readers call [`check_stream_header`] /
//! [`check_schema_field`] and reject mismatched versions with a clear
//! error instead of mis-folding events from a future (or ancient)
//! writer. Absent headers are accepted for backwards compatibility with
//! pre-versioned streams: version checks are only enforced once a
//! writer declares itself.

use crate::json::Json;

/// Version of the `trace` JSONL stream (one [`TraceEvent`] per line).
/// v1 was the unversioned PR-2 stream; v2 added the header line plus the
/// `rule-enter` / `rule-exit` span events.
///
/// [`TraceEvent`]: https://docs.rs/llstar-runtime
pub const TRACE_STREAM_VERSION: u64 = 2;

/// Version of the `diagnostics` JSONL stream (one diagnostic per line).
pub const DIAGNOSTICS_STREAM_VERSION: u64 = 1;

/// Version of the mixed `profile --json` stream (analysis records,
/// trace events, diagnostics).
pub const PROFILE_STREAM_VERSION: u64 = 1;

/// Version of the coverage-map JSON document (a `"schema"` field, not a
/// header line: the report is one document, not a stream).
pub const COVERAGE_SCHEMA_VERSION: u64 = 1;

/// Version of the `bench-analysis` JSONL stream (`BENCH_analysis.json`).
pub const BENCH_STREAM_VERSION: u64 = 1;

/// Version of the `metrics` JSONL stream (cumulative
/// [`MetricsSnapshot`] lines from the always-on metrics substrate).
///
/// [`MetricsSnapshot`]: https://docs.rs/llstar-runtime
pub const METRICS_STREAM_VERSION: u64 = 1;

/// Every versioned machine-readable output, as one table: the stream
/// parsers all route their header checks through [`check_header`] /
/// [`StreamKind::header_line`] so a version bump (or a new stream) is a
/// one-line change here instead of a hunt across crates.
///
/// `Coverage` is the odd one out: a single JSON document carrying a
/// `"schema"` field rather than a JSONL stream with a header line.
/// [`check_header`] still works for replaying coverage-adjacent streams,
/// but document validation goes through [`check_schema_field`] with
/// [`StreamKind::version`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamKind {
    /// Trace event JSONL (`TraceEvent` per line).
    Trace,
    /// Diagnostics JSONL (one diagnostic per line).
    Diagnostics,
    /// Mixed `profile --json` stream.
    Profile,
    /// Coverage-map JSON document (`"schema"` field, not a header line).
    Coverage,
    /// `BENCH_analysis.json` rows.
    BenchAnalysis,
    /// Always-on metrics snapshots (`llstar metrics --json`).
    Metrics,
}

impl StreamKind {
    /// Every stream kind, for table-driven tests and tooling.
    pub const ALL: [StreamKind; 6] = [
        StreamKind::Trace,
        StreamKind::Diagnostics,
        StreamKind::Profile,
        StreamKind::Coverage,
        StreamKind::BenchAnalysis,
        StreamKind::Metrics,
    ];

    /// The `"stream"` name written in header lines.
    pub fn name(self) -> &'static str {
        match self {
            StreamKind::Trace => "trace",
            StreamKind::Diagnostics => "diagnostics",
            StreamKind::Profile => "profile",
            StreamKind::Coverage => "coverage",
            StreamKind::BenchAnalysis => "bench-analysis",
            StreamKind::Metrics => "metrics",
        }
    }

    /// The version this build reads and writes.
    pub fn version(self) -> u64 {
        match self {
            StreamKind::Trace => TRACE_STREAM_VERSION,
            StreamKind::Diagnostics => DIAGNOSTICS_STREAM_VERSION,
            StreamKind::Profile => PROFILE_STREAM_VERSION,
            StreamKind::Coverage => COVERAGE_SCHEMA_VERSION,
            StreamKind::BenchAnalysis => BENCH_STREAM_VERSION,
            StreamKind::Metrics => METRICS_STREAM_VERSION,
        }
    }

    /// The header line (no trailing newline) declaring this stream.
    pub fn header_line(self) -> String {
        schema_line(self.name(), self.version())
    }
}

/// Validates a parsed header `value` against `kind`'s name and version —
/// the one checkpoint every stream parser routes through.
///
/// # Errors
/// As [`check_stream_header`].
pub fn check_header(value: &Json, kind: StreamKind) -> Result<(), String> {
    check_stream_header(value, kind.name(), kind.version())
}

/// Renders the header line (without trailing newline) declaring
/// `stream` at `version`.
pub fn schema_line(stream: &str, version: u64) -> String {
    format!(
        "{{\"type\":\"schema\",\"stream\":{},\"version\":{}}}",
        crate::json::quote(stream),
        version
    )
}

/// Parses `value` as a schema header, returning `(stream, version)`;
/// `None` when the value is not a header object at all.
pub fn parse_schema_header(value: &Json) -> Option<(&str, u64)> {
    if value.get("type").and_then(Json::as_str) != Some("schema") {
        return None;
    }
    let stream = value.get("stream").and_then(Json::as_str)?;
    let version = value.get("version").and_then(Json::as_u64)?;
    Some((stream, version))
}

/// Validates a parsed header `value` against the expected `stream` name
/// and `version`.
///
/// # Errors
/// A human-readable description when the header names a different
/// stream or a version this build does not understand.
pub fn check_stream_header(value: &Json, stream: &str, version: u64) -> Result<(), String> {
    let Some((got_stream, got_version)) = parse_schema_header(value) else {
        return Err("not a schema header line".into());
    };
    if got_stream != stream {
        return Err(format!(
            "stream mismatch: file is a {got_stream:?} stream, expected {stream:?}"
        ));
    }
    if got_version != version {
        return Err(format!(
            "unsupported {stream} schema version {got_version} (this build reads version {version}); \
             re-export the stream with a matching tool"
        ));
    }
    Ok(())
}

/// Validates the `"schema"` field of a JSON document (e.g. a coverage
/// report) against the expected `version`.
///
/// # Errors
/// A description when the field is missing, non-numeric, or names a
/// version this build does not understand.
pub fn check_schema_field(value: &Json, what: &str, version: u64) -> Result<(), String> {
    match value.get("schema").and_then(Json::as_u64) {
        Some(v) if v == version => Ok(()),
        Some(v) => Err(format!(
            "unsupported {what} schema version {v} (this build reads version {version})"
        )),
        None => Err(format!("{what} document has no \"schema\" version field")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_round_trips() {
        let line = schema_line("trace", TRACE_STREAM_VERSION);
        assert_eq!(line, "{\"type\":\"schema\",\"stream\":\"trace\",\"version\":2}");
        let parsed = Json::parse(&line).unwrap();
        assert_eq!(parse_schema_header(&parsed), Some(("trace", 2)));
        check_stream_header(&parsed, "trace", TRACE_STREAM_VERSION).unwrap();
    }

    #[test]
    fn mismatches_are_rejected_with_clear_errors() {
        let parsed = Json::parse(&schema_line("trace", 99)).unwrap();
        let err = check_stream_header(&parsed, "trace", TRACE_STREAM_VERSION).unwrap_err();
        assert!(err.contains("version 99"), "{err}");
        assert!(err.contains("version 2"), "{err}");

        let wrong = Json::parse(&schema_line("diagnostics", 1)).unwrap();
        let err = check_stream_header(&wrong, "trace", TRACE_STREAM_VERSION).unwrap_err();
        assert!(err.contains("stream mismatch"), "{err}");

        let event = Json::parse(r#"{"type":"predict-start","decision":0,"token":0}"#).unwrap();
        assert!(parse_schema_header(&event).is_none());
    }

    #[test]
    fn every_stream_kind_round_trips_and_rejects_mismatches() {
        // Table-driven over the full registry: each kind's header line
        // must parse, validate against itself, reject a version bump,
        // and reject every *other* kind's header.
        for kind in StreamKind::ALL {
            let parsed = Json::parse(&kind.header_line())
                .unwrap_or_else(|e| panic!("{}: header line must parse: {e}", kind.name()));
            assert_eq!(
                parse_schema_header(&parsed),
                Some((kind.name(), kind.version())),
                "{}: header fields",
                kind.name()
            );
            check_header(&parsed, kind)
                .unwrap_or_else(|e| panic!("{}: self-check failed: {e}", kind.name()));

            let bumped = Json::parse(&schema_line(kind.name(), kind.version() + 1)).unwrap();
            let err = check_header(&bumped, kind).unwrap_err();
            assert!(
                err.contains(&format!("version {}", kind.version() + 1)),
                "{}: version mismatch must name the offending version: {err}",
                kind.name()
            );

            for other in StreamKind::ALL {
                if other.name() == kind.name() {
                    continue;
                }
                let err =
                    check_header(&Json::parse(&other.header_line()).unwrap(), kind).unwrap_err();
                assert!(
                    err.contains("stream mismatch"),
                    "{} vs {}: cross-stream header must be rejected: {err}",
                    kind.name(),
                    other.name()
                );
            }
        }
    }

    #[test]
    fn stream_kind_names_are_distinct() {
        let mut names: Vec<&str> = StreamKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), StreamKind::ALL.len(), "duplicate stream names");
    }

    #[test]
    fn schema_field_checks() {
        let doc = Json::parse(r#"{"schema":1,"type":"coverage"}"#).unwrap();
        check_schema_field(&doc, "coverage", 1).unwrap();
        let err = check_schema_field(&doc, "coverage", 2).unwrap_err();
        assert!(err.contains("version 1"), "{err}");
        let bare = Json::parse(r#"{"type":"coverage"}"#).unwrap();
        assert!(check_schema_field(&bare, "coverage", 1).is_err());
    }
}
