//! A persistent, hash-guarded analysis cache.
//!
//! `analyze` re-runs the full subset construction on every invocation,
//! even though the result is a pure function of the grammar text.
//! [`analyze_cached`] memoizes it on disk: the serialized analysis
//! (`serialize.rs` format) is loaded when its embedded FNV-1a grammar
//! fingerprint matches the grammar being analyzed (the fingerprint covers
//! the `options { … }` block, so editing only analysis options is a
//! grammar change) *and* the recorded [`AnalysisOptions`] would produce
//! the same results as the caller's; it is rebuilt — then atomically
//! rewritten — otherwise. This is the same role ANTLR's
//! serialized decision DFAs embedded in generated parsers play, lifted
//! into the tool itself so repeated `check`/`generate`/`parse` runs skip
//! DFA construction entirely.
//!
//! Loading is fail-safe: a stale, truncated, or corrupted cache file is
//! *never* trusted — deserialization rejects it with a line-numbered
//! [`SerializeError`] and the analysis is recomputed fresh, so a bad
//! cache can cost time but can never change parse results.

use crate::analysis::{analyze_with, AnalysisOptions, GrammarAnalysis};
use crate::metrics::CacheMetrics;
use crate::serialize::{
    deserialize_analysis, grammar_fingerprint, serialize_analysis, serialized_fingerprint,
    SerializeError,
};
use llstar_grammar::Grammar;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

/// How [`analyze_cached`] obtained its result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheStatus {
    /// The serialized analysis was valid for this grammar and was loaded;
    /// no DFA construction ran.
    Hit,
    /// The analysis was recomputed (and the cache file rewritten).
    Miss(CacheMiss),
}

/// Why a cache lookup missed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheMiss {
    /// No cache file existed yet.
    Absent,
    /// The file's fingerprint belongs to a different grammar text: the
    /// grammar — including its `options { … }` block — was edited since
    /// the cache was written.
    StaleGrammar,
    /// The file was built under different result-affecting
    /// [`AnalysisOptions`] than the caller is asking for now.
    StaleOptions,
    /// The file was unreadable as a serialized analysis (truncated or
    /// corrupted); the parse-level diagnosis names the offending line.
    Invalid(SerializeError),
}

impl CacheStatus {
    /// True for [`CacheStatus::Hit`].
    pub fn is_hit(&self) -> bool {
        matches!(self, CacheStatus::Hit)
    }

    /// Tallies this outcome into `metrics`.
    pub fn record(&self, metrics: &mut CacheMetrics) {
        match self {
            CacheStatus::Hit => metrics.hits += 1,
            CacheStatus::Miss(CacheMiss::Absent) => metrics.absent += 1,
            CacheStatus::Miss(CacheMiss::StaleGrammar) => metrics.stale_grammar += 1,
            CacheStatus::Miss(CacheMiss::StaleOptions) => metrics.stale_options += 1,
            CacheStatus::Miss(CacheMiss::Invalid(_)) => metrics.invalid += 1,
        }
    }
}

impl fmt::Display for CacheStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheStatus::Hit => write!(f, "hit"),
            CacheStatus::Miss(CacheMiss::Absent) => write!(f, "miss (no cache file)"),
            CacheStatus::Miss(CacheMiss::StaleGrammar) => write!(f, "miss (grammar changed)"),
            CacheStatus::Miss(CacheMiss::StaleOptions) => {
                write!(f, "miss (analysis options changed)")
            }
            CacheStatus::Miss(CacheMiss::Invalid(e)) => write!(f, "miss (invalid cache: {e})"),
        }
    }
}

/// The cache file for `grammar` under `dir`: `<dir>/<name>.dfa`. The
/// name is fingerprint-*free* on purpose — editing a grammar overwrites
/// its slot instead of accreting one dead file per edit; the fingerprint
/// inside the file is what guards correctness.
pub fn cache_path(dir: &Path, grammar: &Grammar) -> PathBuf {
    dir.join(format!("{}.dfa", grammar.name))
}

/// [`analyze_cached_with`] with options derived from the grammar.
///
/// # Errors
/// Propagates I/O errors other than "file not found" (which is just a
/// cache miss).
pub fn analyze_cached(
    grammar: &Grammar,
    path: &Path,
) -> io::Result<(GrammarAnalysis, CacheStatus)> {
    analyze_cached_with(grammar, path, &AnalysisOptions::from_grammar(grammar))
}

/// Loads the analysis serialized at `path` when it matches `grammar`'s
/// fingerprint and was built under options result-equivalent to
/// `options` ([`AnalysisOptions::same_results`]); otherwise analyzes with
/// `options` (parallel per `options.threads`) and atomically replaces
/// `path` with the fresh serialization (temp file + rename, so concurrent
/// readers never see a partial write and a crash never leaves a torn
/// cache).
///
/// # Errors
/// Propagates I/O errors from reading an existing cache file (other than
/// `NotFound`) or from writing the refreshed one.
pub fn analyze_cached_with(
    grammar: &Grammar,
    path: &Path,
    options: &AnalysisOptions,
) -> io::Result<(GrammarAnalysis, CacheStatus)> {
    let miss = match std::fs::read_to_string(path) {
        Ok(text) => match deserialize_analysis(grammar, &text) {
            // A loadable file only counts as a hit when it was built under
            // options that produce the same results the caller would get
            // from a fresh analysis — otherwise serving it would silently
            // change DFAs/warnings (e.g. a cache written with unbounded k
            // answering a max_k=1 request).
            Ok(analysis) if analysis.options.same_results(options) => {
                return Ok((analysis, CacheStatus::Hit))
            }
            Ok(_) => CacheMiss::StaleOptions,
            Err(e) => {
                // A well-formed header with a different fingerprint is a
                // grammar edit; anything else is a damaged file.
                match serialized_fingerprint(&text) {
                    Some(fp) if fp != grammar_fingerprint(grammar) => CacheMiss::StaleGrammar,
                    _ => CacheMiss::Invalid(e),
                }
            }
        },
        Err(e) if e.kind() == io::ErrorKind::NotFound => CacheMiss::Absent,
        Err(e) => return Err(e),
    };

    let analysis = analyze_with(grammar, options);
    write_atomically(path, &serialize_analysis(grammar, &analysis))?;
    Ok((analysis, CacheStatus::Miss(miss)))
}

/// [`analyze_cached_with`], additionally tallying the lookup's outcome
/// into `metrics` (the `llstar --cache -v` accounting path).
///
/// # Errors
/// As [`analyze_cached_with`].
pub fn analyze_cached_metered(
    grammar: &Grammar,
    path: &Path,
    options: &AnalysisOptions,
    metrics: &mut CacheMetrics,
) -> io::Result<(GrammarAnalysis, CacheStatus)> {
    let (analysis, status) = analyze_cached_with(grammar, path, options)?;
    status.record(metrics);
    Ok((analysis, status))
}

/// Writes `contents` to `path` via a same-directory temp file + rename.
fn write_atomically(path: &Path, contents: &str) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    // pid alone is not unique enough: two threads of one process
    // refreshing the same grammar's cache would share a temp path and
    // could publish a torn file. A process-wide counter disambiguates.
    static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let seq = SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(".tmp.{}.{seq}", std::process::id()));
    let tmp = PathBuf::from(tmp);
    std::fs::write(&tmp, contents)?;
    match std::fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llstar_grammar::parse_grammar;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("llstar_cache_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir
    }

    fn demo_grammar() -> Grammar {
        parse_grammar("grammar D; s : A X | A Y ; A:'a'; X:'x'; Y:'y';").unwrap()
    }

    #[test]
    fn miss_then_hit() {
        let g = demo_grammar();
        let path = tmpdir("miss_then_hit").join(format!("{}.dfa", g.name));
        let _ = std::fs::remove_file(&path);

        let (a, status) = analyze_cached(&g, &path).unwrap();
        assert_eq!(status, CacheStatus::Miss(CacheMiss::Absent));
        assert!(!a.from_cache);
        assert!(path.exists(), "miss must write the cache");

        // (The strict dfa_builds-metric-delta proof that a hit skips subset
        // construction lives in tests/analysis_cache.rs, where the whole
        // binary serializes on one lock; here other core tests analyze
        // concurrently, so only the flag is race-free to assert.)
        let (b, status) = analyze_cached(&g, &path).unwrap();
        assert!(status.is_hit(), "{status}");
        assert!(b.from_cache);
        assert_eq!(
            serialize_analysis(&g, &a),
            serialize_analysis(&g, &b),
            "loaded analysis must serialize identically"
        );
    }

    #[test]
    fn grammar_edit_is_a_stale_miss() {
        let g1 = demo_grammar();
        let dir = tmpdir("stale");
        let path = cache_path(&dir, &g1);
        let _ = std::fs::remove_file(&path);
        analyze_cached(&g1, &path).unwrap();

        // Same grammar *name*, different body ⇒ same cache slot, stale.
        let g2 = parse_grammar("grammar D; s : A X | B Y ; A:'a'; B:'b'; X:'x'; Y:'y';").unwrap();
        assert_eq!(cache_path(&dir, &g2), path);
        let (_, status) = analyze_cached(&g2, &path).unwrap();
        assert_eq!(status, CacheStatus::Miss(CacheMiss::StaleGrammar));

        // The refresh re-keys the slot for the edited grammar.
        let (_, status) = analyze_cached(&g2, &path).unwrap();
        assert!(status.is_hit(), "{status}");
    }

    #[test]
    fn options_block_edit_is_a_stale_miss() {
        // Regression: the fingerprint must cover the options block.
        // Adding `k = 1` changes max_k — and with it the DFAs and the
        // ambiguity/dead-alternative warnings — so serving the unbounded-k
        // cache would silently change analysis results.
        let g1 = demo_grammar();
        let dir = tmpdir("options_edit");
        let path = cache_path(&dir, &g1);
        let _ = std::fs::remove_file(&path);
        analyze_cached(&g1, &path).unwrap();

        let g2 =
            parse_grammar("grammar D; options { k = 1; } s : A X | A Y ; A:'a'; X:'x'; Y:'y';")
                .unwrap();
        assert_eq!(cache_path(&dir, &g2), path, "same slot");
        let (a, status) = analyze_cached(&g2, &path).unwrap();
        assert_eq!(status, CacheStatus::Miss(CacheMiss::StaleGrammar));
        assert!(!a.from_cache);
        assert_eq!(a.options.max_k, Some(1));

        // The refreshed cache serves the k=1 analysis…
        let (b, status) = analyze_cached(&g2, &path).unwrap();
        assert!(status.is_hit(), "{status}");
        assert_eq!(b.options.max_k, Some(1));
        // …and reverting the edit is stale again, not a poisoned hit.
        let (_, status) = analyze_cached(&g1, &path).unwrap();
        assert_eq!(status, CacheStatus::Miss(CacheMiss::StaleGrammar));
    }

    #[test]
    fn caller_options_mismatch_is_a_stale_miss() {
        // Same grammar text, but the caller asks for different
        // result-affecting options than the cache was built under.
        let g = demo_grammar();
        let path = tmpdir("caller_options").join(format!("{}.dfa", g.name));
        let _ = std::fs::remove_file(&path);
        analyze_cached(&g, &path).unwrap();

        let unminimized = AnalysisOptions { minimize: false, ..AnalysisOptions::from_grammar(&g) };
        let (a, status) = analyze_cached_with(&g, &path, &unminimized).unwrap();
        assert_eq!(status, CacheStatus::Miss(CacheMiss::StaleOptions));
        assert!(!a.options.minimize);
        let (_, status) = analyze_cached_with(&g, &path, &unminimized).unwrap();
        assert!(status.is_hit(), "{status}");

        // threads is result-neutral and must NOT invalidate the cache.
        let threaded = AnalysisOptions { threads: 7, ..unminimized };
        let (_, status) = analyze_cached_with(&g, &path, &threaded).unwrap();
        assert!(status.is_hit(), "{status}");
    }

    #[test]
    fn corrupt_cache_is_rejected_and_repaired() {
        let g = demo_grammar();
        let path = tmpdir("corrupt").join(format!("{}.dfa", g.name));
        std::fs::write(&path, "llstar-analysis v2\ngarbage\n").unwrap();

        let (a, status) = analyze_cached(&g, &path).unwrap();
        match status {
            CacheStatus::Miss(CacheMiss::Invalid(e)) => {
                assert!(e.line > 0, "diagnosis names a line: {e}");
            }
            other => panic!("expected invalid-cache miss, got {other:?}"),
        }
        assert!(!a.from_cache);
        // The rewrite leaves a valid cache behind.
        let (_, status) = analyze_cached(&g, &path).unwrap();
        assert!(status.is_hit(), "{status}");
    }

    #[test]
    fn old_format_versions_are_invalid_misses_and_repaired() {
        // A v1-era cache (no metrics line) must never be trusted; the
        // lookup repairs it in place.
        let g = demo_grammar();
        let path = tmpdir("v1_upgrade").join(format!("{}.dfa", g.name));
        std::fs::write(&path, "llstar-analysis v1\nfingerprint 0123456789abcdef\n").unwrap();
        let (_, status) = analyze_cached(&g, &path).unwrap();
        assert!(matches!(status, CacheStatus::Miss(CacheMiss::Invalid(_))), "{status}");
        let (_, status) = analyze_cached(&g, &path).unwrap();
        assert!(status.is_hit(), "{status}");
    }

    #[test]
    fn metered_lookups_tally_outcomes() {
        let g = demo_grammar();
        let path = tmpdir("metered").join(format!("{}.dfa", g.name));
        let _ = std::fs::remove_file(&path);
        let options = AnalysisOptions::from_grammar(&g);
        let mut metrics = CacheMetrics::default();

        analyze_cached_metered(&g, &path, &options, &mut metrics).unwrap();
        analyze_cached_metered(&g, &path, &options, &mut metrics).unwrap();
        let unminimized = AnalysisOptions { minimize: false, ..options.clone() };
        analyze_cached_metered(&g, &path, &unminimized, &mut metrics).unwrap();

        assert_eq!(metrics.absent, 1, "{metrics}");
        assert_eq!(metrics.hits, 1, "{metrics}");
        assert_eq!(metrics.stale_options, 1, "{metrics}");
        assert_eq!(metrics.lookups(), 3, "{metrics}");
    }
}
