//! Analysis-side observability: per-decision subset-construction cost
//! counters (the static half of the paper's Tables 1–2) and cache-outcome
//! tallies.
//!
//! Every field is a deterministic counter — a pure function of the
//! grammar and the result-affecting [`AnalysisOptions`] — so metrics can
//! be serialized alongside the cached DFAs (a cache hit still reports
//! what the original analysis cost) without breaking the byte-identical
//! guarantees of `tests/analysis_determinism`. Wall-clock time is kept
//! *out* of this struct on purpose: it lives in
//! [`DecisionAnalysis::elapsed`] and is display-only.
//!
//! [`AnalysisOptions`]: crate::analysis::AnalysisOptions
//! [`DecisionAnalysis::elapsed`]: crate::analysis::DecisionAnalysis

use crate::json::{quote, Json};
use std::fmt;

/// Why the full LL(*) construction of a decision was abandoned for the
/// LL(1) fallback (Section 5.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FallbackReason {
    /// Recursion in more than one alternative: likely not LL-regular.
    NonLlRegular,
    /// The DFA state budget was exhausted.
    StateLimit,
}

impl FallbackReason {
    /// Stable textual name (used by serialization and JSONL export).
    pub fn as_str(self) -> &'static str {
        match self {
            FallbackReason::NonLlRegular => "non-ll-regular",
            FallbackReason::StateLimit => "state-limit",
        }
    }

    /// Inverse of [`FallbackReason::as_str`].
    pub fn from_name(s: &str) -> Option<FallbackReason> {
        match s {
            "non-ll-regular" => Some(FallbackReason::NonLlRegular),
            "state-limit" => Some(FallbackReason::StateLimit),
            _ => None,
        }
    }
}

impl fmt::Display for FallbackReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Cost counters for one decision's DFA construction.
///
/// When a decision fell back to LL(1), the counters cover *both*
/// constructions (the aborted LL(*) attempt and the fallback build) and
/// `fallback` records why — total work done, not just the work that
/// survived.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecisionMetrics {
    /// DFA constructions run ([`DfaBuilder::build`] calls: 1, or 2 with
    /// an LL(1) fallback).
    ///
    /// [`DfaBuilder::build`]: crate::analysis
    pub dfa_builds: u64,
    /// `closure` invocations (Algorithm 9), including busy-set skips.
    pub closure_calls: u64,
    /// Distinct ATN configurations added across all closure working sets.
    pub configs_created: u64,
    /// DFA states created during construction (before minimization).
    pub dfa_states: u64,
    /// DFA token edges created during construction.
    pub dfa_edges: u64,
    /// `resolve` invocations (Algorithms 10–11) on move()-reached states.
    pub resolve_calls: u64,
    /// States resolved with predicate transitions (`resolveWithPreds`).
    pub pred_resolutions: u64,
    /// Recursion-overflow events: closure paths cut at depth `m`.
    pub recursion_overflows: u64,
    /// Why LL(*) construction was abandoned, if it was.
    pub fallback: Option<FallbackReason>,
}

impl DecisionMetrics {
    /// Accumulates `other` into `self` (counter sums; the first fallback
    /// reason wins — per decision there is at most one).
    pub fn absorb(&mut self, other: &DecisionMetrics) {
        self.dfa_builds += other.dfa_builds;
        self.closure_calls += other.closure_calls;
        self.configs_created += other.configs_created;
        self.dfa_states += other.dfa_states;
        self.dfa_edges += other.dfa_edges;
        self.resolve_calls += other.resolve_calls;
        self.pred_resolutions += other.pred_resolutions;
        self.recursion_overflows += other.recursion_overflows;
        self.fallback = self.fallback.or(other.fallback);
    }

    /// The counters as ordered `(name, value)` pairs (fallback excluded);
    /// shared by the text serializer, the JSONL exporters, and the
    /// profile table.
    pub fn fields(&self) -> [(&'static str, u64); 8] {
        [
            ("builds", self.dfa_builds),
            ("closures", self.closure_calls),
            ("configs", self.configs_created),
            ("states", self.dfa_states),
            ("edges", self.dfa_edges),
            ("resolves", self.resolve_calls),
            ("pred-resolutions", self.pred_resolutions),
            ("overflows", self.recursion_overflows),
        ]
    }

    /// Sets the counter `name` (a [`DecisionMetrics::fields`] key).
    /// Returns `false` for an unknown name.
    pub fn set_field(&mut self, name: &str, value: u64) -> bool {
        match name {
            "builds" => self.dfa_builds = value,
            "closures" => self.closure_calls = value,
            "configs" => self.configs_created = value,
            "states" => self.dfa_states = value,
            "edges" => self.dfa_edges = value,
            "resolves" => self.resolve_calls = value,
            "pred-resolutions" => self.pred_resolutions = value,
            "overflows" => self.recursion_overflows = value,
            _ => return false,
        }
        true
    }
}

/// One exported per-decision analysis record: the JSONL form of a
/// decision's static cost, as written by `llstar profile --json` and
/// `BENCH_analysis.json`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalysisRecord {
    /// The decision id.
    pub decision: u32,
    /// Name of the rule the decision belongs to.
    pub rule: String,
    /// Decision classification rendered as text (`LL(k)`, `cyclic`, …).
    pub class: String,
    /// The construction cost counters.
    pub metrics: DecisionMetrics,
}

impl AnalysisRecord {
    /// One JSONL line (no trailing newline). Counters only — no
    /// timestamps — so output is byte-deterministic.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"type\":\"analysis\",\"decision\":{},\"rule\":{},\"class\":{}",
            self.decision,
            quote(&self.rule),
            quote(&self.class)
        );
        for (name, value) in self.metrics.fields() {
            out.push_str(&format!(",{}:{value}", quote(name)));
        }
        match self.metrics.fallback {
            Some(r) => out.push_str(&format!(",\"fallback\":{}", quote(r.as_str()))),
            None => out.push_str(",\"fallback\":null"),
        }
        out.push('}');
        out
    }

    /// Parses a value produced by [`AnalysisRecord::to_json`].
    ///
    /// # Errors
    /// Returns a description when `value` is not an analysis record.
    pub fn from_json(value: &Json) -> Result<AnalysisRecord, String> {
        if value.get("type").and_then(Json::as_str) != Some("analysis") {
            return Err("not an analysis record".into());
        }
        let field = |name: &str| {
            value.get(name).and_then(Json::as_u64).ok_or_else(|| format!("missing field {name:?}"))
        };
        let mut metrics = DecisionMetrics::default();
        for (name, _) in DecisionMetrics::default().fields() {
            metrics.set_field(name, field(name)?);
        }
        metrics.fallback = match value.get("fallback") {
            Some(Json::Null) | None => None,
            Some(Json::Str(s)) => {
                Some(FallbackReason::from_name(s).ok_or_else(|| format!("bad fallback {s:?}"))?)
            }
            Some(other) => return Err(format!("bad fallback {other}")),
        };
        Ok(AnalysisRecord {
            decision: field("decision")? as u32,
            rule: value
                .get("rule")
                .and_then(Json::as_str)
                .ok_or("missing field \"rule\"")?
                .to_string(),
            class: value
                .get("class")
                .and_then(Json::as_str)
                .ok_or("missing field \"class\"")?
                .to_string(),
            metrics,
        })
    }
}

/// Tallies of [`CacheStatus`] outcomes over a run (satellite of the
/// observability layer: `llstar --cache -v` prints these).
///
/// [`CacheStatus`]: crate::cache::CacheStatus
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheMetrics {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Misses: no cache file existed.
    pub absent: u64,
    /// Misses: the cached fingerprint belongs to an edited grammar.
    pub stale_grammar: u64,
    /// Misses: built under different result-affecting analysis options.
    pub stale_options: u64,
    /// Misses: the file was truncated or corrupted.
    pub invalid: u64,
}

impl CacheMetrics {
    /// Total lookups recorded.
    pub fn lookups(&self) -> u64 {
        self.hits + self.absent + self.stale_grammar + self.stale_options + self.invalid
    }
}

impl fmt::Display for CacheMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cache metrics: {} lookups, {} hits, {} absent, {} stale-grammar, {} stale-options, {} invalid",
            self.lookups(),
            self.hits,
            self.absent,
            self.stale_grammar,
            self.stale_options,
            self.invalid
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_sums_and_keeps_first_fallback() {
        let mut a = DecisionMetrics {
            dfa_builds: 1,
            closure_calls: 10,
            fallback: Some(FallbackReason::NonLlRegular),
            ..Default::default()
        };
        let b = DecisionMetrics {
            dfa_builds: 1,
            closure_calls: 5,
            configs_created: 7,
            fallback: Some(FallbackReason::StateLimit),
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.dfa_builds, 2);
        assert_eq!(a.closure_calls, 15);
        assert_eq!(a.configs_created, 7);
        assert_eq!(a.fallback, Some(FallbackReason::NonLlRegular));
    }

    #[test]
    fn analysis_record_round_trips() {
        let record = AnalysisRecord {
            decision: 3,
            rule: "expr".into(),
            class: "LL(2)".into(),
            metrics: DecisionMetrics {
                dfa_builds: 2,
                closure_calls: 42,
                configs_created: 17,
                dfa_states: 5,
                dfa_edges: 8,
                resolve_calls: 4,
                pred_resolutions: 1,
                recursion_overflows: 1,
                fallback: Some(FallbackReason::StateLimit),
            },
        };
        let line = record.to_json();
        let parsed = AnalysisRecord::from_json(&Json::parse(&line).unwrap()).unwrap();
        assert_eq!(parsed, record);
        assert_eq!(parsed.to_json(), line, "re-serialization is byte-stable");

        let no_fallback = AnalysisRecord {
            metrics: DecisionMetrics { fallback: None, ..record.metrics },
            ..record
        };
        let line = no_fallback.to_json();
        assert_eq!(AnalysisRecord::from_json(&Json::parse(&line).unwrap()).unwrap(), no_fallback);
    }

    #[test]
    fn fallback_reason_names_round_trip() {
        for r in [FallbackReason::NonLlRegular, FallbackReason::StateLimit] {
            assert_eq!(FallbackReason::from_name(r.as_str()), Some(r));
        }
        assert_eq!(FallbackReason::from_name("nope"), None);
    }

    #[test]
    fn cache_metrics_display() {
        let m = CacheMetrics { hits: 2, absent: 1, ..Default::default() };
        let text = m.to_string();
        assert!(text.contains("3 lookups"), "{text}");
        assert!(text.contains("2 hits"), "{text}");
    }
}
