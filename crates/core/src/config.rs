//! ATN configurations and interned call stacks (Section 5.2).
//!
//! A configuration is the tuple *(p, i, γ, π)*: ATN state, predicted
//! alternative, call stack, and optional predicate. Stacks are interned
//! cons lists so configurations hash and compare cheaply; equivalence
//! follows Definition 6 (equal, one empty, or one a suffix of the other).

use crate::atn::AtnStateId;
use crate::fxhash::FxHashMap;
use llstar_grammar::{PredId, SynPredId};

/// An interned call stack. `StackId::EMPTY` is the empty stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StackId(u32);

impl StackId {
    /// The empty stack (the analysis wildcard: "any caller").
    pub const EMPTY: StackId = StackId(0);

    /// Whether this is the empty stack.
    pub fn is_empty(self) -> bool {
        self == Self::EMPTY
    }
}

/// Arena interning cons-list stacks of ATN return states.
///
/// ```
/// use llstar_core::config::{StackArena, StackId};
/// let mut arena = StackArena::new();
/// let s1 = arena.push(StackId::EMPTY, 7);
/// let s2 = arena.push(s1, 9);
/// assert_eq!(arena.to_vec(s2), vec![9, 7]); // top first
/// assert_eq!(arena.pop(s2), Some((9, s1)));
/// assert!(arena.equivalent(s1, StackId::EMPTY)); // empty is a wildcard
/// assert!(arena.equivalent(s1, s2));             // s1 is a suffix of s2
/// ```
#[derive(Debug, Clone, Default)]
pub struct StackArena {
    /// `nodes[id-1] = (top, rest)`; id 0 is the empty stack.
    nodes: Vec<(AtnStateId, StackId)>,
    intern: FxHashMap<(AtnStateId, StackId), StackId>,
}

impl StackArena {
    /// An arena containing only the empty stack.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pushes `state` on `stack`, returning the interned result.
    pub fn push(&mut self, stack: StackId, state: AtnStateId) -> StackId {
        if let Some(&id) = self.intern.get(&(state, stack)) {
            return id;
        }
        self.nodes.push((state, stack));
        let id = StackId(self.nodes.len() as u32);
        self.intern.insert((state, stack), id);
        id
    }

    /// Pops the top, returning `(top, rest)`, or `None` on the empty stack.
    pub fn pop(&self, stack: StackId) -> Option<(AtnStateId, StackId)> {
        if stack.is_empty() {
            None
        } else {
            Some(self.nodes[stack.0 as usize - 1])
        }
    }

    /// The stack as a vector, top first.
    pub fn to_vec(&self, mut stack: StackId) -> Vec<AtnStateId> {
        let mut out = Vec::new();
        while let Some((top, rest)) = self.pop(stack) {
            out.push(top);
            stack = rest;
        }
        out
    }

    /// Number of occurrences of `state` in `stack` (the recursion-depth
    /// measure from Algorithm 9's closure).
    pub fn occurrences(&self, mut stack: StackId, state: AtnStateId) -> u32 {
        let mut n = 0;
        while let Some((top, rest)) = self.pop(stack) {
            if top == state {
                n += 1;
            }
            stack = rest;
        }
        n
    }

    /// Stack depth.
    pub fn depth(&self, mut stack: StackId) -> usize {
        let mut n = 0;
        while let Some((_, rest)) = self.pop(stack) {
            n += 1;
            stack = rest;
        }
        n
    }

    /// Definition 6 equivalence: equal, at least one empty, or one a
    /// suffix of the other.
    pub fn equivalent(&self, a: StackId, b: StackId) -> bool {
        if a == b || a.is_empty() || b.is_empty() {
            return true;
        }
        let (va, vb) = (self.to_vec(a), self.to_vec(b));
        let (short, long) = if va.len() <= vb.len() { (&va, &vb) } else { (&vb, &va) };
        long[long.len() - short.len()..] == short[..]
    }
}

/// The predicate component of a configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PredSource {
    /// A semantic predicate `{π}?`.
    Sem(PredId),
    /// A syntactic predicate `(α)=>` (evaluated by speculative parse).
    Syn(SynPredId),
    /// A negated syntactic predicate `!(α)=>`: passes when the fragment
    /// does *not* match.
    NotSyn(SynPredId),
}

/// An ATN configuration *(p, i, γ, π)*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Config {
    /// ATN state *p*.
    pub state: AtnStateId,
    /// Predicted alternative *i* (1-based, as in the paper).
    pub alt: u16,
    /// Call stack *γ*.
    pub stack: StackId,
    /// Optional predicate *π* seen on the path to this configuration.
    pub pred: Option<PredSource>,
    /// Set once closure pops out of the decision's own context (the
    /// empty-stack FOLLOW wildcard). Predicates encountered beyond that
    /// point gate *other* decisions and must not be hoisted into this
    /// one.
    pub followed: bool,
}

impl Config {
    /// A configuration with an empty stack and no predicate.
    pub fn initial(state: AtnStateId, alt: u16) -> Config {
        Config { state, alt, stack: StackId::EMPTY, pred: None, followed: false }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llstar_rng::Rng64;

    #[test]
    fn push_pop_round_trip() {
        let mut a = StackArena::new();
        let s1 = a.push(StackId::EMPTY, 3);
        let s2 = a.push(s1, 5);
        assert_eq!(a.pop(s2), Some((5, s1)));
        assert_eq!(a.pop(s1), Some((3, StackId::EMPTY)));
        assert_eq!(a.pop(StackId::EMPTY), None);
        assert_eq!(a.depth(s2), 2);
    }

    #[test]
    fn interning_is_canonical() {
        let mut a = StackArena::new();
        let s1 = a.push(StackId::EMPTY, 3);
        let s1b = a.push(StackId::EMPTY, 3);
        assert_eq!(s1, s1b);
        let s2 = a.push(s1, 5);
        let s2b = a.push(s1b, 5);
        assert_eq!(s2, s2b);
    }

    #[test]
    fn occurrences_counts_duplicates() {
        let mut a = StackArena::new();
        let s = a.push(StackId::EMPTY, 9);
        let s = a.push(s, 2);
        let s = a.push(s, 9);
        assert_eq!(a.occurrences(s, 9), 2);
        assert_eq!(a.occurrences(s, 2), 1);
        assert_eq!(a.occurrences(s, 7), 0);
    }

    #[test]
    fn equivalence_definition6() {
        let mut a = StackArena::new();
        let p2 = a.push(StackId::EMPTY, 2);
        let p9p2 = a.push(p2, 9);
        let p5 = a.push(StackId::EMPTY, 5);
        // Equal stacks.
        assert!(a.equivalent(p2, p2));
        // Empty is equivalent to anything.
        assert!(a.equivalent(StackId::EMPTY, p9p2));
        assert!(a.equivalent(p9p2, StackId::EMPTY));
        // Suffix: [2] is a suffix of [9,2].
        assert!(a.equivalent(p2, p9p2));
        assert!(a.equivalent(p9p2, p2));
        // Not suffixes of each other.
        assert!(!a.equivalent(p2, p5));
        // [9,2] vs [9]: 9 is the *top*, not a suffix.
        let p9 = a.push(StackId::EMPTY, 9);
        assert!(!a.equivalent(p9, p9p2));
    }

    #[test]
    fn config_ordering_is_stable() {
        let c1 = Config::initial(1, 1);
        let c2 = Config::initial(1, 2);
        let c3 = Config::initial(2, 1);
        let mut v = vec![c3, c2, c1];
        v.sort();
        assert_eq!(v, vec![c1, c2, c3]);
    }

    fn random_vec(rng: &mut Rng64, bound: usize, min_len: usize, max_len: usize) -> Vec<usize> {
        let len = rng.gen_range(min_len..=max_len);
        (0..len).map(|_| rng.gen_range(0..bound)).collect()
    }

    #[test]
    fn prop_to_vec_matches_pushes() {
        let mut rng = Rng64::seed_from_u64(0xc0f1);
        for _ in 0..256 {
            let states = random_vec(&mut rng, 50, 0, 11);
            let mut a = StackArena::new();
            let mut id = StackId::EMPTY;
            for &s in &states {
                id = a.push(id, s);
            }
            let mut expect = states.clone();
            expect.reverse();
            assert_eq!(a.to_vec(id), expect);
        }
    }

    #[test]
    fn prop_equivalence_is_symmetric() {
        let mut rng = Rng64::seed_from_u64(0xc0f2);
        for _ in 0..256 {
            let xs = random_vec(&mut rng, 6, 0, 5);
            let ys = random_vec(&mut rng, 6, 0, 5);
            let mut a = StackArena::new();
            let mut sx = StackId::EMPTY;
            for &s in &xs {
                sx = a.push(sx, s);
            }
            let mut sy = StackId::EMPTY;
            for &s in &ys {
                sy = a.push(sy, s);
            }
            assert_eq!(a.equivalent(sx, sy), a.equivalent(sy, sx), "{xs:?} vs {ys:?}");
        }
    }

    #[test]
    fn prop_suffix_equivalence() {
        // Pushing more on top of a stack keeps it equivalent to the
        // original (the original is a suffix).
        let mut rng = Rng64::seed_from_u64(0xc0f3);
        for _ in 0..256 {
            let base = random_vec(&mut rng, 6, 0, 5);
            let ext = random_vec(&mut rng, 6, 1, 3);
            let mut a = StackArena::new();
            let mut s = StackId::EMPTY;
            for &x in &base {
                s = a.push(s, x);
            }
            let orig = s;
            for &x in &ext {
                s = a.push(s, x);
            }
            assert!(a.equivalent(orig, s), "{base:?} + {ext:?}");
        }
    }
}
