//! A minimal JSON reader/writer for the observability layer's JSONL
//! streams (trace events, analysis records, bench exports).
//!
//! Deliberately tiny: only the subset the layer emits — objects, arrays,
//! strings, unsigned integers, booleans, null — with object keys kept in
//! insertion/document order so re-serialization is byte-stable. No
//! floats: every exported quantity is a counter, which keeps the JSONL
//! byte-deterministic across runs and platforms.

use std::fmt;

/// A parsed JSON value (observability subset: no floats, no escapes
/// beyond the JSON standard set).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (the only number form the layer emits).
    Num(u64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object, keys in document order.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object; `None` for other values or a missing
    /// key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Parses one JSON document (e.g. one JSONL line).
    ///
    /// # Errors
    /// Returns a description on malformed input, unsupported number
    /// forms (floats, negatives), or trailing content.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing content at byte {pos}"));
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => write!(f, "{n}"),
            Json::Str(s) => write!(f, "{}", quote(s)),
            Json::Array(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Json::Object(fields) => {
                write!(f, "{{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{}:{v}", quote(k))?;
                }
                write!(f, "}}")
            }
        }
    }
}

/// `s` as a quoted JSON string literal.
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\r' | b'\n') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Object(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Object(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Array(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_keyword(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() => {
            let start = *pos;
            while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
                *pos += 1;
            }
            if matches!(bytes.get(*pos), Some(b'.' | b'e' | b'E')) {
                return Err(format!("unsupported number form at byte {start}"));
            }
            let text = std::str::from_utf8(&bytes[start..*pos]).expect("digits are utf-8");
            text.parse().map(Json::Num).map_err(|_| format!("number out of range at byte {start}"))
        }
        Some(c) => Err(format!("unexpected byte {c:?} at {pos}")),
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize, kw: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(kw.as_bytes()) {
        *pos += kw.len();
        Ok(value)
    } else {
        Err(format!("unexpected token at byte {pos}"))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = Vec::new();
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'"' => {
                *pos += 1;
                return String::from_utf8(out).map_err(|_| "invalid utf-8 in string".into());
            }
            b'\\' => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push(b'"'),
                    Some(b'\\') => out.push(b'\\'),
                    Some(b'/') => out.push(b'/'),
                    Some(b'n') => out.push(b'\n'),
                    Some(b'r') => out.push(b'\r'),
                    Some(b't') => out.push(b'\t'),
                    Some(b'b') => out.push(0x08),
                    Some(b'f') => out.push(0x0c),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| format!("truncated \\u escape at byte {pos}"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape at byte {pos}"))?;
                        let c = char::from_u32(code)
                            .ok_or_else(|| format!("bad \\u code point at byte {pos}"))?;
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            _ => {
                out.push(b);
                *pos += 1;
            }
        }
    }
    Err("unterminated string".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        for text in [
            r#"{"type":"predict-stop","decision":3,"path":[0,1,2],"backtracked":false}"#,
            r#"[1,2,3]"#,
            r#"{"s":"a \"b\" \\ \n c","n":null,"b":true}"#,
            r#"{}"#,
            r#"[]"#,
        ] {
            let v = Json::parse(text).unwrap();
            assert_eq!(v.to_string(), text, "{text}");
            // Re-parse of the re-render is a fixed point.
            assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
        }
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"a":1,"b":"x","c":[true]}"#).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(1));
        assert_eq!(v.get("b").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("c").and_then(Json::as_array).map(<[Json]>::len), Some(1));
        assert_eq!(v.get("c").unwrap().as_array().unwrap()[0].as_bool(), Some(true));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn rejects_malformed() {
        for text in ["", "{", "[1,", r#"{"a"}"#, "1.5", "-2", "1e9", "tru", "\"abc", "[1] x"] {
            assert!(Json::parse(text).is_err(), "accepted {text:?}");
        }
    }

    #[test]
    fn quoting_escapes_controls() {
        assert_eq!(quote("a\"b\\c\nd\u{1}"), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }
}
