//! Recovery-set precomputation: per-ATN-state *expected token sets* and
//! per-rule *resynchronization (follow) sets*.
//!
//! The same ATN that drives prediction (Section 5.1) tells us, for every
//! state, exactly which tokens could begin a viable continuation. The
//! runtime's error-recovery strategy consults these sets *after* a
//! prediction or terminal match fails: the expected set names the tokens
//! a repaired input could continue with (single-token insertion checks
//! the successor state's set), and the follow sets — derived from
//! [`Atn::rule_followers`] — bound how far sync-and-return resynchronization
//! may skip.
//!
//! Everything here is a deterministic fixpoint over the ATN, so the sets
//! are identical across runs and thread counts and are cheap enough to
//! recompute on cache loads (the ATN itself is likewise rebuilt rather
//! than serialized).

use crate::atn::{Atn, AtnEdge, AtnStateId, StateKind};
use llstar_grammar::{Grammar, RuleId};
use llstar_lexer::TokenType;

/// A set of token types over a fixed vocabulary, stored as a bitset.
///
/// Iteration order is ascending [`TokenType`], which keeps every consumer
/// (diagnostic rendering, codegen tables, serialized traces) byte
/// deterministic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TokenSet {
    bits: Vec<u64>,
}

impl TokenSet {
    /// The empty set over a vocabulary of `vocab_len` token types.
    pub fn new(vocab_len: usize) -> TokenSet {
        TokenSet { bits: vec![0; vocab_len.div_ceil(64)] }
    }

    /// Inserts `t`; returns `true` if the set changed.
    pub fn insert(&mut self, t: TokenType) -> bool {
        let (word, bit) = (t.index() / 64, t.index() % 64);
        if word >= self.bits.len() {
            self.bits.resize(word + 1, 0);
        }
        let changed = self.bits[word] & (1 << bit) == 0;
        self.bits[word] |= 1 << bit;
        changed
    }

    /// Whether `t` is a member.
    pub fn contains(&self, t: TokenType) -> bool {
        let (word, bit) = (t.index() / 64, t.index() % 64);
        self.bits.get(word).is_some_and(|w| w & (1 << bit) != 0)
    }

    /// Unions `other` into `self`; returns `true` if the set changed.
    pub fn union_with(&mut self, other: &TokenSet) -> bool {
        if other.bits.len() > self.bits.len() {
            self.bits.resize(other.bits.len(), 0);
        }
        let mut changed = false;
        for (dst, src) in self.bits.iter_mut().zip(other.bits.iter()) {
            let next = *dst | *src;
            changed |= next != *dst;
            *dst = next;
        }
        changed
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|w| *w == 0)
    }

    /// Members in ascending token-type order.
    pub fn iter(&self) -> impl Iterator<Item = TokenType> + '_ {
        self.bits.iter().enumerate().flat_map(|(word, &w)| {
            (0..64)
                .filter(move |bit| w & (1 << bit) != 0)
                .map(move |bit| TokenType((word * 64 + bit) as u32))
        })
    }

    /// Members collected into a vector (ascending).
    pub fn types(&self) -> Vec<TokenType> {
        self.iter().collect()
    }
}

/// Expected and resynchronization sets for a grammar's ATN.
#[derive(Debug, Clone)]
pub struct RecoverySets {
    /// Per ATN state: the tokens that could be consumed next from here.
    /// A state whose submachine can complete without consuming folds in
    /// the follow of its rule's stop state, so the set is never empty on
    /// reachable states.
    pub expected: Vec<TokenSet>,
    /// Per rule: the union of expected sets over the rule's follower
    /// states ([`Atn::rule_followers`]), i.e. every token that may
    /// legally appear right after the rule. Always contains EOF (any
    /// rule may serve as a parse entry point).
    pub rule_follow: Vec<TokenSet>,
}

impl RecoverySets {
    /// Computes the sets for `atn` by fixpoint (see the module docs).
    pub fn compute(grammar: &Grammar, atn: &Atn) -> RecoverySets {
        let vocab_len = grammar.vocab.len();
        let n = atn.states.len();
        // Pass 1: which states can reach their submachine's stop state
        // without consuming a token (drives FIRST-set propagation across
        // nullable rule invocations).
        let mut nullable = vec![false; n];
        for &stop in atn.rule_stop.iter().chain(atn.synpred_stop.iter()) {
            nullable[stop] = true;
        }
        let rule_nullable = |nullable: &[bool], r: RuleId| nullable[atn.rule_entry[r.index()]];
        loop {
            let mut changed = false;
            for s in 0..n {
                if nullable[s] {
                    continue;
                }
                let now = atn.states[s].edges.iter().any(|(edge, target)| match edge {
                    AtnEdge::Token(_) => false,
                    AtnEdge::Rule { rule, follow } => {
                        rule_nullable(&nullable, *rule) && nullable[*follow]
                    }
                    _ => nullable[*target],
                });
                if now {
                    nullable[s] = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        // Pass 2: expected-token sets. Stop states import their rule's
        // follower states (Atn::rule_followers), which already include
        // the synthetic EOF continuation; fragment stops import the
        // any-token wildcard (recovery never runs inside speculation,
        // so this only keeps the fixpoint total).
        let mut expected: Vec<TokenSet> = vec![TokenSet::new(vocab_len); n];
        loop {
            let mut changed = false;
            for s in 0..n {
                let mut acc = std::mem::replace(&mut expected[s], TokenSet::new(0));
                match atn.states[s].kind {
                    StateKind::RuleStop if atn.is_fragment_stop(s) => {
                        changed |= acc.union_with(&expected[atn.any_follow]);
                    }
                    StateKind::RuleStop => {
                        let rule = atn.states[s].rule;
                        for &f in &atn.rule_followers[rule.index()] {
                            changed |= acc.union_with(&expected[f]);
                        }
                    }
                    _ => {
                        for (edge, target) in &atn.states[s].edges {
                            match edge {
                                AtnEdge::Token(t) => changed |= acc.insert(*t),
                                AtnEdge::Rule { rule, follow } => {
                                    changed |=
                                        acc.union_with(&expected[atn.rule_entry[rule.index()]]);
                                    if rule_nullable(&nullable, *rule) {
                                        changed |= acc.union_with(&expected[*follow]);
                                    }
                                }
                                _ => changed |= acc.union_with(&expected[*target]),
                            }
                        }
                    }
                }
                expected[s] = acc;
            }
            if !changed {
                break;
            }
        }
        let rule_follow = atn.rule_stop.iter().map(|&stop| expected[stop].clone()).collect();
        RecoverySets { expected, rule_follow }
    }

    /// The expected-token set at ATN state `s`.
    pub fn expected_at(&self, s: AtnStateId) -> &TokenSet {
        &self.expected[s]
    }

    /// The static follow set of `rule`.
    pub fn follow_of(&self, rule: RuleId) -> &TokenSet {
        &self.rule_follow[rule.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llstar_grammar::parse_grammar;

    fn sets(src: &str) -> (Grammar, Atn, RecoverySets) {
        let g = parse_grammar(src).unwrap();
        let atn = Atn::from_grammar(&g);
        let sets = RecoverySets::compute(&g, &atn);
        (g, atn, sets)
    }

    fn names(g: &Grammar, set: &TokenSet) -> Vec<String> {
        set.iter().map(|t| g.vocab.display_name(t)).collect()
    }

    #[test]
    fn token_set_basics() {
        let mut s = TokenSet::new(70);
        assert!(s.is_empty());
        assert!(s.insert(TokenType(3)));
        assert!(!s.insert(TokenType(3)), "second insert is a no-op");
        assert!(s.insert(TokenType(67)));
        assert_eq!(s.len(), 2);
        assert!(s.contains(TokenType(67)));
        assert!(!s.contains(TokenType(4)));
        assert_eq!(s.types(), vec![TokenType(3), TokenType(67)], "ascending order");
        let mut other = TokenSet::new(70);
        other.insert(TokenType(1));
        assert!(s.union_with(&other));
        assert!(!s.union_with(&other), "second union is a no-op");
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn expected_at_rule_entry_is_first_set() {
        let (g, atn, sets) = sets("grammar G; s : x B ; x : A | C ; A:'a'; B:'b'; C:'c';");
        let x = g.rule_id("x").unwrap();
        let e = sets.expected_at(atn.rule_entry[x.index()]);
        assert_eq!(names(&g, e), vec!["A", "C"]);
        // Entry of s chases into x.
        let s = g.rule_id("s").unwrap();
        let e = sets.expected_at(atn.rule_entry[s.index()]);
        assert_eq!(names(&g, e), vec!["A", "C"]);
    }

    #[test]
    fn nullable_rule_folds_in_follow() {
        // x is nullable, so at s's call site both 'a' (x itself) and 'b'
        // (what follows x inside s) are expected.
        let (g, atn, sets) = sets("grammar G; s : x B ; x : A | ; A:'a'; B:'b';");
        let s = g.rule_id("s").unwrap();
        let e = sets.expected_at(atn.rule_entry[s.index()]);
        // EOF appears because x's stop state folds in x's followers, and
        // any rule may serve as a parse entry point (eof_follow).
        assert_eq!(names(&g, e), vec!["EOF", "A", "B"]);
    }

    #[test]
    fn rule_follow_includes_call_sites_and_eof() {
        let (g, _, sets) = sets("grammar G; s : x B | x C ; x : A ; A:'a'; B:'b'; C:'c';");
        let x = g.rule_id("x").unwrap();
        let f = sets.follow_of(x);
        assert_eq!(names(&g, f), vec!["EOF", "B", "C"]);
        // The never-invoked start rule is followed only by EOF.
        let s = g.rule_id("s").unwrap();
        assert_eq!(names(&g, sets.follow_of(s)), vec!["EOF"]);
    }

    #[test]
    fn loops_expect_body_and_continuation() {
        let (g, atn, sets) = sets("grammar G; s : A* B ; A:'a'; B:'b';");
        // The star-loop decision state expects both the body token and
        // the loop continuation.
        let d = &atn.decisions[0];
        assert_eq!(names(&g, sets.expected_at(d.state)), vec!["A", "B"]);
    }

    #[test]
    fn sets_are_deterministic() {
        let src = "grammar G; s : x (B | C)* ; x : A | ; A:'a'; B:'b'; C:'c';";
        let g = parse_grammar(src).unwrap();
        let atn = Atn::from_grammar(&g);
        let a = RecoverySets::compute(&g, &atn);
        let b = RecoverySets::compute(&g, &atn);
        assert_eq!(a.expected, b.expected);
        assert_eq!(a.rule_follow, b.rule_follow);
    }
}
