//! LL(*) grammar analysis — the core contribution of Parr & Fisher's
//! "LL(*): The Foundation of the ANTLR Parser Generator" (PLDI 2011).
//!
//! The pipeline:
//!
//! 1. [`atn::Atn::from_grammar`] converts a predicated grammar into an
//!    augmented transition network (Section 5.1, Figure 7).
//! 2. [`analysis::analyze`] runs a modified subset construction over ATN
//!    configurations (Algorithms 8–11) to build one lookahead DFA per
//!    parsing decision, resolving ambiguities with predicates or
//!    production order, bounding recursion with the constant `m`, and
//!    falling back to LL(1) when a decision is likely not LL-regular.
//! 3. [`dfa::LookaheadDfa`] is the result: a possibly cyclic DFA with
//!    predicate transitions that the runtime uses to predict productions.
//!
//! ```
//! use llstar_grammar::parse_grammar;
//! use llstar_core::{analyze, DecisionClass};
//!
//! let g = parse_grammar(r#"
//!     grammar Demo;
//!     s : ID | ID '=' INT ;
//!     ID : [a-z]+ ;
//!     INT : [0-9]+ ;
//!     WS : [ ]+ -> skip ;
//! "#)?;
//! let analysis = analyze(&g);
//! // One decision (rule s), fixed LL(2).
//! assert_eq!(analysis.decisions.len(), 1);
//! assert_eq!(analysis.decisions[0].dfa.classify(), DecisionClass::Fixed { k: 2 });
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod atn;
pub mod cache;
pub mod compiled;
pub mod config;
pub mod coverage;
pub mod dfa;
pub mod fxhash;
pub mod json;
pub mod metrics;
pub mod recovery;
pub mod schema;
pub mod serialize;

pub use analysis::{
    analyze, analyze_decision, analyze_with, AnalysisOptions, AnalysisWarning, DecisionAnalysis,
    GrammarAnalysis,
};
pub use atn::{Atn, AtnEdge, AtnState, AtnStateId, Decision, DecisionId, DecisionKind, StateKind};
pub use cache::{
    analyze_cached, analyze_cached_metered, analyze_cached_with, cache_path, CacheMiss, CacheStatus,
};
pub use compiled::{
    CompiledDfa, CompiledTables, NextTable, TokenClasses, DENSE_CELL_BUDGET, NO_ALT, NO_TARGET,
};
pub use config::{Config, PredSource, StackArena, StackId};
pub use coverage::{CoverageMap, DecisionCoverage};
pub use dfa::{DecisionClass, DfaState, DfaStateId, LookaheadDfa};
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use json::Json;
pub use metrics::{AnalysisRecord, CacheMetrics, DecisionMetrics, FallbackReason};
pub use recovery::{RecoverySets, TokenSet};
pub use serialize::{
    deserialize_analysis, grammar_fingerprint, serialize_analysis, serialized_fingerprint,
    SerializeError,
};
