//! Compiled prediction tables: the lowering from [`LookaheadDfa`]s to
//! dense array-indexed dispatch.
//!
//! The paper's argument is that lookahead DFAs make LL(*) prediction
//! *cheap at parse time* — but a `Vec<(TokenType, DfaStateId)>` edge list
//! still costs a linear scan per lookahead token. ANTLR ships serialized
//! decision tables so its hot path is pure array indexing; this module
//! plays that role for both the interpreter and generated parsers:
//!
//! 1. [`TokenClasses`] partitions the token vocabulary into
//!    **equivalence classes**: two tokens land in the same class iff
//!    every DFA state of every decision moves them to the same target.
//!    The partition is grammar-wide, so the shrink is modest on
//!    token-hungry grammars; its main job is bounding row width to
//!    ≤256 so the class map is a single `u8` load.
//! 2. [`CompiledDfa`] lowers one DFA into a
//!    `next[state * num_classes + class] -> state` table plus flat
//!    accept / default / predicate side tables. When the dense table
//!    outgrows [`DENSE_CELL_BUDGET`] and is sparse enough to repay the
//!    extra lookup indirection, a **row-displacement** compressed
//!    variant (Tarjan & Yao's displaced-row scheme, as used by
//!    classical LR generators) is chosen automatically: rows are
//!    overlaid into one array at per-state offsets, with a `check`
//!    array to reject slots owned by other rows.
//! 3. [`CompiledTables`] bundles the per-grammar class map with the
//!    per-decision tables. It is derived data — recomputed from the DFAs
//!    on every construction path (fresh analysis *and* cache load, like
//!    [`crate::recovery::RecoverySets`]) and never serialized, so the
//!    `llstar-analysis v2` cache format carries it for free.
//!
//! State ids are preserved by the lowering (state `i` of the compiled
//! table *is* state `i` of the source DFA), so trace paths, coverage
//! maps, and diagnostics stay byte-identical whichever dispatch the
//! runtime uses.

use crate::config::PredSource;
use crate::dfa::LookaheadDfa;
use crate::fxhash::FxHashMap;
use llstar_lexer::TokenType;

/// Sentinel in `next`/`check` tables: no transition / free slot.
pub const NO_TARGET: u32 = u32::MAX;

/// Sentinel in accept/default side tables: no alternative.
pub const NO_ALT: u16 = u16::MAX;

/// Dense transition tables up to this many `u32` cells (16 KiB) are
/// kept dense by [`CompiledDfa::lower`]: they fit comfortably in cache,
/// where the dense lookup's single indexed load beats the displaced
/// check-and-load, and the byte saving is irrelevant at that size.
pub const DENSE_CELL_BUDGET: usize = 4096;

/// The per-grammar token equivalence-class partition.
///
/// Classes are numbered densely from 0 in first-appearance (token-type)
/// order, so the partition — and everything lowered from it — is
/// deterministic. At most 256 classes are representable (the class map
/// is `u8`-typed so generated parsers can embed it compactly); a grammar
/// that would exceed that is not lowered at all and the runtime keeps
/// its linear-scan dispatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TokenClasses {
    class_of: Vec<u8>,
    num_classes: usize,
}

impl TokenClasses {
    /// Computes the coarsest partition of `0..vocab_len` token types such
    /// that tokens in one class are indistinguishable to every DFA state:
    /// refined once per state by `(current class, target for token)`.
    /// Returns `None` when more than 256 classes are needed.
    pub fn compute<'a>(
        vocab_len: usize,
        dfas: impl Iterator<Item = &'a LookaheadDfa>,
    ) -> Option<TokenClasses> {
        let vocab_len = vocab_len.max(1);
        let mut class_of: Vec<u32> = vec![0; vocab_len];
        let mut num_classes: usize = 1;
        let mut row: Vec<u32> = vec![NO_TARGET; vocab_len];
        for dfa in dfas {
            for st in &dfa.states {
                if st.edges.is_empty() {
                    continue;
                }
                let mut touched = false;
                for &(t, target) in &st.edges {
                    if let Some(slot) = row.get_mut(t.index()) {
                        *slot = target as u32;
                        touched = true;
                    }
                }
                if !touched {
                    continue;
                }
                // Split every class by the target this state assigns.
                let mut sig_to_class: FxHashMap<(u32, u32), u32> = FxHashMap::default();
                let mut fresh: u32 = 0;
                for (t, class) in class_of.iter_mut().enumerate() {
                    let key = (*class, row[t]);
                    let next = fresh;
                    let id = *sig_to_class.entry(key).or_insert_with(|| {
                        fresh += 1;
                        next
                    });
                    *class = id;
                }
                num_classes = fresh as usize;
                // Reset only the cells this state populated.
                for &(t, _) in &st.edges {
                    if let Some(slot) = row.get_mut(t.index()) {
                        *slot = NO_TARGET;
                    }
                }
            }
        }
        if num_classes > 256 {
            return None;
        }
        Some(TokenClasses {
            class_of: class_of.into_iter().map(|c| c as u8).collect(),
            num_classes,
        })
    }

    /// The class of `token`. Token types past the vocabulary (which a
    /// well-formed scanner never produces) share class 0; that is safe
    /// because lookups against a class the state has no edge for yield
    /// [`NO_TARGET`] — exactly the "no transition" answer a linear scan
    /// would give for an unknown token.
    #[inline]
    pub fn class_of(&self, token: TokenType) -> usize {
        self.class_of.get(token.index()).copied().unwrap_or(0) as usize
    }

    /// Number of classes in the partition.
    #[inline]
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// The raw class map, indexed by token type (for codegen emission).
    pub fn map(&self) -> &[u8] {
        &self.class_of
    }
}

/// The transition-table representation a [`CompiledDfa`] chose.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NextTable {
    /// `next[state * num_classes + class]`, [`NO_TARGET`]-filled.
    Dense(Vec<u32>),
    /// Row-displacement compressed: row `s` lives at offset `base[s]`
    /// in a shared slot array, and `check[base[s] + class] == s` tells a
    /// slot from another row's entry. `check`/`next` are padded to
    /// `max(base) + num_classes`, so lookups never go out of bounds.
    RowDisplaced {
        /// Per-state row offset into `next`/`check`.
        base: Vec<u32>,
        /// Owning state per slot ([`NO_TARGET`] = free).
        check: Vec<u32>,
        /// Target state per slot.
        next: Vec<u32>,
    },
}

/// One lookahead DFA lowered to flat tables. State numbering is the
/// source DFA's, so paths recorded through this table match paths
/// recorded through [`crate::dfa::DfaState::target`] byte for byte.
#[derive(Debug, Clone)]
pub struct CompiledDfa {
    /// Number of DFA states.
    pub num_states: usize,
    /// Row width (the grammar's class count).
    pub num_classes: usize,
    /// The transition table.
    pub table: NextTable,
    /// Accept alternative per state ([`NO_ALT`] = not an accept state).
    pub accept: Vec<u16>,
    /// Default ("else") alternative per state ([`NO_ALT`] = none).
    pub default_alt: Vec<u16>,
    /// `preds[pred_range[s].0 .. pred_range[s].1]` are state `s`'s
    /// predicate transitions, in evaluation order.
    pub pred_range: Vec<(u32, u32)>,
    /// All predicate transitions, flattened.
    pub preds: Vec<(PredSource, u16)>,
}

impl CompiledDfa {
    /// Lowers `dfa` against the grammar's class partition, picking
    /// between the dense and row-displaced representations.
    ///
    /// The displaced lookup costs an extra load-and-compare per
    /// transition (measurably ~25–30% slower dispatch), so compression
    /// only pays off where the dense table is genuinely large: dense
    /// tables within [`DENSE_CELL_BUDGET`] cells stay dense, bigger
    /// ones take row displacement when it saves at least a quarter of
    /// the cells.
    pub fn lower(dfa: &LookaheadDfa, classes: &TokenClasses) -> CompiledDfa {
        let dense = Self::lower_dense(dfa, classes);
        if dense.table_cells() <= DENSE_CELL_BUDGET {
            return dense;
        }
        let displaced = Self::lower_row_displaced(dfa, classes);
        if displaced.table_cells() * 4 <= dense.table_cells() * 3 {
            displaced
        } else {
            dense
        }
    }

    /// Lowers `dfa` to the dense `state × class` representation.
    pub fn lower_dense(dfa: &LookaheadDfa, classes: &TokenClasses) -> CompiledDfa {
        let nc = classes.num_classes();
        let mut next = vec![NO_TARGET; dfa.states.len() * nc];
        for (s, st) in dfa.states.iter().enumerate() {
            for &(t, target) in &st.edges {
                let cell = &mut next[s * nc + classes.class_of(t)];
                debug_assert!(
                    *cell == NO_TARGET || *cell == target as u32,
                    "tokens of one class must share a target (class partition bug)"
                );
                *cell = target as u32;
            }
        }
        Self::with_side_tables(dfa, nc, NextTable::Dense(next))
    }

    /// Lowers `dfa` to the row-displacement compressed representation:
    /// first-fit placement of rows (densest first) into a shared slot
    /// array, deterministic for a given DFA and partition.
    pub fn lower_row_displaced(dfa: &LookaheadDfa, classes: &TokenClasses) -> CompiledDfa {
        let nc = classes.num_classes();
        let n = dfa.states.len();
        // Per-state occupied cells, deduped by class.
        let mut rows: Vec<Vec<(usize, u32)>> = vec![Vec::new(); n];
        for (s, st) in dfa.states.iter().enumerate() {
            for &(t, target) in &st.edges {
                let class = classes.class_of(t);
                if !rows[s].iter().any(|&(c, _)| c == class) {
                    rows[s].push((class, target as u32));
                }
            }
            rows[s].sort_unstable();
        }
        // Place densest rows first (classic displacement heuristic), ties
        // by state id so placement is deterministic.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| rows[b].len().cmp(&rows[a].len()).then(a.cmp(&b)));
        let mut base = vec![0u32; n];
        let mut check: Vec<u32> = Vec::new();
        let mut next: Vec<u32> = Vec::new();
        for &s in &order {
            if rows[s].is_empty() {
                // Empty rows can share offset 0: `check` never names them,
                // so every probe misses, as it should.
                base[s] = 0;
                continue;
            }
            let mut offset = 0usize;
            'probe: loop {
                for &(c, _) in &rows[s] {
                    if let Some(&owner) = check.get(offset + c) {
                        if owner != NO_TARGET {
                            offset += 1;
                            continue 'probe;
                        }
                    }
                }
                break;
            }
            let top = offset + rows[s].last().expect("non-empty row").0 + 1;
            if check.len() < top {
                check.resize(top, NO_TARGET);
                next.resize(top, NO_TARGET);
            }
            for &(c, target) in &rows[s] {
                check[offset + c] = s as u32;
                next[offset + c] = target;
            }
            base[s] = offset as u32;
        }
        // Pad so `base[s] + class` is always in bounds.
        let reach = base.iter().map(|&b| b as usize + nc).max().unwrap_or(nc);
        check.resize(reach, NO_TARGET);
        next.resize(reach, NO_TARGET);
        Self::with_side_tables(dfa, nc, NextTable::RowDisplaced { base, check, next })
    }

    fn with_side_tables(dfa: &LookaheadDfa, nc: usize, table: NextTable) -> CompiledDfa {
        let mut accept = Vec::with_capacity(dfa.states.len());
        let mut default_alt = Vec::with_capacity(dfa.states.len());
        let mut pred_range = Vec::with_capacity(dfa.states.len());
        let mut preds = Vec::new();
        for st in &dfa.states {
            accept.push(st.accept.unwrap_or(NO_ALT));
            default_alt.push(st.default_alt.unwrap_or(NO_ALT));
            let start = preds.len() as u32;
            preds.extend_from_slice(&st.preds);
            pred_range.push((start, preds.len() as u32));
        }
        CompiledDfa {
            num_states: dfa.states.len(),
            num_classes: nc,
            table,
            accept,
            default_alt,
            pred_range,
            preds,
        }
    }

    /// The transition target from `state` on `class`, or [`NO_TARGET`].
    #[inline]
    pub fn next(&self, state: usize, class: usize) -> u32 {
        match &self.table {
            NextTable::Dense(next) => next[state * self.num_classes + class],
            NextTable::RowDisplaced { base, check, next } => {
                let slot = base[state] as usize + class;
                if check[slot] == state as u32 {
                    next[slot]
                } else {
                    NO_TARGET
                }
            }
        }
    }

    /// The accept alternative of `state`, if it is an accept state.
    #[inline]
    pub fn accept_alt(&self, state: usize) -> Option<u16> {
        match self.accept[state] {
            NO_ALT => None,
            alt => Some(alt),
        }
    }

    /// The default ("else") alternative of `state`, if any.
    #[inline]
    pub fn default_of(&self, state: usize) -> Option<u16> {
        match self.default_alt[state] {
            NO_ALT => None,
            alt => Some(alt),
        }
    }

    /// State `state`'s predicate transitions, in evaluation order.
    #[inline]
    pub fn preds_of(&self, state: usize) -> &[(PredSource, u16)] {
        let (lo, hi) = self.pred_range[state];
        &self.preds[lo as usize..hi as usize]
    }

    /// Whether the row-displacement representation was chosen.
    pub fn is_row_displaced(&self) -> bool {
        matches!(self.table, NextTable::RowDisplaced { .. })
    }

    /// Number of `u32` cells in the transition table (the quantity the
    /// dense/displaced choice weighs).
    pub fn table_cells(&self) -> usize {
        match &self.table {
            NextTable::Dense(next) => next.len(),
            NextTable::RowDisplaced { base, check, next } => base.len() + check.len() + next.len(),
        }
    }

    /// Approximate memory footprint of all tables, in bytes (transition
    /// cells at 4 bytes, accept/default at 2, predicates at 8).
    pub fn table_bytes(&self) -> usize {
        self.table_cells() * 4
            + self.accept.len() * 2
            + self.default_alt.len() * 2
            + self.pred_range.len() * 8
            + self.preds.len() * 8
    }
}

/// The per-grammar bundle: one class partition, one compiled DFA per
/// decision. Empty (`enabled() == false`) when the grammar needs more
/// than 256 token classes; every consumer must then fall back to linear
/// edge scans.
#[derive(Debug, Clone)]
pub struct CompiledTables {
    classes: Option<TokenClasses>,
    dfas: Vec<CompiledDfa>,
}

impl CompiledTables {
    /// Lowers every decision DFA of a grammar. `dfas` must be in
    /// [`crate::atn::DecisionId`] order.
    pub fn lower<'a>(
        vocab_len: usize,
        dfas: impl Iterator<Item = &'a LookaheadDfa> + Clone,
    ) -> CompiledTables {
        let Some(classes) = TokenClasses::compute(vocab_len, dfas.clone()) else {
            return CompiledTables { classes: None, dfas: Vec::new() };
        };
        let dfas = dfas.map(|dfa| CompiledDfa::lower(dfa, &classes)).collect();
        CompiledTables { classes: Some(classes), dfas }
    }

    /// An empty bundle (linear-scan dispatch everywhere).
    pub fn disabled() -> CompiledTables {
        CompiledTables { classes: None, dfas: Vec::new() }
    }

    /// Whether compiled dispatch is available.
    pub fn enabled(&self) -> bool {
        self.classes.is_some()
    }

    /// The class partition, when enabled.
    pub fn classes(&self) -> Option<&TokenClasses> {
        self.classes.as_ref()
    }

    /// The class map and compiled table for `decision`, when enabled.
    #[inline]
    pub fn get(&self, decision: usize) -> Option<(&TokenClasses, &CompiledDfa)> {
        match (&self.classes, self.dfas.get(decision)) {
            (Some(classes), Some(dfa)) => Some((classes, dfa)),
            _ => None,
        }
    }

    /// All compiled DFAs, in decision order (empty when disabled).
    pub fn dfas(&self) -> &[CompiledDfa] {
        &self.dfas
    }

    /// `(dense, row-displaced, total table bytes)` across all decisions,
    /// for `llstar check -v` and the bench reports.
    pub fn summary(&self) -> (usize, usize, usize) {
        let displaced = self.dfas.iter().filter(|d| d.is_row_displaced()).count();
        let bytes = self.dfas.iter().map(|d| d.table_bytes()).sum();
        (self.dfas.len() - displaced, displaced, bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atn::DecisionId;
    use crate::dfa::DfaState;
    use llstar_grammar::SynPredId;

    fn accept(alt: u16) -> DfaState {
        DfaState { accept: Some(alt), ..Default::default() }
    }

    /// s0 -t1-> s1 -t2-> accept(1); s0 -t3-> accept(2)
    fn chain_dfa() -> LookaheadDfa {
        let mut dfa = LookaheadDfa::new(DecisionId(0));
        dfa.states[0].edges.push((TokenType(1), 1));
        dfa.states[0].edges.push((TokenType(3), 2));
        dfa.states.push(DfaState { edges: vec![(TokenType(2), 3)], ..Default::default() });
        dfa.states.push(accept(2));
        dfa.states.push(accept(1));
        dfa
    }

    #[test]
    fn classes_merge_indistinguishable_tokens() {
        let dfa = chain_dfa();
        // Vocabulary: EOF, t1..t3 plus two tokens (4, 5) on no edge.
        let classes = TokenClasses::compute(6, std::iter::once(&dfa)).unwrap();
        // t4, t5 and EOF are indistinguishable (no edges anywhere).
        assert_eq!(classes.class_of(TokenType(4)), classes.class_of(TokenType(5)));
        assert_eq!(classes.class_of(TokenType(0)), classes.class_of(TokenType(4)));
        // t1, t2, t3 each behave differently somewhere.
        let (c1, c2, c3) = (
            classes.class_of(TokenType(1)),
            classes.class_of(TokenType(2)),
            classes.class_of(TokenType(3)),
        );
        assert!(c1 != c2 && c2 != c3 && c1 != c3, "{classes:?}");
        assert_eq!(classes.num_classes(), 4);
    }

    #[test]
    fn dense_lowering_matches_linear_scan() {
        let dfa = chain_dfa();
        let classes = TokenClasses::compute(6, std::iter::once(&dfa)).unwrap();
        let compiled = CompiledDfa::lower_dense(&dfa, &classes);
        for (s, st) in dfa.states.iter().enumerate() {
            assert_eq!(compiled.accept_alt(s), st.accept);
            assert_eq!(compiled.default_of(s), st.default_alt);
            assert_eq!(compiled.preds_of(s), st.preds.as_slice());
            for t in 0..6u32 {
                let token = TokenType(t);
                let linear = st.target(token).map(|x| x as u32).unwrap_or(NO_TARGET);
                assert_eq!(compiled.next(s, classes.class_of(token)), linear, "s{s} t{t}");
            }
        }
    }

    #[test]
    fn row_displaced_lowering_matches_linear_scan() {
        let dfa = chain_dfa();
        let classes = TokenClasses::compute(6, std::iter::once(&dfa)).unwrap();
        let compiled = CompiledDfa::lower_row_displaced(&dfa, &classes);
        assert!(compiled.is_row_displaced());
        for (s, st) in dfa.states.iter().enumerate() {
            for t in 0..6u32 {
                let token = TokenType(t);
                let linear = st.target(token).map(|x| x as u32).unwrap_or(NO_TARGET);
                assert_eq!(compiled.next(s, classes.class_of(token)), linear, "s{s} t{t}");
            }
        }
    }

    #[test]
    fn preds_and_defaults_are_flattened_in_order() {
        let mut dfa = chain_dfa();
        dfa.states[1].preds =
            vec![(PredSource::Syn(SynPredId(0)), 1), (PredSource::NotSyn(SynPredId(1)), 2)];
        dfa.states[1].default_alt = Some(3);
        let classes = TokenClasses::compute(6, std::iter::once(&dfa)).unwrap();
        let compiled = CompiledDfa::lower(&dfa, &classes);
        assert_eq!(compiled.preds_of(0), &[]);
        assert_eq!(compiled.preds_of(1), dfa.states[1].preds.as_slice());
        assert_eq!(compiled.default_of(1), Some(3));
    }

    #[test]
    fn sparse_wide_dfas_choose_row_displacement() {
        // 128 states, 200-token vocabulary, one edge per state on its
        // own token: maximally sparse, with a dense table well past the
        // cell budget, so displaced rows overlay heavily.
        let mut dfa = LookaheadDfa::new(DecisionId(0));
        dfa.states.resize_with(128, DfaState::default);
        for s in 0..127 {
            dfa.states[s].edges.push((TokenType(s as u32 + 1), s + 1));
        }
        dfa.states[127].accept = Some(1);
        let classes = TokenClasses::compute(200, std::iter::once(&dfa)).unwrap();
        let dense = CompiledDfa::lower_dense(&dfa, &classes);
        assert!(dense.table_cells() > DENSE_CELL_BUDGET, "test DFA must exceed the budget");
        let compiled = CompiledDfa::lower(&dfa, &classes);
        assert!(compiled.is_row_displaced(), "sparse table should compress");
        assert!(compiled.table_cells() * 4 <= dense.table_cells() * 3);
        // Behaviour still matches.
        for (s, st) in dfa.states.iter().enumerate() {
            for t in 0..200u32 {
                let token = TokenType(t);
                let linear = st.target(token).map(|x| x as u32).unwrap_or(NO_TARGET);
                assert_eq!(compiled.next(s, classes.class_of(token)), linear, "s{s} t{t}");
            }
        }
    }

    #[test]
    fn small_dense_tables_skip_displacement() {
        // The chain DFA compresses well, but its dense table is tiny —
        // within the budget the faster dense dispatch must win.
        let dfa = chain_dfa();
        let classes = TokenClasses::compute(6, std::iter::once(&dfa)).unwrap();
        let compiled = CompiledDfa::lower(&dfa, &classes);
        assert!(compiled.table_cells() <= DENSE_CELL_BUDGET);
        assert!(!compiled.is_row_displaced(), "small tables stay dense");
    }

    #[test]
    fn class_overflow_disables_lowering() {
        // 300 states each distinguishing its own token: 300+ classes.
        let mut dfa = LookaheadDfa::new(DecisionId(0));
        dfa.states.resize_with(301, DfaState::default);
        for s in 0..300 {
            dfa.states[s].edges.push((TokenType(s as u32 + 1), 300));
            dfa.states[s].edges.push((TokenType(((s + 1) % 300) as u32 + 1), s));
        }
        dfa.states[300].accept = Some(1);
        assert!(TokenClasses::compute(301, std::iter::once(&dfa)).is_none());
        let tables = CompiledTables::lower(301, std::iter::once(&dfa));
        assert!(!tables.enabled());
        assert!(tables.get(0).is_none());
    }

    #[test]
    fn tables_bundle_indexes_by_decision() {
        let a = chain_dfa();
        let mut b = LookaheadDfa::new(DecisionId(1));
        b.states[0].accept = Some(1);
        let dfas = [a, b];
        let tables = CompiledTables::lower(6, dfas.iter());
        assert!(tables.enabled());
        let (_, ca) = tables.get(0).unwrap();
        assert_eq!(ca.num_states, 4);
        let (_, cb) = tables.get(1).unwrap();
        assert_eq!(cb.accept_alt(0), Some(1));
        assert!(tables.get(2).is_none());
        let (dense, displaced, bytes) = tables.summary();
        assert_eq!(dense + displaced, 2);
        assert!(bytes > 0);
    }

    // -----------------------------------------------------------------
    // Boundary regressions: the exact edges of the class-count limit,
    // the dense-cell budget, and the ≥¼-saving displacement policy.
    // -----------------------------------------------------------------

    /// A hub DFA whose start state fans out on tokens `1..=k`, each to a
    /// distinct accept state: tokens `1..=k` land in `k` distinct
    /// classes, everything else shares one more, so `k + 1` classes.
    fn fanout_dfa(k: usize) -> LookaheadDfa {
        let mut dfa = LookaheadDfa::new(DecisionId(0));
        dfa.states.resize_with(k + 1, DfaState::default);
        for t in 1..=k {
            dfa.states[0].edges.push((TokenType(t as u32), t));
            dfa.states[t].accept = Some(1);
        }
        dfa
    }

    #[test]
    fn exactly_256_classes_still_lower() {
        // 255 fanout edges + the everything-else class = 256 classes,
        // the last value a u8 class map can represent.
        let dfa = fanout_dfa(255);
        let classes = TokenClasses::compute(256, std::iter::once(&dfa))
            .expect("256 classes must fit the u8 class map");
        assert_eq!(classes.num_classes(), 256);
        let tables = CompiledTables::lower(256, std::iter::once(&dfa));
        assert!(tables.enabled(), "lowering must stay enabled at the 256-class boundary");
        // Behaviour parity right at the boundary.
        let (classes, compiled) = tables.get(0).unwrap();
        for (s, st) in dfa.states.iter().enumerate() {
            for t in 0..256u32 {
                let token = TokenType(t);
                let linear = st.target(token).map(|x| x as u32).unwrap_or(NO_TARGET);
                assert_eq!(compiled.next(s, classes.class_of(token)), linear, "s{s} t{t}");
            }
        }
    }

    #[test]
    fn class_257_disables_lowering() {
        // One more distinguishable token pushes the partition to 257
        // classes — past the u8 map — so lowering must bail, not wrap.
        let dfa = fanout_dfa(256);
        assert!(TokenClasses::compute(257, std::iter::once(&dfa)).is_none());
        assert!(!CompiledTables::lower(257, std::iter::once(&dfa)).enabled());
    }

    /// An `n`-state DFA whose first `k` states each carry a single edge
    /// on token 1 (all to the same accept state): exactly 2 token
    /// classes, so the dense table has `2n` cells, and row displacement
    /// packs the `k` one-cell rows into `base(n) + 2 × (k + 1)` cells.
    fn single_edge_dfa(n: usize, k: usize) -> LookaheadDfa {
        assert!(k < n);
        let mut dfa = LookaheadDfa::new(DecisionId(0));
        dfa.states.resize_with(n, DfaState::default);
        for s in 0..k {
            dfa.states[s].edges.push((TokenType(1), n - 1));
        }
        dfa.states[n - 1].accept = Some(1);
        dfa
    }

    #[test]
    fn dense_table_exactly_at_budget_stays_dense() {
        // 2048 states × 2 classes = 4096 cells = DENSE_CELL_BUDGET. The
        // budget check is inclusive: exactly-at-budget tables stay dense
        // even though displacement would save far more than a quarter.
        let dfa = single_edge_dfa(2048, 40);
        let classes = TokenClasses::compute(2, std::iter::once(&dfa)).unwrap();
        assert_eq!(classes.num_classes(), 2);
        let compiled = CompiledDfa::lower(&dfa, &classes);
        assert_eq!(compiled.table_cells(), DENSE_CELL_BUDGET);
        assert!(!compiled.is_row_displaced(), "at-budget tables must stay dense");
        // One more state crosses the budget, and the (now considered)
        // displaced form easily clears the ¼ saving.
        let dfa = single_edge_dfa(2049, 40);
        let compiled = CompiledDfa::lower(&dfa, &classes);
        assert!(compiled.is_row_displaced(), "one cell past the budget must compress");
    }

    #[test]
    fn quarter_saving_tie_takes_displacement() {
        // Tie algebra: dense = 2n cells, displaced = n + 2(k + 1) cells,
        // so "displaced × 4 == dense × 3" exactly when n = 4k + 4. With
        // k = 600, n = 2404: dense = 4808 (over budget), displaced =
        // 3606, and 3606 × 4 == 4808 × 3 == 14424 — the policy's `<=`
        // must take displacement when the saving is exactly a quarter.
        let (k, n) = (600, 2404);
        let dfa = single_edge_dfa(n, k);
        let classes = TokenClasses::compute(2, std::iter::once(&dfa)).unwrap();
        let dense = CompiledDfa::lower_dense(&dfa, &classes);
        let displaced = CompiledDfa::lower_row_displaced(&dfa, &classes);
        assert_eq!(dense.table_cells(), 2 * n);
        assert_eq!(displaced.table_cells(), n + 2 * (k + 1));
        assert_eq!(displaced.table_cells() * 4, dense.table_cells() * 3, "tie as constructed");
        assert!(CompiledDfa::lower(&dfa, &classes).is_row_displaced());
        // One more occupied row breaks the tie the other way: the saving
        // is now under a quarter, so the faster dense dispatch wins.
        let dfa = single_edge_dfa(n, k + 1);
        let classes = TokenClasses::compute(2, std::iter::once(&dfa)).unwrap();
        assert!(!CompiledDfa::lower(&dfa, &classes).is_row_displaced());
    }
}
