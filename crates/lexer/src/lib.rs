//! Lexer substrate for the `llstar` LL(*) parser generator.
//!
//! ANTLR-style lexer rules (character classes, literals, EBNF operators,
//! fragments, skip rules) are compiled via Thompson NFA construction and
//! subset construction into a deterministic scanner performing maximal-munch
//! tokenization.
//!
//! # Quickstart
//!
//! ```
//! use llstar_lexer::{LexerSpec, Rx, TokenType};
//!
//! let mut spec = LexerSpec::new();
//! spec.push_rule("ID", Rx::parse("[a-zA-Z_] [a-zA-Z0-9_]*")?, TokenType(1), false);
//! spec.push_rule("INT", Rx::parse("[0-9]+")?, TokenType(2), false);
//! spec.push_rule("WS", Rx::parse("[ \\t\\r\\n]+")?, TokenType(3), true);
//! let scanner = spec.build()?;
//!
//! let src = "width 42";
//! let tokens = scanner.tokenize(src)?;
//! assert_eq!(tokens[0].text(src), "width");
//! assert_eq!(tokens[1].ttype, TokenType(2));
//! assert!(tokens[2].ttype.is_eof());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod charclass;
pub mod dfa;
pub mod nfa;
pub mod regex;
pub mod scanner;
pub mod token;

pub use charclass::{disjoint_partition, CharSet};
pub use dfa::{DfaStateId, ScannerDfa, ScannerDfaState};
pub use nfa::{Nfa, NfaState, NfaStateId};
pub use regex::{Rx, RxParseError};
pub use scanner::{scanner_from_patterns, LexBuildError, LexError, LexRule, LexerSpec, Scanner};
pub use token::{Span, Token, TokenType};
