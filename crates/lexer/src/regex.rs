//! A small regular-expression AST for lexer rules, with an ANTLR-flavoured
//! surface syntax.
//!
//! Lexer rules in a grammar file use patterns such as
//! `[a-zA-Z_] [a-zA-Z0-9_]*`, `'if'`, `'"' (~["\\] | '\\' .)* '"'`. This
//! module defines the AST ([`Rx`]) and a standalone parser ([`Rx::parse`])
//! for that syntax, used both directly and by the grammar meta-parser.

use crate::charclass::CharSet;
use std::fmt;

/// A regular expression over characters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rx {
    /// Matches the empty string.
    Empty,
    /// Matches one character drawn from a set.
    Set(CharSet),
    /// Matches a sequence of sub-expressions in order.
    Seq(Vec<Rx>),
    /// Matches any one of the sub-expressions (ordered only for display;
    /// semantics are unordered union).
    Alt(Vec<Rx>),
    /// Kleene star: zero or more repetitions.
    Star(Box<Rx>),
    /// One or more repetitions.
    Plus(Box<Rx>),
    /// Zero or one occurrence.
    Opt(Box<Rx>),
    /// Reference to a named fragment rule, resolved before NFA construction.
    Fragment(String),
}

impl Rx {
    /// A literal string, matched character by character.
    pub fn literal(s: &str) -> Rx {
        let items: Vec<Rx> = s.chars().map(|c| Rx::Set(CharSet::single(c))).collect();
        match items.len() {
            0 => Rx::Empty,
            1 => items.into_iter().next().expect("len checked"),
            _ => Rx::Seq(items),
        }
    }

    /// Matches any single character.
    pub fn any() -> Rx {
        Rx::Set(CharSet::any())
    }

    /// Whether this expression can match the empty string (conservative,
    /// assuming fragments are non-nullable until resolved).
    pub fn is_nullable(&self) -> bool {
        match self {
            Rx::Empty => true,
            Rx::Set(_) | Rx::Fragment(_) | Rx::Plus(_) => false,
            Rx::Seq(items) => items.iter().all(Rx::is_nullable),
            Rx::Alt(items) => items.iter().any(Rx::is_nullable),
            Rx::Star(_) | Rx::Opt(_) => true,
        }
    }

    /// Replaces every [`Rx::Fragment`] reference using `resolve`.
    ///
    /// # Errors
    /// Returns the unresolved name if `resolve` yields `None` for it.
    pub fn resolve_fragments(&self, resolve: &dyn Fn(&str) -> Option<Rx>) -> Result<Rx, String> {
        Ok(match self {
            Rx::Empty => Rx::Empty,
            Rx::Set(s) => Rx::Set(s.clone()),
            Rx::Seq(items) => Rx::Seq(
                items.iter().map(|r| r.resolve_fragments(resolve)).collect::<Result<_, _>>()?,
            ),
            Rx::Alt(items) => Rx::Alt(
                items.iter().map(|r| r.resolve_fragments(resolve)).collect::<Result<_, _>>()?,
            ),
            Rx::Star(r) => Rx::Star(Box::new(r.resolve_fragments(resolve)?)),
            Rx::Plus(r) => Rx::Plus(Box::new(r.resolve_fragments(resolve)?)),
            Rx::Opt(r) => Rx::Opt(Box::new(r.resolve_fragments(resolve)?)),
            Rx::Fragment(name) => {
                let body = resolve(name).ok_or_else(|| name.clone())?;
                body.resolve_fragments(resolve)?
            }
        })
    }

    /// Parses the ANTLR-flavoured pattern syntax.
    ///
    /// Supported forms: `'literal'` (with `\n \r \t \\ \' \u{..}` escapes),
    /// `[a-z0-9_]` classes (with the same escapes and leading `^` negation),
    /// `.` (any character), `~X` (complement of a single-char set or class),
    /// grouping `( … )`, postfix `* + ?`, alternation `|`, juxtaposition for
    /// sequencing, and `FragmentName` references.
    ///
    /// # Errors
    /// Returns a [`RxParseError`] describing the first syntax error.
    pub fn parse(pattern: &str) -> Result<Rx, RxParseError> {
        let mut p = RxParser { chars: pattern.chars().collect(), pos: 0 };
        let rx = p.alternation()?;
        p.skip_ws();
        if p.pos != p.chars.len() {
            return Err(p.err("trailing input after pattern"));
        }
        Ok(rx)
    }
}

impl fmt::Display for Rx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rx::Empty => write!(f, "ε"),
            Rx::Set(s) => write!(f, "{s}"),
            Rx::Seq(items) => {
                for (i, r) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{r}")?;
                }
                Ok(())
            }
            Rx::Alt(items) => {
                write!(f, "(")?;
                for (i, r) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, " | ")?;
                    }
                    write!(f, "{r}")?;
                }
                write!(f, ")")
            }
            Rx::Star(r) => write!(f, "({r})*"),
            Rx::Plus(r) => write!(f, "({r})+"),
            Rx::Opt(r) => write!(f, "({r})?"),
            Rx::Fragment(name) => write!(f, "{name}"),
        }
    }
}

/// Error produced by [`Rx::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RxParseError {
    /// Character offset of the error within the pattern.
    pub pos: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for RxParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "regex syntax error at offset {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for RxParseError {}

struct RxParser {
    chars: Vec<char>,
    pos: usize,
}

impl RxParser {
    fn err(&self, msg: &str) -> RxParseError {
        RxParseError { pos: self.pos, message: msg.to_string() }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.pos += 1;
        }
    }

    fn alternation(&mut self) -> Result<Rx, RxParseError> {
        let mut alts = vec![self.sequence()?];
        loop {
            self.skip_ws();
            if self.peek() == Some('|') {
                self.bump();
                alts.push(self.sequence()?);
            } else {
                break;
            }
        }
        Ok(if alts.len() == 1 { alts.pop().expect("len checked") } else { Rx::Alt(alts) })
    }

    fn sequence(&mut self) -> Result<Rx, RxParseError> {
        let mut items = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                None | Some('|') | Some(')') => break,
                _ => items.push(self.postfix()?),
            }
        }
        Ok(match items.len() {
            0 => Rx::Empty,
            1 => items.pop().expect("len checked"),
            _ => Rx::Seq(items),
        })
    }

    fn postfix(&mut self) -> Result<Rx, RxParseError> {
        let mut base = self.primary()?;
        loop {
            self.skip_ws();
            match self.peek() {
                Some('*') => {
                    self.bump();
                    base = Rx::Star(Box::new(base));
                }
                Some('+') => {
                    self.bump();
                    base = Rx::Plus(Box::new(base));
                }
                Some('?') => {
                    self.bump();
                    base = Rx::Opt(Box::new(base));
                }
                _ => return Ok(base),
            }
        }
    }

    fn primary(&mut self) -> Result<Rx, RxParseError> {
        self.skip_ws();
        match self.peek() {
            Some('(') => {
                self.bump();
                let inner = self.alternation()?;
                self.skip_ws();
                if self.bump() != Some(')') {
                    return Err(self.err("expected ')'"));
                }
                Ok(inner)
            }
            Some('\'') => {
                let s = self.quoted_literal()?;
                Ok(Rx::literal(&s))
            }
            Some('[') => Ok(Rx::Set(self.char_class()?)),
            Some('.') => {
                self.bump();
                Ok(Rx::any())
            }
            Some('~') => {
                self.bump();
                self.skip_ws();
                let set = match self.peek() {
                    Some('[') => self.char_class()?,
                    Some('\'') => {
                        let s = self.quoted_literal()?;
                        s.chars().collect()
                    }
                    _ => return Err(self.err("'~' must be followed by a class or literal")),
                };
                Ok(Rx::Set(set.complement()))
            }
            Some(c) if c.is_alphabetic() || c == '_' => {
                let mut name = String::new();
                while matches!(self.peek(), Some(c) if c.is_alphanumeric() || c == '_') {
                    name.push(self.bump().expect("peeked"));
                }
                Ok(Rx::Fragment(name))
            }
            Some(c) => Err(self.err(&format!("unexpected character {c:?}"))),
            None => Err(self.err("unexpected end of pattern")),
        }
    }

    fn escape(&mut self) -> Result<char, RxParseError> {
        match self.bump() {
            Some('n') => Ok('\n'),
            Some('r') => Ok('\r'),
            Some('t') => Ok('\t'),
            Some('0') => Ok('\0'),
            Some('u') => {
                if self.bump() != Some('{') {
                    return Err(self.err("expected '{' after \\u"));
                }
                let mut hex = String::new();
                while let Some(c) = self.peek() {
                    if c == '}' {
                        break;
                    }
                    hex.push(c);
                    self.bump();
                }
                if self.bump() != Some('}') {
                    return Err(self.err("unterminated \\u{…} escape"));
                }
                let v =
                    u32::from_str_radix(&hex, 16).map_err(|_| self.err("invalid hex in \\u{…}"))?;
                char::from_u32(v).ok_or_else(|| self.err("escape is not a scalar value"))
            }
            Some(c) => Ok(c), // \\  \'  \]  \-  etc.: the character itself
            None => Err(self.err("dangling backslash")),
        }
    }

    fn quoted_literal(&mut self) -> Result<String, RxParseError> {
        debug_assert_eq!(self.peek(), Some('\''));
        self.bump();
        let mut out = String::new();
        loop {
            match self.bump() {
                Some('\'') => return Ok(out),
                Some('\\') => out.push(self.escape()?),
                Some(c) => out.push(c),
                None => return Err(self.err("unterminated literal")),
            }
        }
    }

    fn char_class(&mut self) -> Result<CharSet, RxParseError> {
        debug_assert_eq!(self.peek(), Some('['));
        self.bump();
        let negated = if self.peek() == Some('^') {
            self.bump();
            true
        } else {
            false
        };
        let mut set = CharSet::empty();
        loop {
            let lo = match self.bump() {
                Some(']') => {
                    return Ok(if negated { set.complement() } else { set });
                }
                Some('\\') => self.escape()?,
                Some(c) => c,
                None => return Err(self.err("unterminated character class")),
            };
            if self.peek() == Some('-') && self.chars.get(self.pos + 1) != Some(&']') {
                self.bump();
                let hi = match self.bump() {
                    Some('\\') => self.escape()?,
                    Some(c) => c,
                    None => return Err(self.err("unterminated range in class")),
                };
                if hi < lo {
                    return Err(self.err("reversed range in character class"));
                }
                set = set.union(&CharSet::range(lo, hi));
            } else {
                set = set.union(&CharSet::single(lo));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(s: &str) -> CharSet {
        s.chars().collect()
    }

    #[test]
    fn parse_literal() {
        assert_eq!(Rx::parse("'if'").unwrap(), Rx::literal("if"));
        assert_eq!(Rx::parse("'a'").unwrap(), Rx::Set(CharSet::single('a')));
        assert_eq!(Rx::parse("''").unwrap(), Rx::Empty);
    }

    #[test]
    fn parse_class_and_ranges() {
        let rx = Rx::parse("[a-cx]").unwrap();
        assert_eq!(rx, Rx::Set(set("abcx")));
        let rx = Rx::parse("[^a-c]").unwrap();
        assert_eq!(rx, Rx::Set(set("abc").complement()));
    }

    #[test]
    fn parse_escapes() {
        let rx = Rx::parse(r"[ \t\r\n]").unwrap();
        assert_eq!(rx, Rx::Set(set(" \t\r\n")));
        assert_eq!(Rx::parse(r"'\u{41}'").unwrap(), Rx::Set(CharSet::single('A')));
        assert_eq!(Rx::parse(r"'\\'").unwrap(), Rx::Set(CharSet::single('\\')));
    }

    #[test]
    fn parse_operators() {
        let rx = Rx::parse("[0-9]+ ('.' [0-9]*)?").unwrap();
        match rx {
            Rx::Seq(items) => {
                assert!(matches!(items[0], Rx::Plus(_)));
                assert!(matches!(items[1], Rx::Opt(_)));
            }
            other => panic!("expected Seq, got {other:?}"),
        }
    }

    #[test]
    fn parse_alternation_and_groups() {
        let rx = Rx::parse("'a' | 'b' 'c'").unwrap();
        match rx {
            Rx::Alt(alts) => assert_eq!(alts.len(), 2),
            other => panic!("expected Alt, got {other:?}"),
        }
    }

    #[test]
    fn parse_negation_and_any() {
        let rx = Rx::parse(r#"(~['\\] | '\\' .)*"#).unwrap();
        assert!(matches!(rx, Rx::Star(_)));
        assert_eq!(Rx::parse(".").unwrap(), Rx::any());
    }

    #[test]
    fn parse_fragment_reference() {
        assert_eq!(Rx::parse("Digit").unwrap(), Rx::Fragment("Digit".into()));
    }

    #[test]
    fn parse_errors() {
        assert!(Rx::parse("'abc").is_err());
        assert!(Rx::parse("[a-").is_err());
        assert!(Rx::parse("[z-a]").is_err());
        assert!(Rx::parse("(a").is_err());
        assert!(Rx::parse("a)").is_err());
        assert!(Rx::parse("~x").is_err());
    }

    #[test]
    fn nullability() {
        assert!(Rx::parse("'a'?").unwrap().is_nullable());
        assert!(Rx::parse("'a'*").unwrap().is_nullable());
        assert!(!Rx::parse("'a'+").unwrap().is_nullable());
        assert!(!Rx::parse("'a' 'b'?").unwrap().is_nullable());
        assert!(Rx::parse("'a'? 'b'?").unwrap().is_nullable());
    }

    #[test]
    fn resolve_fragments_substitutes() {
        let rx = Rx::parse("Digit+").unwrap();
        let resolved = rx
            .resolve_fragments(&|name| (name == "Digit").then(|| Rx::Set(set("0123456789"))))
            .unwrap();
        assert_eq!(resolved, Rx::Plus(Box::new(Rx::Set(set("0123456789")))));
        let err = rx.resolve_fragments(&|_| None).unwrap_err();
        assert_eq!(err, "Digit");
    }

    #[test]
    fn display_round_trips_through_parse() {
        let rx = Rx::parse("[0-9]+ ('.' [0-9]+)? ('e' [+\\-]? [0-9]+)?").unwrap();
        let shown = rx.to_string();
        assert!(shown.contains("0-9"), "{shown}");
    }
}

// ---------------------------------------------------------------------------
// Sampling
// ---------------------------------------------------------------------------

impl Rx {
    /// Generates a random string matched by this expression, driving all
    /// choices from the `seed` (a simple in-place LCG, so callers need no
    /// RNG dependency). Returns `None` for unresolved fragments.
    ///
    /// Repetitions are kept short (0–2 extra iterations) so samples stay
    /// small.
    pub fn sample(&self, seed: &mut u64) -> Option<String> {
        fn next(seed: &mut u64) -> u32 {
            // Numerical Recipes LCG; plenty for test-input generation.
            *seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (*seed >> 33) as u32
        }
        match self {
            Rx::Empty => Some(String::new()),
            Rx::Set(set) => {
                if set.is_empty() {
                    return None;
                }
                // Pick a random range, then a random char within it,
                // skipping surrogate ordinals.
                let ranges = set.ranges();
                for _ in 0..8 {
                    let (lo, hi) = ranges[next(seed) as usize % ranges.len()];
                    let x = lo + (next(seed) % (hi - lo + 1));
                    if let Some(c) = char::from_u32(x) {
                        return Some(c.to_string());
                    }
                }
                set.example().map(|c| c.to_string())
            }
            Rx::Seq(items) => {
                let mut out = String::new();
                for item in items {
                    out.push_str(&item.sample(seed)?);
                }
                Some(out)
            }
            Rx::Alt(items) => {
                let pick = next(seed) as usize % items.len();
                items[pick].sample(seed)
            }
            Rx::Star(inner) => {
                let n = next(seed) % 3;
                let mut out = String::new();
                for _ in 0..n {
                    out.push_str(&inner.sample(seed)?);
                }
                Some(out)
            }
            Rx::Plus(inner) => {
                let n = 1 + next(seed) % 2;
                let mut out = String::new();
                for _ in 0..n {
                    out.push_str(&inner.sample(seed)?);
                }
                Some(out)
            }
            Rx::Opt(inner) => {
                if next(seed).is_multiple_of(2) {
                    Some(String::new())
                } else {
                    inner.sample(seed)
                }
            }
            Rx::Fragment(_) => None,
        }
    }
}

#[cfg(test)]
mod sample_tests {
    use super::*;

    /// Sampled strings must be matched by the expression they came from
    /// (checked via NFA simulation).
    #[test]
    fn samples_match_their_pattern() {
        use crate::nfa::Nfa;
        for pat in ["[a-z]+", "'if' | 'else'", "[0-9]+ ('.' [0-9]+)?", "('a' | 'b')* 'c'"] {
            let rx = Rx::parse(pat).unwrap();
            let mut nfa = Nfa::new();
            nfa.add_rule(0, &rx);
            let mut seed = 12345u64;
            for _ in 0..50 {
                let s = rx.sample(&mut seed).unwrap();
                if s.is_empty() {
                    continue;
                }
                assert_eq!(
                    nfa.longest_match(&s),
                    Some((s.len(), 0)),
                    "pattern {pat} produced non-matching sample {s:?}"
                );
            }
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let rx = Rx::parse("[a-z]+ [0-9]*").unwrap();
        let (mut s1, mut s2) = (9u64, 9u64);
        assert_eq!(rx.sample(&mut s1), rx.sample(&mut s2));
    }

    #[test]
    fn unresolved_fragment_samples_none() {
        assert_eq!(Rx::Fragment("X".into()).sample(&mut 1), None);
    }
}
